# Convenience targets for the FBS reproduction.

PYTHON ?= python3

.PHONY: install test bench examples reports clean

install:
	pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

examples:
	@for script in examples/*.py; do \
		echo "=== $$script ==="; \
		$(PYTHON) $$script || exit 1; \
		echo; \
	done

# Regenerate benchmarks/reports/*.txt (the EXPERIMENTS.md inputs).
reports: bench
	@ls -1 benchmarks/reports/

clean:
	find . -name __pycache__ -type d -exec rm -rf {} + 2>/dev/null || true
	rm -rf .pytest_cache .hypothesis
