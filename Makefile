# Convenience targets for the FBS reproduction.

PYTHON ?= python3

# Run against the source tree directly (the ROADMAP tier-1 command);
# no editable install needed.
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: install test lint lint-docs lint-cache-bench obs-check resilience-smoke load-smoke transport-smoke gateway-smoke traces-smoke traces-sweep bench bench-smoke examples reports clean

install:
	pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest -x -q

# fbslint: the whole-program protocol-invariant analyzer
# (FBS001-FBS012, interprocedural). Exit codes: 0 clean, 1 findings,
# 2 usage/analysis error. Warm reruns replay the summary cache.
lint:
	$(PYTHON) -m repro.analysis --cache src

# Verify the DESIGN.md "Enforced invariants" table matches the rule
# registry (regenerate with `python -m repro.analysis --write-docs`).
lint-docs:
	$(PYTHON) -m repro.analysis --check-docs

# Cold-vs-warm cache benchmark (the CI lint-job gate: warm >= 5x cold).
lint-cache-bench:
	$(PYTHON) benchmarks/bench_lint_cache.py --json /tmp/BENCH_lint_cache.json

# Observability: end-to-end trace/registry/cache parity selftest plus
# docs coverage (every event + metric documented) and link checks.
obs-check:
	$(PYTHON) -m repro.obs --selftest
	$(PYTHON) -m repro.obs check-docs --root .

# Fault-injection campaign (CI tier): run the seeded smoke matrix
# twice; fail on any invariant violation (CLI exit 1) or on report
# nondeterminism (cmp).
resilience-smoke:
	$(PYTHON) -m repro.resilience --smoke --seed 0 --out /tmp/FBS_resilience_a.json
	$(PYTHON) -m repro.resilience --smoke --seed 0 --out /tmp/FBS_resilience_b.json
	cmp /tmp/FBS_resilience_a.json /tmp/FBS_resilience_b.json

# Sharded load engine (CI tier): run the 2-worker smoke twice; fail on
# report nondeterminism (cmp), on any ledger/merge-exactness violation
# (CLI exit 1 -- --smoke runs the workers-vs-single merge check), or if
# the aggregate goodput somehow dips below the best single shard.
load-smoke:
	$(PYTHON) -m repro.load --smoke --workers 2 --seed 0 --out /tmp/FBS_load_smoke_a.json
	$(PYTHON) -m repro.load --smoke --workers 2 --seed 0 --out /tmp/FBS_load_smoke_b.json
	cmp /tmp/FBS_load_smoke_a.json /tmp/FBS_load_smoke_b.json
	$(PYTHON) -c 'import json; r = json.load(open("/tmp/FBS_load_smoke_a.json")); agg = r["aggregate"]["goodput_dps"]; best = max(w["goodput_dps"] for w in r["workers"]); assert agg >= best, (agg, best); print("load-smoke: aggregate %.1f dps >= best shard %.1f dps; merge %s" % (agg, best, r["merge_check"]["result"]))'

# Real-socket transport (CI tier): run the UDP echo demo twice over
# loopback; fail on any lost exchange (CLI exit 1) or on report
# nondeterminism (cmp -- the report is ledger-only, so a lossless run
# is byte-stable even on real sockets).
transport-smoke:
	$(PYTHON) -m repro.transport --demo udp-echo --out /tmp/FBS_transport_a.json
	$(PYTHON) -m repro.transport --demo udp-echo --out /tmp/FBS_transport_b.json
	cmp /tmp/FBS_transport_a.json /tmp/FBS_transport_b.json

# Multi-tenant gateway (CI tier): drive the seeded workload twice with
# capacity eviction in play (--max-tenants below --tenants); fail on any
# ledger/registry inconsistency (CLI exit 1) or on report
# nondeterminism (cmp -- the report is ledger-only and byte-stable).
gateway-smoke:
	$(PYTHON) -m repro.gateway --tenants 6 --flows 2 --rounds 6 --max-tenants 4 --seed 0 --out /tmp/FBS_gateway_a.json
	$(PYTHON) -m repro.gateway --tenants 6 --flows 2 --rounds 6 --max-tenants 4 --seed 0 --out /tmp/FBS_gateway_b.json
	cmp /tmp/FBS_gateway_a.json /tmp/FBS_gateway_b.json

# Heavy-tailed trace sweep (CI tier): run the smoke THRESHOLD/cache
# grid twice; fail on any Figure 11/13 gate (CLI exit 1) or on report
# nondeterminism (cmp).
traces-smoke:
	$(PYTHON) -m repro.traces sweep --profile smoke --seed 0 --out /tmp/BENCH_traces_a.json
	$(PYTHON) -m repro.traces sweep --profile smoke --seed 0 --out /tmp/BENCH_traces_b.json
	cmp /tmp/BENCH_traces_a.json /tmp/BENCH_traces_b.json

# Regenerate the checked-in full-profile report (nightly tier, ~2 min).
traces-sweep:
	$(PYTHON) benchmarks/bench_traces.py --json BENCH_traces.json

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Tiny-iteration datapath kernel bench: keeps the harness from rotting
# (CI runs this; rates are noisy but the correctness gates are strict).
bench-smoke:
	$(PYTHON) benchmarks/bench_datapath.py --smoke --json /tmp/BENCH_datapath.smoke.json

examples:
	@for script in examples/*.py; do \
		echo "=== $$script ==="; \
		$(PYTHON) $$script || exit 1; \
		echo; \
	done

# Regenerate benchmarks/reports/*.txt (the EXPERIMENTS.md inputs).
reports: bench
	@ls -1 benchmarks/reports/

clean:
	find . -name __pycache__ -type d -exec rm -rf {} + 2>/dev/null || true
	rm -rf .pytest_cache .hypothesis .fbslint_cache.json
