"""CLI surface tests for ``python -m repro.resilience``."""

import json

import pytest

from repro.resilience.cli import main


def test_list_names_every_scenario(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    for name in ("baseline", "corruption", "perfect_storm"):
        assert name in out


def test_single_scenario_report_to_file(tmp_path, capsys):
    out_path = tmp_path / "report.json"
    code = main(
        ["--smoke", "--only", "baseline", "--seed", "0", "--out", str(out_path)]
    )
    assert code == 0
    report = json.loads(out_path.read_text())
    assert report["tier"] == "smoke"
    assert report["summary"]["failed"] == 0
    # stdout stayed clean (the report went to the file).
    assert capsys.readouterr().out == ""


def test_stdout_report_is_byte_identical_per_seed(capsys):
    assert main(["--smoke", "--only", "baseline", "--seed", "5"]) == 0
    first = capsys.readouterr().out
    assert main(["--smoke", "--only", "baseline", "--seed", "5"]) == 0
    second = capsys.readouterr().out
    assert first == second
    json.loads(first)  # and it is valid JSON


def test_unknown_scenario_is_usage_error(capsys):
    assert main(["--only", "no_such_scenario"]) == 2
    assert "unknown scenario" in capsys.readouterr().err
