"""Campaign harness tests: verdicts, determinism, and sensitivity.

Three things must hold for the campaign to be trustworthy evidence:

1. the shipped scenario matrix passes (the protocol really is
   resilient under the scripted faults);
2. the report is byte-identical for the same seed (so CI can diff);
3. the invariants *fail* when the protection they check is removed
   (negative controls -- a harness that can't fail proves nothing).
"""

from dataclasses import replace

import pytest

from repro.resilience import (
    build_matrix,
    run_campaign,
    run_scenario,
    to_json,
)
from repro.resilience.faults import FlushSoftState, ReplayBurst
from repro.resilience.report import scenario_report
from repro.resilience.scenario import SMOKE_DATAGRAMS, Scenario


def _scenario(name, smoke=True):
    matrix = build_matrix(smoke=smoke)
    return next(s for s in matrix if s.name == name)


class TestVerdicts:
    @pytest.mark.parametrize(
        "name", [s.name for s in build_matrix(smoke=True)]
    )
    def test_smoke_scenarios_pass(self, name):
        result, violations = run_scenario(_scenario(name), seed=0)
        assert violations == []

    def test_reboot_scenario_actually_flushes(self):
        result, violations = run_scenario(_scenario("reboot"), seed=0)
        assert violations == []
        assert result.counters.get("soft_state_flushes", 0) >= 2
        flushes = [
            e for e in result.events if e["type"] == "SoftStateFlushed"
        ]
        assert flushes and all(e["scope"] == "endpoint" for e in flushes)

    def test_forgery_scenario_sends_real_attacks(self):
        result, violations = run_scenario(_scenario("forgery"), seed=0)
        assert violations == []
        assert result.forged_sent > 0
        assert result.tampered_sent > 0
        # Attack traffic was rejected, not lost: the receiver saw it.
        rejected = [
            e for e in result.events if e["type"] == "DatagramRejected"
        ]
        assert len(rejected) > 0

    def test_replay_scenario_exercises_the_guard(self):
        result, violations = run_scenario(_scenario("replay"), seed=0)
        assert violations == []
        assert result.replays_sent > 0
        duplicates = [
            e
            for e in result.events
            if e["type"] == "DatagramRejected" and e["reason"] == "duplicate"
        ]
        assert len(duplicates) == result.replays_sent


class TestDeterminism:
    def test_same_seed_same_report_bytes(self):
        scenario = _scenario("corruption")
        first = scenario_report(*run_scenario(scenario, seed=3))
        second = scenario_report(*run_scenario(scenario, seed=3))
        assert to_json({"s": first}) == to_json({"s": second})

    def test_different_seed_different_trace(self):
        scenario = _scenario("corruption")
        first, _ = run_scenario(scenario, seed=0)
        second, _ = run_scenario(scenario, seed=1)
        assert first.frames_corrupted != second.frames_corrupted or (
            first.delivered != second.delivered
        )

    def test_campaign_subset_runs(self):
        report = run_campaign(seed=0, smoke=True, only=["baseline"])
        assert [s["name"] for s in report["scenarios"]] == ["baseline"]
        assert report["summary"] == {
            "total": 1,
            "passed": 1,
            "failed": 0,
            "failed_scenarios": [],
        }

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            run_campaign(seed=0, smoke=True, only=["nope"])


class TestNegativeControls:
    """Remove a protection; the matching invariant must fire."""

    def test_unguarded_replay_trips_at_most_once(self):
        unguarded = replace(_scenario("replay"), replay_guard=0)
        _result, violations = run_scenario(unguarded, seed=0)
        assert any(v.startswith("at_most_once") for v in violations)

    def test_unreachable_goodput_floor_trips_goodput(self):
        greedy = replace(_scenario("corruption"), min_goodput=1.0)
        _result, violations = run_scenario(greedy, seed=0)
        assert any(v.startswith("goodput") for v in violations)

    def test_overstrict_reasons_trip_allowed_reasons(self):
        strict = replace(_scenario("corruption"), allowed_reasons=())
        _result, violations = run_scenario(strict, seed=0)
        assert any(v.startswith("allowed_reasons") for v in violations)

    def test_impossible_recovery_bound_trips_recovery(self):
        scenario = Scenario(
            name="reboot_strict",
            description="reboot with a zero-rejection recovery bound "
            "under corruption (some rejections are inevitable)",
            datagrams=SMOKE_DATAGRAMS,
            conditions=_scenario("corruption").conditions,
            faults=(FlushSoftState(at=0.4, target="receiver"),),
            min_goodput=0.0,
            recovery_bound=-1,
            allowed_reasons=None,
        )
        _result, violations = run_scenario(scenario, seed=0)
        assert any(v.startswith("recovery") for v in violations)


class TestScaling:
    def test_smoke_tier_is_a_scaled_subset(self):
        full = {s.name: s for s in build_matrix(smoke=False)}
        for scenario in build_matrix(smoke=True):
            assert scenario.datagrams == SMOKE_DATAGRAMS
            assert scenario.faults == full[scenario.name].faults

    def test_scenario_names_unique(self):
        names = [s.name for s in build_matrix(smoke=False)]
        assert len(names) == len(set(names))
