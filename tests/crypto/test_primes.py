"""Primality and prime-generation tests."""

import random

import pytest

from repro.crypto.primes import generate_prime, generate_safe_prime, is_probable_prime


class TestIsProbablePrime:
    def test_small_primes(self):
        for p in (2, 3, 5, 7, 11, 13, 97, 101, 199):
            assert is_probable_prime(p)

    def test_small_composites(self):
        for n in (0, 1, 4, 6, 9, 15, 91, 100, 561):  # 561 is a Carmichael number
            assert not is_probable_prime(n)

    def test_negative(self):
        assert not is_probable_prime(-7)

    def test_known_large_prime(self):
        assert is_probable_prime(2**127 - 1)  # Mersenne prime M127

    def test_known_large_composite(self):
        assert not is_probable_prime(2**128 - 1)

    def test_product_of_two_primes(self):
        assert not is_probable_prime((2**31 - 1) * (2**61 - 1))


class TestGeneratePrime:
    @pytest.mark.parametrize("bits", [8, 16, 32, 64, 128])
    def test_bit_length_exact(self, bits):
        p = generate_prime(bits, random.Random(bits))
        assert p.bit_length() == bits
        assert is_probable_prime(p)

    def test_deterministic(self):
        a = generate_prime(64, random.Random(5))
        b = generate_prime(64, random.Random(5))
        assert a == b

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            generate_prime(2, random.Random(0))


class TestGenerateSafePrime:
    def test_safe_prime_structure(self):
        p = generate_safe_prime(32, random.Random(11))
        assert is_probable_prime(p)
        assert is_probable_prime((p - 1) // 2)
        assert p.bit_length() == 32

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            generate_safe_prime(3, random.Random(0))
