"""DES block cipher tests: FIPS vectors, involution, key sensitivity."""

import pytest

from repro.crypto.des import BLOCK_SIZE, DES


class TestKnownVectors:
    def test_classic_vector(self):
        # The canonical worked example (Stallings / FIPS test).
        cipher = DES(bytes.fromhex("133457799BBCDFF1"))
        ciphertext = cipher.encrypt_block(bytes.fromhex("0123456789ABCDEF"))
        assert ciphertext == bytes.fromhex("85E813540F0AB405")

    def test_weak_key_vector(self):
        cipher = DES(bytes.fromhex("0E329232EA6D0D73"))
        ciphertext = cipher.encrypt_block(bytes.fromhex("8787878787878787"))
        assert ciphertext == bytes.fromhex("0000000000000000")

    def test_all_zero_key_and_block(self):
        cipher = DES(bytes(8))
        assert cipher.encrypt_block(bytes(8)) == bytes.fromhex("8CA64DE9C1B123A7")

    def test_all_ones(self):
        cipher = DES(b"\xff" * 8)
        assert cipher.encrypt_block(b"\xff" * 8) == bytes.fromhex("7359B2163E4EDC58")


class TestRoundTrip:
    def test_decrypt_inverts_encrypt(self):
        cipher = DES(b"\x01\x23\x45\x67\x89\xab\xcd\xef")
        block = b"datagram"
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block

    def test_many_blocks_roundtrip(self):
        cipher = DES(b"8bytekey")
        for i in range(64):
            block = bytes([(i * 17 + j) & 0xFF for j in range(8)])
            assert cipher.decrypt_block(cipher.encrypt_block(block)) == block

    def test_parity_bits_ignored(self):
        # Keys differing only in parity (LSB of each byte) are equivalent.
        key_a = bytes.fromhex("133457799BBCDFF1")
        key_b = bytes(b & 0xFE for b in key_a)
        block = b"\x00" * 8
        assert DES(key_a).encrypt_block(block) == DES(key_b).encrypt_block(block)


class TestSensitivity:
    def test_different_keys_differ(self):
        block = b"\x00" * 8
        a = DES(b"\x02" + b"\x00" * 7).encrypt_block(block)
        b = DES(b"\x04" + b"\x00" * 7).encrypt_block(block)
        assert a != b

    def test_avalanche_in_plaintext(self):
        cipher = DES(b"\x13\x34\x57\x79\x9b\xbc\xdf\xf1")
        a = cipher.encrypt_block(bytes(8))
        b = cipher.encrypt_block(b"\x80" + bytes(7))
        # A single flipped input bit should change many output bits.
        diff = sum(bin(x ^ y).count("1") for x, y in zip(a, b))
        assert diff > 16


class TestValidation:
    def test_rejects_short_key(self):
        with pytest.raises(ValueError):
            DES(b"short")

    def test_rejects_long_key(self):
        with pytest.raises(ValueError):
            DES(b"ninebytes")

    def test_rejects_wrong_block_size(self):
        cipher = DES(bytes(8))
        with pytest.raises(ValueError):
            cipher.encrypt_block(b"tiny")
        with pytest.raises(ValueError):
            cipher.decrypt_block(b"way too long!")

    def test_block_size_constant(self):
        assert BLOCK_SIZE == 8


class TestReferenceImplementation:
    """The retained FIPS 46 spec implementation (``des.reference``)."""

    def test_importable_from_fast_module(self):
        from repro.crypto import des

        assert des.reference.DES is not DES
        assert des.reference.BLOCK_SIZE == BLOCK_SIZE

    def test_reference_passes_fips_vectors(self):
        from repro.crypto.des_reference import DES as RefDES

        cases = [
            ("133457799BBCDFF1", "0123456789ABCDEF", "85E813540F0AB405"),
            ("0E329232EA6D0D73", "8787878787878787", "0000000000000000"),
            ("0000000000000000", "0000000000000000", "8CA64DE9C1B123A7"),
            ("FFFFFFFFFFFFFFFF", "FFFFFFFFFFFFFFFF", "7359B2163E4EDC58"),
        ]
        for key, plaintext, ciphertext in cases:
            cipher = RefDES(bytes.fromhex(key))
            assert cipher.encrypt_block(bytes.fromhex(plaintext)) == bytes.fromhex(
                ciphertext
            )
            assert cipher.decrypt_block(bytes.fromhex(ciphertext)) == bytes.fromhex(
                plaintext
            )

    def test_fast_kernel_matches_reference_randomized(self):
        # The differential oracle: table-driven kernel == per-bit spec
        # walk, both directions, across random keys and blocks.
        import random

        from repro.crypto.des_reference import DES as RefDES

        rng = random.Random(0xDE5)
        for _ in range(40):
            key = rng.randbytes(8)
            fast, ref = DES(key), RefDES(key)
            for _ in range(4):
                block = rng.randbytes(8)
                assert fast.encrypt_block(block) == ref.encrypt_block(block)
                assert fast.decrypt_block(block) == ref.decrypt_block(block)


class TestScheduleCounter:
    def test_schedule_built_once_per_instance(self):
        before = DES.schedule_builds
        cipher = DES(b"\x13\x34\x57\x79\x9b\xbc\xdf\xf1")
        assert DES.schedule_builds == before + 1
        # Using the cipher -- either direction -- builds nothing further.
        for _ in range(10):
            cipher.encrypt_block(bytes(8))
            cipher.decrypt_block(bytes(8))
        assert DES.schedule_builds == before + 1
