"""Diffie-Hellman tests: agreement, group hygiene, degenerate values."""

import random

import pytest

from repro.crypto.dh import DHGroup, DHPrivateKey, WELL_KNOWN_GROUPS
from repro.crypto.primes import is_probable_prime


@pytest.fixture
def group():
    return WELL_KNOWN_GROUPS["TEST128"]


class TestAgreement:
    def test_both_sides_agree(self, group):
        rng = random.Random(1)
        s = DHPrivateKey.generate(group, rng)
        d = DHPrivateKey.generate(group, rng)
        assert s.agree(d.public) == d.agree(s.public)

    def test_pairwise_keys_differ(self, group):
        rng = random.Random(2)
        a = DHPrivateKey.generate(group, rng)
        b = DHPrivateKey.generate(group, rng)
        c = DHPrivateKey.generate(group, rng)
        assert a.agree(b.public) != a.agree(c.public)

    def test_shared_secret_fixed_width(self, group):
        rng = random.Random(3)
        a = DHPrivateKey.generate(group, rng)
        b = DHPrivateKey.generate(group, rng)
        assert len(a.agree(b.public)) == group.key_bytes

    def test_deterministic_generation(self, group):
        a = DHPrivateKey.generate(group, random.Random(42))
        b = DHPrivateKey.generate(group, random.Random(42))
        assert a.private == b.private and a.public == b.public


class TestGroups:
    def test_test_groups_are_safe_primes(self):
        for name in ("TEST128", "TEST256"):
            p = WELL_KNOWN_GROUPS[name].p
            assert is_probable_prime(p)
            assert is_probable_prime((p - 1) // 2)

    def test_oakley_groups_present(self):
        assert WELL_KNOWN_GROUPS["OAKLEY1"].p.bit_length() == 768
        assert WELL_KNOWN_GROUPS["OAKLEY2"].p.bit_length() == 1024

    def test_oakley_primes_probable(self):
        # Light-touch: a few Miller-Rabin rounds over the published moduli.
        for name in ("OAKLEY1", "OAKLEY2"):
            assert is_probable_prime(WELL_KNOWN_GROUPS[name].p, rounds=4)

    def test_public_value_computation(self, group):
        assert group.public_value(1) == group.g
        assert group.public_value(2) == pow(group.g, 2, group.p)


class TestDegenerateValues:
    @pytest.mark.parametrize("bad", [0, 1])
    def test_rejects_small_degenerate_publics(self, group, bad):
        rng = random.Random(4)
        key = DHPrivateKey.generate(group, rng)
        with pytest.raises(ValueError):
            key.agree(bad)

    def test_rejects_p_minus_one(self, group):
        rng = random.Random(5)
        key = DHPrivateKey.generate(group, rng)
        with pytest.raises(ValueError):
            key.agree(group.p - 1)

    def test_rejects_out_of_range(self, group):
        rng = random.Random(6)
        key = DHPrivateKey.generate(group, rng)
        with pytest.raises(ValueError):
            key.agree(group.p + 5)

    def test_rejects_bad_private_value(self, group):
        with pytest.raises(ValueError):
            DHPrivateKey(group=group, private=1)
        with pytest.raises(ValueError):
            DHPrivateKey(group=group, private=group.p)
