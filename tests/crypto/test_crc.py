"""CRC-32 and cache-index hash tests."""

import zlib

import pytest

from repro.crypto.crc import CacheIndexHash, Crc32Hash, ModuloHash, XorFoldHash, crc32


class TestCrc32:
    @pytest.mark.parametrize(
        "data",
        [b"", b"a", b"123456789", b"flow security", bytes(range(256)) * 3],
    )
    def test_matches_zlib(self, data):
        assert crc32(data) == zlib.crc32(data)

    def test_check_value(self):
        # The standard CRC-32 check value.
        assert crc32(b"123456789") == 0xCBF43926

    def test_incremental(self):
        whole = crc32(b"hello world")
        partial = crc32(b" world", crc32(b"hello"))
        assert whole == partial


class TestIndexHashes:
    @pytest.mark.parametrize("strategy", [ModuloHash(), XorFoldHash(), Crc32Hash()])
    def test_index_in_range(self, strategy):
        for size in (1, 2, 7, 32, 100):
            for i in range(50):
                key = i.to_bytes(8, "big")
                assert 0 <= strategy.index(key, size) < size

    @pytest.mark.parametrize("strategy", [ModuloHash(), XorFoldHash(), Crc32Hash()])
    def test_deterministic(self, strategy):
        key = b"\x01\x02\x03\x04\x05"
        assert strategy.index(key, 64) == strategy.index(key, 64)

    @pytest.mark.parametrize("strategy", [ModuloHash(), XorFoldHash(), Crc32Hash()])
    def test_rejects_bad_size(self, strategy):
        with pytest.raises(ValueError):
            strategy.index(b"key", 0)

    def test_modulo_correlated_inputs_collide(self):
        # Sequential sfls spaced by the table size land in one slot under
        # modulo -- the weakness the paper calls out.
        size = 32
        strategy = ModuloHash()
        slots = {strategy.index((i * size).to_bytes(8, "big"), size) for i in range(20)}
        assert len(slots) == 1

    def test_crc32_spreads_correlated_inputs(self):
        # The same adversarial sequence spreads under CRC-32.
        size = 32
        strategy = Crc32Hash()
        slots = {strategy.index((i * size).to_bytes(8, "big"), size) for i in range(20)}
        assert len(slots) > 10

    def test_crc32_spreads_sequential_sfls(self):
        # Sequential sfls with the cache's composite (sfl | D | S) key:
        # CRC-32's linearity leaves some structure, but coverage is far
        # better than modulo's single slot.
        size = 64
        strategy = Crc32Hash()
        suffix = bytes([10, 0, 0, 2, 10, 0, 0, 1])
        slots = [
            strategy.index(i.to_bytes(8, "big") + suffix, size) for i in range(64)
        ]
        assert len(set(slots)) >= 24

    def test_abstract_raises(self):
        with pytest.raises(NotImplementedError):
            CacheIndexHash().index(b"x", 4)
