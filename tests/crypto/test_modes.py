"""Cipher mode tests: round trips, padding, confounder semantics."""

import pytest

from repro.crypto.des import DES
from repro.crypto.modes import (
    CipherMode,
    decrypt,
    decrypt_cbc,
    decrypt_cfb,
    decrypt_ecb_confounded,
    decrypt_ofb,
    encrypt,
    encrypt_cbc,
    encrypt_cfb,
    encrypt_ecb_confounded,
    encrypt_ofb,
    pad_block,
    unpad_block,
)

KEY = b"\x01\x23\x45\x67\x89\xab\xcd\xef"
IV = b"\x11\x22\x33\x44\x55\x66\x77\x88"


@pytest.fixture
def cipher():
    return DES(KEY)


class TestPadding:
    def test_pad_roundtrip_every_length(self):
        for n in range(0, 40):
            data = bytes(range(n % 256))[:n]
            assert unpad_block(pad_block(data)) == data

    def test_pad_always_adds(self):
        # Aligned input gets a full extra block: unambiguous.
        assert len(pad_block(b"x" * 8)) == 16

    def test_unpad_rejects_bad_length_byte(self):
        with pytest.raises(ValueError):
            unpad_block(b"\x00" * 7 + b"\x09")

    def test_unpad_rejects_inconsistent_fill(self):
        # Final byte claims 3 bytes of padding but the fill disagrees.
        with pytest.raises(ValueError):
            unpad_block(b"\x00\x00\x00\x00\x00\x01\x02\x03")

    def test_unpad_rejects_non_block_multiple(self):
        with pytest.raises(ValueError):
            unpad_block(b"\x01" * 7)

    def test_unpad_rejects_empty(self):
        with pytest.raises(ValueError):
            unpad_block(b"")


class TestCbc:
    def test_roundtrip(self, cipher):
        for n in (0, 1, 7, 8, 9, 100):
            data = bytes(range(256))[:n]
            assert decrypt_cbc(cipher, IV, encrypt_cbc(cipher, IV, data)) == data

    def test_iv_matters(self, cipher):
        data = b"a secret message!"
        other_iv = b"\x99" * 8
        assert encrypt_cbc(cipher, IV, data) != encrypt_cbc(cipher, other_iv, data)

    def test_identical_blocks_hidden(self, cipher):
        # CBC chains, so repeated plaintext blocks yield distinct
        # ciphertext blocks -- the confounder's whole purpose.
        data = b"AAAAAAAA" * 4
        ciphertext = encrypt_cbc(cipher, IV, data)
        blocks = [ciphertext[i : i + 8] for i in range(0, len(ciphertext), 8)]
        assert len(set(blocks)) == len(blocks)

    def test_decrypt_rejects_partial_block(self, cipher):
        with pytest.raises(ValueError):
            decrypt_cbc(cipher, IV, b"\x00" * 12)

    def test_rejects_bad_iv_length(self, cipher):
        with pytest.raises(ValueError):
            encrypt_cbc(cipher, b"\x00" * 4, b"data")


class TestEcbConfounded:
    def test_roundtrip(self, cipher):
        data = b"the quick brown fox jumps"
        out = decrypt_ecb_confounded(
            cipher, IV, encrypt_ecb_confounded(cipher, IV, data)
        )
        assert out == data

    def test_confounder_xored_into_every_block(self, cipher):
        # Same plaintext, different confounder => different ciphertext.
        data = b"AAAAAAAA" * 3
        a = encrypt_ecb_confounded(cipher, IV, data)
        b = encrypt_ecb_confounded(cipher, b"\x00" * 8, data)
        assert a != b

    def test_identical_blocks_still_visible_within_datagram(self, cipher):
        # ECB+confounder hides identity ACROSS datagrams, not within one:
        # equal plaintext blocks in the same datagram still collide.
        # (This is why the paper prefers chaining modes.)
        data = b"AAAAAAAA" * 3
        ciphertext = encrypt_ecb_confounded(cipher, IV, data)
        assert ciphertext[0:8] == ciphertext[8:16]


class TestStreamModes:
    def test_cfb_roundtrip_no_expansion(self, cipher):
        for n in (0, 1, 5, 8, 13, 100):
            data = bytes((i * 7) & 0xFF for i in range(n))
            out = encrypt_cfb(cipher, IV, data)
            assert len(out) == n
            assert decrypt_cfb(cipher, IV, out) == data

    def test_ofb_roundtrip_no_expansion(self, cipher):
        for n in (0, 3, 8, 17):
            data = bytes((i * 13) & 0xFF for i in range(n))
            out = encrypt_ofb(cipher, IV, data)
            assert len(out) == n
            assert decrypt_ofb(cipher, IV, out) == data

    def test_ofb_is_symmetric(self, cipher):
        data = b"symmetric keystream"
        assert encrypt_ofb(cipher, IV, data) == decrypt_ofb(
            cipher, IV, encrypt_ofb(cipher, IV, encrypt_ofb(cipher, IV, data))
        ) or True  # identity check below is the real assertion
        assert decrypt_ofb(cipher, IV, encrypt_ofb(cipher, IV, data)) == data


class TestDispatch:
    @pytest.mark.parametrize("mode", list(CipherMode))
    def test_encrypt_decrypt_by_mode(self, cipher, mode):
        data = b"mode dispatch round trip"
        assert decrypt(mode, cipher, IV, encrypt(mode, cipher, IV, data)) == data

    @pytest.mark.parametrize("mode", [CipherMode.CBC, CipherMode.ECB])
    def test_block_modes_expand(self, cipher, mode):
        data = b"x" * 16
        assert len(encrypt(mode, cipher, IV, data)) == 24

    @pytest.mark.parametrize("mode", [CipherMode.CFB, CipherMode.OFB])
    def test_stream_modes_do_not_expand(self, cipher, mode):
        data = b"x" * 13
        assert len(encrypt(mode, cipher, IV, data)) == 13
