"""MD5 tests: RFC 1321 suite, streaming, hashlib cross-check."""

import hashlib

import pytest

from repro.crypto.md5 import MD5, md5

# The RFC 1321 appendix test suite.
RFC1321_VECTORS = [
    (b"", "d41d8cd98f00b204e9800998ecf8427e"),
    (b"a", "0cc175b9c0f1b6a831c399e269772661"),
    (b"abc", "900150983cd24fb0d6963f7d28e17f72"),
    (b"message digest", "f96b697d7cb7938d525a2f31aaf161d0"),
    (b"abcdefghijklmnopqrstuvwxyz", "c3fcd3d76192e4007dfb496cca67e13b"),
    (
        b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
        "d174ab98d277d9f5a5611c2c9f419d9f",
    ),
    (
        b"1234567890" * 8,
        "57edf4a22be3c955ac49da2e2107b67a",
    ),
]


class TestRfcVectors:
    @pytest.mark.parametrize("message,expected", RFC1321_VECTORS)
    def test_vector(self, message, expected):
        assert md5(message).hex() == expected


class TestAgainstHashlib:
    @pytest.mark.parametrize("size", [0, 1, 55, 56, 57, 63, 64, 65, 127, 128, 1000, 10000])
    def test_boundary_lengths(self, size):
        data = bytes(i & 0xFF for i in range(size))
        assert md5(data) == hashlib.md5(data).digest()


class TestStreaming:
    def test_incremental_equals_oneshot(self):
        data = b"the quick brown fox jumps over the lazy dog" * 37
        h = MD5()
        for i in range(0, len(data), 7):
            h.update(data[i : i + 7])
        assert h.digest() == md5(data)

    def test_digest_does_not_finalize(self):
        h = MD5(b"partial")
        first = h.digest()
        assert h.digest() == first  # repeatable
        h.update(b" more")
        assert h.digest() == md5(b"partial more")

    def test_copy_is_independent(self):
        h = MD5(b"shared prefix ")
        clone = h.copy()
        h.update(b"left")
        clone.update(b"right")
        assert h.digest() == md5(b"shared prefix left")
        assert clone.digest() == md5(b"shared prefix right")

    def test_hexdigest(self):
        assert MD5(b"abc").hexdigest() == "900150983cd24fb0d6963f7d28e17f72"

    def test_object_protocol_attributes(self):
        h = MD5()
        assert h.digest_size == 16
        assert h.block_size == 64
        assert h.name == "md5"

    def test_random_odd_chunks_match_hashlib(self):
        # Streaming in randomly sized (often buffer-misaligned) chunks,
        # with interleaved non-finalizing digest() calls, must agree
        # with hashlib at every step.  This schedule would have caught
        # the old digest() padding bug (clone mutation via repeated
        # update(b"\x00") double-counting into the length field).
        import random

        rng = random.Random(1321)
        for _ in range(10):
            ours, theirs = MD5(), hashlib.md5()
            for _ in range(rng.randrange(1, 20)):
                chunk = rng.randbytes(rng.randrange(0, 200))
                ours.update(chunk)
                theirs.update(chunk)
                if rng.random() < 0.3:
                    assert ours.digest() == theirs.digest()
            assert ours.digest() == theirs.digest()
