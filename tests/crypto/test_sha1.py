"""SHA-1 tests: FIPS 180 vectors, streaming, hashlib cross-check."""

import hashlib

import pytest

from repro.crypto.sha1 import SHA1, sha1

FIPS_VECTORS = [
    (b"abc", "a9993e364706816aba3e25717850c26c9cd0d89d"),
    (
        b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
        "84983e441c3bd26ebaae4aa1f95129e5e54670f1",
    ),
    (b"", "da39a3ee5e6b4b0d3255bfef95601890afd80709"),
]


class TestFipsVectors:
    @pytest.mark.parametrize("message,expected", FIPS_VECTORS)
    def test_vector(self, message, expected):
        assert sha1(message).hex() == expected

    def test_million_a(self):
        h = SHA1()
        for _ in range(1000):
            h.update(b"a" * 1000)
        assert h.hexdigest() == "34aa973cd4c4daa4f61eeb2bdbad27316534016f"


class TestAgainstHashlib:
    @pytest.mark.parametrize("size", [0, 1, 55, 56, 57, 63, 64, 65, 128, 1000])
    def test_boundary_lengths(self, size):
        data = bytes((i * 3) & 0xFF for i in range(size))
        assert sha1(data) == hashlib.sha1(data).digest()


class TestStreaming:
    def test_incremental_equals_oneshot(self):
        data = b"datagram security via flows" * 41
        h = SHA1()
        for i in range(0, len(data), 13):
            h.update(data[i : i + 13])
        assert h.digest() == sha1(data)

    def test_copy_is_independent(self):
        h = SHA1(b"prefix-")
        clone = h.copy()
        h.update(b"a")
        clone.update(b"b")
        assert h.digest() == sha1(b"prefix-a")
        assert clone.digest() == sha1(b"prefix-b")

    def test_digest_size(self):
        assert SHA1().digest_size == 20
        assert len(sha1(b"x")) == 20

    def test_random_odd_chunks_match_hashlib(self):
        # Same schedule as the MD5 version: odd-sized chunks plus
        # interleaved non-finalizing digest() calls against hashlib.
        import random

        rng = random.Random(180_1)
        for _ in range(10):
            ours, theirs = SHA1(), hashlib.sha1()
            for _ in range(rng.randrange(1, 20)):
                chunk = rng.randbytes(rng.randrange(0, 200))
                ours.update(chunk)
                theirs.update(chunk)
                if rng.random() < 0.3:
                    assert ours.digest() == theirs.digest()
            assert ours.digest() == theirs.digest()
