"""MAC construction tests: RFC 2104 vectors, keyed prefix, truncation."""

import hashlib
import hmac as stdlib_hmac

import pytest

from repro.crypto.mac import (
    constant_time_equal,
    hmac_md5,
    hmac_sha1,
    keyed_md5,
    keyed_sha1,
    truncate_mac,
)
from repro.crypto.md5 import md5
from repro.crypto.sha1 import sha1


class TestHmacMd5Rfc2104:
    def test_vector_1(self):
        # RFC 2104 test case 1.
        out = hmac_md5(b"\x0b" * 16, b"Hi There")
        assert out.hex() == "9294727a3638bb1c13f48ef8158bfc9d"

    def test_vector_2(self):
        out = hmac_md5(b"Jefe", b"what do ya want for nothing?")
        assert out.hex() == "750c783e6ab0b503eaa86e310a5db738"

    def test_vector_3(self):
        out = hmac_md5(b"\xaa" * 16, b"\xdd" * 50)
        assert out.hex() == "56be34521d144c88dbb8c733f0e8b3f6"


class TestAgainstStdlib:
    @pytest.mark.parametrize("key_len", [0, 1, 16, 63, 64, 65, 200])
    def test_hmac_md5_matches(self, key_len):
        key = bytes(range(key_len % 256))[:key_len]
        msg = b"flow-based datagram security"
        assert hmac_md5(key, msg) == stdlib_hmac.new(key, msg, "md5").digest()

    @pytest.mark.parametrize("key_len", [0, 16, 64, 100])
    def test_hmac_sha1_matches(self, key_len):
        key = b"\x5c" * key_len
        msg = b"zero message keying"
        assert hmac_sha1(key, msg) == stdlib_hmac.new(key, msg, "sha1").digest()


class TestKeyedPrefix:
    def test_keyed_md5_definition(self):
        assert keyed_md5(b"key", b"data") == md5(b"keydata")

    def test_keyed_sha1_definition(self):
        assert keyed_sha1(b"key", b"data") == sha1(b"keydata")

    def test_key_changes_mac(self):
        assert keyed_md5(b"k1", b"data") != keyed_md5(b"k2", b"data")

    def test_data_changes_mac(self):
        assert keyed_md5(b"k", b"d1") != keyed_md5(b"k", b"d2")


class TestTruncation:
    def test_truncate_keeps_prefix(self):
        mac = bytes(range(16))
        assert truncate_mac(mac, 64) == mac[:8]

    def test_truncate_full_width_is_identity(self):
        mac = bytes(range(16))
        assert truncate_mac(mac, 128) == mac

    def test_rejects_non_byte_aligned(self):
        with pytest.raises(ValueError):
            truncate_mac(bytes(16), 60)

    def test_rejects_over_length(self):
        with pytest.raises(ValueError):
            truncate_mac(bytes(16), 256)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            truncate_mac(bytes(16), 0)


class TestConstantTimeEqual:
    def test_equal(self):
        assert constant_time_equal(b"same-bytes", b"same-bytes")

    def test_unequal_same_length(self):
        assert not constant_time_equal(b"same-bytes", b"same-bytez")

    def test_unequal_lengths(self):
        assert not constant_time_equal(b"short", b"longer-value")

    def test_empty(self):
        assert constant_time_equal(b"", b"")

    def test_empty_vs_nonempty(self):
        assert not constant_time_equal(b"", b"x")
        assert not constant_time_equal(b"x", b"")

    def test_prefix_is_not_equal(self):
        # A truncated MAC must not compare equal to the full one.
        mac = bytes(range(16))
        assert not constant_time_equal(mac[:8], mac)
        assert not constant_time_equal(mac, mac[:8])

    @pytest.mark.parametrize("position", range(16))
    @pytest.mark.parametrize("bit", range(8))
    def test_single_bit_difference_every_position(self, position, bit):
        # Every single-bit flip, in every byte position of a 128-bit
        # MAC, must be caught -- the accumulator must not wrap or mask.
        mac = bytes(range(16))
        flipped = bytearray(mac)
        flipped[position] ^= 1 << bit
        assert not constant_time_equal(mac, bytes(flipped))
        assert not constant_time_equal(bytes(flipped), mac)

    def test_high_bit_only_difference(self):
        # Regression guard for implementations comparing via sums: the
        # 0x80 bit alone must flip the verdict.
        assert not constant_time_equal(b"\x00" * 16, b"\x80" + b"\x00" * 15)


class TestDesCbcMac:
    def test_deterministic(self):
        from repro.crypto.mac import des_cbc_mac

        assert des_cbc_mac(b"k" * 8, b"message") == des_cbc_mac(b"k" * 8, b"message")

    def test_tag_size(self):
        from repro.crypto.mac import des_cbc_mac

        assert len(des_cbc_mac(b"k" * 8, b"x" * 100)) == 8

    def test_key_and_data_sensitivity(self):
        from repro.crypto.mac import des_cbc_mac

        base = des_cbc_mac(b"k" * 8, b"data")
        # (keys must differ outside DES's ignored parity bits)
        assert des_cbc_mac(b"m" * 8, b"data") != base
        assert des_cbc_mac(b"k" * 8, b"datb") != base

    def test_length_prefix_blocks_extension(self):
        from repro.crypto.mac import des_cbc_mac

        # Same bytes, different claimed split: tags differ because the
        # length is bound into the first block.
        assert des_cbc_mac(b"k" * 8, b"ab") != des_cbc_mac(b"k" * 8, b"ab\x06\x06\x06\x06\x06\x06")

    def test_long_keys_truncated(self):
        from repro.crypto.mac import des_cbc_mac

        assert des_cbc_mac(b"k" * 16, b"m") == des_cbc_mac(b"k" * 8, b"m")

    def test_short_key_rejected(self):
        from repro.crypto.mac import des_cbc_mac

        with pytest.raises(ValueError):
            des_cbc_mac(b"short", b"m")
