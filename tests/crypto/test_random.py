"""Random generator tests: determinism, distribution sanity, BBS structure."""

import pytest

from repro.crypto.random import BlumBlumShub, CounterRandom, LinearCongruential


class TestLinearCongruential:
    def test_deterministic(self):
        a = LinearCongruential(42)
        b = LinearCongruential(42)
        assert [a.next_u32() for _ in range(10)] == [b.next_u32() for _ in range(10)]

    def test_seeds_differ(self):
        a = LinearCongruential(1)
        b = LinearCongruential(2)
        assert [a.next_u32() for _ in range(4)] != [b.next_u32() for _ in range(4)]

    def test_next_bytes_length(self):
        gen = LinearCongruential(3)
        for n in (0, 1, 4, 5, 17):
            assert len(gen.next_bytes(n)) == n

    def test_range(self):
        gen = LinearCongruential(4)
        for _ in range(100):
            assert 0 <= gen.next_u32() < 2**32

    def test_rough_uniformity(self):
        # Statistical randomness is all the paper asks of confounders.
        gen = LinearCongruential(5)
        values = [gen.next_u32() for _ in range(2000)]
        high = sum(1 for v in values if v >= 2**31)
        assert 800 < high < 1200

    def test_no_short_cycles(self):
        gen = LinearCongruential(6)
        seen = {gen.next_u32() for _ in range(5000)}
        assert len(seen) > 4990


class TestBlumBlumShub:
    def test_deterministic(self):
        a = BlumBlumShub(seed=9, bits=64)
        b = BlumBlumShub(seed=9, bits=64)
        assert a.next_bytes(8) == b.next_bytes(8)

    def test_bits_are_bits(self):
        gen = BlumBlumShub(seed=10, bits=64)
        for _ in range(64):
            assert gen.next_bit() in (0, 1)

    def test_bytes_length(self):
        gen = BlumBlumShub(seed=11, bits=64)
        assert len(gen.next_bytes(5)) == 5

    def test_modulus_is_blum(self):
        gen = BlumBlumShub(seed=12, bits=64)
        # The modulus must be odd and composite (p*q).
        assert gen._n % 2 == 1
        assert gen._n.bit_length() >= 60

    def test_bit_balance(self):
        gen = BlumBlumShub(seed=13, bits=64)
        ones = sum(gen.next_bit() for _ in range(800))
        assert 300 < ones < 500


class TestCounterRandom:
    def test_deterministic(self):
        a = CounterRandom(b"seed")
        b = CounterRandom(b"seed")
        assert a.next_bytes(100) == b.next_bytes(100)

    def test_stream_continuity(self):
        a = CounterRandom(b"seed")
        b = CounterRandom(b"seed")
        whole = a.next_bytes(64)
        pieces = b.next_bytes(10) + b.next_bytes(30) + b.next_bytes(24)
        assert whole == pieces

    def test_different_seeds(self):
        assert CounterRandom(b"x").next_bytes(16) != CounterRandom(b"y").next_bytes(16)

    def test_next_u32(self):
        gen = CounterRandom(b"z")
        assert 0 <= gen.next_u32() < 2**32
