"""Vector lane kernels: bit-identity against the scalar reference.

The contract of :mod:`repro.crypto.vector` is that every kernel is a
pure speed transform: for any batch, the per-lane outputs equal the
scalar kernels byte for byte.  These are the deterministic edge-case
tests; the random-shape sweep lives in
``tests/property/test_vector_props.py``.
"""

import hashlib
import random

import pytest

np = pytest.importorskip("numpy")

from repro.core.config import AlgorithmSuite
from repro.core.header import FBSHeader
from repro.crypto import modes
from repro.crypto.des import DES, _key_schedule, _raw_schedule
from repro.crypto.mac import keyed_md5
from repro.crypto.vector import (
    cbc_decrypt_many,
    cbc_encrypt_many,
    encode_headers_many,
    keyed_md5_many,
    md5_many,
)

# Every MD5 padding boundary: around one block (55/56/57), around the
# 64-byte mark, and around two blocks, plus empty and long.
MD5_EDGE_SIZES = [0, 1, 54, 55, 56, 57, 63, 64, 65, 119, 120, 121, 128, 1000]

# CBC edge sizes: empty (pads to one block), sub-block, exact blocks
# (always-pad appends a full block), and straddles.
CBC_EDGE_SIZES = [0, 1, 7, 8, 9, 15, 16, 17, 63, 64, 100, 255, 256, 1000]


def rng():
    return random.Random(0xFB5)


class TestVectorMd5:
    def test_edge_sizes_match_hashlib(self):
        r = rng()
        messages = [r.randbytes(size) for size in MD5_EDGE_SIZES]
        expected = [hashlib.md5(m).digest() for m in messages]
        assert md5_many(messages) == expected

    def test_keyed_md5_matches_scalar(self):
        r = rng()
        messages = [r.randbytes(size) for size in MD5_EDGE_SIZES]
        keys = [r.randbytes(16) for _ in messages]
        expected = [keyed_md5(k, m) for k, m in zip(keys, messages)]
        assert keyed_md5_many(keys, messages) == expected

    def test_single_lane_batch(self):
        assert md5_many([b"abc"]) == [hashlib.md5(b"abc").digest()]

    def test_empty_batch(self):
        assert md5_many([]) == []
        assert keyed_md5_many([], []) == []

    def test_mismatched_keys_raise(self):
        with pytest.raises(ValueError):
            keyed_md5_many([b"k"], [b"a", b"b"])

    def test_duplicate_lanes_get_identical_digests(self):
        digests = md5_many([b"same"] * 5 + [b"other"])
        assert len(set(digests[:5])) == 1
        assert digests[5] != digests[0]


class TestVectorDesCbc:
    def _lanes(self, sizes, n_keys=4):
        r = rng()
        ciphers = [DES(r.randbytes(8)) for _ in range(n_keys)]
        lane_ciphers = [ciphers[i % n_keys] for i in range(len(sizes))]
        ivs = [r.randbytes(8) for _ in sizes]
        plains = [r.randbytes(size) for size in sizes]
        return lane_ciphers, ivs, plains

    def test_encrypt_matches_scalar_mixed_sizes_and_keys(self):
        lane_ciphers, ivs, plains = self._lanes(CBC_EDGE_SIZES)
        expected = [
            modes.encrypt(modes.CipherMode.CBC, c, iv, p)
            for c, iv, p in zip(lane_ciphers, ivs, plains)
        ]
        assert cbc_encrypt_many(lane_ciphers, ivs, plains) == expected

    def test_decrypt_roundtrip(self):
        lane_ciphers, ivs, plains = self._lanes(CBC_EDGE_SIZES)
        wires = cbc_encrypt_many(lane_ciphers, ivs, plains)
        assert cbc_decrypt_many(lane_ciphers, ivs, wires) == plains

    def test_single_key_batch_broadcasts(self):
        lane_ciphers, ivs, plains = self._lanes(CBC_EDGE_SIZES, n_keys=1)
        expected = [
            modes.encrypt(modes.CipherMode.CBC, c, iv, p)
            for c, iv, p in zip(lane_ciphers, ivs, plains)
        ]
        assert cbc_encrypt_many(lane_ciphers, ivs, plains) == expected

    def test_corrupt_lanes_mirror_scalar_value_errors(self):
        lane_ciphers, ivs, plains = self._lanes(CBC_EDGE_SIZES)
        wires = cbc_encrypt_many(lane_ciphers, ivs, plains)
        # Last-byte flip (usually garbles padding), a truncation to a
        # non-block length, and an empty lane.
        wires[2] = wires[2][:-1] + bytes([wires[2][-1] ^ 1])
        wires[4] = wires[4][:-3]
        wires[6] = b""
        got = cbc_decrypt_many(lane_ciphers, ivs, wires)
        for i, wire in enumerate(wires):
            try:
                expected = modes.decrypt(
                    modes.CipherMode.CBC, lane_ciphers[i], ivs[i], wire
                )
            except ValueError:
                expected = None
            assert got[i] == expected

    def test_empty_batch(self):
        assert cbc_encrypt_many([], [], []) == []
        assert cbc_decrypt_many([], [], []) == []

    def test_mismatched_lanes_raise(self):
        cipher = DES(b"01234567")
        with pytest.raises(ValueError):
            cbc_encrypt_many([cipher], [b"\0" * 8], [b"a", b"b"])
        with pytest.raises(ValueError):
            cbc_decrypt_many([cipher], [], [b"x" * 8])


class TestRawSubkeySplit:
    """The schedule split backing the vector path (DES.raw_subkeys)."""

    def test_raw_chunks_reproduce_selected_schedule(self):
        # Folding each raw 6-bit chunk through the merged SP selection
        # must reproduce _key_schedule exactly -- this is the identity
        # that lets the vector path share the scalar schedule cache.
        from repro.crypto.des import _SPX

        r = rng()
        for _ in range(20):
            key = int.from_bytes(r.randbytes(8), "big")
            selected = _key_schedule(key)
            raw = _raw_schedule(key)
            rebuilt = tuple(
                tuple(_SPX[box][chunk] for box, chunk in enumerate(chunks))
                for chunks in raw
            )
            assert rebuilt == selected

    def test_raw_subkeys_cached_per_instance(self):
        cipher = DES(b"\x01" * 8)
        assert cipher.raw_subkeys is cipher.raw_subkeys


class TestVectorHeaderStamp:
    @pytest.mark.parametrize("carry", [False, True])
    def test_matches_fbsheader_encode(self, carry):
        r = rng()
        suite = AlgorithmSuite()
        n = 17
        sfls = [r.randrange(0, 2**64) for _ in range(n)]
        confounders = [r.randrange(0, 2**32) for _ in range(n)]
        macs = [r.randbytes(suite.mac_bytes) for _ in range(n)]
        timestamps = [r.randrange(0, 2**32) for _ in range(n)]
        got = encode_headers_many(
            sfls,
            confounders,
            macs,
            timestamps,
            suite.mac_bytes,
            suite_id=suite.suite_id if carry else None,
        )
        expected = [
            FBSHeader(
                sfl=sfls[i],
                confounder=confounders[i],
                mac=macs[i],
                timestamp=timestamps[i],
            ).encode(suite, carry_algorithm_id=carry)
            for i in range(n)
        ]
        assert got == expected

    def test_empty_batch(self):
        assert encode_headers_many([], [], [], [], 16) == []

    def test_mismatched_fields_raise(self):
        with pytest.raises(ValueError):
            encode_headers_many([1], [2, 3], [b"m" * 16], [4], 16)
