"""RSA signature tests: sign/verify round trip and tamper rejection."""

import random

import pytest

from repro.crypto.rsa import RSAKeyPair, RSAPublicKey, SignatureError


@pytest.fixture(scope="module")
def keypair():
    return RSAKeyPair.generate(512, random.Random(7))


class TestSignVerify:
    def test_roundtrip(self, keypair):
        message = b"certify: principal bob, public value 0x1234"
        signature = keypair.sign(message)
        keypair.public.verify(message, signature)  # does not raise

    def test_signature_length(self, keypair):
        signature = keypair.sign(b"m")
        assert len(signature) == keypair.public.size_bytes

    def test_deterministic(self, keypair):
        assert keypair.sign(b"same") == keypair.sign(b"same")

    def test_different_messages_different_signatures(self, keypair):
        assert keypair.sign(b"m1") != keypair.sign(b"m2")


class TestRejection:
    def test_rejects_tampered_message(self, keypair):
        signature = keypair.sign(b"original")
        with pytest.raises(SignatureError):
            keypair.public.verify(b"tampered", signature)

    def test_rejects_tampered_signature(self, keypair):
        signature = bytearray(keypair.sign(b"original"))
        signature[0] ^= 0x01
        with pytest.raises(SignatureError):
            keypair.public.verify(b"original", bytes(signature))

    def test_rejects_wrong_length_signature(self, keypair):
        with pytest.raises(SignatureError):
            keypair.public.verify(b"m", b"\x00" * 10)

    def test_rejects_foreign_key(self, keypair):
        other = RSAKeyPair.generate(512, random.Random(8))
        signature = other.sign(b"message")
        with pytest.raises(SignatureError):
            keypair.public.verify(b"message", signature)

    def test_rejects_out_of_range_signature(self, keypair):
        too_big = (keypair.public.n + 1).to_bytes(keypair.public.size_bytes, "big")
        with pytest.raises(SignatureError):
            keypair.public.verify(b"m", too_big)


class TestGeneration:
    def test_deterministic_from_seed(self):
        a = RSAKeyPair.generate(512, random.Random(9))
        b = RSAKeyPair.generate(512, random.Random(9))
        assert a.public == b.public

    def test_rejects_tiny_modulus(self):
        with pytest.raises(ValueError):
            RSAKeyPair.generate(128, random.Random(10))
