"""``python -m repro.obs``: exit codes and output shapes."""

import json
import os

from repro.obs import CacheHit, CacheMiss, DatagramAccepted, JsonlSink, Tracer
from repro.obs.cli import main

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


def write_trace(path):
    clock = [0.0]
    with JsonlSink(str(path)) as sink:
        tracer = Tracer(sink, now=lambda: clock[0])
        for i in range(3):
            clock[0] = float(i)
            tracer.emit(CacheHit(cache="TFKC"))
        tracer.emit(CacheMiss(cache="TFKC", kind="cold"))
        tracer.emit(DatagramAccepted(sfl=1, size=100))


def test_no_arguments_is_a_usage_error(capsys):
    assert main([]) == 2
    assert "summarize" in capsys.readouterr().err


def test_summarize_renders_cache_table(tmp_path, capsys):
    trace = tmp_path / "t.jsonl"
    write_trace(trace)
    assert main(["summarize", str(trace)]) == 0
    out = capsys.readouterr().out
    assert "records: 5" in out
    assert "TFKC" in out and "miss rate" in out
    assert "1 accepted" in out


def test_summarize_json_is_parseable(tmp_path, capsys):
    trace = tmp_path / "t.jsonl"
    write_trace(trace)
    assert main(["summarize", str(trace), "--json"]) == 0
    summary = json.loads(capsys.readouterr().out)
    assert summary["caches"]["TFKC"]["hits"] == 3
    assert summary["datagrams_accepted"] == 1


def test_summarize_missing_file_fails(tmp_path, capsys):
    assert main(["summarize", str(tmp_path / "absent.jsonl")]) == 1
    assert "error" in capsys.readouterr().err


def test_summarize_corrupt_file_fails(tmp_path, capsys):
    trace = tmp_path / "bad.jsonl"
    trace.write_text("not json\n")
    assert main(["summarize", str(trace)]) == 1
    assert "bad.jsonl:1" in capsys.readouterr().err


def test_check_docs_passes_on_this_repo(capsys):
    assert main(["check-docs", "--root", REPO_ROOT]) == 0
    assert "check-docs: ok" in capsys.readouterr().out


def test_check_docs_fails_on_empty_root(tmp_path, capsys):
    assert main(["check-docs", "--root", str(tmp_path)]) == 1
    assert "OBSERVABILITY.md" in capsys.readouterr().err


def test_selftest_passes(capsys):
    assert main(["--selftest"]) == 0
    assert "selftest: ok" in capsys.readouterr().out
