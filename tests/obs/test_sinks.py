"""Sinks and the tracer: buffering, JSONL round-trips, clock stamping."""

import io
import json

import pytest

from repro.obs import (
    NULL_TRACER,
    AggregatingSink,
    CacheHit,
    CacheMiss,
    DatagramAccepted,
    JsonlSink,
    NullSink,
    RingBufferSink,
    Tracer,
    event_from_dict,
    read_jsonl,
)


def emit_sample(sink, n=5):
    clock = [0.0]
    tracer = Tracer(sink, now=lambda: clock[0])
    for i in range(n):
        clock[0] = float(i)
        tracer.emit(CacheHit(cache="TFKC"))
    tracer.emit(CacheMiss(cache="RFKC", kind="cold"))
    tracer.emit(DatagramAccepted(sfl=9, size=64))


class TestNullSink:
    def test_disabled_so_emitters_skip_construction(self):
        assert NullSink.enabled is False
        assert NULL_TRACER.enabled is False

    def test_null_tracer_is_shared(self):
        assert isinstance(NULL_TRACER.sink, NullSink)


class TestTracer:
    def test_stamps_simulation_time(self):
        ring = RingBufferSink()
        clock = [0.0]
        tracer = Tracer(ring, now=lambda: clock[0])
        clock[0] = 42.5
        tracer.emit(CacheHit(cache="PVC"))
        assert ring.events[0].t == 42.5

    def test_default_clock_is_constant_zero(self):
        ring = RingBufferSink()
        Tracer(ring).emit(CacheHit(cache="PVC"))
        assert ring.events[0].t == 0.0

    def test_with_clock_keeps_the_sink(self):
        ring = RingBufferSink()
        base = Tracer(ring)
        shifted = base.with_clock(lambda: 7.0)
        shifted.emit(CacheHit(cache="MKC"))
        assert shifted.sink is ring
        assert ring.events[0].t == 7.0

    def test_enabled_mirrors_sink(self):
        assert Tracer(RingBufferSink()).enabled is True
        assert Tracer(NullSink()).enabled is False


class TestRingBufferSink:
    def test_keeps_most_recent_events(self):
        ring = RingBufferSink(capacity=3)
        emit_sample(ring, n=5)  # 5 hits + 1 miss + 1 accepted
        assert len(ring) == 3
        assert [type(e).__name__ for e in ring.events] == [
            "CacheHit",
            "CacheMiss",
            "DatagramAccepted",
        ]

    def test_of_type_filters(self):
        ring = RingBufferSink()
        emit_sample(ring, n=2)
        assert len(ring.of_type(CacheHit)) == 2
        assert len(ring.of_type(CacheMiss)) == 1

    def test_clear(self):
        ring = RingBufferSink()
        emit_sample(ring)
        ring.clear()
        assert len(ring) == 0

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            RingBufferSink(capacity=0)


class TestJsonlSink:
    def test_writes_one_sorted_json_object_per_line(self):
        buffer = io.StringIO()
        sink = JsonlSink(buffer)
        emit_sample(sink, n=1)
        sink.close()  # borrowed buffer: flushed, not closed
        lines = buffer.getvalue().splitlines()
        assert len(lines) == sink.events_written == 3
        first = json.loads(lines[0])
        assert first == {"type": "CacheHit", "cache": "TFKC", "t": 0.0}
        assert event_from_dict(first) == CacheHit(cache="TFKC", t=0.0)

    def test_path_destination_is_owned_and_readable_back(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlSink(str(path)) as sink:
            emit_sample(sink, n=4)
        aggregate = read_jsonl(str(path))
        assert aggregate.records == 6
        assert aggregate.caches["TFKC"].hits == 4
        assert aggregate.caches["RFKC"].cold == 1
        assert aggregate.datagrams_accepted == 1


class TestAggregatingSink:
    def test_matches_file_based_aggregation(self, tmp_path):
        live = AggregatingSink()
        path = tmp_path / "trace.jsonl"

        class Tee:
            enabled = True

            def __init__(self, jsonl):
                self.jsonl = jsonl

            def emit(self, event):
                live.emit(event)
                self.jsonl.emit(event)

        with JsonlSink(str(path)) as jsonl:
            emit_sample(Tee(jsonl), n=3)
        assert read_jsonl(str(path)).summary() == live.summary()

    def test_time_span_tracked(self):
        live = AggregatingSink()
        emit_sample(live, n=3)
        assert live.aggregate.first_t == 0.0
        assert live.aggregate.last_t == 2.0


class TestReadJsonlErrors:
    def test_non_json_line_fails_with_location(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "CacheHit", "cache": "PVC", "t": 0}\nnot json\n')
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            read_jsonl(str(path))

    def test_typeless_record_fails(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"cache": "PVC"}\n')
        with pytest.raises(ValueError, match="not an event record"):
            read_jsonl(str(path))

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('\n{"type": "CacheHit", "cache": "PVC", "t": 0}\n\n')
        assert read_jsonl(str(path)).records == 1

    def test_unknown_miss_kind_rejected(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"type": "CacheMiss", "cache": "PVC", "kind": "??", "t": 0}\n')
        with pytest.raises(ValueError, match="unknown CacheMiss kind"):
            read_jsonl(str(path))
