"""Event vocabulary: schema round-trips and the closed constant lists."""

import dataclasses

import pytest

from repro.obs import (
    CACHE_LEVELS,
    EVENT_TYPES,
    MISS_KINDS,
    REJECTION_REASONS,
    CacheMiss,
    DatagramProtected,
    DatagramRejected,
    FlowStarted,
    event_from_dict,
)

SAMPLES = [
    FlowStarted(sfl=7),
    CacheMiss(cache="TFKC", kind="cold"),
    DatagramProtected(sfl=7, size=128, secret=True),
    DatagramRejected(reason="mac", sfl=7),
    DatagramRejected(reason="header"),  # sfl defaults to -1 (unparsed)
]


_SAMPLE_VALUES = {"int": 5, "str": "x", "bool": True, "float": 1.5}


def test_every_event_type_round_trips():
    for cls in EVENT_TYPES:
        fields = {}
        for f in dataclasses.fields(cls):
            if f.name == "t":
                continue
            type_name = f.type if isinstance(f.type, str) else f.type.__name__
            fields[f.name] = _SAMPLE_VALUES[type_name]
        event = cls(**fields)
        record = event.to_dict()
        assert record["type"] == cls.__name__
        assert record["t"] == 0.0
        rebuilt = event_from_dict(record)
        assert rebuilt == event


@pytest.mark.parametrize("event", SAMPLES, ids=lambda e: type(e).__name__)
def test_to_dict_contains_all_fields(event):
    record = event.to_dict()
    for f in dataclasses.fields(event):
        assert record[f.name] == getattr(event, f.name)
    assert event_from_dict(record) == event


def test_unparsed_rejection_defaults_to_unknown_sfl():
    assert DatagramRejected(reason="header").sfl == -1


def test_unknown_type_raises():
    with pytest.raises(ValueError, match="unknown event type"):
        event_from_dict({"type": "NotAnEvent", "t": 0.0})


def test_malformed_record_raises_value_error():
    with pytest.raises(ValueError, match="malformed"):
        event_from_dict({"type": "CacheMiss", "bogus_field": 1})


def test_constant_lists_are_closed_and_consistent():
    assert REJECTION_REASONS == (
        "header",
        "stale_timestamp",
        "keying",
        "mac",
        "duplicate",
    )
    assert CACHE_LEVELS == ("PVC", "MKC", "TFKC", "RFKC")
    assert MISS_KINDS == ("cold", "capacity", "collision")
    names = [cls.__name__ for cls in EVENT_TYPES]
    assert len(names) == len(set(names)) == 13


def test_t_is_last_field_everywhere():
    # The tracer mutates ``t`` post-construction; keeping it last (with
    # a default) lets call sites pass payload fields positionally.
    for cls in EVENT_TYPES:
        assert dataclasses.fields(cls)[-1].name == "t"
