"""Offline trace aggregation reproduces CacheSimulator statistics exactly.

This is the acceptance check behind EXPERIMENTS.md section 4 (Figure 11
regeneration): a JSONL trace written during a cache replay, summarized
after the fact, must agree with the simulator's own ``CacheStats`` to
the last count -- the trace is the ground truth, not an approximation.
"""

import pytest

from repro.netsim.addresses import IPAddress
from repro.obs import JsonlSink, read_jsonl
from repro.traces.flowsim import CacheSimulator
from repro.traces.workloads import CampusLanWorkload


@pytest.fixture(scope="module")
def lan_trace():
    # Small but busy enough to exercise hits, all miss kinds, evictions.
    return CampusLanWorkload(duration=900.0, clients=6, seed=5).generate()


def _assert_tally_matches(tally, stats):
    assert tally.hits == stats.hits
    assert tally.cold == stats.cold_misses
    assert tally.capacity == stats.capacity_misses
    assert tally.collision == stats.collision_misses
    assert tally.evictions == stats.evictions
    assert tally.miss_rate == pytest.approx(stats.miss_rate)


def test_summarized_trace_equals_simulator_stats(tmp_path, lan_trace):
    server = IPAddress("10.1.0.250")  # the workload's file server
    path = tmp_path / "fig11.jsonl"
    with JsonlSink(str(path)) as sink:
        sim = CacheSimulator(8, sink=sink, label="[8]")
        send = sim.send_side(lan_trace, server)
        recv = sim.receive_side(lan_trace, server)

    assert send.lookups > 0 and recv.lookups > 0
    aggregate = read_jsonl(str(path))
    assert set(aggregate.caches) == {"TFKC[8]", "RFKC[8]"}
    _assert_tally_matches(aggregate.caches["TFKC[8]"], send)
    _assert_tally_matches(aggregate.caches["RFKC[8]"], recv)


def test_sweep_sizes_share_one_trace_file(tmp_path, lan_trace):
    server = IPAddress("10.1.0.250")
    path = tmp_path / "sweep.jsonl"
    stats = {}
    with JsonlSink(str(path)) as sink:
        for size in (4, 16):
            sim = CacheSimulator(size, sink=sink, label=f"[{size}]")
            stats[size] = sim.send_side(lan_trace, server)
    aggregate = read_jsonl(str(path))
    for size in (4, 16):
        _assert_tally_matches(aggregate.caches[f"TFKC[{size}]"], stats[size])
    # Bigger cache, no worse miss rate -- the Figure 11 shape.
    assert (
        aggregate.caches["TFKC[16]"].miss_rate
        <= aggregate.caches["TFKC[4]"].miss_rate
    )


def test_events_carry_the_trace_clock(tmp_path, lan_trace):
    server = IPAddress("10.1.0.250")
    path = tmp_path / "clock.jsonl"
    with JsonlSink(str(path)) as sink:
        CacheSimulator(8, sink=sink).send_side(lan_trace, server)
    aggregate = read_jsonl(str(path))
    assert aggregate.first_t is not None
    assert 0.0 <= aggregate.first_t <= aggregate.last_t <= 900.0
    assert aggregate.last_t > 0.0
