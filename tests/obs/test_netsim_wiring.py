"""Tracer + registry through the simulated network stack."""

from repro.core.deploy import FBSDomain
from repro.netsim import Network
from repro.netsim.costmodel import PENTIUM_133
from repro.netsim.sockets import UdpSocket
from repro.obs import (
    DatagramAccepted,
    DatagramProtected,
    MetricsRegistry,
    RingBufferSink,
    Tracer,
)

DATAGRAMS = 8


def run_udp_exchange():
    net = Network(seed=60)
    net.add_segment("lan", "10.0.0.0")
    a = net.add_host("a", segment="lan", cost_model=PENTIUM_133)
    b = net.add_host("b", segment="lan", cost_model=PENTIUM_133)
    domain = FBSDomain(seed=61)
    ring = RingBufferSink()
    tracer = Tracer(ring, now=lambda: net.sim.now)
    # One registry per endpoint (their collectors publish per-host
    # gauges); the tracer can be shared -- events carry no host state.
    domain.enroll_host(
        a, encrypt_all=True, tracer=tracer, registry=MetricsRegistry()
    )
    domain.enroll_host(
        b, encrypt_all=True, tracer=tracer, registry=MetricsRegistry()
    )
    rx = UdpSocket(b, 4000)
    tx = UdpSocket(a)
    for i in range(DATAGRAMS):
        tx.sendto(b"payload %02d" % i, b.address, 4000)
    net.sim.run()
    assert len(rx.received) == DATAGRAMS
    return net, a, b, ring


def test_trace_sees_every_datagram_with_sim_timestamps():
    net, _a, _b, ring = run_udp_exchange()
    protected = ring.of_type(DatagramProtected)
    accepted = ring.of_type(DatagramAccepted)
    assert len(protected) == DATAGRAMS
    assert len(accepted) == DATAGRAMS
    times = [e.t for e in ring.events]
    assert times == sorted(times)
    assert all(0.0 <= t <= net.sim.now for t in times)
    # Send and receive observe the same flow label.
    assert {e.sfl for e in protected} == {e.sfl for e in accepted}


def test_metrics_snapshot_exposes_datapath_and_host_costs():
    _net, a, b, _ring = run_udp_exchange()
    snap_a = a.metrics_snapshot()
    snap_b = b.metrics_snapshot()
    assert snap_a["counters"]["datagrams_sent"] == DATAGRAMS
    assert snap_b["counters"]["datagrams_accepted"] == DATAGRAMS
    assert snap_b["counters"]["datagrams_received"] == DATAGRAMS
    # Under a real cost model the MAC histogram and CPU gauge are live.
    assert snap_a["histograms"]["mac_cost_seconds"]["count"] >= DATAGRAMS
    assert snap_a["gauges"]["host_cpu_seconds"] > 0.0
    assert snap_b["gauges"]["host_cpu_seconds"] > 0.0


def test_bare_host_has_no_snapshot():
    net = Network(seed=62)
    net.add_segment("lan", "10.0.0.0")
    host = net.add_host("plain", segment="lan")
    assert host.metrics_snapshot() is None
