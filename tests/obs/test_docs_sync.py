"""Docs stay in sync with the code: coverage + link checks."""

import os

from repro.obs.doccheck import (
    check_markdown_links,
    check_observability_doc,
    default_markdown_files,
    run_doc_checks,
)
from repro.obs.events import EVENT_TYPES
from repro.obs.registry import METRIC_CATALOG

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
GUIDE = os.path.join(REPO_ROOT, "docs", "OBSERVABILITY.md")


class TestCoverage:
    def test_real_guide_covers_everything(self):
        assert check_observability_doc(GUIDE) == []

    def test_guide_enumerates_all_eleven_events_and_twenty_one_metrics(self):
        with open(GUIDE, encoding="utf-8") as fp:
            text = fp.read()
        for cls in EVENT_TYPES:
            assert f"`{cls.__name__}`" in text
        for name in METRIC_CATALOG:
            assert f"`{name}`" in text

    def test_missing_metric_is_reported(self, tmp_path):
        doc = tmp_path / "OBSERVABILITY.md"
        lines = [f"`{cls.__name__}`" for cls in EVENT_TYPES]
        lines += [f"`{name}`" for name in METRIC_CATALOG if name != "cache_hits"]
        doc.write_text("\n".join(lines))
        problems = check_observability_doc(str(doc))
        assert len(problems) == 1
        assert "cache_hits" in problems[0]

    def test_missing_event_is_reported(self, tmp_path):
        doc = tmp_path / "OBSERVABILITY.md"
        lines = [f"`{cls.__name__}`" for cls in EVENT_TYPES[1:]]
        lines += [f"`{name}`" for name in METRIC_CATALOG]
        doc.write_text("\n".join(lines))
        problems = check_observability_doc(str(doc))
        assert len(problems) == 1
        assert EVENT_TYPES[0].__name__ in problems[0]

    def test_absent_file_is_one_problem(self, tmp_path):
        problems = check_observability_doc(str(tmp_path / "nope.md"))
        assert problems == [f"{tmp_path / 'nope.md'}: missing"]


class TestLinks:
    def test_broken_relative_link_detected(self, tmp_path):
        page = tmp_path / "page.md"
        page.write_text("see [the guide](missing/file.md) for details")
        problems = check_markdown_links([str(page)], str(tmp_path))
        assert len(problems) == 1
        assert "missing/file.md" in problems[0]

    def test_external_and_anchor_links_skipped(self, tmp_path):
        page = tmp_path / "page.md"
        page.write_text(
            "[a](https://example.com) [b](mailto:x@y.z) [c](#section)"
        )
        assert check_markdown_links([str(page)], str(tmp_path)) == []

    def test_anchored_relative_link_resolves_to_file(self, tmp_path):
        (tmp_path / "other.md").write_text("# Section\n")
        page = tmp_path / "page.md"
        page.write_text("[jump](other.md#section)")
        assert check_markdown_links([str(page)], str(tmp_path)) == []

    def test_default_set_spans_top_level_and_docs(self):
        files = default_markdown_files(REPO_ROOT)
        names = {os.path.relpath(p, REPO_ROOT) for p in files}
        assert "README.md" in names
        assert os.path.join("docs", "OBSERVABILITY.md") in names
        assert os.path.join("docs", "ARCHITECTURE.md") in names


def test_repo_passes_all_doc_checks():
    assert run_doc_checks(REPO_ROOT) == []
