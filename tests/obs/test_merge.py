"""Snapshot merging and shard-tagged traces (the ISSUE 5 obs layer).

The merge operation is what makes N-process metrics trustworthy: each
instrument kind has explicit semantics (counters/gauges sum, histograms
merge, derived hit ratios are recomputed from merged counters), the
operation is associative and commutative, and concatenated shard-tagged
JSONL traces summarize to the merged totals.
"""

import io
import json

import pytest

from repro.load.engine import LoadSpec, run_load
from repro.obs import JsonlSink, MetricsRegistry, merge_snapshots, parse_metric_key
from repro.obs.events import DatagramProtected
from repro.obs.sinks import read_jsonl


def snap_with(hits, misses):
    reg = MetricsRegistry()
    reg.counter("cache_hits", cache="TFKC").inc(hits)
    reg.counter("cache_misses", cache="TFKC", kind="cold").inc(misses)
    lookups = hits + misses
    reg.gauge("cache_hit_ratio", cache="TFKC").set(
        hits / lookups if lookups else 0.0
    )
    return reg.snapshot()


class TestParseMetricKey:
    def test_labeled_key(self):
        assert parse_metric_key("cache_hits{cache=TFKC,kind=cold}") == (
            "cache_hits",
            {"cache": "TFKC", "kind": "cold"},
        )

    def test_bare_key(self):
        assert parse_metric_key("datagrams_sent") == ("datagrams_sent", {})


class TestMergeSemantics:
    def test_counters_and_gauges_sum(self):
        a = MetricsRegistry()
        a.counter("datagrams_sent").inc(3)
        a.gauge("active_flows").set(2)
        b = MetricsRegistry()
        b.counter("datagrams_sent").inc(4)
        b.counter("datagrams_accepted").inc(1)
        b.gauge("active_flows").set(5)
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        assert merged["counters"]["datagrams_sent"] == 7
        assert merged["counters"]["datagrams_accepted"] == 1
        assert merged["gauges"]["active_flows"] == 7

    def test_histograms_merge_and_recompute_mean(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        for value in (1.0, 3.0):
            a.histogram("mac_cost_seconds").observe(value)
        b.histogram("mac_cost_seconds").observe(8.0)
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        hist = merged["histograms"]["mac_cost_seconds"]
        assert hist["count"] == 3
        assert hist["sum"] == 12.0
        assert hist["mean"] == 4.0
        assert hist["min"] == 1.0
        assert hist["max"] == 8.0
        singles = [
            s["histograms"]["mac_cost_seconds"]
            for s in (a.snapshot(), b.snapshot())
        ]
        for bucket, count in hist["buckets"].items():
            assert count == sum(s["buckets"][bucket] for s in singles)

    def test_hit_ratio_recomputed_not_summed(self):
        # 9/10 and 1/10 must merge to 10/20 = 0.5, not 0.9 + 0.1 = 1.0.
        merged = merge_snapshots([snap_with(9, 1), snap_with(1, 9)])
        assert merged["gauges"]["cache_hit_ratio{cache=TFKC}"] == 0.5

    def test_identity_associative_commutative(self):
        snaps = [snap_with(9, 1), snap_with(1, 9), snap_with(5, 5)]
        assert merge_snapshots([snaps[0]]) == snaps[0]
        left = merge_snapshots([merge_snapshots(snaps[:2]), snaps[2]])
        right = merge_snapshots([snaps[0], merge_snapshots(snaps[1:])])
        assert left == right
        assert merge_snapshots(snaps) == merge_snapshots(snaps[::-1])


class TestShardTaggedSink:
    def test_tags_injected_into_every_record(self):
        buffer = io.StringIO()
        sink = JsonlSink(buffer, tags={"shard": 3})
        sink.emit(DatagramProtected(sfl=1, size=10, secret=False))
        sink.emit(DatagramProtected(sfl=2, size=20, secret=True))
        records = [json.loads(line) for line in buffer.getvalue().splitlines()]
        assert [r["shard"] for r in records] == [3, 3]
        assert all(r["type"] == "DatagramProtected" for r in records)

    def test_tags_must_not_shadow_event_fields(self):
        for key in ("type", "t"):
            with pytest.raises(ValueError):
                JsonlSink(io.StringIO(), tags={key: "x"})

    def test_untagged_sink_unchanged(self):
        buffer = io.StringIO()
        JsonlSink(buffer).emit(DatagramProtected(sfl=1, size=10, secret=False))
        assert "shard" not in json.loads(buffer.getvalue())


class TestSummarizeParity:
    def test_concatenated_shard_traces_reproduce_merged_counters(self, tmp_path):
        # The CLI contract: cat worker*.jsonl | summarize == merged
        # registry counters.  (`python -m repro.obs summarize` is a thin
        # wrapper over read_jsonl.)
        run = run_load(
            LoadSpec(
                workers=2,
                workload="smoke",
                inline=True,
                trace_dir=str(tmp_path),
            )
        )
        combined = tmp_path / "all.jsonl"
        with open(combined, "w") as out:
            for worker in (0, 1):
                out.write((tmp_path / f"worker{worker}.jsonl").read_text())
        aggregate = read_jsonl(str(combined))
        counters = run["merged"]["counters"]
        assert aggregate.datagrams_protected == counters["datagrams_sent"]
        assert aggregate.datagrams_accepted == counters["datagrams_accepted"]
        assert aggregate.flows_started == counters["flows_started"]
