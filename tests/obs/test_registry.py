"""MetricsRegistry: memoization, rendering, collectors, the catalog."""

import json

import pytest

from repro.obs import MetricsRegistry
from repro.obs.events import CACHE_LEVELS, MISS_KINDS, REJECTION_REASONS
from repro.obs.registry import DEFAULT_BUCKETS, METRIC_CATALOG, Histogram


class TestInstruments:
    def test_counter_memoized_by_name_and_labels(self):
        reg = MetricsRegistry()
        a = reg.counter("datagrams_rejected", reason="mac")
        b = reg.counter("datagrams_rejected", reason="mac")
        c = reg.counter("datagrams_rejected", reason="header")
        assert a is b and a is not c
        a.inc()
        a.inc(2)
        assert b.value == 3 and c.value == 0

    def test_sum_counter_across_labels(self):
        reg = MetricsRegistry()
        reg.counter("cache_hits", cache="TFKC").inc(4)
        reg.counter("cache_hits", cache="RFKC").inc(6)
        assert reg.sum_counter("cache_hits") == 10
        assert reg.sum_counter("nonexistent") == 0

    def test_gauge_set(self):
        reg = MetricsRegistry()
        reg.gauge("active_flows").set(17)
        assert reg.snapshot()["gauges"]["active_flows"] == 17

    def test_labeled_keys_render_prometheus_style(self):
        reg = MetricsRegistry()
        reg.counter("cache_misses", cache="TFKC", kind="cold").inc()
        snap = reg.snapshot()
        assert snap["counters"] == {"cache_misses{cache=TFKC,kind=cold}": 1}

    def test_histogram_buckets_and_stats(self):
        h = Histogram("mac_cost_seconds", (), buckets=(1.0, 2.0))
        for value in (0.5, 1.5, 1.5, 99.0):
            h.observe(value)
        d = h.to_dict()
        assert d["count"] == 4
        assert d["min"] == 0.5 and d["max"] == 99.0
        assert d["mean"] == pytest.approx((0.5 + 1.5 + 1.5 + 99.0) / 4)
        assert d["buckets"] == {"le=1": 1, "le=2": 2, "le=+inf": 1}

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", (), buckets=(2.0, 1.0))

    def test_default_buckets_span_cost_model_range(self):
        assert DEFAULT_BUCKETS[0] == 25e-6
        assert DEFAULT_BUCKETS[-1] == 10e-3
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


class TestCollectorsAndSnapshot:
    def test_collectors_run_only_at_snapshot(self):
        reg = MetricsRegistry()
        runs = []
        reg.register_collector(lambda: runs.append(1))
        assert runs == []
        reg.snapshot()
        reg.snapshot()
        assert len(runs) == 2

    def test_collector_refreshes_gauges_lazily(self):
        reg = MetricsRegistry()
        state = {"occupancy": 0}
        gauge = reg.gauge("cache_occupancy", cache="TFKC")
        reg.register_collector(lambda: gauge.set(state["occupancy"]))
        state["occupancy"] = 5
        assert reg.snapshot()["gauges"]["cache_occupancy{cache=TFKC}"] == 5

    def test_names_collapses_labels(self):
        reg = MetricsRegistry()
        reg.counter("cache_hits", cache="TFKC")
        reg.counter("cache_hits", cache="RFKC")
        reg.gauge("active_flows")
        reg.histogram("mac_cost_seconds")
        assert reg.names() == ["active_flows", "cache_hits", "mac_cost_seconds"]

    def test_to_json_round_trips(self):
        reg = MetricsRegistry()
        reg.counter("datagrams_sent").inc(3)
        reg.histogram("mac_cost_seconds").observe(1e-4)
        parsed = json.loads(reg.to_json())
        assert parsed["counters"]["datagrams_sent"] == 3
        assert parsed["histograms"]["mac_cost_seconds"]["count"] == 1


class TestCatalog:
    def test_catalog_is_the_documented_twenty_six(self):
        assert len(METRIC_CATALOG) == 26

    def test_specs_are_well_formed(self):
        for name, spec in METRIC_CATALOG.items():
            assert spec.kind in ("counter", "gauge", "histogram"), name
            assert isinstance(spec.labels, tuple), name
            assert spec.help, name

    def test_label_names_match_the_event_vocabulary(self):
        assert METRIC_CATALOG["datagrams_rejected"].labels == ("reason",)
        assert METRIC_CATALOG["cache_misses"].labels == ("cache", "kind")
        assert METRIC_CATALOG["flow_key_derivations"].labels == ("side",)
        # The vocabulary the labels draw from is the events module's.
        assert set(REJECTION_REASONS) >= {"header", "mac", "duplicate"}
        assert set(CACHE_LEVELS) == {"PVC", "MKC", "TFKC", "RFKC"}
        assert set(MISS_KINDS) == {"cold", "capacity", "collision"}

    def test_endpoint_registers_only_cataloged_names(self):
        from repro.core.deploy import FBSDomain
        from repro.core.keying import Principal

        domain = FBSDomain(seed=3)
        alice = domain.make_endpoint(
            Principal.from_name("alice"), registry=MetricsRegistry()
        )
        bob = domain.make_endpoint(
            Principal.from_name("bob"), registry=MetricsRegistry()
        )
        wire = alice.protect(b"body", bob.principal, secret=True)
        bob.unprotect(wire, alice.principal, secret=True)
        alice.registry.snapshot()  # collectors register cache series
        bob.registry.snapshot()
        for endpoint in (alice, bob):
            assert set(endpoint.registry.names()) <= set(METRIC_CATALOG)
