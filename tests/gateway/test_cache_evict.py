"""The caches' counted eviction surface (the reclamation primitive).

``evict`` is the pressure operation the gateway's tenant eviction is
built on: unlike ``invalidate`` it counts in ``stats.evictions`` and
emits ``CacheEvicted``, exactly like a displacement by ``put`` -- so
the registry's eviction counters tell the whole reclamation story.
"""

from repro.core.caches import (
    AssociativeCache,
    DirectMappedCache,
    FlowKeyCache,
    MasterKeyCache,
    PublicValueCache,
)
from repro.obs.events import CacheEvicted
from repro.obs.sinks import RingBufferSink
from repro.obs.tracer import Tracer


class TestDirectMappedEvict:
    def test_live_entry_is_removed_and_counted(self):
        cache = DirectMappedCache(8)
        cache.put(b"k", b"v")
        assert cache.evict(b"k") is True
        assert cache.get(b"k") is None
        assert cache.stats.evictions == 1

    def test_absent_key_is_a_noop(self):
        cache = DirectMappedCache(8)
        assert cache.evict(b"k") is False
        assert cache.stats.evictions == 0

    def test_slot_sharing_key_is_not_evicted(self):
        # A different key mapping to the same slot must survive: evict
        # targets an entry, not a slot.
        cache = DirectMappedCache(1)
        cache.put(b"resident", b"v")
        assert cache.evict(b"other") is False
        assert cache.get(b"resident") == b"v"

    def test_evict_emits_the_event(self):
        sink = RingBufferSink()
        cache = DirectMappedCache(8, tracer=Tracer(sink), trace_name="RFKC")
        cache.put(b"k", b"v")
        cache.evict(b"k")
        evicted = sink.of_type(CacheEvicted)
        assert len(evicted) == 1 and evicted[0].cache == "RFKC"


class TestAssociativeEvict:
    def test_live_entry_is_removed_and_counted(self):
        cache = AssociativeCache(8)
        cache.put(b"k", b"v")
        assert cache.evict(b"k") is True
        assert cache.get(b"k") is None
        assert cache.stats.evictions == 1

    def test_absent_key_is_a_noop(self):
        cache = AssociativeCache(8)
        assert cache.evict(b"k") is False
        assert cache.stats.evictions == 0


class TestLevelWrappers:
    def test_flow_key_cache_evicts_by_flow(self):
        cache = FlowKeyCache(16, name="RFKC")
        cache.install(7, b"D", b"S", b"\x01" * 16)
        assert cache.evict_flow(7, b"D", b"S") is True
        assert cache.lookup(7, b"D", b"S") is None
        assert cache.evict_flow(7, b"D", b"S") is False  # idempotent

    def test_master_key_cache_evicts_by_principal(self):
        cache = MasterKeyCache(8)
        cache.install(b"peer", b"\x02" * 16)
        assert cache.evict(b"peer") is True
        assert cache.lookup(b"peer") is None
        assert cache.stats.evictions == 1

    def test_pvc_evicts_by_principal(self):
        cache = PublicValueCache(8)
        cache.install(b"peer", object())
        assert cache.evict(b"peer") is True
        assert cache.lookup(b"peer") is None

    def test_pinned_certificates_survive_pressure(self):
        cache = PublicValueCache(8)
        pinned = object()
        cache.pin(b"peer", pinned)
        assert cache.evict(b"peer") is False
        assert cache.lookup(b"peer") is pinned
