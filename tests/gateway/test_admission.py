"""The admission controller's double-entry accounting."""

from repro.gateway.admission import (
    AdmissionController,
    DROP_REASONS,
    EVICTION_REASONS,
)
from repro.obs.registry import MetricsRegistry


class TestDoubleEntry:
    def test_every_outcome_moves_ledger_and_registry_together(self):
        reg = MetricsRegistry()
        admission = AdmissionController(reg)
        admission.admitted()
        admission.evicted("capacity")
        admission.dropped("backpressure")
        admission.dropped("evicted", 3)
        ledger = admission.ledger_dict()
        assert ledger["admitted"] == 1
        assert ledger["evicted"]["capacity"] == 1
        assert ledger["dropped"] == {
            "admission": 0,
            "backpressure": 1,
            "evicted": 3,
        }
        assert reg.sum_counter("gateway_tenants_admitted") == 1
        assert reg.sum_counter("gateway_tenants_evicted") == 1
        assert reg.sum_counter("gateway_datagrams_dropped") == 4

    def test_ledger_dict_is_a_copy(self):
        admission = AdmissionController(MetricsRegistry())
        ledger = admission.ledger_dict()
        ledger["dropped"]["admission"] = 99
        assert admission.ledger_dict()["dropped"]["admission"] == 0

    def test_reason_vocabularies_are_closed(self):
        assert DROP_REASONS == ("admission", "backpressure", "evicted")
        assert EVICTION_REASONS == ("capacity",)


class TestCheckRegistry:
    def test_consistent_controller_reports_nothing(self):
        reg = MetricsRegistry()
        admission = AdmissionController(reg)
        admission.admitted()
        admission.dropped("admission")
        # enqueued mirrors the endpoint's datagrams_accepted counter.
        admission.enqueued()
        reg.counter("datagrams_accepted").inc()
        assert admission.check_registry() == []

    def test_registry_drift_is_named(self):
        reg = MetricsRegistry()
        admission = AdmissionController(reg)
        # Simulate a bypassing code path that bumps the counter only.
        reg.counter("gateway_tenants_admitted").inc()
        problems = admission.check_registry()
        assert any("admitted" in p for p in problems)

    def test_enqueued_must_match_datagrams_accepted(self):
        reg = MetricsRegistry()
        admission = AdmissionController(reg)
        admission.enqueued()
        problems = admission.check_registry()
        assert any("enqueued" in p for p in problems)
