"""The gateway serve loop: admission, backpressure, eviction, delivery."""

from repro.gateway.tenants import GatewayConfig
from repro.obs.events import TenantAdmitted, TenantEvicted
from repro.obs.sinks import RingBufferSink

from tests.gateway.helpers import gateway_site, send_protected, serve_one


class TestFirstContact:
    def test_first_datagram_admits_and_delivers(self):
        site = gateway_site(tenants=1)
        send_protected(site, 0, b"hello gateway")
        assert serve_one(site) == "enqueued"
        assert site.gateway.admission.ledger_dict()["admitted"] == 1
        assert site.gateway.drain() == {"tenant-00": [b"hello gateway"]}

    def test_zero_message_keying_needs_no_handshake(self):
        # First contact is one datagram: admit + key + deliver.  The
        # second datagram rides the warm caches -- no new derivation.
        site = gateway_site(tenants=1)
        derivations = site.gw_endpoint.registry.counter(
            "flow_key_derivations", side="receive"
        )
        send_protected(site, 0, b"first")
        assert serve_one(site) == "enqueued"
        assert derivations.value == 1
        send_protected(site, 0, b"second")
        assert serve_one(site) == "enqueued"
        assert derivations.value == 1

    def test_admission_emits_the_event(self):
        sink = RingBufferSink()
        site = gateway_site(tenants=1, tracer=sink)
        send_protected(site, 0)
        serve_one(site)
        admitted = sink.of_type(TenantAdmitted)
        assert [e.peer for e in admitted] == ["tenant-00"]

    def test_idle_wire_returns_none(self):
        site = gateway_site(tenants=1)
        assert serve_one(site, timeout=0.5) is None

    def test_flows_are_recorded_per_tenant(self):
        site = gateway_site(tenants=2)
        for i in (0, 1):
            send_protected(site, i)
            serve_one(site)
        tenants = site.gateway.tenants.by_name()
        assert [len(t.flows) for t in tenants] == [1, 1]


class TestEviction:
    def config(self):
        return GatewayConfig(max_tenants=2)

    def test_full_table_evicts_the_coldest(self):
        sink = RingBufferSink()
        site = gateway_site(tenants=3, gw_config=self.config(), tracer=sink)
        for i in range(3):  # third admission evicts tenant-00
            send_protected(site, i)
            assert serve_one(site) == "enqueued"
        assert len(site.gateway.tenants) == 2
        evicted = sink.of_type(TenantEvicted)
        assert [(e.peer, e.reason) for e in evicted] == [
            ("tenant-00", "capacity")
        ]
        ledger = site.gateway.admission.ledger_dict()
        assert ledger["evicted"]["capacity"] == 1

    def test_eviction_reclaims_the_key_caches(self):
        site = gateway_site(tenants=3, gw_config=self.config())
        for i in range(3):
            send_protected(site, i)
            serve_one(site)
        # The victim's master key and certificate are gone from the
        # gateway's caches, through the counted eviction path.
        victim = site.principals[0].wire_id
        endpoint = site.gw_endpoint
        assert endpoint.mkd.mkc.lookup(victim) is None
        assert endpoint.mkd.mkc.stats.evictions == 1
        assert endpoint.rfkc.stats.evictions == 1
        snapshot = endpoint.registry.snapshot()
        assert snapshot["counters"]["cache_evictions{cache=MKC}"] == 1
        assert snapshot["counters"]["cache_evictions{cache=RFKC}"] == 1

    def test_activity_refreshes_lru_position(self):
        site = gateway_site(tenants=3, gw_config=self.config())
        for i in (0, 1):
            send_protected(site, i)
            serve_one(site)
        send_protected(site, 0)  # touch tenant-00: tenant-01 is now coldest
        serve_one(site)
        send_protected(site, 2)
        serve_one(site)
        names = sorted(t.name for t in site.gateway.tenants.by_name())
        assert names == ["tenant-00", "tenant-02"]

    def test_evicted_tenant_readmits_on_next_contact(self):
        site = gateway_site(tenants=3, gw_config=self.config())
        for i in range(3):
            send_protected(site, i)
            serve_one(site)
        send_protected(site, 0, b"i am back")
        assert serve_one(site) == "enqueued"
        assert site.gateway.admission.ledger_dict()["admitted"] == 4

    def test_undelivered_queue_is_counted_dropped(self):
        site = gateway_site(tenants=3, gw_config=self.config())
        for i in range(2):
            send_protected(site, i)
            serve_one(site)
        # tenant-00 has one undelivered body when evicted.
        send_protected(site, 2)
        serve_one(site)
        assert site.gateway.admission.ledger_dict()["dropped"]["evicted"] == 1

    def test_eviction_disabled_sheds_unknown_peers(self):
        site = gateway_site(
            tenants=2, gw_config=GatewayConfig(max_tenants=1, evict_cold=False)
        )
        send_protected(site, 0)
        assert serve_one(site) == "enqueued"
        send_protected(site, 1)
        assert serve_one(site) == "dropped:admission"
        assert len(site.gateway.tenants) == 1
        assert site.gateway.admission.ledger_dict()["dropped"]["admission"] == 1


class TestBackpressure:
    def test_full_queue_drops_with_reason(self):
        site = gateway_site(tenants=1, gw_config=GatewayConfig(queue_depth=2))
        for i in range(3):
            send_protected(site, 0, b"body %d" % i)
        assert serve_one(site) == "enqueued"
        assert serve_one(site) == "enqueued"
        assert serve_one(site) == "dropped:backpressure"
        tenant = site.gateway.tenants.by_name()[0]
        assert len(tenant.queue) == 2 and tenant.dropped == 1

    def test_shedding_happens_before_unprotect(self):
        # No crypto is spent on a datagram that cannot be delivered: the
        # endpoint never even sees it.
        site = gateway_site(tenants=1, gw_config=GatewayConfig(queue_depth=1))
        received = site.gw_endpoint.registry.counter("datagrams_received")
        for _ in range(2):
            send_protected(site, 0)
        serve_one(site)
        assert serve_one(site) == "dropped:backpressure"
        assert received.value == 1

    def test_drain_reopens_the_queue(self):
        site = gateway_site(tenants=1, gw_config=GatewayConfig(queue_depth=1))
        send_protected(site, 0, b"one")
        serve_one(site)
        assert site.gateway.drain() == {"tenant-00": [b"one"]}
        send_protected(site, 0, b"two")
        assert serve_one(site) == "enqueued"


class TestRejections:
    def test_garbage_is_rejected_with_the_endpoint_reason(self):
        site = gateway_site(tenants=1)
        send_protected(site, 0, raw=b"too short")
        assert serve_one(site) == "rejected:header"
        rejected = site.gw_endpoint.registry.counter(
            "datagrams_rejected", reason="header"
        )
        assert rejected.value == 1

    def test_rejection_still_admits_the_tenant(self):
        # Admission keys on the transport address; a garbage datagram
        # from a new peer creates the tenant, then fails unprotect.
        site = gateway_site(tenants=1)
        send_protected(site, 0, raw=b"garbage")
        serve_one(site)
        assert len(site.gateway.tenants) == 1
        assert site.gateway.admission.ledger_dict()["enqueued"] == 0


class TestAccounting:
    def test_ledger_registry_and_queues_close_exactly(self):
        site = gateway_site(
            tenants=3, gw_config=GatewayConfig(max_tenants=2, queue_depth=2)
        )
        for round_index in range(3):
            for i in range(3):
                send_protected(site, i, b"r%d" % round_index)
                serve_one(site)
        site.gateway.drain()
        send_protected(site, 0)
        serve_one(site)
        assert site.gateway.admission.check_registry() == []
        ledger = site.gateway.admission.ledger_dict()
        queued = site.gateway.tenants.total_queued()
        assert ledger["enqueued"] == (
            ledger["delivered"] + ledger["dropped"]["evicted"] + queued
        )

    def test_snapshot_gauges_reflect_live_state(self):
        site = gateway_site(tenants=2)
        for i in range(2):
            send_protected(site, i)
            serve_one(site)
        snapshot = site.gw_endpoint.registry.snapshot()
        assert snapshot["gauges"]["gateway_active_tenants"] == 2.0
        assert snapshot["gauges"]["gateway_queue_depth"] == 2.0
        site.gateway.drain()
        snapshot = site.gw_endpoint.registry.snapshot()
        assert snapshot["gauges"]["gateway_queue_depth"] == 0.0
