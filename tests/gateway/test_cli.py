"""``python -m repro.gateway``: flags, reports, exit codes, sharding."""

import asyncio
import json

from repro.gateway.cli import _plan_shards, main, run_gateway_workload


class TestWorkloadCli:
    def test_netsim_report_is_byte_stable(self, tmp_path, capsys):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        args = ["--tenants", "4", "--flows", "2", "--rounds", "4"]
        assert main(args + ["--out", str(a)]) == 0
        assert main(args + ["--out", str(b)]) == 0
        assert a.read_bytes() == b.read_bytes()

    def test_udp_round_trips(self, tmp_path, capsys):
        out = tmp_path / "udp.json"
        assert main([
            "--transport", "udp", "--tenants", "3", "--flows", "1",
            "--rounds", "3", "--out", str(out),
        ]) == 0
        report = json.loads(out.read_text())
        assert report["substrate"] == "udp"
        assert report["consistency"] == []
        assert "enqueued" in capsys.readouterr().err

    def test_report_to_stdout_by_default(self, capsys):
        assert main(["--tenants", "2", "--flows", "1", "--rounds", "2"]) == 0
        captured = capsys.readouterr()
        report = json.loads(captured.out)
        assert report["workload"] == "gateway"
        assert json.dumps(report, indent=2, sort_keys=True) + "\n" == captured.out

    def test_bad_substrate_is_usage_error(self, capsys):
        assert main(["--transport", "pigeon"]) == 2

    def test_default_capacity_exercises_eviction(self, capsys):
        # The default --max-tenants (4) is below the default --tenants
        # (6), so a plain run must show capacity evictions.
        assert main(["--rounds", "3"]) == 0
        report = json.loads(capsys.readouterr().out)
        total_evicted = sum(
            shard["admission"]["evicted"]["capacity"]
            for shard in report["per_shard"]
        )
        assert total_evicted > 0
        assert report["registry"]["counters"]["cache_evictions{cache=MKC}"] > 0

    def test_overload_is_bounded_and_counted(self, capsys):
        assert main([
            "--tenants", "2", "--flows", "1", "--rounds", "8",
            "--max-tenants", "2", "--queue-depth", "3", "--drain-every", "0",
        ]) == 0
        report = json.loads(capsys.readouterr().out)
        (shard,) = report["per_shard"]
        for summary in shard["tenants"].values():
            assert summary["queued"] <= 3
        dropped = shard["admission"]["dropped"]["backpressure"]
        assert dropped == 2 * (8 - 3)


class TestSharding:
    def test_plan_covers_every_pair_exactly_once(self):
        plan = _plan_shards(tenants=5, flows=3, shards=4)
        pairs = [
            (tenant, flow)
            for entries in plan
            for tenant, flow, _ft in entries
        ]
        assert sorted(pairs) == [
            (t, f) for t in range(5) for f in range(3)
        ]

    def test_sharded_run_merges_consistently(self):
        report = asyncio.run(
            run_gateway_workload(
                tenants=4, flows=2, rounds=3, shards=3, max_tenants=3
            )
        )
        assert report["consistency"] == []
        total = sum(
            shard["admission"]["enqueued"] for shard in report["per_shard"]
        )
        assert report["registry"]["counters"]["datagrams_accepted"] == total
        assert report["outcomes"].get("enqueued", 0) <= 4 * 2 * 3
