"""Cache-pressure-aware reclamation of an evicted tenant's footprint."""

from repro.gateway.eviction import evict_tenant_footprint

from tests.gateway.helpers import gateway_site, send_protected, serve_one


def warm_tenant(site, tenant=0):
    """One served datagram: RFKC + MKC + PVC entries exist on the gateway."""
    send_protected(site, tenant, b"warmup")
    assert serve_one(site) == "enqueued"
    return site.gateway.tenants.by_name()[0]


class TestFootprintReclamation:
    def test_reclaims_rfkc_mkc_and_pvc(self):
        site = gateway_site(tenants=1)
        tenant = warm_tenant(site)
        counts = evict_tenant_footprint(site.gw_endpoint, tenant)
        assert counts == {"PVC": 1, "MKC": 1, "TFKC": 0, "RFKC": 1}

    def test_reclamation_is_idempotent(self):
        site = gateway_site(tenants=1)
        tenant = warm_tenant(site)
        evict_tenant_footprint(site.gw_endpoint, tenant)
        counts = evict_tenant_footprint(site.gw_endpoint, tenant)
        assert counts == {"PVC": 0, "MKC": 0, "TFKC": 0, "RFKC": 0}

    def test_reclamation_counts_in_cache_stats(self):
        site = gateway_site(tenants=1)
        tenant = warm_tenant(site)
        before = site.gw_endpoint.rfkc.stats.evictions
        evict_tenant_footprint(site.gw_endpoint, tenant)
        assert site.gw_endpoint.rfkc.stats.evictions == before + 1
        assert site.gw_endpoint.mkd.mkc.stats.evictions == 1

    def test_returning_tenant_rekeys_through_the_miss_path(self):
        site = gateway_site(tenants=1)
        tenant = warm_tenant(site)
        derivations = site.gw_endpoint.registry.counter(
            "flow_key_derivations", side="receive"
        )
        warm = derivations.value
        evict_tenant_footprint(site.gw_endpoint, tenant)
        # Soft state: the next datagram re-derives, nothing breaks.
        send_protected(site, 0, b"back again")
        assert serve_one(site) == "enqueued"
        assert derivations.value == warm + 1

    def test_unknown_flows_are_a_noop(self):
        site = gateway_site(tenants=1)
        tenant = warm_tenant(site)
        tenant.flows.add(0xDEAD)  # never seen by the gateway's caches
        counts = evict_tenant_footprint(site.gw_endpoint, tenant)
        assert counts["RFKC"] == 1  # only the real flow reclaimed
