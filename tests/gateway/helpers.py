"""A one-call simulated multi-tenant site for gateway tests.

One gateway host and N tenant hosts on a shared segment, each tenant
with its own enrolled endpoint and connected transport, the gateway
serving on the addressed surface.  Tests drive it in lockstep:
``send_protected`` then ``serve_one``.
"""

import asyncio
from types import SimpleNamespace

from repro.core.deploy import FBSDomain
from repro.core.keying import Principal
from repro.gateway.server import FBSGateway
from repro.netsim.network import Network
from repro.transport.netsim import NetsimTransport

GATEWAY_PORT = 9000
TENANT_PORT_BASE = 5000


def gateway_site(tenants=3, seed=7, config=None, gw_config=None, tracer=None):
    """A ready-to-serve site; returns a namespace with all the pieces."""
    net = Network(seed=seed)
    net.add_segment("site", "10.88.0.0")
    gw_host = net.add_host("gw", segment="site", address="10.88.0.1")
    hosts = [
        net.add_host(f"t{i}", segment="site", address=f"10.88.0.{10 + i}")
        for i in range(tenants)
    ]
    gw_transport = NetsimTransport(gw_host, local_port=GATEWAY_PORT)
    transports = [
        NetsimTransport(
            host,
            local_port=TENANT_PORT_BASE + i,
            remote=(gw_host.address, GATEWAY_PORT),
        )
        for i, host in enumerate(hosts)
    ]
    domain = FBSDomain(seed=seed, config=config)
    gw_principal = Principal.from_name("gw")
    gw_endpoint = domain.make_endpoint(
        gw_principal, now=gw_transport.now, sfl_seed=1, tracer=tracer
    )
    principals = [Principal.from_name(f"tenant-{i:02d}") for i in range(tenants)]
    endpoints = [
        domain.make_endpoint(principal, now=transport.now, sfl_seed=100 + i)
        for i, (principal, transport) in enumerate(zip(principals, transports))
    ]
    directory = {
        (str(hosts[i].address), TENANT_PORT_BASE + i): principals[i]
        for i in range(tenants)
    }
    gateway = FBSGateway(
        gw_endpoint,
        gw_transport,
        config=gw_config,
        resolver=lambda addr: directory[tuple(addr)],
    )
    return SimpleNamespace(
        net=net,
        domain=domain,
        gateway=gateway,
        gw_endpoint=gw_endpoint,
        gw_principal=gw_principal,
        gw_transport=gw_transport,
        principals=principals,
        endpoints=endpoints,
        transports=transports,
    )


def send_protected(site, tenant, body=b"hello", raw=None):
    """Protect ``body`` as ``tenant`` and put it on the wire."""
    data = raw if raw is not None else site.endpoints[tenant].protect(
        body, site.gw_principal
    )
    site.transports[tenant].send_sync(data)


def serve_one(site, timeout=5.0):
    """One gateway serve step (netsim async completes inline)."""
    return asyncio.run(site.gateway.serve_once(timeout))
