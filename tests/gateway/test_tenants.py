"""Tenant table semantics: LRU by activity, bounded, report-stable."""

from repro.core.keying import Principal
from repro.gateway.tenants import GatewayConfig, TenantState, TenantTable


def make_tenant(i, now=0.0):
    name = f"tenant-{i:02d}"
    return TenantState(
        name=name,
        principal=Principal.from_name(name),
        addr=("10.88.0.10", 5000 + i),
        now=now,
    )


class TestTenantTable:
    def test_lookup_by_address(self):
        table = TenantTable()
        tenant = make_tenant(0)
        table.admit(tenant)
        assert table.get(tenant.addr) is tenant
        assert table.get(("10.88.0.99", 1)) is None
        assert tenant.addr in table and len(table) == 1

    def test_coldest_is_least_recently_touched(self):
        table = TenantTable()
        a, b, c = make_tenant(0), make_tenant(1), make_tenant(2)
        for t in (a, b, c):
            table.admit(t)
        assert table.coldest() is a
        table.get(a.addr)  # touch: a becomes warmest
        assert table.coldest() is b

    def test_remove_returns_the_tenant(self):
        table = TenantTable()
        tenant = make_tenant(0)
        table.admit(tenant)
        assert table.remove(tenant.addr) is tenant
        assert len(table) == 0

    def test_total_queued_sums_all_queues(self):
        table = TenantTable()
        a, b = make_tenant(0), make_tenant(1)
        a.queue.extend([b"x", b"y"])
        b.queue.append(b"z")
        table.admit(a)
        table.admit(b)
        assert table.total_queued() == 3

    def test_by_name_is_sorted_regardless_of_admission_order(self):
        table = TenantTable()
        for i in (2, 0, 1):
            table.admit(make_tenant(i))
        assert [t.name for t in table.by_name()] == [
            "tenant-00",
            "tenant-01",
            "tenant-02",
        ]


class TestTenantState:
    def test_summary_has_no_addresses(self):
        tenant = make_tenant(0)
        tenant.queue.append(b"body")
        tenant.enqueued = 3
        summary = tenant.summary()
        assert summary == {
            "delivered": 0,
            "dropped": 0,
            "enqueued": 3,
            "flows": 0,
            "queued": 1,
        }


class TestGatewayConfig:
    def test_defaults(self):
        config = GatewayConfig()
        assert config.max_tenants == 8
        assert config.queue_depth == 64
        assert config.evict_cold is True
