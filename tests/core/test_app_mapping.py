"""Application-layer mapping tests: layer independence in action."""

import pytest

from repro.core.app_mapping import (
    ApplicationDirectory,
    ConversationPolicy,
    FBSApplication,
)
from repro.core.deploy import FBSDomain
from repro.core.fam import DatagramAttributes
from repro.core.flows import FlowStateTable, SflAllocator
from repro.core.keying import Principal
from repro.netsim import Network


def build_apps(names_hosts, seed=0):
    """names_hosts: list of (app name, host name); hosts created on one LAN."""
    net = Network(seed=seed)
    net.add_segment("lan", "10.0.0.0")
    hosts = {}
    for _, host_name in names_hosts:
        if host_name not in hosts:
            hosts[host_name] = net.add_host(host_name, segment="lan")
    domain = FBSDomain(seed=seed + 77)
    directory = ApplicationDirectory()
    apps = {}
    for i, (app_name, host_name) in enumerate(names_hosts):
        principal = Principal.from_name(app_name)
        host = hosts[host_name]
        mkd = domain.enroll_principal(principal, now=lambda h=host: h.sim.now)
        apps[app_name] = FBSApplication(
            host, principal, mkd, directory, sfl_seed=i + 1
        )
    return net, apps, domain


class TestDelivery:
    def test_roundtrip(self):
        net, apps, _ = build_apps([("alice@desk1", "desk1"), ("bob@desk2", "desk2")])
        received = []
        apps["bob@desk2"].on_receive = lambda body, src, tag: received.append(
            (body, src.name)
        )
        apps["alice@desk1"].send(b"app-level secret", "bob@desk2")
        net.sim.run()
        assert received == [(b"app-level secret", "alice@desk1")]

    def test_wire_confidentiality(self):
        net, apps, _ = build_apps([("a@h1", "h1"), ("b@h2", "h2")], seed=1)
        frames = []
        net.segment("lan").attach_tap(frames.append)
        apps["b@h2"].on_receive = lambda body, src, tag: None
        apps["a@h1"].send(b"DO-NOT-LEAK-THIS", "b@h2")
        net.sim.run()
        assert all(b"DO-NOT-LEAK-THIS" not in frame for frame in frames)

    def test_no_ip_mapping_involved(self):
        # The hosts run NO network-layer security; protection rides
        # entirely inside UDP payloads -- layer independence.
        net, apps, _ = build_apps([("a@h1", "h1"), ("b@h2", "h2")], seed=2)
        assert all(
            host.security is None
            for host in (apps["a@h1"].host, apps["b@h2"].host)
        )
        got = []
        apps["b@h2"].on_receive = lambda body, src, tag: got.append(body)
        apps["a@h1"].send(b"above the transport", "b@h2")
        net.sim.run()
        assert got == [b"above the transport"]


class TestPrincipalGranularity:
    def test_two_users_one_host_distinct_keys(self):
        # Two applications on the SAME machine have distinct pair keys
        # with a remote peer -- the granularity host keying cannot give.
        net, apps, _ = build_apps(
            [("user1@shared", "shared"), ("user2@shared", "shared"), ("server@srv", "srv")],
            seed=3,
        )
        server = Principal.from_name("server@srv")
        k1 = apps["user1@shared"].endpoint.mkd.master_key(server)
        k2 = apps["user2@shared"].endpoint.mkd.master_key(server)
        assert k1 != k2

    def test_both_users_can_talk(self):
        net, apps, _ = build_apps(
            [("user1@shared", "shared"), ("user2@shared", "shared"), ("server@srv", "srv")],
            seed=4,
        )
        got = []
        apps["server@srv"].on_receive = lambda body, src, tag: got.append(
            (src.name, body)
        )
        apps["user1@shared"].send(b"from one", "server@srv")
        apps["user2@shared"].send(b"from two", "server@srv")
        net.sim.run()
        assert sorted(got) == [("user1@shared", b"from one"), ("user2@shared", b"from two")]

    def test_impersonation_rejected(self):
        # user2 cannot claim to be user1: the flow key binds the source
        # principal, so a forged sender id fails the MAC.
        import struct

        net, apps, _ = build_apps(
            [("user1@shared", "shared"), ("user2@shared", "shared"), ("server@srv", "srv")],
            seed=5,
        )
        got = []
        server_app = apps["server@srv"]
        server_app.on_receive = lambda body, src, tag: got.append(src.name)
        # Craft: protect as user2 but claim user1 in the clear sender id.
        attacker = apps["user2@shared"]
        victim_id = Principal.from_name("user1@shared").wire_id
        peer, address, port = attacker.directory.resolve("server@srv")
        protected = attacker.endpoint.protect(b"evil", peer, secret=True)
        wire = struct.pack(">H", len(victim_id)) + victim_id + protected
        attacker._socket.sendto(wire, address, port)
        net.sim.run()
        assert got == []
        assert server_app.rejected == 1


class TestConversations:
    def test_conversation_tags_separate_flows(self):
        net, apps, _ = build_apps([("a@h1", "h1"), ("b@h2", "h2")], seed=6)
        apps["b@h2"].on_receive = lambda *args: None
        sender = apps["a@h1"]
        sender.send(b"frame", "b@h2", conversation=b"video")
        sender.send(b"sample", "b@h2", conversation=b"audio")
        sender.send(b"frame2", "b@h2", conversation=b"video")
        net.sim.run()
        assert sender.endpoint.metrics.flows_started == 2
        assert apps["b@h2"].delivered == 3

    def test_unknown_destination(self):
        net, apps, _ = build_apps([("a@h1", "h1")], seed=7)
        with pytest.raises(KeyError):
            apps["a@h1"].send(b"x", "ghost@nowhere")

    def test_unknown_sender_rejected(self):
        import struct

        net, apps, _ = build_apps([("a@h1", "h1"), ("b@h2", "h2")], seed=8)
        target = apps["b@h2"]
        # A datagram claiming an unregistered sender id.
        wire = struct.pack(">H", 5) + b"ghost" + b"\x00" * 40
        from repro.netsim.sockets import UdpSocket

        rogue = UdpSocket(apps["a@h1"].host)
        rogue.sendto(wire, target.host.address, target.port)
        net.sim.run()
        assert target.rejected == 1


class TestConversationPolicyUnit:
    def _attrs(self, dest=b"\x00\x03bob", tag=b"video", size=10):
        return DatagramAttributes(
            destination_id=dest, size=size, extra={"conversation": tag}
        )

    def test_same_tag_same_flow(self):
        fst, alloc = FlowStateTable(32), SflAllocator(seed=1)
        policy = ConversationPolicy()
        a = policy.classify(self._attrs(), 0.0, fst, alloc)
        b = policy.classify(self._attrs(), 1.0, fst, alloc)
        assert a.sfl == b.sfl

    def test_different_tags_different_flows(self):
        fst, alloc = FlowStateTable(32), SflAllocator(seed=1)
        policy = ConversationPolicy()
        a = policy.classify(self._attrs(tag=b"video"), 0.0, fst, alloc).sfl
        b = policy.classify(self._attrs(tag=b"audio"), 0.0, fst, alloc).sfl
        assert a != b

    def test_string_tags_accepted(self):
        fst, alloc = FlowStateTable(32), SflAllocator(seed=1)
        policy = ConversationPolicy()
        entry = policy.classify(self._attrs(tag="whiteboard"), 0.0, fst, alloc)
        assert entry.valid

    def test_threshold_expiry(self):
        fst, alloc = FlowStateTable(32), SflAllocator(seed=1)
        policy = ConversationPolicy(threshold=100.0)
        first = policy.classify(self._attrs(), 0.0, fst, alloc).sfl
        second = policy.classify(self._attrs(), 500.0, fst, alloc).sfl
        assert first != second
        assert policy.repeated_flows == 1
