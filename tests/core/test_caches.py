"""Key cache tests: organizations, miss classification, named caches."""

import pytest

from repro.core.caches import (
    AssociativeCache,
    DirectMappedCache,
    FlowKeyCache,
    MasterKeyCache,
    MissKind,
    PublicValueCache,
)
from repro.crypto.crc import ModuloHash


class TestDirectMapped:
    def test_put_get(self):
        cache = DirectMappedCache(8)
        cache.put(b"k1", "v1")
        assert cache.get(b"k1") == "v1"

    def test_miss_returns_none(self):
        cache = DirectMappedCache(8)
        assert cache.get(b"absent") is None

    def test_collision_evicts(self):
        cache = DirectMappedCache(1)
        cache.put(b"a", 1)
        cache.put(b"b", 2)
        assert cache.get(b"a") is None
        assert cache.get(b"b") == 2

    def test_invalidate(self):
        cache = DirectMappedCache(8)
        cache.put(b"k", 1)
        cache.invalidate(b"k")
        assert cache.get(b"k") is None

    def test_flush(self):
        cache = DirectMappedCache(8)
        cache.put(b"k", 1)
        cache.flush()
        assert len(cache) == 0

    def test_len(self):
        cache = DirectMappedCache(16)
        for i in range(5):
            cache.put(i.to_bytes(4, "big"), i)
        assert 1 <= len(cache) <= 5

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            DirectMappedCache(0)


class TestMissClassification:
    def test_cold_miss(self):
        cache = DirectMappedCache(4)
        cache.get(b"new")
        assert cache.stats.cold_misses == 1

    def test_hit_counted(self):
        cache = DirectMappedCache(4)
        cache.put(b"k", 1)
        cache.get(b"k")
        assert cache.stats.hits == 1

    def test_collision_miss_identified(self):
        # Two keys, same slot, cache big enough in the ideal model:
        # re-reading the evicted key is a collision miss.
        cache = DirectMappedCache(4, index_hash=ModuloHash())
        a = (0).to_bytes(4, "big")
        b = (4).to_bytes(4, "big")  # same slot under modulo 4
        cache.get(a); cache.put(a, 1)
        cache.get(b); cache.put(b, 2)
        cache.get(a)  # would hit in a 4-entry LRU: collision miss
        assert cache.stats.collision_misses == 1

    def test_capacity_miss_identified(self):
        cache = DirectMappedCache(2, index_hash=ModuloHash())
        keys = [(i).to_bytes(4, "big") for i in range(4)]
        for key in keys:
            cache.get(key)
            cache.put(key, key)
        # Re-reading key 0: gone from the 2-entry ideal LRU too.
        cache.get(keys[0])
        assert cache.stats.capacity_misses >= 1

    def test_miss_rate(self):
        cache = DirectMappedCache(4)
        cache.get(b"x")  # miss
        cache.put(b"x", 1)
        cache.get(b"x")  # hit
        assert cache.stats.miss_rate == pytest.approx(0.5)

    def test_miss_rate_empty(self):
        assert DirectMappedCache(4).stats.miss_rate == 0.0


class TestAssociative:
    def test_lru_eviction(self):
        cache = AssociativeCache(2)
        cache.put(b"a", 1)
        cache.put(b"b", 2)
        cache.get(b"a")  # a is now MRU
        cache.put(b"c", 3)  # evicts b
        assert cache.get(b"b") is None
        assert cache.get(b"a") == 1
        assert cache.get(b"c") == 3

    def test_update_existing(self):
        cache = AssociativeCache(2)
        cache.put(b"a", 1)
        cache.put(b"a", 2)
        assert cache.get(b"a") == 2
        assert len(cache) == 1

    def test_set_associative(self):
        cache = AssociativeCache(8, ways=2)
        assert cache.sets == 4
        for i in range(16):
            cache.put(i.to_bytes(4, "big"), i)
        assert len(cache) <= 8

    def test_validation(self):
        with pytest.raises(ValueError):
            AssociativeCache(4, ways=8)
        with pytest.raises(ValueError):
            AssociativeCache(6, ways=4)  # not a multiple


class TestFlowKeyCache:
    def test_install_lookup(self):
        cache = FlowKeyCache(8)
        cache.install(7, b"dest", b"src", b"\x01" * 16)
        assert cache.lookup(7, b"dest", b"src") == b"\x01" * 16

    def test_keyed_by_all_three(self):
        # (sfl, D, S) -- S included for multi-homed principals.
        cache = FlowKeyCache(64)
        cache.install(7, b"dest", b"srcA", b"\x01" * 16)
        assert cache.lookup(7, b"dest", b"srcB") is None
        assert cache.lookup(8, b"dest", b"srcA") is None
        assert cache.lookup(7, b"dst2", b"srcA") is None

    def test_flush_is_safe_soft_state(self):
        cache = FlowKeyCache(8)
        cache.install(1, b"d", b"s", b"k" * 16)
        cache.flush()
        assert cache.lookup(1, b"d", b"s") is None  # just a miss, no error


class TestMasterKeyCache:
    def test_roundtrip(self):
        cache = MasterKeyCache(4)
        cache.install(b"bob", b"\x09" * 16)
        assert cache.lookup(b"bob") == b"\x09" * 16

    def test_invalidate_on_rekey(self):
        cache = MasterKeyCache(4)
        cache.install(b"bob", b"\x09" * 16)
        cache.invalidate(b"bob")
        assert cache.lookup(b"bob") is None

    def test_lru_bounded(self):
        cache = MasterKeyCache(2)
        for name in (b"a", b"b", b"c"):
            cache.install(name, name * 8)
        assert len(cache) == 2


class TestPublicValueCache:
    def test_roundtrip(self):
        cache = PublicValueCache(4)
        cache.install(b"bob", "cert-object")
        assert cache.lookup(b"bob") == "cert-object"

    def test_pinning_survives_flush(self):
        # "An alternative is to pin certain certificates in the cache
        # upon initialization."
        cache = PublicValueCache(4)
        cache.pin(b"ca", "pinned-cert")
        cache.install(b"bob", "cert")
        cache.flush()
        assert cache.lookup(b"ca") == "pinned-cert"
        assert cache.lookup(b"bob") is None

    def test_pinned_beats_cached(self):
        cache = PublicValueCache(4)
        cache.install(b"x", "cached")
        cache.pin(b"x", "pinned")
        assert cache.lookup(b"x") == "pinned"
