"""Master key daemon tests: upcalls, caching, verification, rekeying."""

import random

import pytest

from repro.core.certificates import (
    CertificateAuthority,
    CertificateDirectory,
    CertificateError,
)
from repro.core.keying import Principal
from repro.core.mkd import MasterKeyDaemon
from repro.crypto.dh import DHPrivateKey, WELL_KNOWN_GROUPS

GROUP = WELL_KNOWN_GROUPS["TEST128"]


def make_world(seed=0):
    rng = random.Random(seed)
    ca = CertificateAuthority(rng, key_bits=512)
    directory = CertificateDirectory()
    daemons = {}
    keys = {}
    for name in ("alice", "bob", "carol"):
        principal = Principal.from_name(name)
        key = DHPrivateKey.generate(GROUP, rng)
        keys[name] = key
        directory.publish(ca.issue(principal, key))
        daemons[name] = MasterKeyDaemon(
            principal=principal,
            private_key=key,
            ca_public=ca.public_key,
            fetch=directory.fetch,
            now=lambda: 100.0,
        )
    return ca, directory, daemons, keys


class TestMasterKeys:
    def test_pair_symmetry(self):
        _, _, daemons, _ = make_world()
        k_ab = daemons["alice"].master_key(Principal.from_name("bob"))
        k_ba = daemons["bob"].master_key(Principal.from_name("alice"))
        assert k_ab == k_ba

    def test_pairs_are_distinct(self):
        _, _, daemons, _ = make_world()
        alice = daemons["alice"]
        assert alice.master_key(Principal.from_name("bob")) != alice.master_key(
            Principal.from_name("carol")
        )

    def test_caching_avoids_recomputation(self):
        _, directory, daemons, _ = make_world()
        alice = daemons["alice"]
        bob = Principal.from_name("bob")
        alice.master_key(bob)
        alice.master_key(bob)
        assert alice.master_keys_computed == 1
        assert alice.certificate_fetches == 1
        assert directory.fetches == 1

    def test_upcall_counts(self):
        _, _, daemons, _ = make_world()
        alice = daemons["alice"]
        alice.upcall_master_key(Principal.from_name("bob"))
        alice.upcall_master_key(Principal.from_name("bob"))
        assert alice.upcalls == 2
        assert alice.master_keys_computed == 1


class TestVerification:
    def test_wrong_subject_from_directory_rejected(self):
        ca, directory, daemons, keys = make_world()
        alice = daemons["alice"]
        evil = Principal.from_name("bob")
        # Sabotage the directory: return carol's cert for bob.
        carol_cert = directory.fetch(Principal.from_name("carol").wire_id)
        directory._certs[evil.wire_id] = carol_cert
        with pytest.raises(CertificateError):
            alice.master_key(evil)
        assert alice.verification_failures == 1

    def test_expired_certificate_rejected(self):
        rng = random.Random(3)
        ca = CertificateAuthority(rng, key_bits=512)
        directory = CertificateDirectory()
        bob_p = Principal.from_name("bob")
        bob_key = DHPrivateKey.generate(GROUP, rng)
        directory.publish(ca.issue(bob_p, bob_key, not_after=50.0))
        alice = MasterKeyDaemon(
            principal=Principal.from_name("alice"),
            private_key=DHPrivateKey.generate(GROUP, rng),
            ca_public=ca.public_key,
            fetch=directory.fetch,
            now=lambda: 100.0,  # past bob's expiry
        )
        with pytest.raises(CertificateError):
            alice.master_key(bob_p)


class TestCostAccounting:
    def test_costs_charged_on_misses_only(self):
        rng = random.Random(4)
        ca = CertificateAuthority(rng, key_bits=512)
        directory = CertificateDirectory()
        bob_p = Principal.from_name("bob")
        directory.publish(ca.issue(bob_p, DHPrivateKey.generate(GROUP, rng)))
        charged = []
        alice = MasterKeyDaemon(
            principal=Principal.from_name("alice"),
            private_key=DHPrivateKey.generate(GROUP, rng),
            ca_public=ca.public_key,
            fetch=directory.fetch,
            charge=charged.append,
            modexp_cost=0.06,
            fetch_cost=0.02,
            upcall_cost=0.0005,
        )
        alice.upcall_master_key(bob_p)
        assert 0.06 in charged and 0.02 in charged and 0.0005 in charged
        charged.clear()
        alice.upcall_master_key(bob_p)
        # Warm path: only the upcall crossing.
        assert charged == [0.0005]


class TestRekeying:
    def test_private_value_change_flushes_mkc(self):
        _, _, daemons, keys = make_world()
        alice = daemons["alice"]
        bob = Principal.from_name("bob")
        old = alice.master_key(bob)
        new_key = DHPrivateKey.generate(GROUP, random.Random(77))
        alice.change_private_value(new_key)
        new = alice.master_key(bob)
        assert new != old
        assert alice.master_keys_computed == 2

    def test_pinned_certificate_skips_fetch(self):
        _, directory, daemons, _ = make_world()
        alice = daemons["alice"]
        bob_cert = directory.fetch(Principal.from_name("bob").wire_id)
        directory.fetches = 0
        alice.pin_certificate(bob_cert)
        alice.master_key(Principal.from_name("bob"))
        assert directory.fetches == 0
        assert alice.certificate_fetches == 0
