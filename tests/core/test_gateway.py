"""Gateway tunnel mode tests (Section 7.1's host/gateway security)."""

import pytest

from repro.core.deploy import FBSDomain
from repro.netsim import Network
from repro.netsim.ipv4 import IPv4Packet
from repro.netsim.sockets import TcpClient, TcpServer, UdpSocket


def build_site_to_site(seed=0, per_conversation=True):
    """Two LANs joined by FBS gateways across a WAN segment."""
    net = Network(seed=seed)
    net.add_segment("lan1", "10.0.1.0")
    net.add_segment("lan2", "10.0.2.0")
    net.add_segment("wan", "192.168.0.0")
    a = net.add_host("a", segment="lan1")
    b = net.add_host("b", segment="lan2")
    gw1 = net.add_router("gw1", segments=["lan1", "wan"])
    gw2 = net.add_router("gw2", segments=["lan2", "wan"])
    net.add_default_route(a, "lan1", gw1)
    net.add_default_route(b, "lan2", gw2)
    net.add_default_route(gw1, "wan", gw2)
    net.add_default_route(gw2, "wan", gw1)

    domain = FBSDomain(seed=seed + 40)
    t1 = domain.enroll_gateway(gw1, per_conversation=per_conversation)
    t2 = domain.enroll_gateway(gw2, per_conversation=per_conversation)
    t1.add_peer("10.0.2.0", 24, gw2.address)
    t2.add_peer("10.0.1.0", 24, gw1.address)
    return net, a, b, gw1, gw2, t1, t2


class TestSiteToSite:
    def test_udp_through_tunnel(self):
        net, a, b, _, _, t1, t2 = build_site_to_site(1)
        rx = UdpSocket(b, 5000)
        UdpSocket(a).sendto(b"through the tunnel", b.address, 5000)
        net.sim.run()
        assert rx.received[0][0] == b"through the tunnel"
        assert t1.encapsulated == 1
        assert t2.decapsulated == 1

    def test_reverse_direction(self):
        net, a, b, _, _, t1, t2 = build_site_to_site(2)
        rx = UdpSocket(a, 5000)
        UdpSocket(b).sendto(b"coming back", a.address, 5000)
        net.sim.run()
        assert rx.received[0][0] == b"coming back"
        assert t2.encapsulated == 1

    def test_interior_hosts_need_no_keys(self):
        net, a, b, *_ = build_site_to_site(3)
        assert a.security is None and b.security is None
        rx = UdpSocket(b, 5000)
        UdpSocket(a).sendto(b"unmodified hosts", b.address, 5000)
        net.sim.run()
        assert rx.received

    def test_wan_sees_only_gateway_addresses(self):
        net, a, b, gw1, gw2, _, _ = build_site_to_site(4)
        frames = []
        net.segment("wan").attach_tap(frames.append)
        UdpSocket(b, 5000)
        UdpSocket(a).sendto(b"hide my endpoints", b.address, 5000)
        net.sim.run()
        endpoints = set()
        for frame in frames:
            packet = IPv4Packet.decode(frame)
            endpoints.add(packet.header.src)
            endpoints.add(packet.header.dst)
        # Traffic-flow confidentiality: interior addresses never appear.
        assert a.address not in endpoints
        assert b.address not in endpoints

    def test_wan_confidentiality(self):
        net, a, b, *_ = build_site_to_site(5)
        frames = []
        net.segment("wan").attach_tap(frames.append)
        UdpSocket(b, 5000)
        UdpSocket(a).sendto(b"TUNNEL-PAYLOAD-SECRET", b.address, 5000)
        net.sim.run()
        assert all(b"TUNNEL-PAYLOAD-SECRET" not in frame for frame in frames)

    def test_lan_side_is_clear(self):
        # Gateway mode protects the WAN leg only: the LAN legs carry the
        # original packets (the coarser guarantee of Section 7.1's first
        # paragraph).
        net, a, b, *_ = build_site_to_site(6)
        frames = []
        net.segment("lan2").attach_tap(frames.append)
        UdpSocket(b, 5000)
        UdpSocket(a).sendto(b"CLEAR-ON-LAN", b.address, 5000)
        net.sim.run()
        assert any(b"CLEAR-ON-LAN" in frame for frame in frames)

    def test_tcp_through_tunnel(self):
        net, a, b, *_ = build_site_to_site(7)
        server = TcpServer(b, 9000)
        client = TcpClient(a, b.address, 9000)
        payload = bytes(range(256)) * 60

        def go():
            client.send(payload)
            client.close()

        client.conn.on_connect = go
        net.sim.run(until=120.0)
        net.sim.run()
        assert bytes(server.received[0]) == payload

    def test_non_tunnel_traffic_forwarded_clear(self):
        # Traffic to a network with no tunnel peer forwards untouched.
        net, a, b, gw1, _, t1, _ = build_site_to_site(8)
        # a talks to gw1's own WAN-side network (no peer configured).
        wan_host = net.add_host("w", segment="wan")
        net.add_default_route(wan_host, "wan", gw1)
        rx = UdpSocket(wan_host, 5000)
        UdpSocket(a).sendto(b"no tunnel here", wan_host.address, 5000)
        net.sim.run()
        assert rx.received[0][0] == b"no tunnel here"
        assert t1.encapsulated == 0


class TestFlowGranularity:
    def test_per_conversation_flows(self):
        net, a, b, _, _, t1, _ = build_site_to_site(9, per_conversation=True)
        for port in (5000, 5001, 5002):
            UdpSocket(b, port)
        socks = [UdpSocket(a) for _ in range(3)]
        for i, sock in enumerate(socks):
            sock.sendto(b"conv", b.address, 5000 + i)
        net.sim.run()
        # Three end-to-end conversations = three tunnel flows, each with
        # its own key: a compromise exposes one conversation, not the
        # whole gateway pair.
        assert t1.endpoint.metrics.flows_started == 3

    def test_bulk_gateway_flow(self):
        net, a, b, _, _, t1, _ = build_site_to_site(10, per_conversation=False)
        for port in (5000, 5001, 5002):
            UdpSocket(b, port)
        socks = [UdpSocket(a) for _ in range(3)]
        for i, sock in enumerate(socks):
            sock.sendto(b"conv", b.address, 5000 + i)
        net.sim.run()
        # Host-level alternative: everything in one flow.
        assert t1.endpoint.metrics.flows_started == 1


class TestTamper:
    def test_modified_tunnel_packet_rejected(self):
        net, a, b, gw1, gw2, t1, t2 = build_site_to_site(11)
        frames = []
        net.segment("wan").attach_tap(frames.append)
        rx = UdpSocket(b, 5000)
        UdpSocket(a).sendto(b"genuine", b.address, 5000)
        net.sim.run()
        assert len(rx.received) == 1
        # Re-inject a corrupted copy of the tunnel packet at gw2.
        packet = IPv4Packet.decode(frames[0])
        packet.payload = packet.payload[:-1] + bytes([packet.payload[-1] ^ 1])
        packet.header.identification = 0xBEE
        gw2.stack.ip_input(packet.encode())
        assert t2.rejected == 1
        assert len(rx.received) == 1

    def test_requires_forwarding_host(self):
        net = Network(seed=12)
        net.add_segment("lan", "10.0.0.0")
        plain = net.add_host("plain", segment="lan")
        domain = FBSDomain(seed=13)
        with pytest.raises(ValueError):
            domain.enroll_gateway(plain)
