"""Replay guard extension tests."""

import pytest

from repro.core.config import FBSConfig
from repro.core.deploy import FBSDomain
from repro.core.header import FBSHeader
from repro.core.keying import Principal
from repro.core.replay_guard import DuplicateDatagramError, ReplayGuard


def header(sfl=1, confounder=7, mac=b"\x01" * 16, timestamp=100):
    return FBSHeader(sfl=sfl, confounder=confounder, mac=mac, timestamp=timestamp)


class TestGuardUnit:
    def test_first_sighting_accepted(self):
        guard = ReplayGuard()
        guard.check_and_remember(header(), now=0.0)  # no raise

    def test_duplicate_rejected(self):
        guard = ReplayGuard()
        guard.check_and_remember(header(), now=0.0)
        with pytest.raises(DuplicateDatagramError):
            guard.check_and_remember(header(), now=1.0)
        assert guard.duplicates_rejected == 1

    def test_distinct_confounders_pass(self):
        guard = ReplayGuard()
        guard.check_and_remember(header(confounder=1), now=0.0)
        guard.check_and_remember(header(confounder=2), now=0.0)

    def test_distinct_flows_pass(self):
        guard = ReplayGuard()
        guard.check_and_remember(header(sfl=1), now=0.0)
        guard.check_and_remember(header(sfl=2), now=0.0)

    def test_window_expiry_readmits(self):
        guard = ReplayGuard(window=100.0)
        guard.check_and_remember(header(), now=0.0)
        # Past the window the memory is purged; the freshness check is
        # what rejects such old datagrams in the full protocol.
        guard.check_and_remember(header(), now=200.0)

    def test_capacity_bounded(self):
        guard = ReplayGuard(capacity=10)
        for i in range(50):
            guard.check_and_remember(header(confounder=i), now=0.0)
        assert len(guard) == 10

    def test_flush_is_safe(self):
        guard = ReplayGuard()
        guard.check_and_remember(header(), now=0.0)
        guard.flush()
        guard.check_and_remember(header(), now=1.0)  # re-admitted, no error

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            ReplayGuard(capacity=0)


class TestGuardInProtocol:
    def _pair(self):
        config = FBSConfig(replay_guard_size=256)
        domain = FBSDomain(seed=5, config=config)
        clock = {"now": 0.0}
        alice = domain.make_endpoint(Principal.from_name("alice"), now=lambda: clock["now"])
        bob = domain.make_endpoint(Principal.from_name("bob"), now=lambda: clock["now"])
        return alice, bob, clock

    def test_in_window_replay_now_rejected(self):
        alice, bob, clock = self._pair()
        wire = alice.protect(b"pay me once", bob.principal, secret=True)
        assert bob.unprotect(wire, alice.principal, secret=True) == b"pay me once"
        clock["now"] = 5.0  # well inside the freshness window
        with pytest.raises(DuplicateDatagramError):
            bob.unprotect(wire, alice.principal, secret=True)

    def test_fresh_datagrams_unaffected(self):
        alice, bob, clock = self._pair()
        for i in range(20):
            wire = alice.protect(b"msg %d" % i, bob.principal)
            assert bob.unprotect(wire, alice.principal) == b"msg %d" % i

    def test_guard_off_by_default(self):
        domain = FBSDomain(seed=6)
        alice = domain.make_endpoint(Principal.from_name("alice"))
        bob = domain.make_endpoint(Principal.from_name("bob"))
        assert bob.replay_guard is None
        wire = alice.protect(b"dup ok", bob.principal)
        assert bob.unprotect(wire, alice.principal) == b"dup ok"
        # The paper's FBS: an in-window replay is accepted.
        assert bob.unprotect(wire, alice.principal) == b"dup ok"

    def test_forgery_cannot_poison_guard(self):
        # A tampered datagram dies at the MAC check *before* the guard,
        # so an attacker cannot pre-insert the legitimate datagram's id.
        alice, bob, clock = self._pair()
        wire = bytearray(alice.protect(b"real", bob.principal))
        forged = bytearray(wire)
        forged[-1] ^= 0x01
        with pytest.raises(Exception):
            bob.unprotect(bytes(forged), alice.principal)
        assert bob.unprotect(bytes(wire), alice.principal) == b"real"


class TestWindowFreshnessRelationship:
    """The guard's memory must outlive freshness: window >= 2*hw + 60."""

    def test_exact_relationship_accepted(self):
        guard = ReplayGuard(window=300.0, freshness_half_window=120.0)
        assert guard.window == 300.0

    def test_short_window_rejected(self):
        with pytest.raises(ValueError, match="freshness span"):
            ReplayGuard(window=299.0, freshness_half_window=120.0)

    def test_unrelated_window_still_allowed(self):
        # Without a declared freshness window the guard stays generic
        # (standalone uses pick their own trade-off).
        assert ReplayGuard(window=100.0).window == 100.0

    def test_window_must_be_positive(self):
        with pytest.raises(ValueError):
            ReplayGuard(window=0.0)

    def test_endpoint_construction_pins_the_relationship(self):
        # FBSEndpoint builds its guard from the config's freshness
        # half-window; the constructor validation proves the derived
        # window always satisfies the 2*hw + 60 bound.
        domain = FBSDomain(
            seed=7,
            config=FBSConfig(replay_guard_size=16, freshness_half_window=45.0),
        )
        bob = domain.make_endpoint(Principal.from_name("bob"))
        assert bob.replay_guard is not None
        assert bob.replay_guard.window == 2 * 45.0 + 60.0
