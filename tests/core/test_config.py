"""Configuration validation tests."""

import pytest

from repro.core.config import AlgorithmSuite, FBSConfig, HashAlgorithm, MacAlgorithm


class TestAlgorithmSuite:
    def test_defaults_match_paper(self):
        suite = AlgorithmSuite()
        assert suite.flow_key_hash is HashAlgorithm.MD5
        assert suite.mac is MacAlgorithm.KEYED_MD5
        assert suite.mac_bits == 128
        assert suite.mac_bytes == 16

    def test_mac_bits_must_be_byte_aligned(self):
        with pytest.raises(ValueError):
            AlgorithmSuite(mac_bits=100)

    def test_mac_bits_cannot_exceed_digest(self):
        with pytest.raises(ValueError):
            AlgorithmSuite(mac=MacAlgorithm.KEYED_MD5, mac_bits=160)

    def test_mac_bits_floor(self):
        with pytest.raises(ValueError):
            AlgorithmSuite(mac_bits=16)

    def test_null_mac_returns_immediately(self):
        assert MacAlgorithm.NULL.func(b"key", b"data") == b"\x00" * 16

    def test_hash_algorithm_functions(self):
        assert len(HashAlgorithm.MD5.func(b"x")) == 16
        assert len(HashAlgorithm.SHS.func(b"x")) == 20
        assert HashAlgorithm.MD5.digest_size == 16
        assert HashAlgorithm.SHS.digest_size == 20

    def test_mac_functions_dispatch(self):
        for algorithm in MacAlgorithm:
            out = algorithm.func(b"key-material-16b", b"data")
            assert len(out) == algorithm.digest_size


class TestFBSConfig:
    def test_defaults_match_paper(self):
        config = FBSConfig()
        assert config.threshold == 600.0
        assert config.fst_size == 64
        assert config.freshness_half_window == 120.0

    def test_validation(self):
        with pytest.raises(ValueError):
            FBSConfig(threshold=0)
        with pytest.raises(ValueError):
            FBSConfig(fst_size=0)
        with pytest.raises(ValueError):
            FBSConfig(tfkc_size=0)
        with pytest.raises(ValueError):
            FBSConfig(freshness_half_window=-1)

    def test_with_override(self):
        config = FBSConfig().with_(threshold=300.0)
        assert config.threshold == 300.0
        assert config.fst_size == 64

    def test_frozen(self):
        config = FBSConfig()
        with pytest.raises(Exception):
            config.threshold = 1.0
