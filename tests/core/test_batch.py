"""Batch datapath API: differential equivalence with the scalar path.

``protect_batch``/``unprotect_batch`` exist for the load engine's sake
(ISSUE 5); their contract is *semantic identity* with a scalar loop --
byte-identical wire output, identical registry snapshots, and the same
mutually exclusive per-datagram rejection reasons.  These tests run the
two paths in twin worlds (same domain seed) and compare everything.
"""

import pytest

from repro.core.config import FBSConfig
from repro.core.deploy import FBSDomain
from repro.core.errors import FBSError, ReceiveError
from repro.core.keying import Principal
from repro.core.protocol import BatchReceiveResult


class Clock:
    def __init__(self, start=0.0):
        self.now = start

    def __call__(self):
        return self.now


def make_pair(config=None, seed=7):
    clock = Clock()
    domain = FBSDomain(seed=seed, config=config or FBSConfig())
    alice = domain.make_endpoint(Principal.from_name("alice"), now=clock)
    bob = domain.make_endpoint(Principal.from_name("bob"), now=clock)
    return alice, bob, clock


BODIES = [bytes([i]) * (1 + 13 * i) for i in range(12)]
STAMPS = [0.5 * i for i in range(12)]


def scalar_protect(alice, bob, clock, secret):
    wires = []
    for body, stamp in zip(BODIES, STAMPS):
        clock.now = stamp
        wires.append(alice.protect(body, bob.principal, secret=secret))
    return wires


def batch_protect(alice, bob, clock, secret):
    clock.now = STAMPS[-1]
    return alice.protect_batch(
        BODIES, bob.principal, secret=secret, stamps=STAMPS
    )


class TestProtectBatchDifferential:
    @pytest.mark.parametrize("secret", [False, True])
    def test_wire_bytes_and_counters_match_scalar(self, secret):
        a_s, b_s, clk_s = make_pair()
        a_b, b_b, clk_b = make_pair()
        wires_scalar = scalar_protect(a_s, b_s, clk_s, secret)
        wires_batch = batch_protect(a_b, b_b, clk_b, secret)
        assert wires_batch == wires_scalar
        clk_b.now = clk_s.now
        assert a_b.registry.snapshot() == a_s.registry.snapshot()

    def test_empty_batch(self):
        alice, bob, _ = make_pair()
        before = alice.registry.snapshot()
        assert alice.protect_batch([], bob.principal) == []
        assert alice.registry.snapshot() == before


def corrupt(wires):
    """A receive stream exercising every rejection reason but keying."""
    stream = list(wires)
    stream[3] = stream[3][:-1] + bytes([stream[3][-1] ^ 0xFF])  # mac
    stream[5] = stream[5][:4]  # header (truncated)
    stream.append(stream[0])  # duplicate (replay of an accepted one)
    return stream, STAMPS + [STAMPS[-1]]


class TestUnprotectBatchDifferential:
    @pytest.mark.parametrize("secret", [False, True])
    def test_bodies_reasons_and_counters_match_scalar(self, secret):
        config = FBSConfig(replay_guard_size=256)
        a_s, b_s, clk_s = make_pair(config)
        a_b, b_b, clk_b = make_pair(config)
        stream_s, stamps = corrupt(scalar_protect(a_s, b_s, clk_s, secret))
        stream_b, _ = corrupt(batch_protect(a_b, b_b, clk_b, secret))
        assert stream_b == stream_s

        scalar_bodies = []
        for wire, stamp in zip(stream_s, stamps):
            clk_s.now = stamp
            try:
                scalar_bodies.append(
                    b_s.unprotect(wire, a_s.principal, secret=secret)
                )
            except ReceiveError:
                scalar_bodies.append(None)

        clk_b.now = stamps[-1]
        result = b_b.unprotect_batch(
            stream_b, a_b.principal, secret=secret, stamps=stamps
        )
        assert result.bodies == scalar_bodies
        assert b_b.registry.snapshot() == b_s.registry.snapshot()
        assert result.rejected == {"mac": 1, "header": 1, "duplicate": 1}
        reasons = [result.reasons[3], result.reasons[5], result.reasons[-1]]
        assert reasons == ["mac", "header", "duplicate"]

    def test_stale_timestamp_reason(self):
        alice, bob, clock = make_pair()
        wire = alice.protect(b"old news", bob.principal)
        result = bob.unprotect_batch(
            [wire], alice.principal, stamps=[clock.now + 500.0]
        )
        assert result.bodies == [None]
        assert result.reasons == ["stale_timestamp"]

    def test_keying_reason_for_unknown_source(self):
        alice, bob, _ = make_pair()
        wire = alice.protect(b"who?", bob.principal)
        stranger = Principal.from_name("mallory")
        result = bob.unprotect_batch([wire], stranger)
        assert result.reasons == ["keying"]

    def test_ledger_after_mixed_batch(self):
        config = FBSConfig(replay_guard_size=256)
        alice, bob, clock = make_pair(config)
        stream, stamps = corrupt(scalar_protect(alice, bob, clock, False))
        clock.now = stamps[-1]
        bob.unprotect_batch(stream, alice.principal, stamps=stamps)
        counters = bob.registry.snapshot()["counters"]
        rejected = sum(
            v
            for k, v in counters.items()
            if k.startswith("datagrams_rejected")
        )
        assert counters["datagrams_received"] == (
            counters["datagrams_accepted"] + rejected
        )


class TestBatchValidation:
    def test_parallel_length_mismatches_raise_fbserror(self):
        alice, bob, _ = make_pair()
        with pytest.raises(FBSError):
            alice.protect_batch([b"x"], bob.principal, stamps=[0.0, 1.0])
        with pytest.raises(FBSError):
            alice.protect_batch([b"x"], bob.principal, attributes=[])
        with pytest.raises(FBSError):
            bob.unprotect_batch([b"x"], alice.principal, stamps=[])

    def test_result_properties(self):
        result = BatchReceiveResult(
            bodies=[b"a", None, None], reasons=[None, "mac", "mac"]
        )
        assert result.accepted == 1
        assert result.rejected == {"mac": 2}
