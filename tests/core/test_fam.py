"""Flow association mechanism tests (Figure 1 wiring)."""

import pytest

from repro.core.fam import DatagramAttributes, FlowAssociationMechanism
from repro.core.flows import FlowStateTable
from repro.core.policy import FiveTuplePolicy, ThresholdSweeper
from repro.netsim.addresses import FiveTuple, IPAddress


def make_attrs(sport=1000):
    ft = FiveTuple(
        proto=17,
        saddr=IPAddress("10.0.0.1"),
        sport=sport,
        daddr=IPAddress("10.0.0.2"),
        dport=53,
    )
    return DatagramAttributes(destination_id=ft.daddr.to_bytes(), five_tuple=ft, size=64)


class TestClassification:
    def test_produces_valid_entries(self):
        fam = FlowAssociationMechanism(mapper=FiveTuplePolicy())
        entry = fam.classify(make_attrs(), 0.0)
        assert entry.valid and entry.sfl != 0
        assert fam.classifications == 1

    def test_stable_within_flow(self):
        fam = FlowAssociationMechanism(mapper=FiveTuplePolicy())
        a = fam.classify(make_attrs(), 0.0).sfl
        b = fam.classify(make_attrs(), 1.0).sfl
        assert a == b

    def test_distinct_across_conversations(self):
        fam = FlowAssociationMechanism(mapper=FiveTuplePolicy())
        a = fam.classify(make_attrs(sport=1), 0.0).sfl
        b = fam.classify(make_attrs(sport=2), 0.0).sfl
        assert a != b

    def test_invalid_mapper_output_caught(self):
        class BrokenMapper:
            def classify(self, attributes, now, fst, allocator):
                return fst.entry_at(0)  # never validated

        fam = FlowAssociationMechanism(mapper=BrokenMapper())
        with pytest.raises(RuntimeError):
            fam.classify(make_attrs(), 0.0)


class TestSweeperIntegration:
    def test_sweeper_runs_on_interval(self):
        policy = FiveTuplePolicy(threshold=100.0, check_threshold=False)
        sweeper = ThresholdSweeper(threshold=100.0)
        fam = FlowAssociationMechanism(
            mapper=policy, sweeper=sweeper, sweep_interval=60.0
        )
        fam.classify(make_attrs(sport=1), 0.0)
        fam.classify(make_attrs(sport=2), 50.0)  # no sweep yet
        assert fam.fst.expirations == 0
        fam.classify(make_attrs(sport=2), 200.0)  # sweep fires, expires sport=1
        assert fam.fst.expirations >= 1

    def test_no_sweeper_is_fine(self):
        fam = FlowAssociationMechanism(mapper=FiveTuplePolicy())
        fam.classify(make_attrs(), 1e6)  # no error without a sweeper


class TestAccounting:
    def test_active_flows(self):
        fam = FlowAssociationMechanism(mapper=FiveTuplePolicy())
        fam.classify(make_attrs(sport=1), 0.0)
        fam.classify(make_attrs(sport=2), 90.0)
        assert fam.active_flows(now=100.0, threshold=50.0) == 1
        assert fam.active_flows(now=100.0, threshold=200.0) == 2

    def test_flush(self):
        fam = FlowAssociationMechanism(mapper=FiveTuplePolicy())
        fam.classify(make_attrs(), 0.0)
        fam.flush()
        assert fam.active_flows(now=0.0, threshold=1e9) == 0

    def test_custom_fst(self):
        fst = FlowStateTable(4)
        fam = FlowAssociationMechanism(mapper=FiveTuplePolicy(), fst=fst)
        fam.classify(make_attrs(), 0.0)
        assert fst.new_flows == 1

    def test_seeded_sfl_space(self):
        fam1 = FlowAssociationMechanism(mapper=FiveTuplePolicy(), sfl_seed=1)
        fam2 = FlowAssociationMechanism(mapper=FiveTuplePolicy(), sfl_seed=2)
        assert fam1.classify(make_attrs(), 0.0).sfl != fam2.classify(make_attrs(), 0.0).sfl
