"""FBS-to-IP mapping tests (Section 7)."""

import pytest

from repro.core.deploy import FBSDomain
from repro.core.header import FBSHeader
from repro.core.ip_mapping import extract_five_tuple
from repro.netsim import Network
from repro.netsim.ipv4 import IPProtocol, IPv4Header, IPv4Packet, IPV4_HEADER_LEN
from repro.netsim.sockets import TcpClient, TcpServer, UdpSocket


def build_fbs_pair(seed=0, encrypt=True, **kwargs):
    net = Network(seed=seed)
    net.add_segment("lan", "10.0.0.0")
    a = net.add_host("a", segment="lan")
    b = net.add_host("b", segment="lan")
    domain = FBSDomain(seed=seed + 50)
    ma = domain.enroll_host(a, encrypt_all=encrypt, **kwargs)
    mb = domain.enroll_host(b, encrypt_all=encrypt, **kwargs)
    return net, a, b, ma, mb


class TestFiveTupleExtraction:
    def _packet(self, proto, payload):
        return IPv4Packet(
            header=IPv4Header(
                src=__import__("repro.netsim.addresses", fromlist=["IPAddress"]).IPAddress("10.0.0.1"),
                dst=__import__("repro.netsim.addresses", fromlist=["IPAddress"]).IPAddress("10.0.0.2"),
                proto=proto,
            ),
            payload=payload,
        )

    def test_udp_tuple(self):
        ft = extract_five_tuple(self._packet(IPProtocol.UDP, b"\x04\x00\x00\x35rest"))
        assert ft.sport == 1024 and ft.dport == 53

    def test_icmp_no_tuple(self):
        assert extract_five_tuple(self._packet(IPProtocol.ICMP, b"\x08\x00\x00\x00")) is None

    def test_short_payload_no_tuple(self):
        assert extract_five_tuple(self._packet(IPProtocol.TCP, b"\x01")) is None


class TestWireFormat:
    def test_fbs_header_between_ip_and_payload(self):
        net, a, b, ma, _ = build_fbs_pair(encrypt=False)
        frames = []
        net.segment("lan").attach_tap(frames.append)
        rx = UdpSocket(b, 4000)
        UdpSocket(a).sendto(b"observe me", b.address, 4000)
        net.sim.run()
        packet = IPv4Packet.decode(frames[0])
        # The IP header parses normally (routers see nothing strange) and
        # the FBS header leads the payload.
        header = FBSHeader.decode(packet.payload, ma.config.suite)
        assert header.sfl != 0
        # With MAC-only protection the transport bytes follow in clear.
        assert b"observe me" in packet.payload

    def test_total_length_fixed_up(self):
        net, a, b, ma, _ = build_fbs_pair(encrypt=False)
        frames = []
        net.segment("lan").attach_tap(frames.append)
        UdpSocket(b, 4000)
        UdpSocket(a).sendto(b"x" * 10, b.address, 4000)
        net.sim.run()
        packet = IPv4Packet.decode(frames[0])
        assert packet.header.total_length == IPV4_HEADER_LEN + len(packet.payload)
        assert len(packet.payload) == ma.endpoint.header_size + 8 + 10  # FBS + UDP + body


class TestEndToEnd:
    def test_udp_roundtrip_encrypted(self):
        net, a, b, _, mb = build_fbs_pair()
        rx = UdpSocket(b, 4000)
        UdpSocket(a).sendto(b"top secret", b.address, 4000)
        net.sim.run()
        assert rx.received[0][0] == b"top secret"
        assert mb.inbound_accepted == 1

    def test_flows_separate_by_conversation(self):
        net, a, b, ma, _ = build_fbs_pair()
        UdpSocket(b, 4000)
        UdpSocket(b, 4001)
        s1, s2 = UdpSocket(a, 3000), UdpSocket(a, 3001)
        s1.sendto(b"one", b.address, 4000)
        s2.sendto(b"two", b.address, 4001)
        s1.sendto(b"one again", b.address, 4000)
        net.sim.run()
        assert ma.endpoint.metrics.flows_started == 2
        assert ma.endpoint.metrics.datagrams_sent == 3

    def test_raw_ip_uses_host_level_flow(self):
        net, a, b, ma, mb = build_fbs_pair(encrypt=False)
        got = []
        b.stack.register_protocol(IPProtocol.FBS_RAW, got.append)
        from repro.netsim.addresses import IPAddress

        packet = IPv4Packet(
            header=IPv4Header(src=a.address, dst=b.address, proto=IPProtocol.FBS_RAW),
            payload=b"raw datagram",
        )
        a.send_raw(packet)
        net.sim.run()
        assert len(got) == 1 and got[0].payload == b"raw datagram"
        assert ma.policy.host_level is not None

    def test_rejections_counted(self):
        net, a, b, _, mb = build_fbs_pair()
        frames = []
        net.segment("lan").attach_tap(frames.append)
        rx = UdpSocket(b, 4000)
        UdpSocket(a).sendto(b"payload", b.address, 4000)
        net.sim.run()
        # Corrupt and re-inject the captured frame.
        frame = bytearray(frames[0])
        frame[-1] ^= 0xFF
        packet = IPv4Packet.decode(bytes(frames[0]))
        packet.payload = packet.payload[:-1] + bytes([packet.payload[-1] ^ 1])
        b.stack.ip_input(packet.encode())
        assert mb.inbound_rejected == 1
        assert len(rx.received) == 1  # only the genuine datagram


class TestTcpFix:
    PAYLOAD = bytes(range(256)) * 150

    def _bulk(self, apply_fix, seed):
        net, a, b, *_ = build_fbs_pair(seed=seed, apply_tcp_fix=apply_fix)
        server = TcpServer(b, 9000)
        client = TcpClient(a, b.address, 9000)

        def go():
            client.send(self.PAYLOAD)
            client.close()

        client.conn.on_connect = go
        net.sim.run(until=120.0)
        return len(server.received[0]) if server.received else 0, a

    def test_with_fix_completes(self):
        got, _ = self._bulk(apply_fix=True, seed=1)
        assert got == len(self.PAYLOAD)

    def test_without_fix_stalls(self):
        got, sender = self._bulk(apply_fix=False, seed=2)
        assert got < len(self.PAYLOAD)
        assert sender.stack.stats.bad_headers > 0  # DF drops, the paper's bug

    def test_header_overhead_includes_padding(self):
        net, a, *_ = build_fbs_pair(seed=3)
        # 32-byte header + worst-case 8-byte CBC pad.
        assert a.security.header_overhead() == 40

    def test_header_overhead_stream_mode_no_padding(self):
        from repro.core.config import AlgorithmSuite, CipherMode, FBSConfig

        net = Network(seed=4)
        net.add_segment("lan", "10.0.0.0")
        host = net.add_host("h", segment="lan")
        config = FBSConfig(suite=AlgorithmSuite(cipher_mode=CipherMode.CFB))
        domain = FBSDomain(seed=99, config=config)
        mapping = domain.enroll_host(host)
        assert mapping.header_overhead() == 32


class TestBypass:
    def test_certificate_port_bypasses_fbs(self):
        net, a, b, ma, mb = build_fbs_pair(encrypt=False)
        frames = []
        net.segment("lan").attach_tap(frames.append)
        rx = UdpSocket(b, 500)  # the certificate service port
        UdpSocket(a).sendto(b"cert request", b.address, 500)
        net.sim.run()
        assert rx.received[0][0] == b"cert request"
        assert ma.bypassed == 1
        # On the wire the bypass datagram is plain UDP, no FBS header.
        packet = IPv4Packet.decode(frames[0])
        assert b"cert request" in packet.payload
