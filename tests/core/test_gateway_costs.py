"""Gateway tunnel CPU accounting: each side charges its own baseline.

Regression coverage for the decapsulation cost bug: ``_charge_crypto``
used to subtract the generic *send* cost on both paths, so under any
cost model where receive != send the decapsulating gateway was charged
as if it were sending.  With the symmetric calibrated model the two
baselines coincide, which is exactly why the bug survived -- these
tests pin the asymmetric case.
"""

import struct

import pytest

from repro.core.deploy import FBSDomain
from repro.netsim import Network
from repro.netsim.costmodel import CostModel
from repro.netsim.ipv4 import IPProtocol, IPv4Header, IPv4Packet

#: Everything zero except the generic per-packet costs, which differ by
#: side: fbs_crypto(n) == generic_send(n) == 2 ms, generic_receive(n)
#: == 0.5 ms.  The encapsulation charge is therefore exactly 0 and the
#: decapsulation charge exactly 1.5 ms -- any cross-charging shows up
#: as a wrong CPU-second delta.
ASYMMETRIC = CostModel(
    per_packet=2e-3,
    per_byte_touch=0.0,
    per_byte_des=0.0,
    per_byte_md5=0.0,
    per_byte_touch_residual=0.0,
    fbs_per_packet=0.0,
    modexp=0.0,
    flow_key_derivation=0.0,
    upcall=0.0,
    certificate_fetch_rtt=0.0,
    per_packet_receive=0.5e-3,
)


def build_asymmetric_site_to_site(seed=0):
    net = Network(seed=seed)
    net.add_segment("lan1", "10.0.1.0")
    net.add_segment("lan2", "10.0.2.0")
    net.add_segment("wan", "192.168.0.0")
    a = net.add_host("a", segment="lan1")
    b = net.add_host("b", segment="lan2")
    gw1 = net.add_router("gw1", segments=["lan1", "wan"], cost_model=ASYMMETRIC)
    gw2 = net.add_router("gw2", segments=["lan2", "wan"], cost_model=ASYMMETRIC)
    net.add_default_route(a, "lan1", gw1)
    net.add_default_route(b, "lan2", gw2)
    net.add_default_route(gw1, "wan", gw2)
    net.add_default_route(gw2, "wan", gw1)

    domain = FBSDomain(seed=seed + 40)
    t1 = domain.enroll_gateway(gw1)
    t2 = domain.enroll_gateway(gw2)
    t1.add_peer("10.0.2.0", 24, gw2.address)
    t2.add_peer("10.0.1.0", 24, gw1.address)
    return net, a, b, gw1, gw2, t1, t2


def _inner_udp_packet(a, b, payload=b"tunnel cost probe"):
    udp = struct.pack(">HHHH", 1234, 5000, 8 + len(payload), 0) + payload
    return IPv4Packet(
        header=IPv4Header(src=a.address, dst=b.address, proto=IPProtocol.UDP),
        payload=udp,
    )


class TestCostModelReceiveBaseline:
    def test_symmetric_by_default(self):
        model = CostModel()
        assert model.generic_receive(512) == model.generic_send(512)

    def test_per_packet_receive_overrides_only_the_fixed_cost(self):
        model = CostModel(per_packet=3e-4, per_packet_receive=1e-4)
        assert model.generic_send(100) == pytest.approx(
            3e-4 + model.per_byte_touch * 100
        )
        assert model.generic_receive(100) == pytest.approx(
            1e-4 + model.per_byte_touch * 100
        )

    def test_with_roundtrip(self):
        model = CostModel().with_(per_packet_receive=1e-4)
        assert model.generic_receive(0) == pytest.approx(1e-4)


class TestTunnelChargesItsOwnSide:
    def test_decapsulation_charges_the_receive_baseline(self):
        # Regression: the decap path used to subtract generic_send, so
        # under this model it charged nothing at all.
        net, a, b, gw1, gw2, t1, t2 = build_asymmetric_site_to_site(7)
        outer = t1._forward_hook(_inner_udp_packet(a, b))
        assert outer is not None and t1.encapsulated == 1

        payload_bytes = len(outer.payload) - t2.endpoint.header_size
        expected = max(
            0.0,
            ASYMMETRIC.fbs_crypto(payload_bytes, encrypt=True, mac=True)
            - ASYMMETRIC.generic_receive(payload_bytes),
        )
        assert expected == pytest.approx(1.5e-3)  # the model is rigged so

        before = gw2.cpu_seconds_used
        t2._tunnel_input(outer)
        delta = gw2.cpu_seconds_used - before
        assert t2.decapsulated == 1
        assert delta == pytest.approx(expected)

    def test_encapsulation_still_charges_the_send_baseline(self):
        net, a, b, gw1, gw2, t1, t2 = build_asymmetric_site_to_site(8)
        before = gw1.cpu_seconds_used
        outer = t1._forward_hook(_inner_udp_packet(a, b))
        delta = gw1.cpu_seconds_used - before
        assert outer is not None
        # fbs_crypto == generic_send under this model: zero extra.
        assert delta == pytest.approx(0.0)

    def test_charge_advances_the_cpu_busy_clock(self):
        # The charge lands on the simulated CPU, not just a counter:
        # the busy-until horizon moves by the same sim-clock delta.
        net, a, b, gw1, gw2, t1, t2 = build_asymmetric_site_to_site(9)
        outer = t1._forward_hook(_inner_udp_packet(a, b))
        busy_before = max(net.sim.now, gw2.cpu_busy_until)
        t2._tunnel_input(outer)
        assert gw2.cpu_busy_until - busy_before == pytest.approx(1.5e-3)
