"""Deployment helper tests: domains, enrollment, certificate server."""

import pytest

from repro.core.deploy import CertificateServer, FBSDomain
from repro.core.keying import Principal
from repro.netsim import Network
from repro.netsim.sockets import UdpSocket


class TestDomain:
    def test_enrolled_principals_interoperate(self):
        domain = FBSDomain(seed=1)
        alice = domain.make_endpoint(Principal.from_name("alice"))
        bob = domain.make_endpoint(Principal.from_name("bob"))
        wire = alice.protect(b"hi", bob.principal, secret=True)
        assert bob.unprotect(wire, alice.principal, secret=True) == b"hi"

    def test_cross_domain_rejected(self):
        domain1 = FBSDomain(seed=1)
        domain2 = FBSDomain(seed=2)
        alice = domain1.make_endpoint(Principal.from_name("alice"))
        # bob enrolled in a different domain (different CA): alice's
        # directory doesn't know him.
        bob = domain2.make_endpoint(Principal.from_name("bob"))
        with pytest.raises(Exception):
            alice.protect(b"hi", bob.principal)

    def test_private_keys_recorded(self):
        domain = FBSDomain(seed=3)
        domain.make_endpoint(Principal.from_name("alice"))
        assert "alice" in domain.private_keys

    def test_enroll_host_installs_mapping(self):
        net = Network(seed=4)
        net.add_segment("lan", "10.0.0.0")
        host = net.add_host("h", segment="lan")
        domain = FBSDomain(seed=4)
        mapping = domain.enroll_host(host)
        assert host.security is mapping
        assert host.stack.output_hook is not None


class TestCertificateServer:
    def test_serves_certificates_over_udp(self):
        net = Network(seed=5)
        net.add_segment("lan", "10.0.0.0")
        server_host = net.add_host("certs", segment="lan")
        client_host = net.add_host("client", segment="lan")
        domain = FBSDomain(seed=5)
        # Publish a certificate for some principal.
        endpoint = domain.make_endpoint(Principal.from_name("alice"))
        server = CertificateServer(server_host, domain.directory)

        responses = []
        sock = UdpSocket(client_host)
        sock.on_receive = lambda payload, src, sport: responses.append(payload)
        sock.sendto(endpoint.principal.wire_id, server_host.address, 500)
        net.sim.run()
        assert server.requests_served == 1
        from repro.core.certificates import PublicValueCertificate

        cert = PublicValueCertificate.decode(responses[0])
        assert cert.subject.wire_id == endpoint.principal.wire_id
        cert.verify(domain.ca.public_key, now=0.0)

    def test_unknown_principal_silent(self):
        net = Network(seed=6)
        net.add_segment("lan", "10.0.0.0")
        server_host = net.add_host("certs", segment="lan")
        client_host = net.add_host("client", segment="lan")
        domain = FBSDomain(seed=6)
        server = CertificateServer(server_host, domain.directory)
        sock = UdpSocket(client_host)
        sock.sendto(b"\x00\x05ghost", server_host.address, 500)
        net.sim.run()
        assert server.requests_served == 0
        assert sock.received == []
