"""Abstract FBS endpoint tests: Figure 4 semantics over raw bytes."""

import pytest

from repro.core.config import AlgorithmSuite, CipherMode, FBSConfig, MacAlgorithm
from repro.core.deploy import FBSDomain
from repro.core.errors import MacMismatchError, StaleTimestampError
from repro.core.keying import Principal


class Clock:
    def __init__(self, start=0.0):
        self.now = start

    def __call__(self):
        return self.now


def make_pair(config=None, seed=0):
    clock = Clock()
    domain = FBSDomain(seed=seed, config=config or FBSConfig())
    alice = domain.make_endpoint(Principal.from_name("alice"), now=clock)
    bob = domain.make_endpoint(Principal.from_name("bob"), now=clock)
    return alice, bob, clock


class TestBasicExchange:
    def test_mac_only_roundtrip(self):
        alice, bob, _ = make_pair()
        wire = alice.protect(b"hello flows", bob.principal, secret=False)
        assert bob.unprotect(wire, alice.principal, secret=False) == b"hello flows"

    def test_encrypted_roundtrip(self):
        alice, bob, _ = make_pair()
        wire = alice.protect(b"secret payload", bob.principal, secret=True)
        assert bob.unprotect(wire, alice.principal, secret=True) == b"secret payload"

    def test_ciphertext_hides_plaintext(self):
        alice, bob, _ = make_pair()
        wire = alice.protect(b"CONFIDENTIAL-DATA", bob.principal, secret=True)
        assert b"CONFIDENTIAL-DATA" not in wire

    def test_mac_only_plaintext_visible(self):
        alice, bob, _ = make_pair()
        wire = alice.protect(b"public data", bob.principal, secret=False)
        assert b"public data" in wire  # integrity without confidentiality

    def test_empty_body(self):
        alice, bob, _ = make_pair()
        wire = alice.protect(b"", bob.principal, secret=True)
        assert bob.unprotect(wire, alice.principal, secret=True) == b""

    def test_large_body(self):
        alice, bob, _ = make_pair()
        body = bytes(range(256)) * 64
        wire = alice.protect(body, bob.principal, secret=True)
        assert bob.unprotect(wire, alice.principal, secret=True) == body

    def test_header_size_accounts_for_wire_overhead(self):
        alice, bob, _ = make_pair()
        wire = alice.protect(b"x" * 100, bob.principal, secret=False)
        assert len(wire) == alice.header_size + 100


class TestZeroMessageProperty:
    def test_no_prior_communication_needed(self):
        # The very first datagram decrypts: zero-message keying.
        alice, bob, _ = make_pair()
        wire = alice.protect(b"first contact", bob.principal, secret=True)
        assert bob.unprotect(wire, alice.principal, secret=True) == b"first contact"

    def test_receiver_demultiplexes_passively(self):
        # Different flows arrive unannounced and each decrypts.
        from repro.core.fam import DatagramAttributes

        alice, bob, _ = make_pair()
        wires = []
        for i in range(3):
            attrs = DatagramAttributes(
                destination_id=bob.principal.wire_id, five_tuple=None, size=10
            )
            attrs.destination_id = bob.principal.wire_id
            wires.append(
                alice.protect(
                    f"flow {i}".encode(), bob.principal, attributes=attrs, secret=True
                )
            )
        for i, wire in enumerate(wires):
            assert bob.unprotect(wire, alice.principal, secret=True) == f"flow {i}".encode()


class TestTampering:
    def test_body_tamper_detected(self):
        alice, bob, _ = make_pair()
        wire = bytearray(alice.protect(b"hands off", bob.principal, secret=False))
        wire[-1] ^= 0x01
        with pytest.raises(MacMismatchError):
            bob.unprotect(bytes(wire), alice.principal, secret=False)

    def test_confounder_tamper_detected(self):
        alice, bob, _ = make_pair()
        wire = bytearray(alice.protect(b"payload", bob.principal, secret=False))
        wire[9] ^= 0xFF  # inside the confounder field
        with pytest.raises(MacMismatchError):
            bob.unprotect(bytes(wire), alice.principal, secret=False)

    def test_timestamp_tamper_detected(self):
        alice, bob, clock = make_pair()
        wire = bytearray(alice.protect(b"payload", bob.principal, secret=False))
        wire[-1] ^= 0x01  # low bit of the timestamp: still fresh, MAC must catch it
        with pytest.raises(MacMismatchError):
            bob.unprotect(bytes(wire), alice.principal, secret=False)

    def test_sfl_tamper_detected(self):
        alice, bob, _ = make_pair()
        wire = bytearray(alice.protect(b"payload", bob.principal, secret=False))
        wire[7] ^= 0x01  # low byte of the sfl: wrong flow key -> bad MAC
        with pytest.raises(MacMismatchError):
            bob.unprotect(bytes(wire), alice.principal, secret=False)

    def test_wrong_claimed_source_detected(self):
        # Flow authentication: the datagram must come from the claimed
        # source (the flow key binds S and D).
        alice, bob, _ = make_pair()
        carol = Principal.from_name("carol")
        wire = alice.protect(b"payload", bob.principal, secret=False)
        with pytest.raises(Exception):
            bob.unprotect(wire, carol, secret=False)

    def test_metrics_track_failures(self):
        alice, bob, _ = make_pair()
        wire = bytearray(alice.protect(b"x", bob.principal, secret=False))
        wire[-6] ^= 0x01  # last MAC byte
        with pytest.raises(MacMismatchError):
            bob.unprotect(bytes(wire), alice.principal, secret=False)
        assert bob.metrics.mac_failures == 1
        assert bob.metrics.datagrams_accepted == 0


class TestFreshness:
    def test_stale_datagram_rejected(self):
        alice, bob, clock = make_pair()
        wire = alice.protect(b"old news", bob.principal)
        clock.now = 10_000.0
        with pytest.raises(StaleTimestampError):
            bob.unprotect(wire, alice.principal)
        assert bob.metrics.stale_timestamps == 1

    def test_within_window_accepted(self):
        alice, bob, clock = make_pair()
        wire = alice.protect(b"recent", bob.principal)
        clock.now = 60.0  # within the default 120 s half-window
        assert bob.unprotect(wire, alice.principal) == b"recent"


class TestCachesAreSoftState:
    def test_flush_everything_every_datagram_still_works(self):
        alice, bob, _ = make_pair()
        for i in range(5):
            alice.flush_all_caches()
            bob.flush_all_caches()
            wire = alice.protect(f"msg {i}".encode(), bob.principal, secret=True)
            bob.flush_all_caches()
            assert bob.unprotect(wire, alice.principal, secret=True) == f"msg {i}".encode()

    def test_caches_actually_hit_on_repeat(self):
        alice, bob, _ = make_pair()
        for _ in range(10):
            wire = alice.protect(b"again", bob.principal)
            bob.unprotect(wire, alice.principal)
        assert alice.metrics.send_flow_key_derivations == 1
        assert bob.metrics.receive_flow_key_derivations == 1
        assert alice.tfkc.stats.hits == 9
        assert bob.rfkc.stats.hits == 9


class TestAlgorithmSuites:
    @pytest.mark.parametrize(
        "suite",
        [
            AlgorithmSuite(mac=MacAlgorithm.HMAC_MD5),
            AlgorithmSuite(mac=MacAlgorithm.KEYED_SHS, mac_bits=160),
            AlgorithmSuite(mac=MacAlgorithm.HMAC_SHS, mac_bits=160),
            AlgorithmSuite(mac_bits=64),
            AlgorithmSuite(cipher_mode=CipherMode.CFB),
            AlgorithmSuite(cipher_mode=CipherMode.OFB),
            AlgorithmSuite(cipher_mode=CipherMode.ECB),
        ],
    )
    def test_suite_roundtrip(self, suite):
        config = FBSConfig(suite=suite)
        alice, bob, _ = make_pair(config=config)
        wire = alice.protect(b"suite test payload", bob.principal, secret=True)
        assert bob.unprotect(wire, alice.principal, secret=True) == b"suite test payload"

    def test_algorithm_id_carried(self):
        config = FBSConfig(carry_algorithm_id=True)
        alice, bob, _ = make_pair(config=config)
        wire = alice.protect(b"with alg id", bob.principal)
        assert len(wire) == 34 + len(b"with alg id")
        assert bob.unprotect(wire, alice.principal) == b"with alg id"

    def test_suites_do_not_interoperate(self):
        alice, _, _ = make_pair(config=FBSConfig())
        _, bob2, _ = make_pair(
            config=FBSConfig(suite=AlgorithmSuite(mac=MacAlgorithm.HMAC_MD5)), seed=1
        )
        # Different domains AND different suites: rejection guaranteed.
        wire = alice.protect(b"x", bob2.principal)
        with pytest.raises(Exception):
            bob2.unprotect(wire, alice.principal)


class TestFlowSeparation:
    def test_unidirectional_flows(self):
        alice, bob, _ = make_pair()
        to_bob = alice.protect(b"a->b", bob.principal)
        to_alice = bob.protect(b"b->a", alice.principal)
        assert bob.unprotect(to_bob, alice.principal) == b"a->b"
        assert alice.unprotect(to_alice, bob.principal) == b"b->a"

    def test_confounders_vary_per_datagram(self):
        from repro.core.header import FBSHeader

        alice, bob, _ = make_pair()
        suite = alice.config.suite
        headers = [
            FBSHeader.decode(alice.protect(b"same body", bob.principal), suite)
            for _ in range(5)
        ]
        assert len({h.confounder for h in headers}) == 5

    def test_identical_bodies_distinct_ciphertexts(self):
        alice, bob, _ = make_pair()
        a = alice.protect(b"identical datagram", bob.principal, secret=True)
        b = alice.protect(b"identical datagram", bob.principal, secret=True)
        assert a[alice.header_size :] != b[alice.header_size :]


class TestDesMacSuite:
    def test_footnote12_des_for_everything(self):
        # DES for both encryption and MAC (footnote 12).
        suite = AlgorithmSuite(mac=MacAlgorithm.DES_MAC, mac_bits=64)
        config = FBSConfig(suite=suite)
        alice, bob, _ = make_pair(config=config, seed=9)
        wire = alice.protect(b"all-DES datagram", bob.principal, secret=True)
        # Header shrinks: 8 + 4 + 8 + 4 = 24 bytes.
        assert alice.header_size == 24
        assert bob.unprotect(wire, alice.principal, secret=True) == b"all-DES datagram"

    def test_des_mac_tamper_detected(self):
        suite = AlgorithmSuite(mac=MacAlgorithm.DES_MAC, mac_bits=64)
        config = FBSConfig(suite=suite)
        alice, bob, _ = make_pair(config=config, seed=10)
        wire = bytearray(alice.protect(b"payload", bob.principal))
        wire[-1] ^= 0x20
        with pytest.raises(Exception):
            bob.unprotect(bytes(wire), alice.principal)


class TestTinyCaches:
    def test_correct_under_constant_eviction(self):
        # Caches smaller than the working set: every datagram may miss,
        # everything re-derives, nothing breaks (soft state).
        config = FBSConfig(tfkc_size=1, rfkc_size=1, mkc_size=1, pvc_size=1)
        domain = FBSDomain(seed=21, config=config)
        clock = Clock()
        hub = domain.make_endpoint(Principal.from_name("hub"), now=clock)
        spokes = [
            domain.make_endpoint(Principal.from_name(f"spoke{i}"), now=clock)
            for i in range(4)
        ]
        for round_ in range(3):
            for spoke in spokes:
                wire = spoke.protect(b"to hub", hub.principal, secret=True)
                assert hub.unprotect(wire, spoke.principal, secret=True) == b"to hub"
        # With a 1-entry MKC serving 4 peers, recomputation happened.
        assert hub.mkd.master_keys_computed > 4

    def test_capacity_misses_recorded(self):
        config = FBSConfig(rfkc_size=1)
        domain = FBSDomain(seed=22, config=config)
        clock = Clock()
        hub = domain.make_endpoint(Principal.from_name("hub"), now=clock)
        spokes = [
            domain.make_endpoint(Principal.from_name(f"s{i}"), now=clock)
            for i in range(3)
        ]
        for _ in range(2):
            for spoke in spokes:
                wire = spoke.protect(b"x", hub.principal)
                hub.unprotect(wire, spoke.principal)
        stats = hub.rfkc.stats
        assert stats.misses > 3
        assert stats.capacity_misses + stats.collision_misses > 0
