"""Security flow header codec tests (Figure 2)."""

import pytest

from repro.core.config import AlgorithmSuite, MacAlgorithm
from repro.core.errors import HeaderFormatError
from repro.core.header import FBS_HEADER_LEN, FBSHeader, header_length


@pytest.fixture
def suite():
    return AlgorithmSuite()


def make_header(**overrides):
    fields = dict(
        sfl=0x0123456789ABCDEF,
        confounder=0xDEADBEEF,
        mac=bytes(range(16)),
        timestamp=900_000,
    )
    fields.update(overrides)
    return FBSHeader(**fields)


class TestCodec:
    def test_roundtrip(self, suite):
        header = make_header()
        decoded = FBSHeader.decode(header.encode(suite), suite)
        assert decoded == header

    def test_paper_sizes(self, suite):
        # sfl 64b + confounder 32b + MAC 128b + timestamp 32b = 32 bytes.
        assert FBS_HEADER_LEN == 32
        assert len(make_header().encode(suite)) == 32

    def test_field_order_is_figure_2(self, suite):
        raw = make_header().encode(suite)
        assert raw[0:8] == (0x0123456789ABCDEF).to_bytes(8, "big")  # sfl
        assert raw[8:12] == bytes.fromhex("deadbeef")  # confounder
        assert raw[12:28] == bytes(range(16))  # MAC
        assert raw[28:32] == (900_000).to_bytes(4, "big")  # timestamp

    def test_decode_with_trailing_body(self, suite):
        raw = make_header().encode(suite) + b"payload bytes"
        decoded = FBSHeader.decode(raw, suite)
        assert decoded.timestamp == 900_000

    def test_truncated_rejected(self, suite):
        with pytest.raises(HeaderFormatError):
            FBSHeader.decode(b"\x00" * 10, suite)

    def test_mac_size_must_match_suite(self, suite):
        header = make_header(mac=bytes(8))
        with pytest.raises(ValueError):
            header.encode(suite)


class TestAlgorithmIdField:
    def test_roundtrip_with_suite_id(self, suite):
        header = make_header()
        raw = header.encode(suite, carry_algorithm_id=True)
        assert len(raw) == header_length(suite, True) == 34
        decoded = FBSHeader.decode(raw, suite, carry_algorithm_id=True)
        assert decoded == header

    def test_suite_mismatch_rejected(self):
        suite1 = AlgorithmSuite(suite_id=1)
        suite2 = AlgorithmSuite(suite_id=2)
        raw = make_header().encode(suite1, carry_algorithm_id=True)
        with pytest.raises(HeaderFormatError):
            FBSHeader.decode(raw, suite2, carry_algorithm_id=True)


class TestVariants:
    def test_truncated_mac_suite(self):
        suite = AlgorithmSuite(mac_bits=64)
        header = make_header(mac=bytes(8))
        raw = header.encode(suite)
        assert len(raw) == 8 + 4 + 8 + 4
        assert FBSHeader.decode(raw, suite).mac == bytes(8)

    def test_shs_mac_suite(self):
        suite = AlgorithmSuite(mac=MacAlgorithm.KEYED_SHS, mac_bits=160)
        header = make_header(mac=bytes(20))
        raw = header.encode(suite)
        assert len(raw) == 8 + 4 + 20 + 4


class TestDerivedFields:
    def test_iv_duplicates_confounder(self):
        # Section 7.2: "the confounder is first duplicated to provide a
        # 64-bit quantity".
        header = make_header(confounder=0x01020304)
        assert header.iv() == bytes.fromhex("0102030401020304")

    def test_confounder_bytes(self):
        assert make_header(confounder=5).confounder_bytes() == b"\x00\x00\x00\x05"

    def test_timestamp_bytes(self):
        assert make_header(timestamp=1).timestamp_bytes() == b"\x00\x00\x00\x01"


class TestValidation:
    def test_sfl_range(self):
        with pytest.raises(ValueError):
            make_header(sfl=1 << 64)

    def test_confounder_range(self):
        with pytest.raises(ValueError):
            make_header(confounder=-1)

    def test_timestamp_range(self):
        with pytest.raises(ValueError):
            make_header(timestamp=1 << 32)
