"""NetworkCertificateFetcher unit tests (wire behaviour is covered by
tests/integration/test_network_keying.py)."""

import pytest

from repro.core.deploy import CertificateServer, FBSDomain
from repro.core.errors import UnknownPrincipalError
from repro.core.keying import Principal
from repro.core.netfetch import NetworkCertificateFetcher
from repro.netsim import Network


@pytest.fixture
def world():
    net = Network(seed=61)
    net.add_segment("lan", "10.0.0.0")
    certs = net.add_host("certs", segment="lan")
    client = net.add_host("client", segment="lan")
    domain = FBSDomain(seed=62)
    server = CertificateServer(certs, domain.directory)
    fetcher = NetworkCertificateFetcher(
        host=client, server_address=certs.address, ca_public=domain.ca.public_key
    )
    return net, domain, server, fetcher


class TestFetchLifecycle:
    def test_miss_raises_and_requests(self, world):
        net, domain, server, fetcher = world
        principal = Principal.from_name("someone")
        domain.make_endpoint(principal)
        with pytest.raises(UnknownPrincipalError):
            fetcher.fetch(principal.wire_id)
        assert fetcher.requests_sent == 1
        net.sim.run()
        # Response arrived and verified: the next fetch succeeds.
        certificate = fetcher.fetch(principal.wire_id)
        assert certificate.subject.wire_id == principal.wire_id
        assert fetcher.responses_accepted == 1

    def test_repeat_misses_rate_limited(self, world):
        net, domain, server, fetcher = world
        principal = Principal.from_name("popular")
        domain.make_endpoint(principal)
        for _ in range(5):
            with pytest.raises(UnknownPrincipalError):
                fetcher.fetch(principal.wire_id)
        assert fetcher.requests_sent == 1  # within the retry interval

    def test_retry_after_interval(self, world):
        net, domain, server, fetcher = world
        fetcher._retry_interval = 0.5
        ghost_id = b"\x00\x05ghost"  # never published: responses never come
        with pytest.raises(UnknownPrincipalError):
            fetcher.fetch(ghost_id)
        net.sim.run(until=net.sim.now + 1.0)
        with pytest.raises(UnknownPrincipalError):
            fetcher.fetch(ghost_id)
        assert fetcher.requests_sent == 2

    def test_prefetch_idempotent(self, world):
        net, domain, server, fetcher = world
        principal = Principal.from_name("warm")
        domain.make_endpoint(principal)
        fetcher.prefetch(principal.wire_id)
        net.sim.run()
        assert fetcher.has(principal.wire_id)
        fetcher.prefetch(principal.wire_id)  # no new request
        assert fetcher.requests_sent == 1

    def test_on_certificate_callback(self, world):
        net, domain, server, fetcher = world
        arrivals = []
        fetcher.on_certificate = lambda cert: arrivals.append(cert.subject.name)
        principal = Principal.from_name("observed")
        domain.make_endpoint(principal)
        fetcher.prefetch(principal.wire_id)
        net.sim.run()
        assert arrivals == ["observed"]


class TestResponseValidation:
    def test_garbage_response_rejected(self, world):
        net, domain, server, fetcher = world
        fetcher._on_response(b"not a certificate", None, 500)
        assert fetcher.responses_rejected == 1

    def test_wrong_source_port_rejected(self, world):
        net, domain, server, fetcher = world
        principal = Principal.from_name("spoofed")
        endpoint = domain.make_endpoint(principal)
        real_cert = domain.directory.fetch(principal.wire_id)
        fetcher._on_response(real_cert.encode(), None, 12345)
        assert not fetcher.has(principal.wire_id)
        assert fetcher.responses_rejected == 1

    def test_expired_certificate_rejected(self, world):
        net, domain, server, fetcher = world
        from repro.crypto.dh import DHPrivateKey

        principal = Principal.from_name("expired")
        key = DHPrivateKey.generate(domain.group, domain.rng)
        stale = domain.ca.issue(principal, key, not_before=0.0, not_after=0.0)
        net.sim.run(until=10.0)
        fetcher._on_response(stale.encode(), None, 500)
        assert not fetcher.has(principal.wire_id)
        assert fetcher.responses_rejected == 1
