"""Zero-message keying tests: K_{S,D} and K_f derivations."""

import random

import pytest

from repro.core.config import AlgorithmSuite, HashAlgorithm
from repro.core.keying import KeyDerivation, Principal
from repro.crypto.dh import DHPrivateKey, WELL_KNOWN_GROUPS
from repro.crypto.md5 import md5
from repro.netsim.addresses import IPAddress

GROUP = WELL_KNOWN_GROUPS["TEST128"]


@pytest.fixture
def kdf():
    return KeyDerivation(AlgorithmSuite())


@pytest.fixture
def principals():
    return Principal.from_name("alice"), Principal.from_name("bob")


class TestPrincipal:
    def test_from_name_wire_id_deterministic(self):
        assert Principal.from_name("x").wire_id == Principal.from_name("x").wire_id

    def test_from_name_length_prefixed(self):
        p = Principal.from_name("ab")
        assert p.wire_id == b"\x00\x02ab"

    def test_from_ip(self):
        p = Principal.from_ip(IPAddress("10.0.0.1"))
        assert p.wire_id == bytes([10, 0, 0, 1])
        assert p.name == "10.0.0.1"

    def test_distinct_names_distinct_ids(self):
        assert Principal.from_name("a").wire_id != Principal.from_name("b").wire_id


class TestMasterKey:
    def test_symmetric(self, kdf):
        rng = random.Random(0)
        s = DHPrivateKey.generate(GROUP, rng)
        d = DHPrivateKey.generate(GROUP, rng)
        assert kdf.master_key(s, d.public) == kdf.master_key(d, s.public)


class TestFlowKey:
    def test_definition_matches_paper(self, kdf, principals):
        # K_f = H(sfl | K_{S,D} | S | D), H = MD5 by default.
        s, d = principals
        master = b"\x42" * 16
        expected = md5((77).to_bytes(8, "big") + master + s.wire_id + d.wire_id)
        assert kdf.flow_key(77, master, s, d) == expected

    def test_different_sfl_different_key(self, kdf, principals):
        s, d = principals
        master = b"\x01" * 16
        assert kdf.flow_key(1, master, s, d) != kdf.flow_key(2, master, s, d)

    def test_direction_matters(self, kdf, principals):
        # Flows are unidirectional: K_f(S->D) != K_f(D->S).
        s, d = principals
        master = b"\x01" * 16
        assert kdf.flow_key(1, master, s, d) != kdf.flow_key(1, master, d, s)

    def test_master_key_matters(self, kdf, principals):
        s, d = principals
        assert kdf.flow_key(1, b"\x00" * 16, s, d) != kdf.flow_key(1, b"\x01" * 16, s, d)

    def test_one_wayness_flow_key_leaks_nothing_linear(self, kdf, principals):
        # Adjacent sfls produce unrelated keys (hash diffusion).
        s, d = principals
        master = b"\x07" * 16
        k1 = kdf.flow_key(100, master, s, d)
        k2 = kdf.flow_key(101, master, s, d)
        diff_bits = sum(bin(a ^ b).count("1") for a, b in zip(k1, k2))
        assert diff_bits > 32

    def test_shs_variant(self, principals):
        kdf = KeyDerivation(AlgorithmSuite(flow_key_hash=HashAlgorithm.SHS))
        s, d = principals
        key = kdf.flow_key(5, b"\x09" * 16, s, d)
        assert len(key) == 20


class TestSubKeys:
    def test_encryption_key_is_leading_8_bytes(self, kdf):
        flow_key = bytes(range(16))
        assert kdf.encryption_key(flow_key) == bytes(range(8))

    def test_mac_key_is_whole_flow_key(self, kdf):
        flow_key = bytes(range(16))
        assert kdf.mac_key(flow_key) == flow_key

    def test_encryption_key_needs_8_bytes(self, kdf):
        with pytest.raises(ValueError):
            kdf.encryption_key(b"short")
