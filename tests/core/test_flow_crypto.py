"""FlowCryptoState: the per-flow crypto cache level (Figure 6 fast path).

Three contracts:

* **Equivalence** -- ``FlowCryptoState.mac`` is bit-identical to the
  generic ``suite.mac.func(mac_key, data)`` construction for every
  :class:`MacAlgorithm`, and its lazy cipher is the same DES instance
  the generic path would build.
* **Zero-work cache hits** -- once the TFKC/RFKC are warm, a protected
  datagram performs zero flow-key derivations, zero crypto-state builds
  and zero DES key-schedule constructions (Section 5.3: "only MAC
  computation and encryption").
* **Soft state** -- ``flush_all_caches()`` drops the state with the
  key; endpoints still interoperate when flushed between every datagram.
"""

import pytest

from repro.core.config import AlgorithmSuite, FBSConfig, MacAlgorithm
from repro.core.deploy import FBSDomain
from repro.core.keying import FlowCryptoState, KeyDerivation, Principal
from repro.crypto.des import DES
from repro.obs import NULL_TRACER, MetricsRegistry


class Clock:
    def __init__(self, start=0.0):
        self.now = start

    def __call__(self):
        return self.now


def make_pair(config=None, seed=0):
    clock = Clock()
    domain = FBSDomain(seed=seed, config=config or FBSConfig())
    alice = domain.make_endpoint(Principal.from_name("alice"), now=clock)
    bob = domain.make_endpoint(Principal.from_name("bob"), now=clock)
    return alice, bob, clock


def suite_for(alg):
    """A valid suite for the algorithm (DES-CBC-MAC tags are 64-bit)."""
    if alg is MacAlgorithm.DES_MAC:
        return AlgorithmSuite(mac=alg, mac_bits=64)
    return AlgorithmSuite(mac=alg)


def keying_work(alice, bob):
    """(flow-key derivations, state builds, DES schedule builds)."""
    return (
        alice.metrics.send_flow_key_derivations
        + bob.metrics.receive_flow_key_derivations,
        alice.metrics.crypto_state_builds + bob.metrics.crypto_state_builds,
        DES.schedule_builds,
    )


class TestMacEquivalence:
    @pytest.mark.parametrize("alg", list(MacAlgorithm))
    def test_state_mac_matches_generic_construction(self, alg):
        suite = suite_for(alg)
        flow_key = bytes(range(16))
        state = FlowCryptoState(flow_key, suite)
        for data in (b"", b"x", b"datagram body " * 37):
            generic = suite.mac.func(KeyDerivation.mac_key(flow_key), data)
            assert state.mac(data) == generic[: suite.mac_bytes]

    @pytest.mark.parametrize("alg", list(MacAlgorithm))
    def test_state_mac_is_reusable(self, alg):
        # The precomputed prefix/pad states must not be consumed by use.
        state = FlowCryptoState(b"\x5a" * 16, suite_for(alg))
        first = state.mac(b"payload one")
        state.mac(b"payload two")
        assert state.mac(b"payload one") == first

    def test_cipher_is_lazy_and_cached(self):
        flow_key = bytes(range(16, 32))
        before = DES.schedule_builds
        state = FlowCryptoState(flow_key, AlgorithmSuite())
        assert DES.schedule_builds == before  # nothing built yet
        cipher = state.cipher
        assert DES.schedule_builds == before + 1
        assert state.cipher is cipher  # second access: same instance
        assert DES.schedule_builds == before + 1
        expected = DES(KeyDerivation.encryption_key(flow_key))
        assert cipher.encrypt_block(bytes(8)) == expected.encrypt_block(bytes(8))


class TestCacheHitFastPath:
    @pytest.mark.parametrize("secret", [True, False])
    def test_warm_datagram_does_zero_keying_work(self, secret):
        alice, bob, _ = make_pair()
        body = b"\xa5" * 200
        for _ in range(3):  # warm FST, TFKC, RFKC, lazy cipher
            wire = alice.protect(body, bob.principal, secret=secret)
            bob.unprotect(wire, alice.principal, secret=secret)
        before = keying_work(alice, bob)
        wire = alice.protect(body, bob.principal, secret=secret)
        assert bob.unprotect(wire, alice.principal, secret=secret) == body
        assert keying_work(alice, bob) == before

    def test_first_datagram_builds_state_once_per_side(self):
        alice, bob, _ = make_pair()
        wire = alice.protect(b"first", bob.principal, secret=True)
        bob.unprotect(wire, alice.principal, secret=True)
        assert alice.metrics.crypto_state_builds == 1
        assert bob.metrics.crypto_state_builds == 1

    def test_out_of_band_key_install_pins_state_on_entry(self):
        # A TFKC entry installed without crypto state (the flowsim /
        # direct-cache idiom) gets state built once on first use and
        # pinned to the entry, not rebuilt per lookup.
        alice, bob, _ = make_pair()
        flow_key = bytes(range(16))
        sfl = 0x1234
        alice.tfkc.install(
            sfl, bob.principal.wire_id, alice.principal.wire_id, flow_key
        )
        before = alice.metrics.crypto_state_builds
        state = alice._send_flow_state(sfl, bob.principal)
        assert state.flow_key == flow_key
        assert alice.metrics.crypto_state_builds == before + 1
        assert alice._send_flow_state(sfl, bob.principal) is state
        assert alice.metrics.crypto_state_builds == before + 1


class TestNullTracerFastPath:
    """Tracing off (the default) leaves the warm path untouched."""

    def test_default_tracer_is_the_shared_null_tracer(self):
        alice, bob, _ = make_pair()
        assert alice.tracer is NULL_TRACER
        assert bob.tracer is NULL_TRACER
        assert not alice.tracer.enabled

    def test_warm_datagram_touches_only_datapath_counters(self):
        clock = Clock()
        domain = FBSDomain(seed=0)
        alice = domain.make_endpoint(
            Principal.from_name("alice"), now=clock, registry=MetricsRegistry()
        )
        bob = domain.make_endpoint(
            Principal.from_name("bob"), now=clock, registry=MetricsRegistry()
        )
        body = b"\x5a" * 150
        for _ in range(3):  # warm every cache level and the lazy cipher
            wire = alice.protect(body, bob.principal, secret=True)
            bob.unprotect(wire, alice.principal, secret=True)

        before_a = dict(alice.registry.snapshot()["counters"])
        before_b = dict(bob.registry.snapshot()["counters"])
        wire = alice.protect(body, bob.principal, secret=True)
        assert bob.unprotect(wire, alice.principal, secret=True) == body
        after_a = alice.registry.snapshot()["counters"]
        after_b = bob.registry.snapshot()["counters"]

        def diff(before, after):
            return {
                key: value - before.get(key, 0)
                for key, value in after.items()
                if value != before.get(key, 0)
            }

        # Sender: one datagram out through a warm TFKC; no derivations,
        # no builds, no misses -- the Section 5.3 fast path, verbatim.
        # bytes_protected counts what hits the wire (the padded
        # ciphertext), so measure it off the emitted datagram.
        assert diff(before_a, after_a) == {
            "datagrams_sent": 1,
            "bytes_protected": len(wire) - alice.header_size,
            "encryptions": 1,
            "cache_hits{cache=TFKC}": 1,
        }
        # Receiver: the mirror image through the RFKC.
        assert diff(before_b, after_b) == {
            "datagrams_received": 1,
            "datagrams_accepted": 1,
            "bytes_accepted": len(body),
            "decryptions": 1,
            "cache_hits{cache=RFKC}": 1,
        }


class TestSoftState:
    def test_flush_drops_crypto_state_with_the_key(self):
        alice, bob, _ = make_pair()
        wire = alice.protect(b"warm up", bob.principal, secret=True)
        bob.unprotect(wire, alice.principal, secret=True)
        states_before = keying_work(alice, bob)
        alice.flush_all_caches()
        bob.flush_all_caches()
        wire = alice.protect(b"after flush", bob.principal, secret=True)
        assert bob.unprotect(wire, alice.principal, secret=True) == b"after flush"
        derivations, builds, schedules = keying_work(alice, bob)
        # Everything was re-derived and rebuilt exactly once per side.
        assert derivations == states_before[0] + 2
        assert builds == states_before[1] + 2

    @pytest.mark.parametrize("secret", [True, False])
    def test_interop_with_flush_between_every_datagram(self, secret):
        alice, bob, _ = make_pair()
        for i in range(5):
            body = bytes([i]) * (i * 40 + 1)
            wire = alice.protect(body, bob.principal, secret=secret)
            assert bob.unprotect(wire, alice.principal, secret=secret) == body
            alice.flush_all_caches()
            bob.flush_all_caches()

    def test_one_sided_flush_interop(self):
        # Receiver keeps its cache while the sender loses its own.
        alice, bob, _ = make_pair()
        for i in range(3):
            body = f"datagram {i}".encode()
            wire = alice.protect(body, bob.principal, secret=True)
            assert bob.unprotect(wire, alice.principal, secret=True) == body
            alice.flush_all_caches()
