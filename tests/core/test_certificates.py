"""Certificate substrate tests."""

import random

import pytest

from repro.core.certificates import (
    CertificateAuthority,
    CertificateDirectory,
    CertificateError,
    PublicValueCertificate,
)
from repro.core.errors import UnknownPrincipalError
from repro.core.keying import Principal
from repro.crypto.dh import DHPrivateKey, WELL_KNOWN_GROUPS

GROUP = WELL_KNOWN_GROUPS["TEST128"]


@pytest.fixture(scope="module")
def ca():
    return CertificateAuthority(random.Random(1), key_bits=512)


@pytest.fixture
def bob_key():
    return DHPrivateKey.generate(GROUP, random.Random(2))


@pytest.fixture
def bob_cert(ca, bob_key):
    return ca.issue(Principal.from_name("bob"), bob_key, not_before=0.0, not_after=1e6)


class TestIssueVerify:
    def test_issued_cert_verifies(self, ca, bob_cert):
        bob_cert.verify(ca.public_key, now=100.0)

    def test_carries_public_value(self, bob_cert, bob_key):
        assert bob_cert.public_value == bob_key.public
        assert bob_cert.group_name == "TEST128"

    def test_expired_rejected(self, ca, bob_cert):
        with pytest.raises(CertificateError):
            bob_cert.verify(ca.public_key, now=2e6)

    def test_not_yet_valid_rejected(self, ca, bob_key):
        cert = ca.issue(Principal.from_name("bob"), bob_key, not_before=50.0)
        with pytest.raises(CertificateError):
            cert.verify(ca.public_key, now=10.0)

    def test_tampered_value_rejected(self, ca, bob_cert):
        forged = PublicValueCertificate(
            subject=bob_cert.subject,
            group_name=bob_cert.group_name,
            public_value=bob_cert.public_value + 1,
            not_before=bob_cert.not_before,
            not_after=bob_cert.not_after,
            signature=bob_cert.signature,
        )
        with pytest.raises(CertificateError):
            forged.verify(ca.public_key, now=100.0)

    def test_tampered_subject_rejected(self, ca, bob_cert):
        forged = PublicValueCertificate(
            subject=Principal.from_name("mallory"),
            group_name=bob_cert.group_name,
            public_value=bob_cert.public_value,
            not_before=bob_cert.not_before,
            not_after=bob_cert.not_after,
            signature=bob_cert.signature,
        )
        with pytest.raises(CertificateError):
            forged.verify(ca.public_key, now=100.0)

    def test_wrong_ca_rejected(self, bob_cert):
        other = CertificateAuthority(random.Random(9), key_bits=512)
        with pytest.raises(CertificateError):
            bob_cert.verify(other.public_key, now=100.0)


class TestWireCodec:
    def test_roundtrip(self, bob_cert, ca):
        decoded = PublicValueCertificate.decode(bob_cert.encode())
        assert decoded.subject.wire_id == bob_cert.subject.wire_id
        assert decoded.public_value == bob_cert.public_value
        assert decoded.signature == bob_cert.signature
        decoded.verify(ca.public_key, now=100.0)  # signature survives

    def test_decoded_tampering_detected(self, bob_cert, ca):
        raw = bytearray(bob_cert.encode())
        raw[-1] ^= 0xFF  # corrupt the signature
        decoded = PublicValueCertificate.decode(bytes(raw))
        with pytest.raises(CertificateError):
            decoded.verify(ca.public_key, now=100.0)


class TestDirectory:
    def test_publish_fetch(self, bob_cert):
        directory = CertificateDirectory()
        directory.publish(bob_cert)
        assert directory.fetch(bob_cert.subject.wire_id) is bob_cert
        assert directory.fetches == 1

    def test_unknown_principal(self):
        directory = CertificateDirectory()
        with pytest.raises(UnknownPrincipalError):
            directory.fetch(b"\x00\x05ghost")

    def test_republish_replaces(self, ca, bob_key):
        directory = CertificateDirectory()
        old = ca.issue(Principal.from_name("bob"), bob_key, not_after=10.0)
        new = ca.issue(Principal.from_name("bob"), bob_key, not_after=99.0)
        directory.publish(old)
        directory.publish(new)
        assert directory.fetch(old.subject.wire_id).not_after == 99.0
