"""Vector batch datapath: differential equivalence and fallback.

``FBSConfig.vectorize`` must be invisible except in speed: twin worlds
running the same workload with the switch on and off must produce
byte-identical wire output, identical registry snapshots, and identical
per-datagram rejection reasons.  A separate subprocess test proves the
endpoint falls back to the scalar loop when numpy is absent.
"""

import os
import subprocess
import sys

import pytest

from repro.core.config import FBSConfig
from repro.core.deploy import FBSDomain
from repro.core.keying import Principal

pytestmark = pytest.mark.skipif(
    not __import__("repro.crypto.vector", fromlist=["HAVE_NUMPY"]).HAVE_NUMPY,
    reason="vector differential needs numpy (fallback covered separately)",
)


class Clock:
    def __init__(self, start=0.0):
        self.now = start

    def __call__(self):
        return self.now


def make_pair(vectorize, config=None, seed=11):
    base = config or FBSConfig(replay_guard_size=256)
    clock = Clock()
    domain = FBSDomain(seed=seed, config=base.with_(vectorize=vectorize))
    alice = domain.make_endpoint(Principal.from_name("alice"), now=clock)
    bob = domain.make_endpoint(Principal.from_name("bob"), now=clock)
    return alice, bob, clock


# Mixed sizes on purpose: empty body, sub-block, exact blocks, large --
# the ragged-batch paths of every kernel.
BODIES = [
    b"",
    b"a",
    b"sevenby",
    b"8 bytes!",
    bytes(range(9)),
    bytes(255),
    bytes(256),
    b"x" * 1500,
    b"tail",
]
STAMPS = [0.25 * i for i in range(len(BODIES))]


def protect_all(alice, bob, clock, vector_on, secret):
    clock.now = STAMPS[-1]
    return alice.protect_batch(
        BODIES, bob.principal, secret=secret, stamps=STAMPS
    )


def corrupt(wires):
    stream = list(wires)
    stream[1] = stream[1][:-1] + bytes([stream[1][-1] ^ 0x80])  # mac
    stream[3] = stream[3][:5]  # header (truncated)
    stream.append(stream[0])  # duplicate
    stamps = STAMPS + [STAMPS[-1]]
    return stream, stamps


class TestVectorBatchDifferential:
    @pytest.mark.parametrize("secret", [False, True])
    def test_protect_wire_bytes_and_snapshots_match(self, secret):
        a_v, b_v, clk_v = make_pair(vectorize=True)
        a_s, b_s, clk_s = make_pair(vectorize=False)
        wires_v = protect_all(a_v, b_v, clk_v, True, secret)
        wires_s = protect_all(a_s, b_s, clk_s, False, secret)
        assert wires_v == wires_s
        assert a_v.registry.snapshot() == a_s.registry.snapshot()

    @pytest.mark.parametrize("secret", [False, True])
    def test_unprotect_bodies_reasons_and_snapshots_match(self, secret):
        a_v, b_v, clk_v = make_pair(vectorize=True)
        a_s, b_s, clk_s = make_pair(vectorize=False)
        stream_v, stamps = corrupt(protect_all(a_v, b_v, clk_v, True, secret))
        stream_s, _ = corrupt(protect_all(a_s, b_s, clk_s, False, secret))
        assert stream_v == stream_s
        clk_v.now = clk_s.now = stamps[-1]
        result_v = b_v.unprotect_batch(
            stream_v, a_v.principal, secret=secret, stamps=stamps
        )
        result_s = b_s.unprotect_batch(
            stream_s, a_s.principal, secret=secret, stamps=stamps
        )
        assert result_v.bodies == result_s.bodies
        assert result_v.reasons == result_s.reasons
        assert b_v.registry.snapshot() == b_s.registry.snapshot()
        # The corrupted stream must actually exercise rejections, or
        # this differential proves less than it claims.
        assert result_v.rejected == {"mac": 1, "header": 1, "duplicate": 1}

    def test_unknown_source_keying_reason_matches(self):
        a_v, b_v, _ = make_pair(vectorize=True)
        a_s, b_s, _ = make_pair(vectorize=False)
        stranger = Principal.from_name("mallory")
        wires_v = protect_all(a_v, b_v, Clock(), True, False)
        wires_s = protect_all(a_s, b_s, Clock(), False, False)
        result_v = b_v.unprotect_batch(wires_v, stranger, stamps=STAMPS)
        result_s = b_s.unprotect_batch(wires_s, stranger, stamps=STAMPS)
        assert result_v.reasons == result_s.reasons == ["keying"] * len(BODIES)
        assert b_v.registry.snapshot() == b_s.registry.snapshot()

    def test_single_datagram_batch_takes_scalar_path_identically(self):
        # n == 1 falls back to the scalar loop; output must still match
        # a protect() call in a twin world.
        a_v, b_v, clk_v = make_pair(vectorize=True)
        a_s, b_s, clk_s = make_pair(vectorize=False)
        wire_v = a_v.protect_batch([b"solo"], b_v.principal, secret=True)
        wire_s = [a_s.protect(b"solo", b_s.principal, secret=True)]
        assert wire_v == wire_s
        assert a_v.registry.snapshot() == a_s.registry.snapshot()


class TestEmptyBatchCounters:
    def test_protect_empty_touches_nothing(self):
        alice, bob, _ = make_pair(vectorize=True)
        before = alice.registry.snapshot()
        assert alice.protect_batch([], bob.principal, secret=True) == []
        assert alice.registry.snapshot() == before

    def test_unprotect_empty_touches_nothing(self):
        alice, bob, _ = make_pair(vectorize=True)
        before = bob.registry.snapshot()
        result = bob.unprotect_batch([], alice.principal, secret=True)
        assert result.bodies == [] and result.reasons == []
        assert bob.registry.snapshot() == before


_NO_NUMPY_SCRIPT = r"""
import sys

import repro.crypto.vector as vector

assert not vector.HAVE_NUMPY, "numpy stub did not take effect"
try:
    vector.keyed_md5_many([b"k"], [b"m"])
except RuntimeError:
    pass
else:
    sys.exit("kernel stub should raise without numpy")

from repro.core.config import FBSConfig
from repro.core.deploy import FBSDomain
from repro.core.keying import Principal

domain = FBSDomain(seed=3, config=FBSConfig(vectorize=True))
alice = domain.make_endpoint(Principal.from_name("alice"), now=lambda: 0.0)
bob = domain.make_endpoint(Principal.from_name("bob"), now=lambda: 0.0)
assert not alice._vector_ok, "endpoint must fall back without numpy"
bodies = [b"", b"one", b"x" * 100]
wires = alice.protect_batch(bodies, bob.principal, secret=True)
result = bob.unprotect_batch(wires, alice.principal, secret=True)
assert result.bodies == bodies, result.reasons
print("FALLBACK-OK")
"""


class TestNumpylessFallback:
    def test_batch_roundtrip_without_numpy(self, tmp_path):
        # A numpy stub that raises ImportError, placed ahead of the
        # real one: the endpoint must silently take the scalar loop.
        (tmp_path / "numpy.py").write_text(
            'raise ImportError("numpy disabled for fallback test")\n'
        )
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(tmp_path), os.path.abspath(src)]
        )
        proc = subprocess.run(
            [sys.executable, "-c", _NO_NUMPY_SCRIPT],
            capture_output=True,
            text=True,
            env=env,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert "FALLBACK-OK" in proc.stdout
