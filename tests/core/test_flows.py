"""Sfl allocator and flow state table tests."""

import pytest

from repro.core.flows import FlowStateTable, FSTEntry, SflAllocator, UnboundedFlowTable
from repro.crypto.crc import ModuloHash


class TestSflAllocator:
    def test_monotone_increments(self):
        alloc = SflAllocator(seed=1)
        a, b, c = alloc.allocate(), alloc.allocate(), alloc.allocate()
        assert b == (a + 1) & 0xFFFFFFFFFFFFFFFF
        assert c == (b + 1) & 0xFFFFFFFFFFFFFFFF

    def test_randomized_start(self):
        # Different seeds (protocol restarts) start in different places,
        # preventing sfl reuse across resets.
        assert SflAllocator(seed=1).allocate() != SflAllocator(seed=2).allocate()

    def test_start_not_zero_typically(self):
        assert SflAllocator(seed=3).allocate() != 0

    def test_64_bit_range(self):
        alloc = SflAllocator(seed=4)
        for _ in range(10):
            assert 0 <= alloc.allocate() < 2**64

    def test_counter_statistics(self):
        alloc = SflAllocator(seed=5)
        for _ in range(7):
            alloc.allocate()
        assert alloc.allocated == 7

    def test_wraparound(self):
        alloc = SflAllocator(seed=6)
        alloc._next = 2**64 - 1
        assert alloc.allocate() == 2**64 - 1
        assert alloc.allocate() == 0


class TestFSTEntry:
    def test_reset_clears_everything(self):
        entry = FSTEntry(valid=True, sfl=9, key=b"k", last=5.0, datagrams=3, octets=99)
        entry.aux["x"] = 1.0
        entry.reset()
        assert not entry.valid
        assert entry.sfl == 0 and entry.key == b"" and entry.datagrams == 0
        assert entry.aux == {}


class TestFlowStateTable:
    def test_slot_deterministic(self):
        fst = FlowStateTable(32)
        assert fst.slot_for(b"abc") == fst.slot_for(b"abc")
        assert 0 <= fst.slot_for(b"abc") < 32

    def test_entries_are_stable_objects(self):
        fst = FlowStateTable(8)
        entry = fst.entry_at(3)
        entry.valid = True
        entry.sfl = 42
        assert fst.entry_at(3).sfl == 42

    def test_active_count(self):
        fst = FlowStateTable(8)
        for i, last in enumerate((0.0, 100.0, 190.0)):
            entry = fst.entry_at(i)
            entry.valid = True
            entry.last = last
        assert fst.active_count(now=200.0, threshold=50.0) == 1
        assert fst.active_count(now=200.0, threshold=120.0) == 2
        assert fst.active_count(now=200.0, threshold=500.0) == 3

    def test_flush(self):
        fst = FlowStateTable(4)
        for entry in fst.entries():
            entry.valid = True
        fst.flush()
        assert all(not e.valid for e in fst.entries())

    def test_size_validation(self):
        with pytest.raises(ValueError):
            FlowStateTable(0)

    def test_custom_hash_strategy(self):
        fst = FlowStateTable(16, index_hash=ModuloHash())
        assert fst.slot_for((16).to_bytes(8, "big")) == 0


class TestUnboundedFlowTable:
    def test_private_slot_per_key(self):
        fst = UnboundedFlowTable()
        keys = [i.to_bytes(8, "big") for i in range(100)]
        slots = [fst.slot_for(k) for k in keys]
        assert slots == list(range(100))  # allocation order, no reuse
        assert [fst.slot_for(k) for k in keys] == slots  # stable
        assert fst.size == 100

    def test_no_collision_evictions_by_construction(self):
        # The FlowStateTable property the load engine relies on: keys
        # that would collide in any fixed-size table stay disjoint here.
        fst = UnboundedFlowTable()
        for i in range(1000):
            fst.slot_for(i.to_bytes(8, "big"))
        assert fst.collision_evictions == 0
        assert len({fst.slot_for(i.to_bytes(8, "big")) for i in range(1000)}) == 1000

    def test_entry_state_survives_per_slot(self):
        fst = UnboundedFlowTable()
        slot = fst.slot_for(b"conversation")
        entry = fst.entry_at(slot)
        entry.valid = True
        entry.sfl = 7
        assert fst.entry_at(fst.slot_for(b"conversation")).sfl == 7
        assert fst.occupancy() == 1

    def test_flush_resets_entries_but_keeps_assignment(self):
        fst = UnboundedFlowTable()
        slot = fst.slot_for(b"a")
        fst.entry_at(slot).valid = True
        fst.flush()
        assert not fst.entry_at(slot).valid
        assert fst.slot_for(b"a") == slot  # same slot after flush
        assert fst.occupancy() == 0

    def test_active_count(self):
        fst = UnboundedFlowTable()
        for i, last in enumerate((0.0, 100.0, 190.0)):
            entry = fst.entry_at(fst.slot_for(bytes([i])))
            entry.valid = True
            entry.last = last
        assert fst.active_count(now=200.0, threshold=50.0) == 1
        assert fst.active_count(now=200.0, threshold=500.0) == 3
