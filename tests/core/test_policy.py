"""Policy module tests: Figure 7's 5-tuple policy and friends."""

import pytest

from repro.core.fam import DatagramAttributes
from repro.core.flows import FlowStateTable, SflAllocator
from repro.core.policy import (
    FiveTuplePolicy,
    HostLevelPolicy,
    PerDatagramPolicy,
    RekeyingPolicy,
    ThresholdSweeper,
)
from repro.netsim.addresses import FiveTuple, IPAddress


def make_attrs(sport=1000, dport=23, daddr="10.0.0.2", proto=6, size=100):
    ft = FiveTuple(
        proto=proto,
        saddr=IPAddress("10.0.0.1"),
        sport=sport,
        daddr=IPAddress(daddr),
        dport=dport,
    )
    return DatagramAttributes(
        destination_id=ft.daddr.to_bytes(), five_tuple=ft, size=size
    )


@pytest.fixture
def env():
    return FlowStateTable(64), SflAllocator(seed=1)


class TestFiveTuplePolicy:
    def test_same_tuple_same_flow(self, env):
        fst, alloc = env
        policy = FiveTuplePolicy(threshold=600.0)
        e1 = policy.classify(make_attrs(), 0.0, fst, alloc)
        e2 = policy.classify(make_attrs(), 10.0, fst, alloc)
        assert e1.sfl == e2.sfl
        assert e2.datagrams == 2
        assert e2.octets == 200

    def test_different_tuple_different_flow(self, env):
        fst, alloc = env
        policy = FiveTuplePolicy()
        e1 = policy.classify(make_attrs(sport=1000), 0.0, fst, alloc)
        e2 = policy.classify(make_attrs(sport=1001), 0.0, fst, alloc)
        assert e1.sfl != e2.sfl

    def test_threshold_expiry_starts_new_flow(self, env):
        fst, alloc = env
        policy = FiveTuplePolicy(threshold=600.0)
        e1 = policy.classify(make_attrs(), 0.0, fst, alloc)
        first_sfl = e1.sfl
        e2 = policy.classify(make_attrs(), 601.0, fst, alloc)
        assert e2.sfl != first_sfl
        assert policy.repeated_flows == 1

    def test_within_threshold_keeps_flow(self, env):
        fst, alloc = env
        policy = FiveTuplePolicy(threshold=600.0)
        e1 = policy.classify(make_attrs(), 0.0, fst, alloc)
        e2 = policy.classify(make_attrs(), 599.0, fst, alloc)
        assert e1.sfl == e2.sfl
        assert policy.repeated_flows == 0

    def test_threshold_measured_between_consecutive_datagrams(self, env):
        # A long flow stays alive as long as gaps stay under THRESHOLD.
        fst, alloc = env
        policy = FiveTuplePolicy(threshold=600.0)
        sfl = policy.classify(make_attrs(), 0.0, fst, alloc).sfl
        for t in (500.0, 1000.0, 1500.0, 2000.0):
            assert policy.classify(make_attrs(), t, fst, alloc).sfl == sfl

    def test_collision_eviction_counted(self):
        fst = FlowStateTable(1)  # everything collides
        alloc = SflAllocator(seed=2)
        policy = FiveTuplePolicy()
        policy.classify(make_attrs(sport=1), 0.0, fst, alloc)
        policy.classify(make_attrs(sport=2), 0.0, fst, alloc)
        assert fst.collision_evictions == 1
        # Collision restarts the first conversation's flow on return --
        # premature termination, but "does not affect security".
        e = policy.classify(make_attrs(sport=1), 0.0, fst, alloc)
        assert e.valid and fst.new_flows == 3

    def test_requires_five_tuple(self, env):
        fst, alloc = env
        policy = FiveTuplePolicy()
        attrs = DatagramAttributes(destination_id=b"\x0a\x00\x00\x02")
        with pytest.raises(ValueError):
            policy.classify(attrs, 0.0, fst, alloc)

    def test_no_threshold_check_variant(self, env):
        fst, alloc = env
        policy = FiveTuplePolicy(threshold=600.0, check_threshold=False)
        e1 = policy.classify(make_attrs(), 0.0, fst, alloc)
        # Without the inline check (split design), the stale entry is
        # reused until a sweeper clears it.
        e2 = policy.classify(make_attrs(), 10_000.0, fst, alloc)
        assert e1.sfl == e2.sfl

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            FiveTuplePolicy(threshold=0)


class TestThresholdSweeper:
    def test_sweeps_idle_entries(self, env):
        fst, alloc = env
        policy = FiveTuplePolicy(check_threshold=False)
        sweeper = ThresholdSweeper(threshold=600.0)
        policy.classify(make_attrs(sport=1), 0.0, fst, alloc)
        policy.classify(make_attrs(sport=2), 500.0, fst, alloc)
        swept = sweeper.sweep(fst, 700.0)
        assert swept == 1
        assert fst.expirations == 1

    def test_active_entries_survive(self, env):
        fst, alloc = env
        policy = FiveTuplePolicy(check_threshold=False)
        sweeper = ThresholdSweeper(threshold=600.0)
        entry = policy.classify(make_attrs(), 100.0, fst, alloc)
        sweeper.sweep(fst, 300.0)
        assert entry.valid


class TestHostLevelPolicy:
    def test_one_flow_per_destination(self, env):
        fst, alloc = env
        policy = HostLevelPolicy()
        e1 = policy.classify(make_attrs(sport=1, dport=23), 0.0, fst, alloc)
        e2 = policy.classify(make_attrs(sport=9, dport=99), 1.0, fst, alloc)
        assert e1.sfl == e2.sfl  # same destination host, same flow

    def test_different_hosts_different_flows(self, env):
        fst, alloc = env
        policy = HostLevelPolicy()
        e1 = policy.classify(make_attrs(daddr="10.0.0.2"), 0.0, fst, alloc)
        e2 = policy.classify(make_attrs(daddr="10.0.0.3"), 0.0, fst, alloc)
        assert e1.sfl != e2.sfl

    def test_works_without_five_tuple(self, env):
        fst, alloc = env
        policy = HostLevelPolicy()
        attrs = DatagramAttributes(destination_id=b"\x0a\x00\x00\x02", size=40)
        entry = policy.classify(attrs, 0.0, fst, alloc)
        assert entry.valid

    def test_optional_threshold(self, env):
        fst, alloc = env
        policy = HostLevelPolicy(threshold=100.0)
        first_sfl = policy.classify(make_attrs(), 0.0, fst, alloc).sfl
        e2 = policy.classify(make_attrs(), 200.0, fst, alloc)
        assert e2.sfl != first_sfl
        assert policy.repeated_flows == 1


class TestPerDatagramPolicy:
    def test_every_datagram_new_flow(self, env):
        fst, alloc = env
        policy = PerDatagramPolicy()
        sfls = {policy.classify(make_attrs(), float(t), fst, alloc).sfl for t in range(10)}
        assert len(sfls) == 10


class TestRekeyingPolicy:
    def test_rekeys_after_datagram_budget(self, env):
        fst, alloc = env
        policy = RekeyingPolicy(FiveTuplePolicy(), after_datagrams=3)
        sfls = [policy.classify(make_attrs(), float(t), fst, alloc).sfl for t in range(8)]
        assert sfls[0] == sfls[1] == sfls[2]
        assert sfls[3] != sfls[2]  # rekeyed on the 4th datagram
        assert policy.rekeys >= 1

    def test_rekeys_after_byte_budget(self, env):
        fst, alloc = env
        policy = RekeyingPolicy(FiveTuplePolicy(), after_bytes=250)
        e1 = policy.classify(make_attrs(size=100), 0.0, fst, alloc)
        first = e1.sfl
        policy.classify(make_attrs(size=100), 1.0, fst, alloc)
        e3 = policy.classify(make_attrs(size=100), 2.0, fst, alloc)
        assert e3.sfl != first

    def test_requires_a_budget(self):
        with pytest.raises(ValueError):
            RekeyingPolicy(FiveTuplePolicy())

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            RekeyingPolicy(FiveTuplePolicy(), after_bytes=-1)


class TestAttributePolicy:
    from repro.core.policy import AttributePolicy  # noqa: F401 (import check)

    def _attrs(self, sport=1000, dport=23, uid=None, size=10):
        attrs = make_attrs(sport=sport, dport=dport, size=size)
        if uid is not None:
            attrs.extra["uid"] = uid
        return attrs

    def test_service_granularity(self, env):
        from repro.core.policy import AttributePolicy

        fst, alloc = env
        policy = AttributePolicy(fields=("daddr", "dport"))
        a = policy.classify(self._attrs(sport=1000), 0.0, fst, alloc).sfl
        b = policy.classify(self._attrs(sport=2000), 0.0, fst, alloc).sfl
        assert a == b  # client port ignored at service granularity
        c = policy.classify(self._attrs(dport=80), 0.0, fst, alloc).sfl
        assert c != a

    def test_per_user_flows(self, env):
        from repro.core.policy import AttributePolicy

        fst, alloc = env
        policy = AttributePolicy(fields=("daddr",), extra_keys=("uid",))
        a = policy.classify(self._attrs(uid=100), 0.0, fst, alloc).sfl
        b = policy.classify(self._attrs(uid=200), 0.0, fst, alloc).sfl
        assert a != b  # same destination, different users
        again = policy.classify(self._attrs(uid=100), 1.0, fst, alloc).sfl
        assert again == a

    def test_missing_extra_rejected(self, env):
        from repro.core.policy import AttributePolicy

        fst, alloc = env
        policy = AttributePolicy(fields=(), extra_keys=("uid",))
        with pytest.raises(ValueError):
            policy.classify(self._attrs(), 0.0, fst, alloc)

    def test_missing_five_tuple_rejected(self, env):
        from repro.core.fam import DatagramAttributes
        from repro.core.policy import AttributePolicy

        fst, alloc = env
        policy = AttributePolicy(fields=("daddr",))
        with pytest.raises(ValueError):
            policy.classify(
                DatagramAttributes(destination_id=b"\x0a\x00\x00\x02"), 0.0, fst, alloc
            )

    def test_threshold_behaviour(self, env):
        from repro.core.policy import AttributePolicy

        fst, alloc = env
        policy = AttributePolicy(fields=("daddr",), threshold=100.0)
        first = policy.classify(self._attrs(), 0.0, fst, alloc).sfl
        second = policy.classify(self._attrs(), 500.0, fst, alloc).sfl
        assert second != first
        assert policy.repeated_flows == 1

    def test_validation(self):
        from repro.core.policy import AttributePolicy

        with pytest.raises(ValueError):
            AttributePolicy(fields=("bogus",))
        with pytest.raises(ValueError):
            AttributePolicy(fields=(), extra_keys=())

    def test_full_tuple_equals_five_tuple_policy(self, env):
        from repro.core.policy import AttributePolicy

        fst, alloc = env
        policy = AttributePolicy()  # all five fields
        a = policy.classify(self._attrs(sport=1), 0.0, fst, alloc).sfl
        b = policy.classify(self._attrs(sport=1), 1.0, fst, alloc).sfl
        c = policy.classify(self._attrs(sport=2), 1.0, fst, alloc).sfl
        assert a == b and c != a
