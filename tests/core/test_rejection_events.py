"""Every receive-path failure emits exactly one ``DatagramRejected``.

The five rejection reasons are mutually exclusive (one probe, one
event, one reason) and the trace agrees with the labeled
``datagrams_rejected`` counters -- the contract docs/OBSERVABILITY.md
documents for operators diagnosing drops.
"""

import pytest

from repro.core.config import FBSConfig
from repro.core.deploy import FBSDomain
from repro.core.errors import (
    FBSError,
    HeaderFormatError,
    MacMismatchError,
    ReceiveError,
    StaleTimestampError,
)
from repro.core.keying import Principal
from repro.core.replay_guard import DuplicateDatagramError
from repro.obs import (
    REJECTION_REASONS,
    DatagramAccepted,
    DatagramRejected,
    MetricsRegistry,
    RingBufferSink,
    Tracer,
)


class Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


@pytest.fixture
def pair():
    """(alice, bob, clock, ring): traced endpoints with a replay guard."""
    clock = Clock()
    config = FBSConfig().with_(replay_guard_size=64)
    domain = FBSDomain(seed=11, config=config)
    ring = RingBufferSink()
    tracer = Tracer(ring, now=clock)
    alice = domain.make_endpoint(
        Principal.from_name("alice"),
        now=clock,
        tracer=tracer,
        registry=MetricsRegistry(),
    )
    bob = domain.make_endpoint(
        Principal.from_name("bob"),
        now=clock,
        tracer=tracer,
        registry=MetricsRegistry(),
    )
    return alice, bob, clock, ring


def rejections(ring):
    return ring.of_type(DatagramRejected)


class TestOneEventPerReason:
    def test_header(self, pair):
        _alice, bob, _clock, ring = pair
        with pytest.raises(HeaderFormatError):
            bob.unprotect(b"\x00\x01", Principal.from_name("alice"))
        events = rejections(ring)
        assert len(events) == 1
        assert events[0].reason == "header"
        assert events[0].sfl == -1  # header never parsed

    def test_stale_timestamp(self, pair):
        alice, bob, clock, ring = pair
        wire = alice.protect(b"late", bob.principal)
        # Minute-resolution stamps err on acceptance: a stamp in minute M
        # covers [M*60, (M+1)*60), so step past window + one full minute.
        clock.now += bob.config.freshness_half_window + 61.0
        with pytest.raises(StaleTimestampError):
            bob.unprotect(wire, alice.principal)
        events = rejections(ring)
        assert len(events) == 1
        assert events[0].reason == "stale_timestamp"
        assert events[0].sfl != -1

    def test_keying(self, pair):
        alice, bob, _clock, ring = pair
        wire = alice.protect(b"who are you", bob.principal)
        with pytest.raises(FBSError):
            bob.unprotect(wire, Principal.from_name("mallory"))
        events = rejections(ring)
        assert len(events) == 1
        assert events[0].reason == "keying"

    def test_mac(self, pair):
        alice, bob, _clock, ring = pair
        wire = alice.protect(b"integrity", bob.principal)
        tampered = wire[:-1] + bytes([wire[-1] ^ 0x01])
        with pytest.raises(MacMismatchError):
            bob.unprotect(tampered, alice.principal)
        events = rejections(ring)
        assert len(events) == 1
        assert events[0].reason == "mac"

    def test_garbled_ciphertext_is_a_mac_rejection(self, pair):
        alice, bob, _clock, ring = pair
        wire = alice.protect(b"secret" * 20, bob.principal, secret=True)
        tampered = wire[:-1] + bytes([wire[-1] ^ 0x80])
        with pytest.raises(MacMismatchError):
            bob.unprotect(tampered, alice.principal, secret=True)
        assert [e.reason for e in rejections(ring)] == ["mac"]

    def test_duplicate(self, pair):
        alice, bob, _clock, ring = pair
        wire = alice.protect(b"once only", bob.principal)
        assert bob.unprotect(wire, alice.principal) == b"once only"
        with pytest.raises(DuplicateDatagramError):
            bob.unprotect(wire, alice.principal)
        events = rejections(ring)
        assert len(events) == 1
        assert events[0].reason == "duplicate"
        # The first, authentic copy was accepted normally.
        assert len(ring.of_type(DatagramAccepted)) == 1


class TestTraceAndRegistryAgree:
    def test_counters_match_events_reason_by_reason(self, pair):
        alice, bob, clock, ring = pair

        probes = []  # (exception, trigger) per reason, in catalog order
        probes.append((HeaderFormatError, lambda: b"\xff"))

        def stale():
            wire = alice.protect(b"s", bob.principal)
            clock.now += bob.config.freshness_half_window + 61.0
            return wire

        probes.append((StaleTimestampError, stale))
        probes.append(
            (FBSError, lambda: alice.protect(b"k", bob.principal))
        )

        def forged():
            wire = alice.protect(b"m", bob.principal)
            return wire[:-1] + bytes([wire[-1] ^ 0x01])

        probes.append((MacMismatchError, forged))

        def replayed():
            wire = alice.protect(b"d", bob.principal)
            bob.unprotect(wire, alice.principal)
            return wire

        probes.append((DuplicateDatagramError, replayed))

        sources = iter(
            [
                alice.principal,
                alice.principal,
                Principal.from_name("mallory"),
                alice.principal,
                alice.principal,
            ]
        )
        for exc, trigger in probes:
            with pytest.raises(exc):
                bob.unprotect(trigger(), next(sources))

        by_reason = {}
        for event in rejections(ring):
            by_reason[event.reason] = by_reason.get(event.reason, 0) + 1
        assert by_reason == {reason: 1 for reason in REJECTION_REASONS}

        counters = bob.registry.snapshot()["counters"]
        for reason in REJECTION_REASONS:
            assert counters[f"datagrams_rejected{{reason={reason}}}"] == 1
        assert bob.registry.sum_counter("datagrams_rejected") == len(
            REJECTION_REASONS
        )

    def test_every_reason_is_a_receive_error_path(self, pair):
        # The reason vocabulary is closed: nothing in the receive path
        # can reject without going through ``_rejected`` with one of
        # these strings (fbslint FBS006/FBS008 enforce the call form).
        assert set(REJECTION_REASONS) == {
            "header",
            "stale_timestamp",
            "keying",
            "mac",
            "duplicate",
        }
        assert issubclass(DuplicateDatagramError, ReceiveError)
