"""Timestamp codec and freshness window tests."""

import pytest

from repro.core.timestamps import (
    SIGCOMM97_EPOCH_OFFSET,
    FreshnessWindow,
    TimestampCodec,
)


class TestCodec:
    def test_minute_resolution(self):
        codec = TimestampCodec(epoch_offset=0.0)
        assert codec.encode(0.0) == 0
        assert codec.encode(59.9) == 0
        assert codec.encode(60.0) == 1
        assert codec.encode(3600.0) == 60

    def test_epoch_offset(self):
        codec = TimestampCodec()
        # Simulation t=0 sits at the paper's presentation era: well past
        # minute zero of 1996.
        assert codec.encode(0.0) == SIGCOMM97_EPOCH_OFFSET // 60

    def test_decode_inverts_to_minute_start(self):
        codec = TimestampCodec(epoch_offset=0.0)
        assert codec.decode(codec.encode(125.0)) == 120.0

    def test_no_wrap_for_8000_years(self):
        codec = TimestampCodec(epoch_offset=0.0)
        eight_thousand_years = 8000 * 365.25 * 86400
        assert codec.encode(eight_thousand_years) < 2**32

    def test_out_of_range_rejected(self):
        codec = TimestampCodec(epoch_offset=0.0)
        with pytest.raises(ValueError):
            codec.encode(-3600.0)


class TestFreshness:
    def _window(self, half=120.0):
        codec = TimestampCodec(epoch_offset=0.0)
        return FreshnessWindow(codec=codec, half_window=half), codec

    def test_current_minute_is_fresh(self):
        window, codec = self._window()
        now = 1000.0
        assert window.is_fresh(codec.encode(now), now)

    def test_within_window_fresh(self):
        window, codec = self._window(half=120.0)
        stamp = codec.encode(1000.0)
        assert window.is_fresh(stamp, 1000.0 + 100.0)
        assert window.is_fresh(stamp, 1000.0 - 50.0)

    def test_past_window_stale(self):
        window, codec = self._window(half=120.0)
        stamp = codec.encode(600.0)
        # Stamp covers minute [600, 660); stale once now > 660 + 120.
        assert not window.is_fresh(stamp, 790.0)

    def test_future_stamp_rejected(self):
        window, codec = self._window(half=120.0)
        stamp = codec.encode(10_000.0)
        assert not window.is_fresh(stamp, 1000.0)

    def test_window_centered_both_sides(self):
        # The window is centered on the current time: tolerant of skew in
        # either direction.
        window, codec = self._window(half=120.0)
        now = 5000.0
        assert window.is_fresh(codec.encode(now - 110.0), now)
        assert window.is_fresh(codec.encode(now + 110.0), now)

    def test_minute_granularity_errs_to_acceptance(self):
        window, codec = self._window(half=60.0)
        # A datagram stamped at second 0 of its minute, checked 119 s
        # later: the minute interval extends freshness to its end.
        stamp = codec.encode(600.0)
        assert window.is_fresh(stamp, 600.0 + 60.0 + 59.0)
        assert not window.is_fresh(stamp, 600.0 + 60.0 + 61.0)

    def test_zero_window_still_accepts_current_minute(self):
        window, codec = self._window(half=0.0)
        assert window.is_fresh(codec.encode(90.0), 95.0)
