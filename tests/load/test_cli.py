"""``python -m repro.load`` CLI: exit codes, determinism, report shape."""

import json

import pytest

from repro.load.cli import main


class TestSmoke:
    def test_smoke_run_is_byte_stable(self, tmp_path, capsys):
        # Same arguments, same bytes -- the property `make load-smoke`
        # enforces with cmp across two CLI invocations.
        out_a = tmp_path / "a.json"
        out_b = tmp_path / "b.json"
        args = ["--smoke", "--workers", "2", "--seed", "0"]
        assert main(args + ["--out", str(out_a)]) == 0
        assert main(args + ["--out", str(out_b)]) == 0
        assert out_a.read_bytes() == out_b.read_bytes()
        err = capsys.readouterr().err
        assert "merge check: exact" in err

    def test_smoke_report_contents(self, tmp_path):
        out = tmp_path / "load.json"
        assert main(["--smoke", "--workers", "2", "--out", str(out)]) == 0
        report = json.loads(out.read_text())
        assert report["report_version"] == 1
        assert report["engine"]["workload"] == "smoke"
        assert report["merge_check"]["result"] == "exact"
        agg = report["aggregate"]
        assert agg["received"] == agg["accepted"] + sum(
            agg["rejected"].values()
        )
        assert agg["goodput_dps"] >= max(
            w["goodput_dps"] for w in report["workers"]
        )

    def test_report_to_stdout(self, capsys):
        assert main(["--workers", "1", "--workload", "smoke"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["engine"]["workers"] == 1
        assert "merge_check" not in report  # only --smoke runs the check

    def test_trace_out_writes_shard_tagged_jsonl(self, tmp_path):
        trace_dir = tmp_path / "traces"
        trace_dir.mkdir()
        assert main(
            [
                "--workers",
                "2",
                "--workload",
                "smoke",
                "--trace-out",
                str(trace_dir),
                "--out",
                str(tmp_path / "r.json"),
            ]
        ) == 0
        for worker in (0, 1):
            lines = (trace_dir / f"worker{worker}.jsonl").read_text().splitlines()
            assert lines
            assert all(json.loads(line)["shard"] == worker for line in lines)


class TestUsageErrors:
    def test_unknown_workload_is_a_usage_error(self):
        with pytest.raises(SystemExit) as exc:
            main(["--workload", "nope"])
        assert exc.value.code == 2

    def test_zero_workers_is_a_usage_error(self):
        with pytest.raises(SystemExit) as exc:
            main(["--workers", "0"])
        assert exc.value.code == 2
