"""Load engine: ledger invariants and the merge-exactness tentpole.

The headline property (acceptance criteria of ISSUE 5): the merged
metrics of an N-worker run equal the single-process run exactly, over
the shard-invariant view (MKC/PVC instruments excluded -- N endpoint
pairs do N master-key exchanges where one pair does one).
"""

import copy

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.load.engine import LoadError, LoadSpec, check_invariants, run_load, verify_merge
from repro.load.report import build_report, render_report
from repro.load.worker import WorkerSpec, run_worker, shard_invariant_view


def smoke_spec(**kw):
    kw.setdefault("workload", "smoke")
    kw.setdefault("inline", True)
    return LoadSpec(**kw)


class TestLedger:
    def test_shards_cover_the_workload(self):
        run = run_load(smoke_spec(workers=3))
        results = run["workers"]
        assert [r["worker"] for r in results] == [0, 1, 2]
        assert sum(r["datagrams"] for r in results) == 600
        assert sum(r["sent"] for r in results) == 600
        # Clean replay: everything sent is received and accepted.
        for r in results:
            assert r["received"] == r["accepted"] + sum(r["rejected"].values())
        assert run["merged"]["counters"]["datagrams_accepted"] == 600

    def test_check_invariants_catches_ledger_break(self):
        run = run_load(smoke_spec(workers=2))
        broken = copy.deepcopy(run)
        broken["workers"][0]["received"] += 1
        with pytest.raises(LoadError, match="received"):
            check_invariants(broken)

    def test_check_invariants_catches_eviction(self):
        run = run_load(smoke_spec(workers=2))
        broken = copy.deepcopy(run)
        broken["merged"]["counters"]["cache_evictions{cache=TFKC}"] = 1
        with pytest.raises(LoadError, match="eviction"):
            check_invariants(broken)


class TestMergeExactness:
    @given(workers=st.integers(min_value=2, max_value=4), seed=st.integers(0, 2))
    @settings(max_examples=6, deadline=None)
    def test_merged_equals_single_process(self, workers, seed):
        run = verify_merge(smoke_spec(workers=workers, seed=seed))
        assert run["merge_check"]["result"] == "exact"
        assert run["merge_check"]["compared_counters"] > 0

    def test_merge_exact_with_encryption(self):
        run = verify_merge(smoke_spec(workers=2, secret=True))
        assert run["merge_check"]["result"] == "exact"

    def test_pair_scoped_caches_are_excluded_not_dropped(self):
        run = run_load(smoke_spec(workers=2))
        merged = run["merged"]
        view = shard_invariant_view(merged)
        mkc_keys = [k for k in merged["counters"] if "cache=MKC" in k]
        assert mkc_keys, "expected MKC instruments in the merged snapshot"
        assert all(k not in view["counters"] for k in mkc_keys)
        # The invariant view still carries the flow-key caches.
        assert any("tfkc" in k.lower() for k in view["counters"])


class TestWorkerDeterminism:
    def test_worker_result_is_a_pure_function_of_its_spec(self):
        spec = WorkerSpec(worker=1, workers=3, workload="smoke", seed=2)
        assert run_worker(spec) == run_worker(spec)

    def test_inline_matches_subprocess_fanout(self):
        # The real multiprocessing path (spawn start method) must
        # produce bit-identical results to the in-process path; this is
        # the fork-safety story made testable.
        inline = run_load(smoke_spec(workers=2, datagrams=200))
        spawned = run_load(
            LoadSpec(workers=2, workload="smoke", datagrams=200, inline=False)
        )
        assert inline["workers"] == spawned["workers"]
        assert inline["merged"] == spawned["merged"]

    def test_heavy_tailed_workload_survives_spawn(self):
        # The CDF-sampled workloads ship to spawn children as a
        # (name, seed, duration) triple in the pickled WorkerSpec; the
        # child's regenerated stream must match the inline replay.
        kw = dict(
            workload="cdf-web-search", seed=1, duration=120.0, datagrams=300
        )
        inline = run_load(LoadSpec(workers=2, inline=True, **kw))
        spawned = run_load(LoadSpec(workers=2, inline=False, **kw))
        assert inline["workers"] == spawned["workers"]
        assert inline["merged"] == spawned["merged"]


class TestReport:
    def test_reports_are_byte_stable(self):
        a = render_report(build_report(run_load(smoke_spec(workers=2))))
        b = render_report(build_report(run_load(smoke_spec(workers=2))))
        assert a == b
        assert a.endswith("\n")

    def test_report_shape(self):
        report = build_report(verify_merge(smoke_spec(workers=2)))
        assert report["report_version"] == 1
        assert report["engine"]["workers"] == 2
        assert len(report["workers"]) == 2
        agg = report["aggregate"]
        assert agg["accepted"] == 600
        assert agg["goodput_dps"] >= max(
            w["goodput_dps"] for w in report["workers"]
        )
        assert report["checks"] == {
            "aggregate_ledger": "ok",
            "eviction_free": "ok",
            "per_shard_ledger": "ok",
        }
        assert report["merge_check"]["result"] == "exact"
