"""FlowSharder: stable, total, flow-affine partitioning (ISSUE 5).

The load-bearing property is the second test class: every datagram of a
flow lands on the same worker for *any* worker count, because the shard
function reads nothing but the canonical packed 5-tuple.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.load.sharding import FlowSharder
from repro.load.worker import build_workload
from repro.netsim.addresses import FiveTuple, IPAddress

addresses = st.integers(min_value=0, max_value=2**32 - 1).map(IPAddress)
ports = st.integers(min_value=0, max_value=65535)
five_tuples = st.builds(
    FiveTuple,
    proto=st.sampled_from([1, 6, 17]),
    saddr=addresses,
    sport=ports,
    daddr=addresses,
    dport=ports,
)


class TestShardFunction:
    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            FlowSharder(0)

    def test_single_worker_owns_everything(self):
        sharder = FlowSharder(1)
        trace = build_workload("smoke", seed=0)
        assert sharder.shard_sizes(trace) == [len(trace)]

    @given(ft=five_tuples, workers=st.integers(min_value=1, max_value=16))
    @settings(max_examples=80, deadline=None)
    def test_total_and_in_range(self, ft, workers):
        shard = FlowSharder(workers).shard_of(ft)
        assert 0 <= shard < workers

    @given(ft=five_tuples, workers=st.integers(min_value=1, max_value=16))
    @settings(max_examples=40, deadline=None)
    def test_stable_across_instances(self, ft, workers):
        # Python's builtin hash is per-process randomized; the CRC-based
        # sharder must give the same answer from any fresh instance
        # (stand-in for "any process can recompute any owner").
        assert FlowSharder(workers).shard_of(ft) == FlowSharder(workers).shard_of(ft)


class TestFlowAffinity:
    @given(workers=st.integers(min_value=1, max_value=8), seed=st.integers(0, 3))
    @settings(max_examples=12, deadline=None)
    def test_every_datagram_of_a_flow_shares_a_worker(self, workers, seed):
        # The acceptance-criteria property: for any worker count, a
        # flow's datagrams are never split across workers.
        sharder = FlowSharder(workers)
        trace = build_workload("smoke", seed=seed)
        owner = {}
        for record in trace:
            ft = record.five_tuple
            shard = sharder.shard_of(ft)
            assert owner.setdefault(ft, shard) == shard

    def test_shards_partition_the_trace(self):
        trace = list(build_workload("smoke", seed=0))
        sharder = FlowSharder(4)
        shards = [sharder.filter_shard(trace, w) for w in range(4)]
        # Disjoint, exhaustive, and order-preserving within each shard.
        assert sum(len(s) for s in shards) == len(trace)
        seen = [r for s in shards for r in s]
        assert sorted(seen, key=trace.index) == trace
        for shard in shards:
            times = [r.time for r in shard]
            assert times == sorted(times)

    def test_shard_sizes_matches_filter(self):
        trace = list(build_workload("smoke", seed=1))
        sharder = FlowSharder(3)
        sizes = sharder.shard_sizes(trace)
        assert sizes == [len(sharder.filter_shard(trace, w)) for w in range(3)]
        assert sum(sizes) == len(trace)

    def test_filter_rejects_out_of_range_worker(self):
        sharder = FlowSharder(2)
        with pytest.raises(ValueError):
            sharder.filter_shard([], 2)
