"""fbslint coverage for the transport boundary (ISSUE 8 satellite).

Three halves of the quarantine story:

* the FBS002 carve-out admits real-clock reads in
  ``repro.transport.udp`` *only* -- the identical source is flagged the
  moment it impersonates any other transport module;
* FBS010 still applies with full force to the carved-out module: async
  transport code must not block the event loop;
* the real ``src/repro/transport`` package is clean under the whole
  rule set with no baseline entries, and stays inside the FBS011
  report zone.
"""

from pathlib import Path

import pytest

from repro.analysis import lint_source
from repro.analysis.dataflow import _REPORT_ZONE

FIXTURES = Path(__file__).parent / "fixtures"
SRC = Path(__file__).parents[2] / "src"
TRANSPORT = SRC / "repro" / "transport"


def lint_fixture(name: str):
    path = FIXTURES / name
    # The fixture's ``# fbslint: module=`` pragma supplies the logical
    # module; the filesystem path is irrelevant.
    return lint_source(
        path.read_text(encoding="utf-8"), path=name, logical_path=name
    )


class TestClockCarveOut:
    def test_udp_substrate_may_read_the_monotonic_clock(self):
        result = lint_fixture("fbs002_transport_ok.py")
        assert result.findings == [], [f.render() for f in result.findings]

    def test_identical_source_outside_udp_is_flagged(self):
        result = lint_fixture("fbs002_transport_bad.py")
        fired = [f for f in result.findings if f.rule_id == "FBS002"]
        assert len(fired) == 2, [f.render() for f in result.findings]
        assert {f.rule_id for f in result.findings} == {"FBS002"}

    def test_carve_out_is_exactly_one_module(self):
        source = FIXTURES.joinpath("fbs002_transport_ok.py").read_text(
            encoding="utf-8"
        )
        for module in (
            "repro.transport",
            "repro.transport.netsim",
            "repro.transport.channel",
            "repro.transport.runner",
            "repro.core.protocol",
        ):
            patched = source.replace(
                "# fbslint: module=repro.transport.udp",
                f"# fbslint: module={module}",
            )
            result = lint_source(
                patched, path="carveout.py", logical_path="carveout.py"
            )
            assert any(
                f.rule_id == "FBS002" for f in result.findings
            ), f"carve-out leaked into {module}"


class TestAsyncDiscipline:
    def test_awaiting_async_transport_code_is_clean(self):
        result = lint_fixture("fbs010_transport_ok.py")
        assert result.findings == [], [f.render() for f in result.findings]

    def test_blocking_async_transport_code_is_flagged(self):
        result = lint_fixture("fbs010_transport_bad.py")
        fired = [f for f in result.findings if f.rule_id == "FBS010"]
        # Direct time.sleep, the helper hiding one, socket.socket().
        assert len(fired) == 3, [f.render() for f in result.findings]
        assert {f.rule_id for f in result.findings} == {"FBS010"}

    def test_clock_carve_out_does_not_relax_fbs010(self):
        # Both fixtures impersonate repro.transport.udp: the module that
        # may read the clock still may not block the loop.
        ok = lint_fixture("fbs010_transport_ok.py")
        bad = lint_fixture("fbs010_transport_bad.py")
        assert not ok.findings and bad.findings


class TestRealPackage:
    def test_transport_package_in_report_zone(self):
        assert "repro.transport" in _REPORT_ZONE

    def test_transport_sources_exist(self):
        assert (TRANSPORT / "udp.py").is_file()
        assert (TRANSPORT / "netsim.py").is_file()

    @pytest.mark.parametrize(
        "module", sorted(p.name for p in TRANSPORT.glob("*.py"))
    )
    def test_transport_module_is_clean(self, module):
        path = TRANSPORT / module
        result = lint_source(
            path.read_text(encoding="utf-8"),
            path=str(path),
            logical_path=f"src/repro/transport/{module}",
        )
        assert result.findings == [], [f.render() for f in result.findings]
