"""Per-rule fixture tests: each rule fires on its violating fixture and
stays quiet on the compliant one (acceptance criteria of ISSUE 1)."""

from pathlib import Path

import pytest

from repro.analysis import all_rules, lint_source

FIXTURES = Path(__file__).parent / "fixtures"

#: rule id -> (logical path the fixtures impersonate, findings expected
#: from the violating fixture).
CASES = {
    "FBS001": ("src/repro/core/session.py", 5),
    "FBS002": ("src/repro/netsim/badclock.py", 4),
    "FBS003": ("src/repro/core/jitter.py", 4),
    "FBS004": ("src/repro/baselines/guard.py", 1),
    "FBS005": ("src/repro/core/header.py", 6),
    "FBS006": ("src/repro/baselines/receiver.py", 3),
    "FBS007": ("src/repro/core/protocol.py", 3),
    "FBS008": ("src/repro/core/protocol.py", 3),
    "FBS009": ("src/repro/netsim/parallel.py", 4),
    "FBS010": ("src/repro/core/aio.py", 3),
    "FBS011": ("src/repro/obs/report.py", 3),
    "FBS012": ("src/repro/core/guard.py", 2),
}


def lint_fixture(name: str, logical_path: str):
    path = FIXTURES / name
    return lint_source(
        path.read_text(encoding="utf-8"), path=name, logical_path=logical_path
    )


def test_every_rule_has_a_fixture_pair():
    ids = {rule.rule_id for rule in all_rules()}
    assert ids == set(CASES), "CASES must cover exactly the registered rules"
    for rule_id in ids:
        stem = rule_id.lower()
        assert (FIXTURES / f"{stem}_ok.py").exists()
        assert (FIXTURES / f"{stem}_bad.py").exists()


@pytest.mark.parametrize("rule_id", sorted(CASES))
def test_rule_fires_on_violating_fixture(rule_id):
    logical, expected = CASES[rule_id]
    result = lint_fixture(f"{rule_id.lower()}_bad.py", logical)
    fired = [f for f in result.findings if f.rule_id == rule_id]
    assert len(fired) == expected, [f.render() for f in result.findings]
    # No cross-rule noise: the violating fixture trips only its rule.
    assert {f.rule_id for f in result.findings} == {rule_id}
    # Every finding carries a real location.
    assert all(f.line > 0 and f.path for f in fired)


@pytest.mark.parametrize("rule_id", sorted(CASES))
def test_rule_quiet_on_compliant_fixture(rule_id):
    logical, _ = CASES[rule_id]
    result = lint_fixture(f"{rule_id.lower()}_ok.py", logical)
    assert result.findings == [], [f.render() for f in result.findings]


_WALL_CLOCK = "import time\n\ndef now_wall():\n    return time.time()\n"
_ASSERT_GUARD = "def issue(t):\n    assert t\n    return t\n"
_SILENT_RAISE = (
    "from repro.core.errors import MacMismatchError\n\n"
    "def unprotect(mac_ok):\n"
    "    if not mac_ok:\n"
    "        raise MacMismatchError('bad mac')\n"
)
_BUILTIN_RAISE = (
    "def protect(body):\n"
    "    if body is None:\n"
    "        raise ValueError('no body')\n"
    "    return body\n"
)


def test_wall_clock_allowed_in_bench():
    # The same violating pattern is legal under repro.bench (it
    # measures real elapsed time).
    netsim = lint_source(_WALL_CLOCK, logical_path="src/repro/netsim/x.py")
    bench = lint_source(_WALL_CLOCK, logical_path="src/repro/bench/x.py")
    assert [f.rule_id for f in netsim.findings] == ["FBS002"]
    assert bench.findings == []


_UNSEEDED = "import random\n\ndef jitter():\n    return random.random()\n"
_MP_IMPORT = "import multiprocessing\n\ndef ctx():\n    return multiprocessing.get_context('spawn')\n"


def test_determinism_rules_cover_repro_load():
    # The load engine is protocol-adjacent code: wall-clock reads and
    # unseeded randomness are as banned there as anywhere in src/repro
    # (its timing mode goes through repro.bench.clocks instead).
    clock = lint_source(_WALL_CLOCK, logical_path="src/repro/load/worker.py")
    rand = lint_source(_UNSEEDED, logical_path="src/repro/load/worker.py")
    assert [f.rule_id for f in clock.findings] == ["FBS002"]
    assert [f.rule_id for f in rand.findings] == ["FBS003"]


def test_multiprocessing_allowed_only_in_load():
    # The same fan-out code is legal in repro.load, banned elsewhere.
    inside = lint_source(_MP_IMPORT, logical_path="src/repro/load/engine.py")
    outside = lint_source(_MP_IMPORT, logical_path="src/repro/core/engine.py")
    assert inside.findings == []
    assert [f.rule_id for f in outside.findings] == ["FBS009"]


def test_asserts_allowed_in_test_code():
    lib = lint_source(_ASSERT_GUARD, logical_path="src/repro/core/x.py")
    test = lint_source(
        _ASSERT_GUARD, logical_path="tests/baselines/test_guard.py"
    )
    assert [f.rule_id for f in lib.findings] == ["FBS004"]
    assert test.findings == []


def test_metrics_rule_scoped_to_protocol_and_baselines():
    # The codec layers raise ReceiveErrors with no metrics object; the
    # protocol engine counts them.  FBS006 must not fire outside
    # core/protocol.py and baselines/.
    header = lint_source(
        _SILENT_RAISE, logical_path="src/repro/core/header.py"
    )
    baseline = lint_source(
        _SILENT_RAISE, logical_path="src/repro/baselines/kdc.py"
    )
    assert [f for f in header.findings if f.rule_id == "FBS006"] == []
    assert [f.rule_id for f in baseline.findings] == ["FBS006"]


def test_taxonomy_raise_check_scoped_to_protocol():
    # Only core/protocol.py's public surface is bound to the FBSError
    # taxonomy; helper modules may raise builtins.
    protocol = lint_source(
        _BUILTIN_RAISE, logical_path="src/repro/core/protocol.py"
    )
    deploy = lint_source(
        _BUILTIN_RAISE, logical_path="src/repro/core/deploy.py"
    )
    assert [f.rule_id for f in protocol.findings] == ["FBS007"]
    assert "public protocol entry point" in protocol.findings[0].message
    assert deploy.findings == []


def test_compare_against_none_is_not_flagged():
    source = (
        "def check(kdf):\n"
        "    key = kdf.flow_key(1, b'm', None, None)\n"
        "    return key is not None\n"
    )
    result = lint_source(source, logical_path="src/repro/core/x.py")
    assert result.findings == []


def test_real_header_module_is_clean():
    # The actual codec must satisfy its own layout rule.
    path = Path(__file__).parents[2] / "src/repro/core/header.py"
    result = lint_source(
        path.read_text(encoding="utf-8"), logical_path=str(path)
    )
    assert result.findings == [], [f.render() for f in result.findings]


def test_rule_metadata_complete():
    for rule in all_rules():
        assert rule.rule_id.startswith("FBS") and len(rule.rule_id) == 6
        assert rule.name and rule.description and rule.rationale
        assert rule.severity in (1, 2)
