"""Corpus robustness: the whole-program engine over every real module.

Acceptance criteria of ISSUE 6: the engine survives ``src/`` and
``tests/`` without crashing, produces the same findings in the same
order across two runs, and ``--format json`` output is byte-identical.
"""

import io
from pathlib import Path

from repro.analysis.cli import main

REPO_ROOT = Path(__file__).parents[2]


def run_json(monkeypatch):
    monkeypatch.chdir(REPO_ROOT)
    out = io.StringIO()
    code = main(["--format", "json", "src", "tests"], out=out)
    return code, out.getvalue()


def test_corpus_stable_and_byte_identical(monkeypatch):
    import json

    code1, first = run_json(monkeypatch)
    code2, second = run_json(monkeypatch)
    # The fixture corpus contains deliberate violations, so a nonzero
    # exit is expected -- but it must be *reproducibly* nonzero.
    assert code1 == code2 == 1
    assert first == second, "two identical runs must serialize identically"

    payload = json.loads(first)
    assert payload["files_checked"] > 200
    findings = payload["findings"]
    assert findings, "fixture violations must surface"
    # Total order: severity-major, then (path, line, col, rule, message).
    keys = [
        (-_severity_rank(f["severity"]), f["path"], f["line"], f["column"],
         f["rule"], f["message"])
        for f in findings
    ]
    assert keys == sorted(keys)
    # Every finding is located and attributed.
    for f in findings:
        assert f["rule"].startswith("FBS")
        assert f["line"] >= 1 and f["column"] >= 1
        assert f["path"]


def _severity_rank(name):
    return {"warning": 1, "error": 2}[name]


def test_self_analysis_is_clean(monkeypatch):
    # The analyzer must hold itself (and the whole src tree) to its own
    # rules with an empty baseline.
    monkeypatch.chdir(REPO_ROOT)
    out = io.StringIO()
    code = main(["src"], out=out)
    assert code == 0, out.getvalue()
