"""fbslint coverage for the gateway package (ISSUE 9 satellite).

Two halves:

* FBS010 applies with full force to the gateway's shared serve loop:
  async gateway code must not block the event loop, directly or through
  a helper;
* the real ``src/repro/gateway`` package is clean under the whole rule
  set with no baseline entries, and sits inside the FBS011 report zone
  (its CLI serializes byte-stable reports).
"""

from pathlib import Path

import pytest

from repro.analysis import lint_source
from repro.analysis.dataflow import _REPORT_ZONE

FIXTURES = Path(__file__).parent / "fixtures"
SRC = Path(__file__).parents[2] / "src"
GATEWAY = SRC / "repro" / "gateway"


def lint_fixture(name: str):
    path = FIXTURES / name
    # The fixture's ``# fbslint: module=`` pragma supplies the logical
    # module; the filesystem path is irrelevant.
    return lint_source(
        path.read_text(encoding="utf-8"), path=name, logical_path=name
    )


class TestAsyncDiscipline:
    def test_awaiting_serve_loop_is_clean(self):
        result = lint_fixture("fbs010_gateway_ok.py")
        assert result.findings == [], [f.render() for f in result.findings]

    def test_blocking_serve_loop_is_flagged(self):
        result = lint_fixture("fbs010_gateway_bad.py")
        fired = [f for f in result.findings if f.rule_id == "FBS010"]
        # Helper-hidden time.sleep, direct time.sleep, sync open().
        assert len(fired) == 3, [f.render() for f in result.findings]
        assert {f.rule_id for f in result.findings} == {"FBS010"}

    def test_gateway_has_no_clock_carve_out(self):
        # The FBS002 carve-out is exactly repro.transport.udp; gateway
        # modules reading a wall clock must be flagged.
        source = (
            "# fbslint: module=repro.gateway.server\n"
            "import time\n\n\n"
            "def now():\n"
            "    return time.monotonic()\n"
        )
        result = lint_source(
            source, path="gw_clock.py", logical_path="gw_clock.py"
        )
        assert any(f.rule_id == "FBS002" for f in result.findings)


class TestRealPackage:
    def test_gateway_package_in_report_zone(self):
        assert "repro.gateway" in _REPORT_ZONE

    def test_gateway_sources_exist(self):
        assert (GATEWAY / "server.py").is_file()
        assert (GATEWAY / "eviction.py").is_file()

    @pytest.mark.parametrize(
        "module", sorted(p.name for p in GATEWAY.glob("*.py"))
    )
    def test_gateway_module_is_clean(self, module):
        path = GATEWAY / module
        result = lint_source(
            path.read_text(encoding="utf-8"),
            path=str(path),
            logical_path=f"src/repro/gateway/{module}",
        )
        assert result.findings == [], [f.render() for f in result.findings]
