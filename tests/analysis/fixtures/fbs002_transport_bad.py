"""Violating fixture for the FBS002 transport carve-out's *edge*.

The carve-out covers ``repro.transport.udp`` only: the rest of the
transport package (adapter, channel, hops, runner) is deterministic
code that must take its time from the transport's injected clock.  Same
source as ``fbs002_transport_ok.py``, impersonating the netsim adapter
instead of the UDP substrate.
"""

# fbslint: module=repro.transport.netsim
import time


def now():
    # Banned here: the adapter's clock is the simulated host clock.
    return time.monotonic()


def rtt(started):
    return time.monotonic() - started
