"""Compliant fixture for FBS006: every rejection bumps a counter first.

Linted as if it lived at ``src/repro/baselines/receiver.py``.
Exercises all three accepted shapes: direct sibling bump, bump just
before the enclosing ``if``, and bump before a bare re-raise.
"""

# fbslint: module=repro.baselines.receiver
from repro.core.errors import (
    HeaderFormatError,
    MacMismatchError,
    StaleTimestampError,
)


class Receiver:
    def __init__(self, metrics, codec):
        self.metrics = metrics
        self.codec = codec

    def unprotect(self, fresh, mac_ok):
        if not fresh:
            self.metrics.stale_timestamps += 1
            raise StaleTimestampError("stale timestamp")
        self.metrics.mac_failures += 1
        if not mac_ok:
            raise MacMismatchError("bad mac")
        return b"ok"

    def parse(self, data):
        try:
            return self.codec.decode(data)
        except HeaderFormatError:
            self.metrics.header_errors += 1
            raise
