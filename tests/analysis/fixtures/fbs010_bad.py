"""Async datapath pump that blocks the event loop (violates FBS010).

Linted as if it lived at ``src/repro/core/aio.py``.
"""
# fbslint: module=repro.core.aio

import asyncio
import time


def _drain_sync():
    # Fine here: blocking in a sync helper is only a problem when an
    # async function reaches it.
    time.sleep(0.01)


async def pump(queue):
    time.sleep(0.5)  # direct blocking call in async code
    _drain_sync()  # blocking hidden one call away
    await asyncio.sleep(0)
    return queue


async def snapshot(path):
    with open(path) as fh:  # sync file I/O blocks the loop
        return fh.read()
