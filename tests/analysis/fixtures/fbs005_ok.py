"""Compliant fixture for FBS005: codec widths match the declared layout.

A miniature of ``core/header.py`` -- sfl 64 bits, confounder 32, MAC
128 (default suite), timestamp 32.  Linted as if it lived at
``src/repro/core/header.py``.
"""

# fbslint: module=repro.core.header
import struct

FBS_HEADER_LEN = 8 + 4 + 16 + 4


class FBSHeader:
    def __init__(self, sfl, confounder, mac, timestamp):
        self.sfl = sfl
        self.confounder = confounder
        self.mac = mac
        self.timestamp = timestamp

    def encode(self):
        return (
            struct.pack(">QI", self.sfl, self.confounder)
            + self.mac
            + struct.pack(">I", self.timestamp)
        )

    @classmethod
    def decode(cls, data, mac_bytes=16):
        offset = 0
        sfl, confounder = struct.unpack_from(">QI", data, offset)
        offset += 12
        mac = data[offset : offset + mac_bytes]
        offset += mac_bytes
        (timestamp,) = struct.unpack_from(">I", data, offset)
        return cls(sfl, confounder, mac, timestamp)


# The precompiled-codec spelling (the fast-path idiom): same widths,
# reached through struct.Struct bindings instead of format arguments.
_SFL_CONFOUNDER = struct.Struct(">QI")
_TIMESTAMP = struct.Struct(">I")


def encode_fast(header):
    return (
        _SFL_CONFOUNDER.pack(header.sfl, header.confounder)
        + header.mac
        + _TIMESTAMP.pack(header.timestamp)
    )


def decode_fast(data, mac_bytes=16):
    offset = 0
    sfl, confounder = _SFL_CONFOUNDER.unpack_from(data, offset)
    offset += 12
    mac = data[offset : offset + mac_bytes]
    offset += mac_bytes
    (timestamp,) = _TIMESTAMP.unpack_from(data, offset)
    return sfl, confounder, mac, timestamp
