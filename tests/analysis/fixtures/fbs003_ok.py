"""Compliant fixture for FBS003: explicitly seeded generators only.

Linted as if it lived at ``src/repro/core/jitter.py``.
"""

# fbslint: module=repro.core.jitter
import random as _random

import numpy as np


def jitter(seed):
    rng = _random.Random(seed)
    return rng.random()


def loss(seed=0):
    return _random.Random(seed).uniform(0.0, 0.01)


def lane_noise(seed):
    return np.random.default_rng(seed).random(64)
