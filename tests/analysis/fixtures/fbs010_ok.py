"""Async datapath pump that always yields to the loop (complies with FBS010)."""
# fbslint: module=repro.core.aio

import asyncio
import time


def load_config(path):
    # Blocking primitives are fine outside async functions, as long as
    # no async function calls this helper.
    time.sleep(0.0)
    with open(path) as fh:
        return fh.read()


async def pump(queue):
    await asyncio.sleep(0)
    return queue
