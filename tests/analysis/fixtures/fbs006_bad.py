"""Violating fixture for FBS006: silent rejections.

Linted as if it lived at ``src/repro/baselines/receiver.py``.
"""

# fbslint: module=repro.baselines.receiver
from repro.core.errors import (
    HeaderFormatError,
    MacMismatchError,
    StaleTimestampError,
)


class Receiver:
    def __init__(self, metrics, codec):
        self.metrics = metrics
        self.codec = codec

    def unprotect(self, fresh, mac_ok):
        if not fresh:
            raise StaleTimestampError("stale timestamp")  # no counter
        if not mac_ok:
            raise MacMismatchError("bad mac")  # no counter
        return b"ok"

    def parse(self, data):
        try:
            return self.codec.decode(data)
        except HeaderFormatError:
            raise  # re-raised without counting the drop
