"""Violating fixture for FBS010 in gateway-shaped async code.

A gateway serve loop must never block the event loop: no ``time.sleep``
between polls, no synchronous report writes from the loop, directly or
through a helper -- every tenant shares this one loop, so one blocking
call stalls all of them.
"""

# fbslint: module=repro.gateway.server
import time


def _throttle(interval):
    # Only a problem once an async function reaches it.
    time.sleep(interval)


async def serve_once(transport, table, timeout):
    _throttle(0.01)  # blocking pacing hidden one call away
    return await transport.recv_from(timeout)


async def serve(transport, table, rounds):
    for _ in range(rounds):
        time.sleep(0.01)  # blocking inter-round pacing
        await serve_once(transport, table, 0.05)


async def snapshot_report(registry, path):
    with open(path, "w") as fh:  # sync file I/O on the serve loop
        fh.write(str(registry.snapshot()))
