"""Compliant fixture for FBS002: simulated time only.

Linted as if it lived at ``src/repro/netsim/goodclock.py``.
"""

# fbslint: module=repro.netsim.badclock
def sample(sim):
    return sim.now


def stamp(now):
    # Protocol code takes an injected ``now`` callable.
    return now()
