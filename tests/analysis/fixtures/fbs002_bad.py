"""Violating fixture for FBS002: wall-clock reads in simulation code.

Linted as if it lived at ``src/repro/netsim/badclock.py`` (the same
source is quiet under a ``src/repro/bench/`` logical path).
"""

# fbslint: module=repro.netsim.badclock
import time
from datetime import datetime


def now_wall():
    started = time.time()  # banned
    tick = time.monotonic()  # banned
    stamp = datetime.now()  # banned (argless)
    return started, tick, stamp


def time_batch(kernel, lanes):
    # Timing vector kernels belongs in repro.bench, not the datapath.
    t0 = time.perf_counter()  # banned
    kernel(lanes)
    return t0
