"""Violating fixture for FBS007: taxonomy breaks, swallowed failures.

Linted as if it lived at ``src/repro/core/protocol.py``.
"""

# fbslint: module=repro.core.protocol
class FBSEndpoint:
    def protect(self, body, destination):
        if destination is None:
            raise ValueError("no destination")  # builtin from public API
        try:
            return self._encode(body)
        except Exception:
            pass  # swallowed failure
        return b""

    def _encode(self, body):
        try:
            return bytes(body)
        except:  # bare except
            return b""
