"""Violating fixture for FBS001: key material reaches every banned sink.

Linted as if it lived at ``src/repro/core/session.py``.
"""

# fbslint: module=repro.core.session
import logging

log = logging.getLogger(__name__)


def leak(kdf, sfl, master, src, dst, header_mac):
    flow_key = kdf.flow_key(sfl, master, src, dst)
    print(flow_key)  # leak: key printed
    label = f"key={flow_key!r}"  # leak: key in an f-string
    log.debug("derived %s", flow_key)  # leak: key logged
    enc = flow_key[:8]
    if enc == header_mac:  # leak: variable-time compare on key material
        return label
    return None


def leak_lanes(np, kdf, sfl, master, src, dst):
    # The vector datapath moves MAC keys through ndarrays; taint must
    # survive the frombuffer/astype/tobytes round trip.
    flow_key = kdf.flow_key(sfl, master, src, dst)
    lanes = np.frombuffer(flow_key, dtype=np.uint8)
    print(lanes.astype(np.uint32).tobytes())  # leak: key via ndarray
