"""Compliant fixture for FBS007: typed raises, narrow excepts.

Linted as if it lived at ``src/repro/core/protocol.py`` -- so it also
honours FBS006 (metrics before every ReceiveError raise).
"""

# fbslint: module=repro.core.protocol
from repro.core.errors import HeaderFormatError, MacMismatchError


class FBSEndpoint:
    def __init__(self, metrics):
        self.metrics = metrics

    def unprotect(self, data, mac_ok):
        try:
            body = self._decode(data)
        except HeaderFormatError:
            self.metrics.header_errors += 1
            raise
        if not mac_ok:
            self.metrics.mac_failures += 1
            raise MacMismatchError("MAC mismatch")
        return body

    def _decode(self, data):
        if len(data) < 32:
            self.metrics.header_errors += 1
            raise HeaderFormatError("datagram too short")
        return data[32:]
