"""Compliant fixture for FBS007: typed raises, narrow excepts.

Linted as if it lived at ``src/repro/core/protocol.py`` -- so it also
honours FBS006 (rejection bookkeeping before every ReceiveError raise)
and FBS008 (no direct FBSMetrics facade writes: the engine calls its
``_rejected`` helper, which updates bound registry counters).
"""

# fbslint: module=repro.core.protocol
from repro.core.errors import HeaderFormatError, MacMismatchError


class FBSEndpoint:
    def __init__(self, registry):
        self._c_rejected = registry.counter("datagrams_rejected")

    def _rejected(self, reason):
        self._c_rejected.inc()

    def unprotect(self, data, mac_ok):
        try:
            body = self._decode(data)
        except HeaderFormatError:
            self._rejected("header")
            raise
        if not mac_ok:
            self._rejected("mac")
            raise MacMismatchError("MAC mismatch")
        return body

    def _decode(self, data):
        if len(data) < 32:
            self._rejected("header")
            raise HeaderFormatError("datagram too short")
        return data[32:]
