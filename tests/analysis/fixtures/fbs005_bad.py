"""Violating fixture for FBS005: every way the codec can drift.

Linted as if it lived at ``src/repro/core/header.py``.
"""

# fbslint: module=repro.core.header
import struct

FBS_HEADER_LEN = 8 + 4 + 16 + 8  # wrong: timestamp is 4 bytes, not 8


class FBSHeader:
    def __init__(self, sfl, confounder, mac, timestamp):
        self.sfl = sfl
        self.confounder = confounder
        self.mac = mac
        self.timestamp = timestamp

    def encode(self):
        # wrong: sfl packed as 32 bits instead of 64
        return (
            struct.pack(">II", self.sfl, self.confounder)
            + self.mac
            # wrong: timestamp packed as 64 bits instead of 32
            + struct.pack(">Q", self.timestamp)
        )

    @classmethod
    def decode(cls, data, mac_bytes=16):
        offset = 0
        sfl, confounder = struct.unpack_from(">QI", data, offset)
        offset += 16  # wrong: ">QI" is 12 bytes, cursor now off by 4
        mac = data[offset : offset + mac_bytes]
        offset += mac_bytes
        (timestamp,) = struct.unpack_from(">I", data, offset)
        return cls(sfl, confounder, mac, timestamp)


# Precompiled codecs must not hide the widths from the rule.
_SFL_CONFOUNDER = struct.Struct(">II")  # wrong: sfl is 64 bits on the wire
_TIMESTAMP = struct.Struct(">Q")  # wrong: timestamp is 32 bits


def encode_fast(header):
    return _SFL_CONFOUNDER.pack(header.sfl, header.confounder) + header.mac


def decode_timestamp_fast(data, offset):
    (timestamp,) = _TIMESTAMP.unpack_from(data, offset)
    return timestamp
