"""Compliant fixture for FBS001: key material stays off debug/compare sinks.

Linted as if it lived at ``src/repro/core/session.py``.
"""

# fbslint: module=repro.core.session
from repro.crypto.mac import constant_time_equal


def verify(kdf, sfl, master, src, dst, header_mac, compute_mac):
    flow_key = kdf.flow_key(sfl, master, src, dst)
    expected = compute_mac(flow_key)
    if not constant_time_equal(expected, header_mac):
        return None
    return kdf.encryption_key(flow_key)


def describe(sfl):
    # Flow labels are public header fields; rendering them is fine.
    return f"flow {sfl:#x}"


def stamp_headers(np, confounders):
    # Public header fields through ndarrays are not key material.
    head = np.asarray(confounders, dtype=np.uint32)
    return head.astype(np.uint8).tobytes()
