"""Compliant fixture for FBS008: counting through the registry.

Linted as if it lived at ``src/repro/core/protocol.py``.  Instruments
are bound once in ``__init__`` and updated with ``inc()``; assigning
the facade object itself (``self.metrics = ...``) is construction, not
a counted write, and stays legal.
"""

# fbslint: module=repro.core.protocol


class FBSEndpoint:
    def __init__(self, registry, metrics_facade):
        self.registry = registry
        self.metrics = metrics_facade
        self._c_sent = registry.counter("datagrams_sent")
        self._c_bytes_out = registry.counter("bytes_protected")

    def protect(self, body):
        self._c_sent.inc()
        self._c_bytes_out.inc(len(body))
        return body

    def read_back(self):
        # Reading facade fields is always fine; only writes are bound.
        return self.metrics.datagrams_sent
