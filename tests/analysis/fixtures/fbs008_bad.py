"""Violating fixture for FBS008: datapath writes through the facade.

Linted as if it lived at ``src/repro/core/protocol.py``.
"""

# fbslint: module=repro.core.protocol


class FBSEndpoint:
    def __init__(self, metrics):
        self.metrics = metrics

    def protect(self, body):
        self.metrics.datagrams_sent += 1  # facade write
        self.metrics.bytes_protected += len(body)  # facade write
        return body

    def deliver(self, body):
        # Plain assignment through the facade is just as much a bypass.
        self.metrics.datagrams_accepted = self.metrics.datagrams_accepted + 1
        return body
