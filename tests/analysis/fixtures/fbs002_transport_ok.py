"""Compliant fixture for the FBS002 transport carve-out.

Real-clock reads are *sanctioned* in ``repro.transport.udp``: the
real-socket substrate's ``now()`` is the clock everything else injects
(the quarantine boundary).  This file is byte-for-byte the same code as
``fbs002_transport_bad.py`` -- only the impersonated module differs.
"""

# fbslint: module=repro.transport.udp
import time


def now():
    # The substrate clock: the one sanctioned real-clock read outside
    # repro.bench.
    return time.monotonic()


def rtt(started):
    return time.monotonic() - started
