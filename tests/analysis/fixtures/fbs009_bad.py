"""Violating fixture for FBS009: process fan-out outside ``repro.load``.

Linted as if it lived at ``src/repro/netsim/parallel.py`` (the same
source is quiet under a ``src/repro/load/`` logical path).
"""

# fbslint: module=repro.netsim.parallel
import multiprocessing  # banned here
import os
from concurrent.futures import ProcessPoolExecutor  # banned here
from multiprocessing import Pool  # banned here


def fan_out(work, items):
    pid = os.fork()  # banned: forks live FBS soft state
    if pid == 0:
        os._exit(0)
    with Pool() as pool:
        return pool.map(work, items)
