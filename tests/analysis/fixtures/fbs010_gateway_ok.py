"""Compliant fixture for FBS010 over the gateway's async serve loop.

The serve loop's only wait is the awaited addressed receive; the
demultiplex work it fans into is synchronous CPU work, which is fine --
FBS010 bans *blocking waits*, not computation.  This is the shape
``repro.gateway.server`` itself must keep.
"""

# fbslint: module=repro.gateway.server


def _demux(table, payload, addr):
    tenant = table.get(addr)
    if tenant is not None:
        tenant.queue.append(payload)
    return tenant


async def serve_once(transport, table, timeout):
    arrival = await transport.recv_from(timeout)
    if arrival is None:
        return None
    payload, addr = arrival
    return _demux(table, payload, addr)


async def serve(transport, table, rounds, timeout):
    handled = 0
    for _ in range(rounds):
        if await serve_once(transport, table, timeout) is not None:
            handled += 1
    return handled
