"""Compliant fixture for FBS010 over the UDP transport's async surface.

Every wait is an ``await``: queue reads under ``asyncio.wait_for``,
backoff via ``asyncio.sleep``, shutdown via an awaited event.  This is
the shape ``repro.transport.udp`` itself must keep.
"""

# fbslint: module=repro.transport.udp
import asyncio


async def recv(queue, timeout):
    try:
        return await asyncio.wait_for(queue.get(), timeout)
    except asyncio.TimeoutError:
        return None


async def retry(send, backoff):
    await asyncio.sleep(backoff)
    await send()


async def close(closed_event, timeout):
    await asyncio.wait_for(closed_event.wait(), timeout)
