"""Report with deterministic ordering everywhere (complies with FBS011)."""
# fbslint: module=repro.obs.report

import json


def _flagged(metrics):
    return {name for name, value in metrics if value}


def render(metrics, out):
    flagged = _flagged(metrics)
    lines = [name for name in sorted(flagged)]
    json.dump({"flagged": lines}, out, sort_keys=True)
