"""Violating fixture for FBS004: an assert guarding library behaviour.

Linted as if it lived at ``src/repro/baselines/guard.py`` (the same
source is quiet under a ``tests/`` logical path).
"""

# fbslint: module=repro.baselines.guard
_TICKET_LEN = 24


def issue(ticket):
    assert len(ticket) == _TICKET_LEN  # vanishes under python -O
    return ticket
