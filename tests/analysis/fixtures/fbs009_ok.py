"""Compliant fixture for FBS009: multiprocessing inside ``repro.load``.

Linted as if it lived at ``src/repro/load/engine.py`` -- the one
package where process fan-out is sanctioned (spawn start method,
picklable worker specs, nothing shared).
"""

# fbslint: module=repro.load.engine
import multiprocessing


def fan_out(run_worker, specs):
    ctx = multiprocessing.get_context("spawn")
    with ctx.Pool(processes=len(specs)) as pool:
        return pool.map(run_worker, specs)
