"""Violating fixture for FBS003: global and unseeded randomness.

Linted as if it lived at ``src/repro/core/jitter.py``.
"""

# fbslint: module=repro.core.jitter
import random

import numpy as np


def jitter():
    rng = random.Random()  # unseeded: nondeterministic
    return random.random() + rng.random()  # global generator


def lane_noise():
    noise = np.random.random(64)  # global numpy legacy generator
    rng = np.random.default_rng()  # unseeded
    return noise, rng
