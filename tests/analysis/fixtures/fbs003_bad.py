"""Violating fixture for FBS003: global and unseeded randomness.

Linted as if it lived at ``src/repro/core/jitter.py``.
"""

# fbslint: module=repro.core.jitter
import random


def jitter():
    rng = random.Random()  # unseeded: nondeterministic
    return random.random() + rng.random()  # global generator
