"""Compliant fixture for FBS004: guards are explicit typed raises.

Linted as if it lived at ``src/repro/baselines/guard.py``.
"""

# fbslint: module=repro.baselines.guard
_TICKET_LEN = 24


def issue(ticket):
    if len(ticket) != _TICKET_LEN:
        raise ValueError(
            f"ticket is {len(ticket)} bytes, expected {_TICKET_LEN}"
        )
    return ticket
