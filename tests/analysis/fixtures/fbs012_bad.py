"""Suppressions that no longer suppress anything (violates FBS012).

Linted as if it lived at ``src/repro/core/guard.py``.
"""
# fbslint: module=repro.core.guard
# fbslint: disable-file=FBS005


def issue(token):
    return bool(token)  # fbslint: disable=FBS004
