"""Violating fixture for FBS010 in transport-shaped async code.

The FBS002 clock carve-out for ``repro.transport.udp`` does NOT relax
FBS010: new async transport code still must not block the event loop --
no ``time.sleep`` backoff, no raw blocking sockets, no sync file I/O,
directly or through a helper.
"""

# fbslint: module=repro.transport.udp
import socket
import time


def _poll_blocking(sock):
    # Only a problem once an async function reaches it.
    time.sleep(0.01)
    return sock


async def recv(sock):
    return _poll_blocking(sock)  # blocking hidden one call away


async def retry(send, backoff):
    time.sleep(backoff)  # blocking backoff in async code
    await send()


async def open_socket(port):
    return socket.socket(socket.AF_INET, socket.SOCK_DGRAM)  # blocking API
