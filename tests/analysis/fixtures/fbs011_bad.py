"""Report built from unordered collections (violates FBS011).

Linted as if it lived at ``src/repro/obs/report.py``.
"""
# fbslint: module=repro.obs.report

import json


def _flagged(metrics):
    # Building the set is fine; exposing its iteration order is not.
    return {name for name, value in metrics if value}


def render(metrics, out):
    flagged = _flagged(metrics)
    lines = [name for name in flagged]  # comprehension over a set
    for name in flagged:  # for loop over a set
        lines.append(name)
    json.dump({"flagged": lines}, out)  # no sort_keys
