"""Every suppression still earns its keep (complies with FBS012)."""
# fbslint: module=repro.core.guard


def issue(token):
    assert token  # fbslint: disable=FBS004
    return token
