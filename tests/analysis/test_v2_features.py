"""v2 surface features: Finding total order, SARIF, docs sync,
``--changed`` cone restriction, and FBS012 opt-outs."""

import io
import json
from pathlib import Path

from repro.analysis import lint_paths, lint_source
from repro.analysis.cli import main
from repro.analysis.docsync import render_table
from repro.analysis.findings import Finding, Severity

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).parents[2]


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestFindingOrder:
    def _f(self, **kw):
        base = dict(
            rule_id="FBS001", severity=Severity.ERROR, path="a.py",
            line=1, column=1, message="m",
        )
        base.update(kw)
        return Finding(**base)

    def test_sort_key_is_a_total_order(self):
        # Regression: two findings at the same location used to compare
        # as unordered; every field now participates.
        findings = [
            self._f(message="zz"),
            self._f(rule_id="FBS004", severity=Severity.WARNING),
            self._f(message="aa"),
            self._f(path="b.py"),
            self._f(line=2),
            self._f(column=3),
        ]
        keys = [f.sort_key for f in findings]
        ordered = sorted(keys)
        assert ordered == sorted(ordered)  # transitive + stable
        assert len(set(keys)) == len(keys)
        # (path, line, col, rule, message) -- message breaks the last tie.
        assert sorted([self._f(message="zz"), self._f(message="aa")],
                      key=lambda f: f.sort_key)[0].message == "aa"

    def test_engine_orders_same_location_findings(self, tmp_path):
        # Same path/line/column, different rules: deterministic order.
        source = "import time\n\ndef f(t):\n    assert t and time.time()\n"
        result = lint_source(source, logical_path="src/repro/core/x.py")
        keys = [(-int(f.severity),) + f.sort_key for f in result.findings]
        assert keys == sorted(keys)

    def test_round_trip_dict(self):
        finding = self._f(message="with flow")
        object.__setattr__(finding, "flow", ("a", "b"))
        back = Finding.from_dict(finding.as_dict())
        assert back.as_dict() == finding.as_dict()


class TestSarif:
    def test_sarif_output_shape(self):
        code, output = run_cli(
            "--format", "sarif", str(FIXTURES / "fbs004_bad.py")
        )
        assert code == 1
        log = json.loads(output)
        assert log["version"] == "2.1.0"
        run = log["runs"][0]
        assert run["tool"]["driver"]["name"] == "fbslint"
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert {"FBS001", "FBS010", "FBS011", "FBS012"} <= rule_ids
        results = run["results"]
        assert results and results[0]["ruleId"] == "FBS004"
        loc = results[0]["locations"][0]["physicalLocation"]
        assert loc["region"]["startLine"] >= 1
        assert results[0]["partialFingerprints"]["fbslintFingerprint"]

    def test_sarif_carries_flow_paths(self, tmp_path):
        (tmp_path / "src/repro/core").mkdir(parents=True)
        (tmp_path / "src/repro/core/kdf.py").write_text(
            "def derive(kdf):\n    return kdf.flow_key(1)\n"
        )
        (tmp_path / "src/repro/core/app.py").write_text(
            "from repro.core.kdf import derive\n"
            "def audit(kdf):\n    print(derive(kdf))\n"
        )
        result = lint_paths([tmp_path / "src"], root=tmp_path)
        from repro.analysis.sarif import render_sarif

        log = render_sarif(result.findings)
        flows = [
            r["properties"]["flow"]
            for r in log["runs"][0]["results"]
            if "properties" in r
        ]
        assert flows and all(len(flow) >= 2 for flow in flows)


class TestDocsSync:
    def test_repo_docs_are_in_sync(self, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        code, output = run_cli("--check-docs")
        assert code == 0, output

    def test_drifted_table_fails(self, tmp_path, monkeypatch):
        design = tmp_path / "DESIGN.md"
        design.write_text(
            "# x\n<!-- fbslint-invariants:begin -->\nstale\n"
            "<!-- fbslint-invariants:end -->\n"
        )
        monkeypatch.chdir(tmp_path)
        code, output = run_cli("--check-docs")
        assert code == 2
        assert "out of sync" in output

    def test_write_docs_then_check(self, tmp_path, monkeypatch):
        design = tmp_path / "DESIGN.md"
        design.write_text(
            "# x\n<!-- fbslint-invariants:begin -->\n"
            "<!-- fbslint-invariants:end -->\ntail\n"
        )
        monkeypatch.chdir(tmp_path)
        code, _ = run_cli("--write-docs")
        assert code == 0
        assert render_table() in design.read_text()
        assert design.read_text().endswith("tail\n")
        code, _ = run_cli("--check-docs")
        assert code == 0

    def test_missing_markers_fail(self, tmp_path, monkeypatch):
        (tmp_path / "DESIGN.md").write_text("no markers here\n")
        monkeypatch.chdir(tmp_path)
        code, output = run_cli("--check-docs")
        assert code == 2
        assert "markers" in output

    def test_table_covers_every_rule(self):
        from repro.analysis import all_rules

        table = render_table()
        for rule in all_rules():
            assert rule.rule_id in table


class TestChangedCone:
    def _tree(self, tmp_path):
        files = {
            "src/repro/core/base.py": "def b(t):\n    assert t\n",
            "src/repro/core/mid.py": (
                "from repro.core.base import b\n"
                "def m(t):\n    assert t\n"
            ),
            "src/repro/core/other.py": "def o(t):\n    assert t\n",
        }
        for rel, source in files.items():
            target = tmp_path / rel
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(source)

    def test_cone_includes_reverse_dependencies(self, tmp_path):
        self._tree(tmp_path)
        result = lint_paths(
            [tmp_path / "src"], root=tmp_path,
            changed=["src/repro/core/base.py"],
        )
        paths = {f.path for f in result.findings}
        assert paths == {"src/repro/core/base.py", "src/repro/core/mid.py"}

    def test_leaf_change_reports_only_itself(self, tmp_path):
        self._tree(tmp_path)
        result = lint_paths(
            [tmp_path / "src"], root=tmp_path,
            changed=["src/repro/core/other.py"],
        )
        assert {f.path for f in result.findings} == {"src/repro/core/other.py"}

    def test_empty_change_set_reports_nothing(self, tmp_path):
        self._tree(tmp_path)
        result = lint_paths([tmp_path / "src"], root=tmp_path, changed=[])
        assert result.findings == []
        # ... but the whole project was still analyzed.
        assert result.files_checked == 3

    def test_bad_git_ref_exits_two(self, tmp_path, monkeypatch):
        target = tmp_path / "x.py"
        target.write_text("def f():\n    return 1\n")
        monkeypatch.chdir(tmp_path)
        code, output = run_cli("--changed", "no-such-ref", str(target))
        assert code == 2
        assert "error" in output


class TestUnusedSuppressions:
    SOURCE = "def f(t):\n    return t  # fbslint: disable=FBS004\n"

    def test_reported_by_default(self):
        result = lint_source(self.SOURCE, logical_path="src/repro/core/x.py")
        assert [f.rule_id for f in result.findings] == ["FBS012"]
        assert "matches no finding" in result.findings[0].message

    def test_opt_out_flag(self):
        result = lint_source(
            self.SOURCE, logical_path="src/repro/core/x.py",
            unused_suppressions=False,
        )
        assert result.findings == []

    def test_cli_opt_out(self):
        code, _ = run_cli(
            "--no-unused-suppressions", str(FIXTURES / "fbs012_bad.py")
        )
        assert code == 0

    def test_narrowed_select_does_not_fire(self, tmp_path):
        target = tmp_path / "x.py"
        target.write_text(self.SOURCE)
        # With --select the unselected-rule directives are not "unused".
        code, _ = run_cli("--select", "FBS001", str(target))
        assert code == 0
