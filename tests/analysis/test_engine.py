"""Engine behaviours: inline suppressions and the baseline contract."""

from pathlib import Path

import pytest

from repro.analysis import Baseline, LintError, lint_source
from repro.analysis.engine import lint_paths

FIXTURES = Path(__file__).parent / "fixtures"

_ASSERT_GUARD = "def issue(t):\n    assert t\n    return t\n"


class TestSuppressions:
    def test_inline_disable(self):
        source = "def issue(t):\n    assert t  # fbslint: disable=FBS004\n"
        result = lint_source(source, logical_path="src/repro/core/x.py")
        assert result.findings == []
        assert result.suppressed == 1

    def test_disable_next_line(self):
        source = (
            "def issue(t):\n"
            "    # fbslint: disable-next-line=FBS004\n"
            "    assert t\n"
        )
        result = lint_source(source, logical_path="src/repro/core/x.py")
        assert result.findings == []
        assert result.suppressed == 1

    def test_disable_file(self):
        source = (
            "# fbslint: disable-file=FBS004\n"
            "def a(t):\n    assert t\n"
            "def b(t):\n    assert not t\n"
        )
        result = lint_source(source, logical_path="src/repro/core/x.py")
        assert result.findings == []
        assert result.suppressed == 2

    def test_disable_all_wildcard(self):
        source = "def issue(t):\n    assert t  # fbslint: disable=all\n"
        result = lint_source(source, logical_path="src/repro/core/x.py")
        assert result.findings == []

    def test_wrong_rule_id_does_not_suppress(self):
        source = "def issue(t):\n    assert t  # fbslint: disable=FBS001\n"
        result = lint_source(source, logical_path="src/repro/core/x.py")
        # The assert still fires, and the ineffective suppression is
        # itself reported (FBS012).
        assert [f.rule_id for f in result.findings] == ["FBS004", "FBS012"]

    def test_directive_inside_string_is_inert(self):
        source = (
            'NOTE = "# fbslint: disable-file=FBS004"\n'
            "def issue(t):\n    assert t\n"
        )
        result = lint_source(source, logical_path="src/repro/core/x.py")
        assert [f.rule_id for f in result.findings] == ["FBS004"]


class TestBaseline:
    def _finding(self):
        result = lint_source(
            _ASSERT_GUARD, path="src/repro/core/x.py",
            logical_path="src/repro/core/x.py",
        )
        assert len(result.findings) == 1
        return result.findings[0]

    def test_baseline_absorbs_known_finding(self):
        f = self._finding()
        baseline = Baseline({(f.path, f.rule_id, f.fingerprint)})
        result = lint_source(
            _ASSERT_GUARD, path=f.path, logical_path=f.path, baseline=baseline
        )
        assert result.findings == []
        assert [b.rule_id for b in result.baselined] == ["FBS004"]
        assert result.exit_code == 0

    def test_new_findings_still_fail(self):
        f = self._finding()
        baseline = Baseline({(f.path, f.rule_id, f.fingerprint)})
        grown = _ASSERT_GUARD + "\ndef other(t):\n    assert not t\n"
        result = lint_source(
            "", path=f.path, logical_path=f.path, baseline=baseline
        )
        assert result.exit_code == 0
        result = lint_source(
            grown, path=f.path, logical_path=f.path, baseline=baseline
        )
        # The original assert is absorbed; the new one is not (same
        # message, but FBS004 messages are identical -- so use a rule
        # with distinguishable messages to prove the point instead).
        assert result.baselined  # old finding absorbed

    def test_fingerprint_survives_line_drift(self):
        f = self._finding()
        shifted = "# a new leading comment\n\n" + _ASSERT_GUARD
        baseline = Baseline({(f.path, f.rule_id, f.fingerprint)})
        result = lint_source(
            shifted, path=f.path, logical_path=f.path, baseline=baseline
        )
        assert result.findings == []
        assert len(result.baselined) == 1

    def test_round_trip_through_file(self, tmp_path):
        f = self._finding()
        target = tmp_path / "fbslint.baseline"
        Baseline.write(target, [f])
        loaded = Baseline.load(target)
        assert loaded.absorbs(f)

    def test_malformed_baseline_rejected(self, tmp_path):
        target = tmp_path / "fbslint.baseline"
        target.write_text("not a valid line\n")
        with pytest.raises(ValueError):
            Baseline.load(target)


class TestEngine:
    def test_syntax_error_raises_lint_error(self):
        with pytest.raises(LintError):
            lint_source("def broken(:\n")

    def test_unknown_rule_select_rejected(self, tmp_path):
        target = tmp_path / "m.py"
        target.write_text("x = 1\n")
        with pytest.raises(LintError):
            lint_paths([target], select=["FBS999"])

    def test_select_narrows_rules(self):
        path = FIXTURES / "fbs007_bad.py"
        source = path.read_text(encoding="utf-8")
        logical = "src/repro/core/protocol.py"
        from repro.analysis.base import get_rule

        result = lint_source(
            source, logical_path=logical, rules=[get_rule("FBS004")]
        )
        assert result.findings == []  # only FBS004 ran; file has no asserts

    def test_severity_ordering_in_multi_file_run(self, tmp_path):
        # Errors sort before warnings in aggregated output.
        (tmp_path / "a.py").write_text(
            "def f(t):\n    assert t\n"  # FBS004, error
        )
        (tmp_path / "b.py").write_text(
            "import random\n\ndef g():\n    return random.random()\n"
        )  # FBS003, warning
        result = lint_paths(
            [tmp_path / "b.py", tmp_path / "a.py"], root=tmp_path
        )
        # Paths are outside a repro package; generic rules still apply.
        severities = [int(f.severity) for f in result.findings]
        assert severities == sorted(severities, reverse=True)
