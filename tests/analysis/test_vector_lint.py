"""fbslint coverage for the vector datapath (ISSUE 7 satellite).

Two halves: the new detections fire on vector-style violations (key
material laundered through ndarrays, numpy's global RNG), and the real
``repro.crypto.vector`` modules are clean under the full rule set with
no baseline entries.
"""

from pathlib import Path

import pytest

from repro.analysis import lint_source

SRC = Path(__file__).parents[2] / "src"
VECTOR = SRC / "repro" / "crypto" / "vector"


# -- FBS001: taint through ndarrays ------------------------------------------

_NDARRAY_LEAK = (
    "import numpy as np\n"
    "def pack(kdf, flow_key_src):\n"
    "    mk = kdf.mac_key(flow_key_src)\n"
    "    lanes = np.frombuffer(mk, dtype=np.uint8)\n"
    "    print(lanes.tobytes())\n"
)

_NDARRAY_COMPARE = (
    "import numpy as np\n"
    "def verify(kdf, flow_key_src, header_mac):\n"
    "    mk = kdf.mac_key(flow_key_src)\n"
    "    row = np.frombuffer(mk, dtype=np.uint8).astype(np.uint32)\n"
    "    return row.tobytes() == header_mac\n"
)

_NDARRAY_CLEAN = (
    "import numpy as np\n"
    "def stamp(confounders):\n"
    "    head = np.asarray(confounders, dtype=np.uint32)\n"
    "    return head.astype(np.uint8).tobytes()\n"
)


class TestNdarrayTaint:
    def test_key_through_frombuffer_tobytes_leaks(self):
        result = lint_source(
            _NDARRAY_LEAK, logical_path="src/repro/crypto/vector/md5.py"
        )
        assert [f.rule_id for f in result.findings] == ["FBS001"]

    def test_key_through_astype_compare_is_timing_channel(self):
        result = lint_source(
            _NDARRAY_COMPARE, logical_path="src/repro/crypto/vector/md5.py"
        )
        assert [f.rule_id for f in result.findings] == ["FBS001"]
        assert "constant_time_equal" in result.findings[0].message

    def test_public_fields_through_ndarrays_are_clean(self):
        result = lint_source(
            _NDARRAY_CLEAN, logical_path="src/repro/crypto/vector/stamp.py"
        )
        assert result.findings == []


# -- FBS003: numpy global randomness ------------------------------------------

_NUMPY_GLOBAL = (
    "import numpy as np\n"
    "def noise():\n"
    "    return np.random.random(64)\n"
)

_NUMPY_UNSEEDED = (
    "from numpy.random import default_rng\n"
    "def rng():\n"
    "    return default_rng()\n"
)

_NUMPY_SEEDED = (
    "import numpy as np\n"
    "def rng(seed):\n"
    "    return np.random.default_rng(seed)\n"
)


class TestNumpyRandomness:
    def test_global_numpy_sampling_flagged(self):
        result = lint_source(
            _NUMPY_GLOBAL, logical_path="src/repro/crypto/vector/des.py"
        )
        assert [f.rule_id for f in result.findings] == ["FBS003"]
        assert "default_rng(seed)" in result.findings[0].message

    def test_unseeded_default_rng_flagged(self):
        result = lint_source(
            _NUMPY_UNSEEDED, logical_path="src/repro/crypto/vector/des.py"
        )
        assert [f.rule_id for f in result.findings] == ["FBS003"]

    def test_seeded_default_rng_clean(self):
        result = lint_source(
            _NUMPY_SEEDED, logical_path="src/repro/crypto/vector/des.py"
        )
        assert result.findings == []

    def test_numpy_sampling_still_fine_in_tests(self):
        result = lint_source(
            _NUMPY_GLOBAL, logical_path="tests/crypto/test_vector.py"
        )
        assert result.findings == []


# -- the real vector package is clean ------------------------------------------

@pytest.mark.parametrize(
    "name", ["__init__.py", "des.py", "md5.py", "stamp.py"]
)
def test_vector_module_self_analysis_clean(name):
    path = VECTOR / name
    result = lint_source(
        path.read_text(encoding="utf-8"),
        logical_path=f"src/repro/crypto/vector/{name}",
    )
    assert result.findings == [], [f.render() for f in result.findings]
