"""Incremental summary cache: correctness of replay and invalidation."""

from pathlib import Path

from repro.analysis import lint_paths
from repro.analysis.cache import SummaryCache, content_hash

DIRTY = "def guard(t):\n    assert t\n    return t\n"
CLEAN = "def guard(t):\n    if not t:\n        raise ValueError('no')\n    return t\n"


def write_tree(tmp_path, sources):
    for rel, source in sources.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source, encoding="utf-8")


def test_warm_run_replays_and_matches_cold(tmp_path):
    write_tree(tmp_path, {
        "src/repro/core/a.py": DIRTY,
        "src/repro/core/b.py": CLEAN,
    })
    cache_file = tmp_path / "cache.json"
    cold = lint_paths(
        [tmp_path / "src"], root=tmp_path, cache_path=cache_file
    )
    assert cold.cache_misses == 2 and cold.cache_hits == 0
    assert cache_file.exists()

    warm = lint_paths(
        [tmp_path / "src"], root=tmp_path, cache_path=cache_file
    )
    assert warm.cache_hits == 2 and warm.cache_misses == 0
    assert [f.as_dict() for f in warm.findings] == [
        f.as_dict() for f in cold.findings
    ]
    assert warm.suppressed == cold.suppressed
    assert warm.files_checked == cold.files_checked


def test_changed_file_invalidates_only_itself(tmp_path):
    write_tree(tmp_path, {
        "src/repro/core/a.py": DIRTY,
        "src/repro/core/b.py": CLEAN,
    })
    cache_file = tmp_path / "cache.json"
    lint_paths([tmp_path / "src"], root=tmp_path, cache_path=cache_file)

    (tmp_path / "src/repro/core/a.py").write_text(CLEAN, encoding="utf-8")
    warm = lint_paths(
        [tmp_path / "src"], root=tmp_path, cache_path=cache_file
    )
    assert warm.cache_hits == 1 and warm.cache_misses == 1
    assert warm.findings == [], [f.render() for f in warm.findings]


def test_cache_keyed_by_rule_set(tmp_path):
    write_tree(tmp_path, {"src/repro/core/a.py": DIRTY})
    cache_file = tmp_path / "cache.json"
    lint_paths([tmp_path / "src"], root=tmp_path, cache_path=cache_file)
    # A different rule selection must not replay stale artifacts.
    narrowed = lint_paths(
        [tmp_path / "src"], root=tmp_path, cache_path=cache_file,
        select=["FBS004"],
    )
    assert narrowed.cache_hits == 0 and narrowed.cache_misses == 1
    assert [f.rule_id for f in narrowed.findings] == ["FBS004"]


def test_suppressions_survive_replay(tmp_path):
    source = "def guard(t):\n    assert t  # fbslint: disable=FBS004\n"
    write_tree(tmp_path, {"src/repro/core/a.py": source})
    cache_file = tmp_path / "cache.json"
    cold = lint_paths([tmp_path / "src"], root=tmp_path, cache_path=cache_file)
    warm = lint_paths([tmp_path / "src"], root=tmp_path, cache_path=cache_file)
    assert cold.suppressed == warm.suppressed == 1
    assert cold.findings == warm.findings == []


def test_content_hash_is_stable():
    assert content_hash("abc") == content_hash("abc")
    assert content_hash("abc") != content_hash("abd")


def test_corrupt_cache_file_is_ignored(tmp_path):
    write_tree(tmp_path, {"src/repro/core/a.py": DIRTY})
    cache_file = tmp_path / "cache.json"
    cache_file.write_text("{not json", encoding="utf-8")
    result = lint_paths(
        [tmp_path / "src"], root=tmp_path, cache_path=cache_file
    )
    assert result.cache_misses == 1
    assert [f.rule_id for f in result.findings] == ["FBS004"]
