"""Interprocedural (phase-2) tests: multi-module projects on disk.

Each test lays out a miniature ``src/repro`` tree in ``tmp_path`` and
runs :func:`lint_paths` over it, exercising the whole-program passes:
taint through call chains and containers, exception-flow accounting
into helpers, and the impurity-wrapper loophole.
"""

from pathlib import Path

from repro.analysis import lint_paths

KDF_SOURCE = (
    "def derive(kdf, sfl):\n"
    "    return kdf.flow_key(sfl)\n"
)


def make_project(tmp_path, files):
    for rel, source in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source, encoding="utf-8")
    return lint_paths([tmp_path / "src"], root=tmp_path)


class TestTaintV2:
    def test_taint_through_two_hops_and_container(self, tmp_path):
        result = make_project(tmp_path, {
            "src/repro/core/kdf.py": KDF_SOURCE,
            "src/repro/core/helper.py": (
                "from repro.core.kdf import derive\n"
                "\n"
                "def stash(kdf, sfl):\n"
                "    keys = []\n"
                "    keys.append(derive(kdf, sfl))\n"
                "    return keys\n"
            ),
            "src/repro/core/app.py": (
                "from repro.core.helper import stash\n"
                "\n"
                "def audit(kdf, sfl):\n"
                "    ks = stash(kdf, sfl)\n"
                "    print(ks)\n"
            ),
        })
        taint = [f for f in result.findings if f.rule_id == "FBS001"]
        assert len(taint) == 1, [f.render() for f in result.findings]
        finding = taint[0]
        assert finding.path == "src/repro/core/app.py"
        # The witness spans the whole chain: source, two returns, sink.
        assert len(finding.flow) >= 3
        assert "flow_key" in finding.flow[0]
        assert "interprocedural flow" in finding.message

    def test_taint_through_attribute_store(self, tmp_path):
        result = make_project(tmp_path, {
            "src/repro/core/holder.py": (
                "class Holder:\n"
                "    def __init__(self, kdf):\n"
                "        self._key = kdf.flow_key(1)\n"
                "\n"
                "    def debug(self):\n"
                "        print(self._key)\n"
            ),
        })
        taint = [f for f in result.findings if f.rule_id == "FBS001"]
        assert len(taint) == 1, [f.render() for f in result.findings]
        assert "stored into self._key" in " ".join(taint[0].flow)

    def test_purely_local_flow_stays_with_v1(self, tmp_path):
        # A same-function source-to-sink flow is the per-file rule's
        # job; the project pass must not double-report it.
        result = make_project(tmp_path, {
            "src/repro/core/leak.py": (
                "def leak(kdf):\n"
                "    key = kdf.flow_key(1)\n"
                "    print(key)\n"
            ),
        })
        taint = [f for f in result.findings if f.rule_id == "FBS001"]
        assert len(taint) == 1, [f.render() for f in result.findings]
        assert "interprocedural" not in taint[0].message


class TestExceptionFlowV2:
    DATAPATH = (
        "from repro.core.checks import verify_mac\n"
        "\n"
        "def receive(dgram):\n"
        "    return verify_mac(dgram)\n"
    )

    def test_unguarded_raise_in_helper_is_found(self, tmp_path):
        result = make_project(tmp_path, {
            "src/repro/core/protocol.py": self.DATAPATH,
            "src/repro/core/checks.py": (
                "from repro.core.errors import MacMismatchError\n"
                "\n"
                "def verify_mac(dgram):\n"
                "    if not dgram:\n"
                "        raise MacMismatchError('bad mac')\n"
                "    return dgram\n"
            ),
        })
        acct = [f for f in result.findings if f.rule_id == "FBS006"]
        assert len(acct) == 1, [f.render() for f in result.findings]
        finding = acct[0]
        assert finding.path == "src/repro/core/checks.py"
        assert "receive datapath" in finding.message
        assert any("receive()" in step for step in finding.flow)

    def test_guarded_call_site_is_clean(self, tmp_path):
        result = make_project(tmp_path, {
            "src/repro/core/protocol.py": (
                "from repro.core.checks import verify_mac\n"
                "\n"
                "def receive(dgram, metrics):\n"
                "    try:\n"
                "        return verify_mac(dgram)\n"
                "    except MacMismatchError:\n"
                "        metrics.rejected += 1\n"
                "        raise\n"
            ),
            "src/repro/core/checks.py": (
                "from repro.core.errors import MacMismatchError\n"
                "\n"
                "def verify_mac(dgram):\n"
                "    if not dgram:\n"
                "        raise MacMismatchError('bad mac')\n"
                "    return dgram\n"
            ),
        })
        acct = [f for f in result.findings if f.rule_id == "FBS006"]
        assert acct == [], [f.render() for f in acct]

    def test_bumped_raise_in_helper_is_clean(self, tmp_path):
        result = make_project(tmp_path, {
            "src/repro/core/protocol.py": self.DATAPATH,
            "src/repro/core/checks.py": (
                "from repro.core.errors import MacMismatchError\n"
                "\n"
                "def verify_mac(dgram, metrics=None):\n"
                "    if not dgram:\n"
                "        metrics.datagrams_rejected += 1\n"
                "        raise MacMismatchError('bad mac')\n"
                "    return dgram\n"
            ),
        })
        acct = [f for f in result.findings if f.rule_id == "FBS006"]
        assert acct == [], [f.render() for f in acct]


class TestImpurityV2:
    def test_wall_clock_wrapper_loophole_closed(self, tmp_path):
        # v1 only saw direct time.time() calls; a pure-looking wrapper
        # used to slip through.
        result = make_project(tmp_path, {
            "src/repro/helpers.py": (
                "import time\n"
                "\n"
                "def now():\n"
                "    return time.time()\n"
            ),
            "src/repro/core/session.py": (
                "from repro.helpers import now\n"
                "\n"
                "def stamp():\n"
                "    return now()\n"
            ),
        })
        wrapped = [
            f for f in result.findings
            if f.rule_id == "FBS002" and f.path == "src/repro/core/session.py"
        ]
        assert len(wrapped) == 1, [f.render() for f in result.findings]
        assert "transitively reaches the wall clock" in wrapped[0].message

    def test_unseeded_random_wrapper_loophole_closed(self, tmp_path):
        result = make_project(tmp_path, {
            "src/repro/helpers.py": (
                "import random\n"
                "\n"
                "def jitter():\n"
                "    return random.random()\n"
            ),
            "src/repro/core/session.py": (
                "from repro.helpers import jitter\n"
                "\n"
                "def delay():\n"
                "    return jitter()\n"
            ),
        })
        wrapped = [
            f for f in result.findings
            if f.rule_id == "FBS003" and f.path == "src/repro/core/session.py"
        ]
        assert len(wrapped) == 1, [f.render() for f in result.findings]

    def test_bench_callers_stay_exempt(self, tmp_path):
        result = make_project(tmp_path, {
            "src/repro/helpers.py": (
                "import time\n"
                "\n"
                "def now():\n"
                "    return time.time()\n"
            ),
            "src/repro/bench/timing.py": (
                "from repro.helpers import now\n"
                "\n"
                "def elapsed(start):\n"
                "    return now() - start\n"
            ),
        })
        assert not any(
            f.rule_id == "FBS002" and f.path == "src/repro/bench/timing.py"
            for f in result.findings
        )


class TestReportOrderV2:
    def test_set_returned_across_modules(self, tmp_path):
        result = make_project(tmp_path, {
            "src/repro/obs/collect.py": (
                "def failing(results):\n"
                "    return {name for name, ok in results if not ok}\n"
            ),
            "src/repro/obs/render.py": (
                "from repro.obs.collect import failing\n"
                "\n"
                "def lines(results):\n"
                "    return [name for name in failing(results)]\n"
            ),
        })
        order = [f for f in result.findings if f.rule_id == "FBS011"]
        assert len(order) == 1, [f.render() for f in result.findings]
        assert order[0].path == "src/repro/obs/render.py"
        assert "sorted(" in order[0].message

    def test_sorted_across_modules_is_clean(self, tmp_path):
        result = make_project(tmp_path, {
            "src/repro/obs/collect.py": (
                "def failing(results):\n"
                "    return {name for name, ok in results if not ok}\n"
            ),
            "src/repro/obs/render.py": (
                "from repro.obs.collect import failing\n"
                "\n"
                "def lines(results):\n"
                "    return [name for name in sorted(failing(results))]\n"
            ),
        })
        order = [f for f in result.findings if f.rule_id == "FBS011"]
        assert order == [], [f.render() for f in order]
