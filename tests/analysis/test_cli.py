"""CLI contract tests: ``python -m repro.analysis`` exit codes and output."""

import io
import json
import os
from pathlib import Path

from repro.analysis.cli import main

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).parents[2]


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestExitCodes:
    def test_clean_file_exits_zero(self, tmp_path):
        target = tmp_path / "clean.py"
        target.write_text("def f():\n    return 1\n")
        code, output = run_cli(str(target))
        assert code == 0
        assert "0 findings" in output

    def test_violation_exits_one(self, tmp_path):
        target = tmp_path / "dirty.py"
        target.write_text("def f(t):\n    assert t\n")
        code, output = run_cli(str(target))
        assert code == 1
        assert "FBS004" in output

    def test_fixture_violations_exit_nonzero(self):
        # Acceptance criterion: scanning any violating fixture fails.
        for bad in sorted(FIXTURES.glob("*_bad.py")):
            code, _ = run_cli(str(bad))
            assert code == 1, f"{bad.name} should produce findings"

    def test_missing_path_exits_two(self):
        code, output = run_cli("definitely/not/a/path")
        assert code == 2
        assert "error" in output

    def test_unknown_rule_exits_two(self, tmp_path):
        target = tmp_path / "m.py"
        target.write_text("x = 1\n")
        code, output = run_cli("--select", "FBS999", str(target))
        assert code == 2

    def test_syntax_error_exits_two(self, tmp_path):
        target = tmp_path / "broken.py"
        target.write_text("def broken(:\n")
        code, output = run_cli(str(target))
        assert code == 2

    def test_whole_tree_is_clean(self, monkeypatch):
        # The headline acceptance criterion: the final tree lints clean.
        monkeypatch.chdir(REPO_ROOT)
        code, output = run_cli("src")
        assert code == 0, output


class TestOptions:
    def test_list_rules(self):
        code, output = run_cli("--list-rules")
        assert code == 0
        for rule_id in (
            "FBS001", "FBS002", "FBS003", "FBS004",
            "FBS005", "FBS006", "FBS007",
        ):
            assert rule_id in output

    def test_ignore_silences_rule(self, tmp_path):
        target = tmp_path / "dirty.py"
        target.write_text("def f(t):\n    assert t\n")
        code, _ = run_cli("--ignore", "FBS004", str(target))
        assert code == 0

    def test_json_format(self, tmp_path):
        target = tmp_path / "dirty.py"
        target.write_text("def f(t):\n    assert t\n")
        code, output = run_cli("--format", "json", str(target))
        assert code == 1
        payload = json.loads(output)
        assert payload["findings"][0]["rule"] == "FBS004"
        assert payload["files_checked"] == 1

    def test_write_then_use_baseline(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        target = tmp_path / "dirty.py"
        target.write_text("def f(t):\n    assert t\n")
        # Grandfather the finding...
        code, output = run_cli("--write-baseline", str(target))
        assert code == 0
        assert (tmp_path / "fbslint.baseline").exists()
        # ...so the next run is clean (default baseline picked up) ...
        code, output = run_cli(str(target))
        assert code == 0
        assert "baselined" in output
        # ...but a fresh violation in another file still fails.
        other = tmp_path / "other.py"
        other.write_text("def g(t):\n    assert not t\n")
        code, _ = run_cli(str(target), str(other))
        assert code == 1

    def test_missing_baseline_exits_two(self, tmp_path):
        target = tmp_path / "m.py"
        target.write_text("x = 1\n")
        code, _ = run_cli("--baseline", str(tmp_path / "absent"), str(target))
        assert code == 2
