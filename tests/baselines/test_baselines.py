"""Baseline scheme tests: delivery, protection, and their signature
weaknesses/costs relative to FBS."""

import pytest

from repro.baselines import (
    GenericNull,
    HostPairKeying,
    KdcSessionKeying,
    KeyDistributionCenter,
    PerDatagramHostPair,
    PhoturisSessionKeying,
    SkipHostKeying,
)
from repro.core.deploy import FBSDomain
from repro.core.keying import Principal
from repro.netsim import Network
from repro.netsim.sockets import UdpSocket


def build_pair(seed=0):
    net = Network(seed=seed)
    net.add_segment("lan", "10.0.0.0")
    return net, net.add_host("a", segment="lan"), net.add_host("b", segment="lan")


def roundtrip(net, a, b, message=b"baseline probe", port=5000):
    rx = UdpSocket(b, port)
    UdpSocket(a).sendto(message, b.address, port)
    net.sim.run()
    return rx.received[0][0] if rx.received else None


def enroll_hostpair_mkds(net, a, b, seed):
    domain = FBSDomain(seed=seed)
    mkd_a = domain.enroll_principal(Principal.from_ip(a.address))
    mkd_b = domain.enroll_principal(Principal.from_ip(b.address))
    return mkd_a, mkd_b


class TestGeneric:
    def test_passthrough(self):
        net, a, b = build_pair()
        a.install_security(GenericNull())
        b.install_security(GenericNull())
        assert roundtrip(net, a, b) == b"baseline probe"

    def test_zero_overhead(self):
        assert GenericNull().header_overhead() == 0


class TestHostPair:
    def test_roundtrip(self):
        net, a, b = build_pair(1)
        mkd_a, mkd_b = enroll_hostpair_mkds(net, a, b, 1)
        a.install_security(HostPairKeying(a, mkd_a))
        b.install_security(HostPairKeying(b, mkd_b))
        assert roundtrip(net, a, b) == b"baseline probe"

    def test_wire_is_encrypted(self):
        net, a, b = build_pair(2)
        frames = []
        net.segment("lan").attach_tap(frames.append)
        mkd_a, mkd_b = enroll_hostpair_mkds(net, a, b, 2)
        a.install_security(HostPairKeying(a, mkd_a))
        b.install_security(HostPairKeying(b, mkd_b))
        assert roundtrip(net, a, b, b"WIRE-SECRET") == b"WIRE-SECRET"
        assert all(b"WIRE-SECRET" not in f for f in frames)

    def test_mac_variant_rejects_tamper(self):
        net, a, b = build_pair(3)
        frames = []
        net.segment("lan").attach_tap(frames.append)
        mkd_a, mkd_b = enroll_hostpair_mkds(net, a, b, 3)
        a.install_security(HostPairKeying(a, mkd_a, include_mac=True))
        module_b = HostPairKeying(b, mkd_b, include_mac=True)
        b.install_security(module_b)
        assert roundtrip(net, a, b) == b"baseline probe"
        from repro.netsim.ipv4 import IPv4Packet

        packet = IPv4Packet.decode(frames[0])
        packet.payload = packet.payload[:-1] + bytes([packet.payload[-1] ^ 1])
        b.stack.ip_input(packet.encode())
        assert module_b.inbound_rejected == 1

    def test_single_key_for_all_traffic(self):
        # The structural weakness: every conversation shares one key.
        net, a, b = build_pair(4)
        mkd_a, _ = enroll_hostpair_mkds(net, a, b, 4)
        module = HostPairKeying(a, mkd_a)
        peer = Principal.from_ip(b.address)
        assert module.master_key_for(peer) == module.master_key_for(peer)


class TestPerDatagram:
    def test_roundtrip(self):
        net, a, b = build_pair(5)
        mkd_a, mkd_b = enroll_hostpair_mkds(net, a, b, 5)
        a.install_security(PerDatagramHostPair(a, mkd_a))
        b.install_security(PerDatagramHostPair(b, mkd_b))
        assert roundtrip(net, a, b) == b"baseline probe"

    def test_fresh_key_every_datagram(self):
        net, a, b = build_pair(6)
        mkd_a, mkd_b = enroll_hostpair_mkds(net, a, b, 6)
        module = PerDatagramHostPair(a, mkd_a)
        a.install_security(module)
        b.install_security(PerDatagramHostPair(b, mkd_b))
        rx = UdpSocket(b, 5000)
        tx = UdpSocket(a)
        for i in range(4):
            tx.sendto(b"msg %d" % i, b.address, 5000)
        net.sim.run()
        assert len(rx.received) == 4
        assert module.keys_generated == 4  # the per-datagram cost

    def test_tamper_rejected(self):
        net, a, b = build_pair(7)
        frames = []
        net.segment("lan").attach_tap(frames.append)
        mkd_a, mkd_b = enroll_hostpair_mkds(net, a, b, 7)
        a.install_security(PerDatagramHostPair(a, mkd_a))
        module_b = PerDatagramHostPair(b, mkd_b)
        b.install_security(module_b)
        roundtrip(net, a, b)
        from repro.netsim.ipv4 import IPv4Packet

        packet = IPv4Packet.decode(frames[0])
        packet.payload = packet.payload[:-1] + bytes([packet.payload[-1] ^ 1])
        b.stack.ip_input(packet.encode())
        assert module_b.inbound_rejected == 1


class TestKdc:
    def _pair_with_kdc(self, seed):
        net, a, b = build_pair(seed)
        kdc = KeyDistributionCenter(seed=seed)
        module_a = KdcSessionKeying(a, kdc)
        module_b = KdcSessionKeying(b, kdc)
        a.install_security(module_a)
        b.install_security(module_b)
        return net, a, b, kdc, module_a, module_b

    def test_roundtrip(self):
        net, a, b, _, _, _ = self._pair_with_kdc(8)
        assert roundtrip(net, a, b) == b"baseline probe"

    def test_setup_messages_violate_datagram_semantics(self):
        net, a, b, kdc, module_a, _ = self._pair_with_kdc(9)
        roundtrip(net, a, b)
        # The first datagram required a KDC exchange: extra messages and
        # a round-trip delay -- exactly what FBS's zero-message keying
        # avoids.
        assert module_a.setup_messages == 2
        assert module_a.setup_delay_seconds > 0
        assert kdc.tickets_issued == 1

    def test_session_reuse_no_new_exchange(self):
        net, a, b, kdc, module_a, _ = self._pair_with_kdc(10)
        rx = UdpSocket(b, 5000)
        tx = UdpSocket(a)
        for _ in range(5):
            tx.sendto(b"m", b.address, 5000)
        net.sim.run()
        assert len(rx.received) == 5
        assert kdc.tickets_issued == 1  # hard state amortizes the exchange

    def test_hard_state_loss_recovers_via_carried_ticket(self):
        net, a, b, kdc, module_a, module_b = self._pair_with_kdc(11)
        roundtrip(net, a, b)
        module_b.drop_hard_state()  # receiver crash
        rx = UdpSocket(b, 5001)
        UdpSocket(a).sendto(b"after crash", b.address, 5001)
        net.sim.run()
        # The ticket carried in every datagram re-primes the receiver.
        assert rx.received[0][0] == b"after crash"

    def test_sender_state_loss_needs_new_exchange(self):
        net, a, b, kdc, module_a, _ = self._pair_with_kdc(12)
        roundtrip(net, a, b)
        module_a.drop_hard_state()
        roundtrip(net, a, b, port=5001)
        assert kdc.tickets_issued == 2

    def test_unregistered_destination_fails(self):
        net, a, b = build_pair(13)
        kdc = KeyDistributionCenter(seed=13)
        a.install_security(KdcSessionKeying(a, kdc))
        # b never registered with this KDC.
        assert roundtrip(net, a, b) is None


class TestPhoturis:
    def _pair(self, seed):
        net, a, b = build_pair(seed)
        registry = {}
        module_a = PhoturisSessionKeying(a, registry, dh_private_seed=seed)
        module_b = PhoturisSessionKeying(b, registry, dh_private_seed=seed + 1)
        a.install_security(module_a)
        b.install_security(module_b)
        return net, a, b, module_a, module_b

    def test_roundtrip(self):
        net, a, b, _, _ = self._pair(14)
        assert roundtrip(net, a, b) == b"baseline probe"

    def test_exchange_costs_counted(self):
        net, a, b, module_a, module_b = self._pair(15)
        roundtrip(net, a, b)
        assert module_a.setup_messages == 4  # two round trips
        assert module_a.exchanges == 1
        assert module_a.setup_delay_seconds > 0.1  # two modexps dominate

    def test_hard_state_loss_blackholes(self):
        net, a, b, module_a, module_b = self._pair(16)
        roundtrip(net, a, b)
        module_b.drop_hard_state()  # receiver loses the SA
        rx = UdpSocket(b, 5001)
        UdpSocket(a).sendto(b"lost", b.address, 5001)
        net.sim.run()
        # Sender still uses its SA; receiver cannot find the SPI.
        assert rx.received == []
        assert module_b.unknown_spi == 1


class TestSkip:
    def _pair(self, seed):
        net, a, b = build_pair(seed)
        mkd_a, mkd_b = enroll_hostpair_mkds(net, a, b, seed)
        module_a = SkipHostKeying(a, mkd_a)
        module_b = SkipHostKeying(b, mkd_b)
        a.install_security(module_a)
        b.install_security(module_b)
        return net, a, b, module_a, module_b

    def test_roundtrip(self):
        net, a, b, _, _ = self._pair(17)
        assert roundtrip(net, a, b) == b"baseline probe"

    def test_zero_message_keying(self):
        # Like FBS: the very first datagram goes through with no setup.
        net, a, b, module_a, _ = self._pair(18)
        assert roundtrip(net, a, b) is not None
        assert not hasattr(module_a, "setup_messages")

    def test_per_datagram_packet_keys(self):
        net, a, b, module_a, _ = self._pair(19)
        rx = UdpSocket(b, 5000)
        tx = UdpSocket(a)
        for _ in range(3):
            tx.sendto(b"m", b.address, 5000)
        net.sim.run()
        assert len(rx.received) == 3
        # Section 7.4: SKIP generates a key per datagram, FBS per flow.
        assert module_a.packet_keys_generated == 3

    def test_interval_key_is_per_hour(self):
        net, a, b, module_a, _ = self._pair(20)
        peer = Principal.from_ip(b.address)
        assert module_a.interval_key(peer, 0) != module_a.interval_key(peer, 1)
        assert module_a.interval_key(peer, 0) == module_a.interval_key(peer, 0)

    def test_wire_encrypted(self):
        net, a, b, _, _ = self._pair(21)
        frames = []
        net.segment("lan").attach_tap(frames.append)
        assert roundtrip(net, a, b, b"SKIP-SECRET") == b"SKIP-SECRET"
        assert all(b"SKIP-SECRET" not in f for f in frames)
