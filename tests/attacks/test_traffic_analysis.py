"""Passive traffic analysis comparison tests."""

import pytest

from repro.attacks.traffic_analysis import run_traffic_analysis


class TestGeneric:
    def test_everything_visible(self):
        report = run_traffic_analysis("generic", conversations=4, seed=1)
        assert report.payload_readable
        assert 6000 in report.ports_visible
        assert report.linkable_conversations == 4
        assert len(report.endpoint_pairs) >= 1


class TestEndToEndFbs:
    def test_payload_and_ports_hidden(self):
        report = run_traffic_analysis("fbs", conversations=4, seed=2)
        assert not report.payload_readable
        assert report.ports_visible == set()

    def test_hosts_still_visible(self):
        report = run_traffic_analysis("fbs", conversations=4, seed=3)
        assert ("10.0.0.1", "10.0.0.2") in report.endpoint_pairs

    def test_sfl_links_conversations(self):
        # The cleartext flow label partitions traffic exactly into the
        # underlying conversations -- the structural leak inherent to
        # carrying the sfl in the header.
        report = run_traffic_analysis("fbs", conversations=4, seed=4)
        assert report.linkable_conversations == 4


class TestGatewayTunnels:
    def test_interior_hosts_hidden(self):
        report = run_traffic_analysis("fbs-gateway", conversations=4, seed=5)
        assert not report.payload_readable
        flat = {host for pair in report.endpoint_pairs for host in pair}
        assert "10.0.1.1" not in flat  # alice
        assert "10.0.2.1" not in flat  # bob

    def test_flow_structure_still_linkable(self):
        # Per-conversation tunnel flows keep the sfl linkability even on
        # the WAN: the observer counts conversations without knowing who
        # holds them.
        report = run_traffic_analysis("fbs-gateway", conversations=4, seed=6)
        assert report.linkable_conversations == 4


class TestComparison:
    def test_information_strictly_decreases(self):
        generic = run_traffic_analysis("generic", conversations=3, seed=7)
        e2e = run_traffic_analysis("fbs", conversations=3, seed=7)
        gateway = run_traffic_analysis("fbs-gateway", conversations=3, seed=7)
        # Payload: only generic leaks it.
        assert generic.payload_readable
        assert not e2e.payload_readable and not gateway.payload_readable
        # Ports: only generic shows them.
        assert generic.ports_visible and not e2e.ports_visible
        # Endpoints: gateway hides the interior pair that e2e shows.
        assert ("10.0.0.1", "10.0.0.2") in e2e.endpoint_pairs
        interior = {h for p in gateway.endpoint_pairs for h in p}
        assert not any(h.startswith("10.0.1.1") or h.startswith("10.0.2.1") for h in interior)

    def test_unknown_scheme(self):
        with pytest.raises(ValueError):
            run_traffic_analysis("pigeon-post")
