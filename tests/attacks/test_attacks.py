"""Attack scenario regression tests (Sections 2.2, 6, 7.1)."""

import pytest

from repro.attacks import (
    run_compromise_analysis,
    run_cutpaste_attack,
    run_port_reuse_attack,
    run_replay_attack,
)
from repro.attacks.adversary import OnPathAdversary
from repro.netsim import Network
from repro.netsim.sockets import UdpSocket


class TestAdversary:
    def test_captures_everything(self):
        net = Network(seed=1)
        net.add_segment("lan", "10.0.0.0")
        a = net.add_host("a", segment="lan")
        b = net.add_host("b", segment="lan")
        adversary = OnPathAdversary(net.sim, net.segment("lan"))
        UdpSocket(b, 5000)
        UdpSocket(a).sendto(b"observed", b.address, 5000)
        net.sim.run()
        assert len(adversary.captured) == 1
        packets = adversary.captured_packets()
        assert packets[0].header.src == a.address

    def test_injection_and_spoofing(self):
        net = Network(seed=2)
        net.add_segment("lan", "10.0.0.0")
        a = net.add_host("a", segment="lan")
        b = net.add_host("b", segment="lan")
        adversary = OnPathAdversary(net.sim, net.segment("lan"))
        rx = UdpSocket(b, 5000)
        # Forge a datagram claiming to be from a.
        from repro.netsim.ipv4 import IPProtocol, IPv4Header, IPv4Packet
        from repro.netsim.udp import UDPHeader

        udp = UDPHeader(sport=999, dport=5000, length=8 + 6).encode() + b"forged"
        packet = IPv4Packet(
            header=IPv4Header(src=a.address, dst=b.address, proto=IPProtocol.UDP),
            payload=udp,
        )
        packet.header.identification = 77
        adversary.inject_packet(packet)
        net.sim.run()
        assert rx.received[0][0] == b"forged"
        assert rx.received[0][1] == a.address  # spoofed source accepted

    def test_find_and_clear(self):
        net = Network(seed=3)
        net.add_segment("lan", "10.0.0.0")
        a = net.add_host("a", segment="lan")
        b = net.add_host("b", segment="lan")
        adversary = OnPathAdversary(net.sim, net.segment("lan"))
        UdpSocket(b, 5000)
        UdpSocket(a).sendto(b"x", b.address, 5000)
        net.sim.run()
        assert adversary.find(lambda p: p.header.dst == b.address) is not None
        assert adversary.find(lambda p: False) is None
        adversary.clear()
        assert adversary.captured == []


class TestReplay:
    def test_full_scenario(self):
        outcome = run_replay_attack(seed=10)
        assert outcome.original_delivered
        # Within the freshness window: replay accepted (Section 6.2's
        # documented residual exposure).
        assert outcome.replays_accepted_in_window == 1
        # Outside the window: the timestamp check rejects it.
        assert outcome.replays_accepted_after_window == 0
        assert outcome.stale_rejections >= 1

    def test_narrow_window_blocks_slow_replay(self):
        outcome = run_replay_attack(
            seed=11,
            freshness_half_window=1.0,
            replay_delay_in_window=0.5,
            replay_delay_after_window=120.0,
        )
        assert outcome.replays_accepted_in_window == 1
        assert outcome.replays_accepted_after_window == 0

    def test_unencrypted_mode_also_protected(self):
        outcome = run_replay_attack(seed=12, encrypt=False)
        assert outcome.replays_accepted_after_window == 0

    def test_replay_guard_extension_closes_in_window_case(self):
        outcome = run_replay_attack(seed=13, replay_guard_size=256)
        assert outcome.original_delivered
        assert outcome.replays_accepted_in_window == 0
        assert outcome.replays_accepted_after_window == 0


class TestCutPaste:
    def test_succeeds_against_basic_host_pair(self):
        outcome = run_cutpaste_attack("host-pair", seed=20)
        assert outcome.splice_delivered
        assert outcome.secret_leaked

    def test_fails_against_fbs(self):
        outcome = run_cutpaste_attack("fbs", seed=21)
        assert not outcome.splice_delivered
        assert not outcome.secret_leaked

    def test_fails_against_host_pair_with_mac(self):
        # The MAC (even keyed on the shared master key) catches splices.
        outcome = run_cutpaste_attack("host-pair-mac", seed=22)
        assert not outcome.splice_delivered

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            run_cutpaste_attack("rot13")


class TestPortReuse:
    def test_attack_succeeds_without_countermeasure(self):
        outcome = run_port_reuse_attack(countermeasure=False, seed=30)
        assert outcome.port_rebound
        assert outcome.plaintexts_recovered >= 1
        assert b"confidential" in outcome.recovered

    def test_wait_threshold_blocks_rebind(self):
        outcome = run_port_reuse_attack(countermeasure=True, seed=31)
        assert not outcome.port_rebound
        assert outcome.plaintexts_recovered == 0

    def test_stale_replay_fails_even_with_rebind(self):
        # A slow attacker loses the race against the freshness window:
        # the recorded datagrams go stale before the replay (minute
        # timestamp resolution means this takes minutes, not seconds).
        outcome = run_port_reuse_attack(
            countermeasure=False,
            seed=32,
            freshness_half_window=120.0,
            attack_delay=400.0,
        )
        assert outcome.port_rebound
        assert outcome.plaintexts_recovered == 0


class TestCompromise:
    def test_fbs_blast_radius_is_one_flow(self):
        report = run_compromise_analysis("fbs", flows=6, datagrams_per_flow=4, seed=40)
        assert report.flows_on_wire == 6
        # One stolen flow key decrypts exactly one flow's datagrams.
        assert report.decryptable_with_one_key == 4
        assert report.exposure == pytest.approx(1 / 6)

    def test_host_pair_blast_radius_is_everything(self):
        report = run_compromise_analysis("host-pair", flows=6, datagrams_per_flow=4, seed=41)
        assert report.exposure == 1.0

    def test_skip_blast_radius_is_everything_in_interval(self):
        report = run_compromise_analysis("skip", flows=6, datagrams_per_flow=4, seed=42)
        assert report.exposure == 1.0

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            run_compromise_analysis("tls")
