"""Combined deployments: layered and heterogeneous FBS configurations."""

import pytest

from repro.core.app_mapping import ApplicationDirectory, FBSApplication
from repro.core.deploy import CertificateServer, FBSDomain
from repro.core.keying import Principal
from repro.netsim import Network
from repro.netsim.sockets import UdpSocket


class TestGatewayPlusEndToEnd:
    def test_double_protection_layers_compose(self):
        """End-to-end FBS *through* FBS gateway tunnels: the interior
        hosts encrypt end-to-end, the gateways wrap that ciphertext
        again for the WAN.  Both layers must compose transparently."""
        net = Network(seed=70)
        net.add_segment("lan1", "10.0.1.0")
        net.add_segment("lan2", "10.0.2.0")
        net.add_segment("wan", "192.168.0.0")
        a = net.add_host("a", segment="lan1")
        b = net.add_host("b", segment="lan2")
        gw1 = net.add_router("gw1", segments=["lan1", "wan"])
        gw2 = net.add_router("gw2", segments=["lan2", "wan"])
        net.add_default_route(a, "lan1", gw1)
        net.add_default_route(b, "lan2", gw2)
        net.add_default_route(gw1, "wan", gw2)
        net.add_default_route(gw2, "wan", gw1)

        domain = FBSDomain(seed=71)
        fbs_a = domain.enroll_host(a, encrypt_all=True)
        fbs_b = domain.enroll_host(b, encrypt_all=True)
        t1 = domain.enroll_gateway(gw1)
        t2 = domain.enroll_gateway(gw2)
        t1.add_peer("10.0.2.0", 24, gw2.address)
        t2.add_peer("10.0.1.0", 24, gw1.address)

        rx = UdpSocket(b, 5000)
        UdpSocket(a).sendto(b"belt and braces", b.address, 5000)
        net.sim.run()
        assert rx.received[0][0] == b"belt and braces"
        assert fbs_a.outbound_protected == 1
        assert t1.encapsulated == 1
        assert t2.decapsulated == 1
        assert fbs_b.inbound_accepted == 1

    def test_app_layer_through_gateways(self):
        """Application-layer FBS principals talking across gateway
        tunnels: three independent layers of the same protocol."""
        net = Network(seed=72)
        net.add_segment("lan1", "10.0.1.0")
        net.add_segment("lan2", "10.0.2.0")
        net.add_segment("wan", "192.168.0.0")
        h1 = net.add_host("h1", segment="lan1")
        h2 = net.add_host("h2", segment="lan2")
        gw1 = net.add_router("gw1", segments=["lan1", "wan"])
        gw2 = net.add_router("gw2", segments=["lan2", "wan"])
        net.add_default_route(h1, "lan1", gw1)
        net.add_default_route(h2, "lan2", gw2)
        net.add_default_route(gw1, "wan", gw2)
        net.add_default_route(gw2, "wan", gw1)

        domain = FBSDomain(seed=73)
        t1 = domain.enroll_gateway(gw1)
        t2 = domain.enroll_gateway(gw2)
        t1.add_peer("10.0.2.0", 24, gw2.address)
        t2.add_peer("10.0.1.0", 24, gw1.address)

        directory = ApplicationDirectory()
        sender_p = Principal.from_name("app-sender")
        receiver_p = Principal.from_name("app-receiver")
        sender = FBSApplication(
            h1, sender_p, domain.enroll_principal(sender_p), directory, sfl_seed=1
        )
        receiver = FBSApplication(
            h2, receiver_p, domain.enroll_principal(receiver_p), directory, sfl_seed=2
        )
        got = []
        receiver.on_receive = lambda body, src, tag: got.append(body)
        sender.send(b"layered all the way down", "app-receiver")
        net.sim.run()
        assert got == [b"layered all the way down"]
        assert t1.encapsulated >= 1


class TestNetworkFetchBehindGateways:
    def test_certificate_server_reachable_through_tunnel(self):
        """Hosts fetch certificates from a server on the *other* site:
        the fetch crosses the gateway tunnel (wrapped on the WAN), while
        the end hosts' own FBS bypasses it at their edge."""
        net = Network(seed=74)
        net.add_segment("lan1", "10.0.1.0")
        net.add_segment("lan2", "10.0.2.0")
        net.add_segment("wan", "192.168.0.0")
        client = net.add_host("client", segment="lan1")
        certs = net.add_host("certs", segment="lan2")
        peer = net.add_host("peer", segment="lan1")
        gw1 = net.add_router("gw1", segments=["lan1", "wan"])
        gw2 = net.add_router("gw2", segments=["lan2", "wan"])
        for host, lan, gw in ((client, "lan1", gw1), (peer, "lan1", gw1), (certs, "lan2", gw2)):
            net.add_default_route(host, lan, gw)
        net.add_default_route(gw1, "wan", gw2)
        net.add_default_route(gw2, "wan", gw1)

        domain = FBSDomain(seed=75)
        t1 = domain.enroll_gateway(gw1)
        t2 = domain.enroll_gateway(gw2)
        t1.add_peer("10.0.2.0", 24, gw2.address)
        t2.add_peer("10.0.1.0", 24, gw1.address)
        server = CertificateServer(certs, domain.directory)

        fbs_client = domain.enroll_host_with_network_fetch(
            client, certs, encrypt_all=True
        )
        fbs_peer = domain.enroll_host_with_network_fetch(peer, certs, encrypt_all=True)

        inbox = UdpSocket(peer, 5000)
        sender = UdpSocket(client)
        # Round 1: both sides' fetches resolve across the tunnel.
        sender.sendto(b"round 1", peer.address, 5000)
        net.sim.run()
        sender.sendto(b"round 2", peer.address, 5000)
        net.sim.run()
        sender.sendto(b"round 3", peer.address, 5000)
        net.sim.run()
        assert server.requests_served >= 2
        assert [p for p, _, _ in inbox.received][-1] == b"round 3"
