"""Every shipped example must run clean (they assert their own claims)."""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent.parent / "examples").glob("*.py")
)


def _run(path: pathlib.Path) -> None:
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(path, capsys):
    _run(path)
    out = capsys.readouterr().out
    assert out.strip()  # every example narrates what it demonstrated
