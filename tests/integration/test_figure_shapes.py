"""Cheap smoke checks that each figure's *shape* reproduces.

The full parameter sweeps live in ``benchmarks/``; these tests run
scaled-down versions so the shape claims are covered by ``pytest tests``
alone.
"""

import pytest

from repro.bench import measure_udp_throughput
from repro.netsim.addresses import IPAddress
from repro.traces.analysis import FlowAnalysis
from repro.traces.flowsim import CacheSimulator
from repro.traces.workloads import CampusLanWorkload


@pytest.fixture(scope="module")
def lan_trace():
    return CampusLanWorkload(duration=2400.0, clients=10, seed=42).generate()


class TestFigure8Shape:
    def test_ordering_and_ratio(self):
        generic = measure_udp_throughput("generic", total_bytes=160_000).kbps
        nop = measure_udp_throughput("fbs-nop", total_bytes=160_000).kbps
        full = measure_udp_throughput("fbs-des-md5", total_bytes=160_000).kbps
        # GENERIC ~ FBS NOP >> FBS DES+MD5, penalty roughly 2.3x.
        assert generic > nop > full
        assert nop > 0.9 * generic  # "very little overhead outside crypto"
        assert 1.8 < generic / full < 3.0  # 7700/3400 = 2.26 in the paper

    def test_absolute_calibration(self):
        generic = measure_udp_throughput("generic", total_bytes=160_000).kbps
        full = measure_udp_throughput("fbs-des-md5", total_bytes=160_000).kbps
        assert 7000 < generic < 8500  # paper: ~7700 kb/s
        assert 3000 < full < 4000  # paper: ~3400 kb/s


class TestFigure9_10Shape:
    def test_most_flows_small_few_carry_bulk(self, lan_trace):
        analysis = FlowAnalysis.from_trace(lan_trace, threshold=600.0)
        summary = analysis.summary()
        assert summary["median_bytes"] < 5_000
        assert analysis.bytes_carried_by_top_flows(0.10) > 0.80

    def test_duration_mostly_short(self, lan_trace):
        analysis = FlowAnalysis.from_trace(lan_trace, threshold=600.0)
        points = analysis.duration_cdf([60.0])
        # A solid fraction of flows live under a minute.
        assert points[0][1] > 0.3


class TestFigure11Shape:
    def test_miss_rate_drops_sharply_with_cache_size(self, lan_trace):
        server = IPAddress("10.1.0.250")  # the file server: busiest host
        rates = [
            CacheSimulator(size, threshold=600.0).send_side(lan_trace, server).miss_rate
            for size in (2, 16, 128)
        ]
        assert rates[0] > rates[1] > rates[2]
        # "The cache miss rate drops off sharply even with reasonably
        # small cache sizes."
        assert rates[1] < rates[0] / 2
        assert rates[2] < 0.02


class TestFigure12Shape:
    def test_active_flows_modest(self, lan_trace):
        analysis = FlowAnalysis.from_trace(lan_trace, threshold=600.0)
        series = analysis.active_flow_series()
        # "the number of simultaneous active flows ... not exceedingly
        # high, and can be easily handled by a modern operating system".
        assert 0 < series.peak < 10_000


class TestFigure13Shape:
    def test_growth_then_saturation(self, lan_trace):
        means = {}
        for threshold in (300.0, 600.0, 900.0, 1200.0):
            analysis = FlowAnalysis.from_trace(lan_trace, threshold=threshold)
            means[threshold] = analysis.active_flow_series().mean
        # Active flows increase with THRESHOLD...
        assert means[300.0] < means[600.0] <= means[900.0] <= means[1200.0] * 1.05
        # ...but the growth flattens past 900 s (insensitivity).
        early_growth = means[600.0] - means[300.0]
        late_growth = means[1200.0] - means[900.0]
        assert late_growth < early_growth


class TestFigure14Shape:
    def test_repeated_flows_drop_off_quickly(self, lan_trace):
        repeats = {}
        for threshold in (300.0, 600.0, 900.0, 1200.0):
            analysis = FlowAnalysis.from_trace(lan_trace, threshold=threshold)
            repeats[threshold] = analysis.repeated_flows
        assert repeats[300.0] > repeats[600.0] > repeats[1200.0]
        assert repeats[1200.0] < repeats[300.0] / 5
