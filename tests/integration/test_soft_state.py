"""Soft state invariants: caches may vanish at any time, traffic survives.

"It requires no hard state in either side for its operation ... key
caching can be used to speed up protocol processing, but the contents of
the cache represent only soft state." (Section 5.2)
"""

import pytest

from repro.core.deploy import FBSDomain
from repro.netsim import Network
from repro.netsim.sockets import UdpSocket


def build(seed=0):
    net = Network(seed=seed)
    net.add_segment("lan", "10.0.0.0")
    a = net.add_host("a", segment="lan")
    b = net.add_host("b", segment="lan")
    domain = FBSDomain(seed=seed + 900)
    ma = domain.enroll_host(a, encrypt_all=True)
    mb = domain.enroll_host(b, encrypt_all=True)
    return net, a, b, ma, mb


class TestSoftState:
    def test_receiver_cache_flush_mid_stream(self):
        net, a, b, ma, mb = build(1)
        rx = UdpSocket(b, 4000)
        tx = UdpSocket(a)
        tx.sendto(b"one", b.address, 4000)
        net.sim.run()
        mb.endpoint.flush_all_caches()  # receiver reboot-ish
        tx.sendto(b"two", b.address, 4000)
        net.sim.run()
        assert [p for p, _, _ in rx.received] == [b"one", b"two"]

    def test_sender_cache_flush_mid_flow_keeps_sfl_contract(self):
        net, a, b, ma, mb = build(2)
        rx = UdpSocket(b, 4000)
        tx = UdpSocket(a)
        tx.sendto(b"one", b.address, 4000)
        net.sim.run()
        # Flushing the sender's FAM restarts the flow with a new sfl;
        # the receiver just derives the new flow key. No breakage.
        ma.endpoint.flush_all_caches()
        tx.sendto(b"two", b.address, 4000)
        net.sim.run()
        assert len(rx.received) == 2
        assert mb.endpoint.metrics.receive_flow_key_derivations == 2

    def test_flush_both_sides_every_datagram(self):
        net, a, b, ma, mb = build(3)
        rx = UdpSocket(b, 4000)
        tx = UdpSocket(a)
        for i in range(5):
            ma.endpoint.flush_all_caches()
            mb.endpoint.flush_all_caches()
            tx.sendto(b"n=%d" % i, b.address, 4000)
            net.sim.run()
        assert len(rx.received) == 5

    def test_no_state_synchronization_needed(self):
        # The receiver never sends anything back at the FBS layer:
        # passive demultiplexing only.
        net, a, b, ma, mb = build(4)
        rx = UdpSocket(b, 4000)
        UdpSocket(a).sendto(b"x", b.address, 4000)
        net.sim.run()
        assert rx.received
        # Nothing on b's wire other than what applications sent: b sent 0
        # packets total.
        assert b.stack.stats.packets_sent == 0

    def test_cache_effectiveness_still_holds(self):
        # Soft state is an optimization: with no flushes, derivations
        # happen once per flow regardless of datagram count.
        net, a, b, ma, mb = build(5)
        rx = UdpSocket(b, 4000)
        tx = UdpSocket(a)
        for i in range(20):
            tx.sendto(b"d%d" % i, b.address, 4000)
        net.sim.run()
        assert len(rx.received) == 20
        assert ma.endpoint.metrics.send_flow_key_derivations == 1
        assert mb.endpoint.metrics.receive_flow_key_derivations == 1
        assert ma.endpoint.mkd.master_keys_computed == 1
