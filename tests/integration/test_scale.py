"""Scale test: a full mesh of FBS hosts with concurrent conversations."""

import pytest

from repro.core.deploy import FBSDomain
from repro.netsim import Network
from repro.netsim.sockets import UdpSocket


class TestFullMesh:
    N = 8
    ROUNDS = 10

    @pytest.fixture(scope="class")
    def mesh(self):
        net = Network(seed=90)
        net.add_segment("lan", "10.0.0.0", bandwidth_bps=1e9)
        hosts = [net.add_host(f"h{i}", segment="lan") for i in range(self.N)]
        domain = FBSDomain(seed=91)
        mappings = [domain.enroll_host(h, encrypt_all=True) for h in hosts]
        inboxes = {}
        for i, host in enumerate(hosts):
            sock = UdpSocket(host, 4000)
            inboxes[i] = sock
        senders = [UdpSocket(h) for h in hosts]
        for round_ in range(self.ROUNDS):
            for i, sender in enumerate(senders):
                for j, target in enumerate(hosts):
                    if i == j:
                        continue
                    sender.sendto(
                        b"mesh %d->%d r%d" % (i, j, round_), target.address, 4000
                    )
        net.sim.run()
        return hosts, mappings, inboxes

    def test_all_datagrams_delivered(self, mesh):
        hosts, mappings, inboxes = mesh
        expected_per_host = (self.N - 1) * self.ROUNDS
        for i, inbox in inboxes.items():
            assert len(inbox.received) == expected_per_host

    def test_no_authentication_failures(self, mesh):
        _, mappings, _ = mesh
        for mapping in mappings:
            assert mapping.endpoint.metrics.mac_failures == 0
            assert mapping.inbound_rejected == 0

    def test_one_flow_per_peer_pair(self, mesh):
        _, mappings, _ = mesh
        for mapping in mappings:
            # Each host sends one conversation to each of N-1 peers.
            assert mapping.endpoint.metrics.flows_started == self.N - 1

    def test_master_keys_pairwise(self, mesh):
        _, mappings, _ = mesh
        for mapping in mappings:
            # One DH agreement per correspondent, send and receive
            # directions share the pair key.
            assert mapping.endpoint.mkd.master_keys_computed == self.N - 1

    def test_key_derivations_scale_with_flows_not_datagrams(self, mesh):
        _, mappings, _ = mesh
        total_datagrams = self.N * (self.N - 1) * self.ROUNDS
        total_derivations = sum(
            m.endpoint.metrics.send_flow_key_derivations
            + m.endpoint.metrics.receive_flow_key_derivations
            for m in mappings
        )
        # ~2 derivations per directed pair (one at each end) regardless
        # of how many datagrams flow; direct-mapped cache collisions
        # re-derive occasionally (soft state at work, not an error),
        # but the count stays far below one-per-datagram.
        floor = 2 * self.N * (self.N - 1)
        assert floor <= total_derivations
        assert total_derivations <= floor + 0.15 * total_datagrams
        assert total_derivations < total_datagrams / 2
