"""Cross-validation: live FBS agrees with the flow-simulation programs.

The Figures 9-14 pipeline analyzes traces *offline* (ExactFlowSimulator);
the protocol stack classifies flows *online* (FiveTuplePolicy inside the
FAM).  Replaying a generated trace through real FBS hosts and comparing
the two closes the loop: the analysis used for the paper's figures
describes exactly what the implementation does.
"""

import pytest

from repro.core.config import AlgorithmSuite, FBSConfig, MacAlgorithm
from repro.core.deploy import FBSDomain
from repro.netsim import Network
from repro.netsim.ipv4 import IPProtocol
from repro.netsim.sockets import UdpSocket
from repro.traces.flowsim import ExactFlowSimulator
from repro.traces.workloads import CampusLanWorkload


@pytest.fixture(scope="module")
def replay_world():
    """A small LAN trace replayed through live FBS hosts."""
    workload = CampusLanWorkload(
        duration=900.0,
        clients=4,
        seed=77,
        # Trim the byte-heavy generators: classification behaviour is
        # what's under test, not bulk volume.
        ftp_rate=0.0,
        nfs_clients_fraction=0.0,
    )
    trace = workload.generate()
    # Only UDP records replay cleanly through real sockets (TCP records
    # in the trace are synthetic segments, not connections).
    records = [r for r in trace if r.five_tuple.proto == IPProtocol.UDP]

    net = Network(seed=78)
    net.add_segment("lan", "10.1.0.0", bandwidth_bps=1e9)
    hosts = {}
    threshold = 600.0
    config = FBSConfig(
        threshold=threshold,
        fst_size=4096,  # large table: isolate policy from collisions
        suite=AlgorithmSuite(mac=MacAlgorithm.KEYED_MD5),
        freshness_half_window=1e6,  # replay spans the whole trace
    )
    domain = FBSDomain(seed=79, config=config)
    mappings = {}
    for address in sorted({r.five_tuple.saddr for r in records} | {r.five_tuple.daddr for r in records}):
        name = f"h{address}"
        host = net.add_host(name, segment="lan", address=str(address))
        hosts[address] = host
        mappings[address] = domain.enroll_host(host, encrypt_all=False)

    # Bind every destination port on every host; send from bound source
    # ports so the replayed 5-tuples match the trace exactly.
    bound = set()
    sockets = {}
    for record in records:
        ft = record.five_tuple
        if (ft.daddr, ft.dport) not in bound:
            bound.add((ft.daddr, ft.dport))
            hosts[ft.daddr].udp.bind(ft.dport, lambda *a: None)

    def send(record):
        ft = record.five_tuple
        host = hosts[ft.saddr]
        if (ft.saddr, ft.sport) not in sockets:
            try:
                host.udp.bind(ft.sport, lambda *a: None)
            except ValueError:
                pass  # already bound as a destination port
            sockets[(ft.saddr, ft.sport)] = True
        host.udp.sendto(b"r" * max(1, record.size), ft.sport, ft.daddr, ft.dport)

    for record in records[:2000]:
        net.sim.schedule_at(record.time, lambda r=record: send(r))
    net.sim.run()
    return records[:2000], mappings, threshold


class TestLiveVsOffline:
    def test_flow_counts_agree(self, replay_world):
        records, mappings, threshold = replay_world
        from repro.traces.records import Trace

        exact = ExactFlowSimulator(threshold=threshold).run(Trace(records))
        live_flows = sum(
            m.endpoint.fam.fst.new_flows for m in mappings.values()
        )
        # The live stack classifies the same flows the offline simulator
        # predicts (modulo rare FST collisions in the big table).
        assert abs(live_flows - len(exact)) <= max(2, len(exact) // 50)

    def test_repeated_flows_agree(self, replay_world):
        records, mappings, threshold = replay_world
        from repro.traces.records import Trace

        exact = ExactFlowSimulator(threshold=threshold).run(Trace(records))
        exact_repeats = sum(1 for f in exact if f.incarnation > 0)
        live_repeats = sum(
            m.policy.repeated_flows for m in mappings.values()
        )
        assert abs(live_repeats - exact_repeats) <= max(2, exact_repeats // 4)

    def test_every_datagram_authenticated(self, replay_world):
        records, mappings, _ = replay_world
        total_rejected = sum(m.inbound_rejected for m in mappings.values())
        total_accepted = sum(m.inbound_accepted for m in mappings.values())
        assert total_rejected == 0
        assert total_accepted == len(records)

    def test_key_derivations_bounded_by_flows(self, replay_world):
        records, mappings, threshold = replay_world
        from repro.traces.records import Trace

        exact = ExactFlowSimulator(threshold=threshold).run(Trace(records))
        derivations = sum(
            m.endpoint.metrics.send_flow_key_derivations for m in mappings.values()
        )
        # Derivations happen per flow epoch (cache evictions may add a
        # few), never per datagram.
        assert derivations < len(records) / 3
        assert derivations >= len({f.sfl for f in exact}) * 0 + 1
