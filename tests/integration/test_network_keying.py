"""Certificate fetching over the wire: the secure flow bypass end-to-end.

The in-process directory used elsewhere models the fetch RTT as a cost;
here the fetch is a real UDP exchange with a certificate server, and
the interesting behaviours emerge: the triggering datagram drops (like
an ARP miss), retries succeed, TCP's own retransmission absorbs the
loss transparently, and the bypass keeps the fetch itself out of FBS.
"""

import pytest

from repro.core.deploy import CertificateServer, FBSDomain
from repro.netsim import Network
from repro.netsim.sockets import TcpClient, TcpServer, UdpSocket


def build(seed=0):
    net = Network(seed=seed)
    net.add_segment("lan", "10.0.0.0")
    certs = net.add_host("certs", segment="lan")
    alice = net.add_host("alice", segment="lan")
    bob = net.add_host("bob", segment="lan")
    domain = FBSDomain(seed=seed + 31)
    server = CertificateServer(certs, domain.directory)
    fbs_a = domain.enroll_host_with_network_fetch(alice, certs, encrypt_all=True)
    fbs_b = domain.enroll_host_with_network_fetch(bob, certs, encrypt_all=True)
    return net, alice, bob, server, fbs_a, fbs_b


class TestColdStartUdp:
    def test_first_datagram_dropped_retry_succeeds(self):
        net, alice, bob, server, fbs_a, _ = build(1)
        inbox = UdpSocket(bob, 4000)
        sender = UdpSocket(alice)
        sender.sendto(b"attempt 1", bob.address, 4000)
        net.sim.run()
        # The trigger was dropped, but the fetch completed.
        assert inbox.received == []
        assert server.requests_served >= 1
        assert fbs_a.fetcher.has(bob.address.to_bytes())
        # Attempt 2 reaches bob, whose *own* cold PVC now triggers the
        # reverse fetch: the receive side drops it too (unidirectional
        # flows mean each side keys independently).
        sender.sendto(b"attempt 2", bob.address, 4000)
        net.sim.run()
        assert inbox.received == []
        # By attempt 3, both PVCs are warm: delivery.
        sender.sendto(b"attempt 3", bob.address, 4000)
        net.sim.run()
        assert [p for p, _, _ in inbox.received] == [b"attempt 3"]

    def test_prefetch_avoids_the_drop(self):
        net, alice, bob, server, fbs_a, fbs_b = build(2)
        fbs_a.fetcher.prefetch(bob.address.to_bytes())
        fbs_b.fetcher.prefetch(alice.address.to_bytes())
        net.sim.run()
        inbox = UdpSocket(bob, 4000)
        UdpSocket(alice).sendto(b"first time lucky", bob.address, 4000)
        net.sim.run()
        assert [p for p, _, _ in inbox.received] == [b"first time lucky"]

    def test_request_storm_suppressed(self):
        net, alice, bob, server, fbs_a, _ = build(3)
        UdpSocket(bob, 4000)
        sender = UdpSocket(alice)
        # A burst of datagrams while the certificate is in flight: one
        # request on the wire, not ten.
        for i in range(10):
            sender.sendto(b"x", bob.address, 4000)
        net.sim.run()
        assert fbs_a.fetcher.requests_sent == 1


class TestColdStartTcp:
    def test_tcp_handshake_self_heals(self):
        # The SYN triggers the fetch and is dropped; TCP retransmits it;
        # the connection completes with no application involvement.
        net, alice, bob, server, _, _ = build(4)
        tcp_server = TcpServer(bob, 9000)
        client = TcpClient(alice, bob.address, 9000)
        payload = bytes(range(256)) * 40

        def go():
            client.send(payload)
            client.close()

        client.conn.on_connect = go
        net.sim.run(until=60.0)
        net.sim.run()
        assert bytes(tcp_server.received[0]) == payload
        assert client.conn.segments_retransmitted >= 1


class TestBypassOnTheWire:
    def test_fetch_traffic_is_plaintext_and_exempt(self):
        net, alice, bob, server, fbs_a, _ = build(5)
        frames = []
        net.segment("lan").attach_tap(frames.append)
        UdpSocket(bob, 4000)
        UdpSocket(alice).sendto(b"trigger", bob.address, 4000)
        net.sim.run()
        # The request carried bob's raw principal id in the clear.
        assert any(bob.address.to_bytes() in frame for frame in frames)
        assert fbs_a.bypassed >= 1

    def test_forged_response_rejected(self):
        from repro.core.certificates import CertificateAuthority
        from repro.core.keying import Principal
        from repro.crypto.dh import DHPrivateKey, WELL_KNOWN_GROUPS
        import random

        net, alice, bob, server, fbs_a, _ = build(6)
        # An attacker-run CA issues a certificate for bob's address.
        evil_ca = CertificateAuthority(random.Random(666), key_bits=512)
        evil_key = DHPrivateKey.generate(WELL_KNOWN_GROUPS["TEST256"], random.Random(7))
        forged = evil_ca.issue(Principal.from_ip(bob.address), evil_key)
        # Deliver it straight to the fetcher as if it came from port 500.
        fbs_a.fetcher._on_response(forged.encode(), bob.address, 500)
        assert not fbs_a.fetcher.has(bob.address.to_bytes())
        assert fbs_a.fetcher.responses_rejected == 1
