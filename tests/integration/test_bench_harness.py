"""Tests for the measurement harness and report rendering."""

import pytest

from repro.bench import (
    measure_tcp_throughput,
    measure_udp_throughput,
    render_cdf,
    render_table,
    setup_security,
)
from repro.bench.throughput import ThroughputResult
from repro.netsim.costmodel import FREE_CPU, PENTIUM_133


class TestThroughputResult:
    def test_kbps(self):
        result = ThroughputResult("x", "ttcp", payload_bytes=125_000, elapsed_seconds=1.0, datagrams=10)
        assert result.kbps == pytest.approx(1000.0)

    def test_zero_time(self):
        result = ThroughputResult("x", "ttcp", 0, 0.0, 0)
        assert result.kbps == 0.0


class TestMeasurement:
    def test_generic_wire_bound_with_free_cpu(self):
        # With a free CPU, goodput approaches the 10 Mb/s wire (minus
        # framing/header overhead).
        result = measure_udp_throughput(
            "generic", total_bytes=200_000, cost_model=FREE_CPU
        )
        assert 8_000 < result.kbps < 10_000

    def test_bandwidth_parameter_respected(self):
        slow = measure_udp_throughput(
            "generic", total_bytes=100_000, cost_model=FREE_CPU, bandwidth_bps=1e6
        )
        assert 700 < slow.kbps < 1000

    def test_all_datagrams_arrive(self):
        result = measure_udp_throughput("generic", total_bytes=100_000)
        assert result.datagrams == 100_000 // 8192

    def test_tcp_measurement_completes(self):
        result = measure_tcp_throughput("generic", total_bytes=100_000)
        assert result.payload_bytes == 100_000
        assert result.kbps > 1000

    def test_unknown_configuration(self):
        with pytest.raises(ValueError):
            measure_udp_throughput("rot13")

    def test_figure8_ordering_holds_at_small_scale(self):
        generic = measure_udp_throughput("generic", total_bytes=80_000).kbps
        full = measure_udp_throughput("fbs-des-md5", total_bytes=80_000).kbps
        assert generic > full


class TestRendering:
    def test_table_alignment(self):
        table = render_table(["name", "value"], [("a", 1), ("long-name", 22)])
        lines = table.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert lines[0].startswith("name")
        assert all(len(line) <= len(max(lines, key=len)) for line in lines)

    def test_table_stringifies(self):
        table = render_table(["x"], [(3.14,)])
        assert "3.14" in table

    def test_cdf_bars_scale(self):
        text = render_cdf("T", [(1.0, 0.0), (2.0, 0.5), (3.0, 1.0)], "u", width=10)
        lines = text.splitlines()
        assert lines[1].count("#") == 0
        assert lines[2].count("#") == 5
        assert lines[3].count("#") == 10
        assert "100.0%" in lines[3]
