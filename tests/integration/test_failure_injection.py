"""Failure injection: adverse networks, rekeying mid-stream, small MTUs."""

import pytest

from repro.core.deploy import FBSDomain
from repro.netsim import Network
from repro.netsim.link import LinkConditions
from repro.netsim.sockets import TcpClient, TcpServer, UdpSocket


class TestAdverseNetwork:
    def test_loss_dup_reorder_together(self):
        net = Network(seed=50)
        net.add_segment(
            "lan",
            "10.0.0.0",
            conditions=LinkConditions(
                loss_probability=0.1,
                duplication_probability=0.1,
                reorder_jitter=0.005,
            ),
        )
        a = net.add_host("a", segment="lan")
        b = net.add_host("b", segment="lan")
        domain = FBSDomain(seed=51)
        domain.enroll_host(a, encrypt_all=True)
        fbs_b = domain.enroll_host(b, encrypt_all=True)
        rx = UdpSocket(b, 4000)
        tx = UdpSocket(a)
        for i in range(40):
            tx.sendto(b"datagram %02d" % i, b.address, 4000)
        net.sim.run()
        # Loss and duplication change the count; nothing inauthentic
        # gets through and nothing authentic is rejected.
        assert fbs_b.endpoint.metrics.mac_failures == 0
        assert fbs_b.endpoint.metrics.stale_timestamps == 0
        payloads = {p for p, _, _ in rx.received}
        assert payloads <= {b"datagram %02d" % i for i in range(40)}
        assert len(payloads) > 10

    def test_tcp_bulk_over_awful_network_with_fbs(self):
        net = Network(seed=52)
        net.add_segment(
            "lan",
            "10.0.0.0",
            conditions=LinkConditions(loss_probability=0.12, reorder_jitter=0.002),
        )
        a = net.add_host("a", segment="lan")
        b = net.add_host("b", segment="lan")
        domain = FBSDomain(seed=53)
        domain.enroll_host(a, encrypt_all=True)
        domain.enroll_host(b, encrypt_all=True)
        server = TcpServer(b, 9000)
        client = TcpClient(a, b.address, 9000)
        blob = bytes(range(256)) * 120

        def go():
            client.send(blob)
            client.close()

        client.conn.on_connect = go
        net.sim.run(until=300.0)
        net.sim.run()
        assert bytes(server.received[0]) == blob


class TestRekeyingRecovery:
    def test_private_value_rotation_recovers_via_soft_state(self):
        net = Network(seed=54)
        net.add_segment("lan", "10.0.0.0")
        a = net.add_host("a", segment="lan")
        b = net.add_host("b", segment="lan")
        domain = FBSDomain(seed=55)
        fbs_a = domain.enroll_host(a, encrypt_all=True)
        fbs_b = domain.enroll_host(b, encrypt_all=True)

        rx = UdpSocket(b, 4000)
        tx = UdpSocket(a)
        tx.sendto(b"before rotation", b.address, 4000)
        net.sim.run()
        assert len(rx.received) == 1

        # Bob rotates his long-term private value (the paper's guard
        # against sfl-counter wrap): new key, new certificate published.
        from repro.core.keying import Principal
        from repro.crypto.dh import DHPrivateKey

        new_key = DHPrivateKey.generate(domain.group, domain.rng)
        bob_principal = Principal.from_ip(b.address)
        domain.directory.publish(domain.ca.issue(bob_principal, new_key))
        fbs_b.endpoint.mkd.change_private_value(new_key)
        # Note: derived flow keys are soft state too -- had bob kept his
        # RFKC, the old flow key would keep working until evicted.
        # Rotation in practice happens at reboot, which clears it:
        fbs_b.endpoint.flush_all_caches()

        # Alice's cached pair key is now stale: her datagrams fail at bob.
        tx.sendto(b"stale keyed", b.address, 4000)
        net.sim.run()
        assert len(rx.received) == 1
        assert fbs_b.inbound_rejected >= 1

        # Everything is soft state: alice flushes, re-fetches the new
        # certificate, re-derives, and traffic resumes -- no protocol
        # messages, no handshake.
        fbs_a.endpoint.flush_all_caches()
        tx.sendto(b"after recovery", b.address, 4000)
        net.sim.run()
        assert [p for p, _, _ in rx.received] == [b"before rotation", b"after recovery"]


class TestSmallMtuPaths:
    def test_gateway_tunnel_over_narrow_wan(self):
        # Full-size interior packets cross a WAN whose MTU is smaller
        # than the LAN's: outer tunnel packets fragment and the peer
        # gateway reassembles before decapsulating.
        net = Network(seed=56)
        net.add_segment("lan1", "10.0.1.0")
        net.add_segment("lan2", "10.0.2.0")
        net.add_segment("wan", "192.168.0.0")
        a = net.add_host("a", segment="lan1")
        b = net.add_host("b", segment="lan2")
        gw1 = net.add_router("gw1", segments=["lan1", "wan"])
        gw2 = net.add_router("gw2", segments=["lan2", "wan"])
        # Narrow the WAN interfaces.
        for gw in (gw1, gw2):
            for iface in gw.stack.interfaces:
                if str(iface.address).startswith("192"):
                    iface.mtu = 576
        net.add_default_route(a, "lan1", gw1)
        net.add_default_route(b, "lan2", gw2)
        net.add_default_route(gw1, "wan", gw2)
        net.add_default_route(gw2, "wan", gw1)
        domain = FBSDomain(seed=57)
        t1 = domain.enroll_gateway(gw1)
        t2 = domain.enroll_gateway(gw2)
        t1.add_peer("10.0.2.0", 24, gw2.address)
        t2.add_peer("10.0.1.0", 24, gw1.address)

        rx = UdpSocket(b, 4000)
        blob = bytes(range(256)) * 4  # 1024 B: one LAN packet, many WAN frags
        UdpSocket(a).sendto(blob, b.address, 4000)
        net.sim.run()
        assert rx.received[0][0] == blob
        assert gw1.stack.stats.fragments_created >= 2

    def test_end_to_end_fbs_with_small_mtu_everywhere(self):
        net = Network(seed=58)
        net.add_segment("lan", "10.0.0.0")
        a = net.add_host("a", segment="lan", mtu=576)
        b = net.add_host("b", segment="lan", mtu=576)
        domain = FBSDomain(seed=59)
        domain.enroll_host(a, encrypt_all=True)
        domain.enroll_host(b, encrypt_all=True)
        server = TcpServer(b, 9000)
        client = TcpClient(a, b.address, 9000)
        blob = bytes(range(256)) * 30

        def go():
            client.send(blob)
            client.close()

        client.conn.on_connect = go
        net.sim.run()
        assert bytes(server.received[0]) == blob
        # MSS shrank to fit MTU minus all reserves; no DF drops occurred.
        assert a.stack.stats.bad_headers == 0
