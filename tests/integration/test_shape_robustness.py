"""Seed robustness: the figure shapes hold across workload seeds.

The reproduction's Figures 9-14 claims would be worthless if they held
only for the benchmark seed.  These tests re-derive each qualitative
shape on several independently seeded traces (scaled down for speed).
"""

import pytest

from repro.traces.analysis import FlowAnalysis
from repro.traces.flowsim import CacheSimulator
from repro.traces.workloads import CampusLanWorkload

SEEDS = (7, 101, 9001)


@pytest.fixture(scope="module", params=SEEDS)
def trace(request):
    workload = CampusLanWorkload(duration=1800.0, clients=10, seed=request.param)
    generated = workload.generate()
    generated.file_server = workload.file_server  # convenience for tests
    return generated


class TestShapesAcrossSeeds:
    def test_fig9_majority_short_few_carry_bulk(self, trace):
        analysis = FlowAnalysis.from_trace(trace, threshold=600.0)
        assert dict(analysis.size_packets_cdf([10]))[10] > 0.5
        assert analysis.bytes_carried_by_top_flows(0.10) > 0.75

    def test_fig10_durations_mostly_short(self, trace):
        analysis = FlowAnalysis.from_trace(trace, threshold=600.0)
        assert dict(analysis.duration_cdf([60.0]))[60.0] > 0.4

    def test_fig11_cache_drop_off(self, trace):
        tiny = CacheSimulator(2, threshold=600.0).send_side(trace, trace.file_server)
        small = CacheSimulator(32, threshold=600.0).send_side(trace, trace.file_server)
        assert small.miss_rate < tiny.miss_rate / 2

    def test_fig13_growth_decelerates(self, trace):
        means = [
            FlowAnalysis.from_trace(trace, threshold=t).active_flow_series().mean
            for t in (300.0, 600.0, 900.0, 1200.0)
        ]
        assert means[0] < means[1]
        assert (means[3] - means[2]) < (means[1] - means[0])

    def test_fig14_repeats_drop(self, trace):
        repeats = [
            FlowAnalysis.from_trace(trace, threshold=t).repeated_flows
            for t in (300.0, 600.0, 1200.0)
        ]
        assert repeats[0] > repeats[1] >= repeats[2]
        assert repeats[2] < max(1, repeats[0] / 3)
