"""Odds and ends: public API surface and small contracts."""

import pytest


class TestPublicApi:
    def test_root_exports(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_core_exports(self):
        import repro.core

        for name in repro.core.__all__:
            assert getattr(repro.core, name, None) is not None, name

    def test_netsim_exports(self):
        import repro.netsim

        for name in repro.netsim.__all__:
            assert getattr(repro.netsim, name, None) is not None, name

    def test_crypto_exports(self):
        import repro.crypto

        for name in repro.crypto.__all__:
            assert getattr(repro.crypto, name, None) is not None, name

    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"


class TestMetricsContracts:
    def test_rejected_property(self):
        from repro.core.metrics import FBSMetrics

        metrics = FBSMetrics()
        metrics.datagrams_received = 10
        metrics.datagrams_accepted = 7
        assert metrics.datagrams_rejected == 3

    def test_routed_throughput_unknown_mode(self):
        from repro.bench import measure_routed_udp_throughput

        with pytest.raises(ValueError):
            measure_routed_udp_throughput("quantum")
