"""End-to-end integration: FBS over the full simulated stack."""

import pytest

from repro.core.deploy import FBSDomain
from repro.netsim import Network
from repro.netsim.link import LinkConditions
from repro.netsim.sockets import TcpClient, TcpServer, UdpSocket


def build(seed=0, encrypt=True, conditions=None, config=None):
    net = Network(seed=seed)
    net.add_segment("lan", "10.0.0.0", conditions=conditions)
    a = net.add_host("alice", segment="lan")
    b = net.add_host("bob", segment="lan")
    domain = FBSDomain(seed=seed + 500, config=config)
    ma = domain.enroll_host(a, encrypt_all=encrypt)
    mb = domain.enroll_host(b, encrypt_all=encrypt)
    return net, a, b, ma, mb


class TestUdpOverFbs:
    def test_bidirectional_conversation(self):
        net, a, b, ma, mb = build(seed=1)
        a_inbox = UdpSocket(a, 4000)
        b_inbox = UdpSocket(b, 4000)
        UdpSocket(a).sendto(b"ping", b.address, 4000)
        UdpSocket(b).sendto(b"pong", a.address, 4000)
        net.sim.run()
        assert b_inbox.received[0][0] == b"ping"
        assert a_inbox.received[0][0] == b"pong"
        # Unidirectional flows: each side started its own.
        assert ma.endpoint.metrics.flows_started == 1
        assert mb.endpoint.metrics.flows_started == 1

    def test_many_conversations_many_flows(self):
        net, a, b, ma, _ = build(seed=2)
        for port in range(4100, 4110):
            UdpSocket(b, port)
        senders = [UdpSocket(a) for _ in range(10)]
        for i, sender in enumerate(senders):
            sender.sendto(b"data", b.address, 4100 + i)
        net.sim.run()
        assert ma.endpoint.metrics.flows_started == 10

    def test_fragmented_datagrams_protected_once(self):
        net, a, b, ma, mb = build(seed=3)
        rx = UdpSocket(b, 4000)
        blob = bytes(range(256)) * 24  # 6 KB
        UdpSocket(a).sendto(blob, b.address, 4000)
        net.sim.run()
        assert rx.received[0][0] == blob
        # FBS ran once per datagram, not per fragment.
        assert ma.endpoint.metrics.datagrams_sent == 1
        assert mb.endpoint.metrics.datagrams_received == 1
        assert a.stack.stats.fragments_created >= 4

    def test_lossy_network_delivers_what_arrives(self):
        net, a, b, _, mb = build(
            seed=4, conditions=LinkConditions(loss_probability=0.3)
        )
        rx = UdpSocket(b, 4000)
        tx = UdpSocket(a)
        for i in range(30):
            tx.sendto(b"msg %d" % i, b.address, 4000)
        net.sim.run()
        # Datagram semantics: what arrives decrypts; what is lost is lost.
        assert 0 < len(rx.received) < 30
        assert mb.endpoint.metrics.mac_failures == 0

    def test_duplication_is_delivered_twice(self):
        # FBS preserves datagram semantics: benign duplication passes
        # (only replay outside the window is caught).
        net, a, b, _, _ = build(
            seed=5, conditions=LinkConditions(duplication_probability=1.0)
        )
        rx = UdpSocket(b, 4000)
        UdpSocket(a).sendto(b"dup", b.address, 4000)
        net.sim.run()
        assert len(rx.received) == 2


class TestTcpOverFbs:
    def test_interactive_session(self):
        net, a, b, _, _ = build(seed=6)
        server = TcpServer(b, 23)
        server.on_data = lambda conn, chunk: conn.send(b"echo " + chunk)
        client = TcpClient(a, b.address, 23)
        client.conn.on_connect = lambda: client.send(b"ls")
        net.sim.run()
        assert bytes(client.received) == b"echo ls"

    def test_bulk_transfer_lossy(self):
        net, a, b, _, _ = build(
            seed=7, conditions=LinkConditions(loss_probability=0.1)
        )
        server = TcpServer(b, 9000)
        client = TcpClient(a, b.address, 9000)
        blob = bytes(range(256)) * 100

        def go():
            client.send(blob)
            client.close()

        client.conn.on_connect = go
        net.sim.run(until=240.0)
        net.sim.run()
        assert bytes(server.received[0]) == blob


class TestMixedDeployment:
    def test_fbs_and_plain_hosts_coexist_on_segment(self):
        net = Network(seed=8)
        net.add_segment("lan", "10.0.0.0")
        a = net.add_host("a", segment="lan")
        b = net.add_host("b", segment="lan")
        c = net.add_host("c", segment="lan")  # no security
        d = net.add_host("d", segment="lan")  # no security
        domain = FBSDomain(seed=9)
        domain.enroll_host(a, encrypt_all=True)
        domain.enroll_host(b, encrypt_all=True)
        secure_rx = UdpSocket(b, 4000)
        plain_rx = UdpSocket(d, 4000)
        UdpSocket(a).sendto(b"secure", b.address, 4000)
        UdpSocket(c).sendto(b"plain", d.address, 4000)
        net.sim.run()
        assert secure_rx.received[0][0] == b"secure"
        assert plain_rx.received[0][0] == b"plain"

    def test_router_forwards_fbs_transparently(self):
        net = Network(seed=10)
        net.add_segment("lan1", "10.0.1.0")
        net.add_segment("lan2", "10.0.2.0")
        a = net.add_host("a", segment="lan1")
        b = net.add_host("b", segment="lan2")
        router = net.add_router("r", segments=["lan1", "lan2"])
        net.add_default_route(a, "lan1", router)
        net.add_default_route(b, "lan2", router)
        domain = FBSDomain(seed=11)
        domain.enroll_host(a, encrypt_all=True)
        domain.enroll_host(b, encrypt_all=True)
        rx = UdpSocket(b, 4000)
        UdpSocket(a).sendto(b"across the router", b.address, 4000)
        net.sim.run()
        # "A forwarding router also will not see anything strange about
        # FBS processed IP packets."
        assert rx.received[0][0] == b"across the router"
        assert router.stack.stats.packets_forwarded == 1


class TestRekeyingEnd2End:
    def test_long_flow_rekeys_via_sfl_change(self):
        from repro.core.policy import RekeyingPolicy

        net, a, b, ma, mb = build(seed=12)
        # Wrap the sender's conversation policy with a rekeying budget.
        ma.endpoint.fam.mapper = RekeyingPolicy(ma.policy, after_datagrams=5)
        rx = UdpSocket(b, 4000)
        tx = UdpSocket(a)
        for i in range(12):
            tx.sendto(b"burst %d" % i, b.address, 4000)
        net.sim.run()
        assert len(rx.received) == 12  # receiver follows sfl changes blindly
        assert ma.endpoint.fam.mapper.rekeys >= 2
        # Receiver derived a fresh key per sfl epoch.
        assert mb.endpoint.metrics.receive_flow_key_derivations >= 3
