"""Property tests for the fault model's security edge.

The claim under test: no amount of in-network damage -- bit flips,
fragment mangling, truncation, splicing -- can produce a payload that
FBSReceive accepts but the sender never sent.  The MAC is the only
thing standing between a noisy (or hostile) wire and the application,
so these properties drive randomized damage straight at ``unprotect``
and at the fragmentation/reassembly layer beneath it.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.deploy import FBSDomain
from repro.core.errors import FBSError
from repro.core.keying import Principal
from repro.netsim.fragmentation import Reassembler, fragment
from repro.netsim.ipv4 import IPProtocol, IPv4Header, IPv4Packet
from repro.netsim.addresses import IPAddress


@pytest.fixture(scope="module")
def endpoints():
    domain = FBSDomain(seed=400)
    alice = domain.make_endpoint(Principal.from_name("alice"))
    bob = domain.make_endpoint(Principal.from_name("bob"))
    return alice, bob


@settings(max_examples=60, deadline=None)
@given(
    payload=st.binary(min_size=1, max_size=300),
    bit=st.integers(min_value=0),
    secret=st.booleans(),
)
def test_single_bit_flip_never_accepted(endpoints, payload, bit, secret):
    alice, bob = endpoints
    wire = alice.protect(payload, bob.principal, secret=secret)
    damaged = bytearray(wire)
    position = bit % (len(wire) * 8)
    damaged[position >> 3] ^= 1 << (position & 7)
    try:
        recovered = bob.unprotect(bytes(damaged), alice.principal, secret=secret)
    except FBSError:
        return  # rejected: the only acceptable outcome for damage
    # Exceedingly unlikely escape hatch: if the flip landed in the body
    # of a non-secret datagram... even then the MAC must have caught it,
    # so reaching here at all is a violation.
    raise AssertionError(
        f"damaged datagram accepted: flip at bit {position} yielded "
        f"{recovered!r} from {payload!r}"
    )


@settings(max_examples=40, deadline=None)
@given(
    payload=st.binary(min_size=1, max_size=300),
    cut=st.integers(min_value=1, max_value=299),
)
def test_truncation_never_accepted(endpoints, payload, cut):
    alice, bob = endpoints
    wire = alice.protect(payload, bob.principal)
    truncated = wire[: max(1, len(wire) - cut)]
    if truncated == wire:
        return
    with pytest.raises(FBSError):
        bob.unprotect(truncated, alice.principal)


@settings(max_examples=30, deadline=None)
@given(
    size=st.integers(min_value=600, max_value=4000),
    mtu=st.sampled_from([576, 1006, 1500]),
    drop=st.data(),
)
def test_reassembly_under_damage_never_yields_accepted_corruption(
    endpoints, size, mtu, drop
):
    """Fragment a protected datagram, then lose/duplicate/bit-flip
    fragments arbitrarily: reassembly either completes byte-exact (and
    FBS accepts) or whatever comes out is rejected by the MAC."""
    alice, bob = endpoints
    payload = bytes(i & 0xFF for i in range(size))
    wire = alice.protect(payload, bob.principal)
    packet = IPv4Packet(
        header=IPv4Header(
            src=IPAddress("10.0.0.1"),
            dst=IPAddress("10.0.0.2"),
            proto=IPProtocol.UDP,
            identification=77,
        ),
        payload=wire,
    )
    pieces = fragment(packet, mtu)
    mangled = []
    for piece in pieces:
        fate = drop.draw(
            st.sampled_from(["keep", "drop", "dup", "flip"]), label="fate"
        )
        if fate == "drop":
            continue
        if fate == "dup":
            mangled.extend([piece, piece])
            continue
        if fate == "flip":
            body = bytearray(piece.payload)
            if body:
                bit = drop.draw(
                    st.integers(min_value=0, max_value=len(body) * 8 - 1),
                    label="bit",
                )
                body[bit >> 3] ^= 1 << (bit & 7)
            piece = IPv4Packet(header=piece.header, payload=bytes(body))
        mangled.append(piece)
    order = drop.draw(st.permutations(range(len(mangled))), label="order")

    reasm = Reassembler(now=lambda: 0.0)
    whole = None
    for index in order:
        result = reasm.push(mangled[index])
        if result is not None:
            whole = result
    if whole is None:
        return  # incomplete: a lost datagram, never a wrong one
    try:
        recovered = bob.unprotect(whole.payload, alice.principal)
    except FBSError:
        return  # damaged reassembly rejected by the MAC
    if recovered != payload:
        raise AssertionError(
            "reassembled-and-accepted payload differs from what was sent"
        )
