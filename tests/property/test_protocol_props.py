"""Property-based tests on FBS protocol invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import FBSConfig
from repro.core.deploy import FBSDomain
from repro.core.errors import ReceiveError
from repro.core.header import FBSHeader
from repro.core.keying import Principal


@pytest.fixture(scope="module")
def endpoints():
    domain = FBSDomain(seed=1234)
    clock = {"now": 0.0}
    alice = domain.make_endpoint(Principal.from_name("alice"), now=lambda: clock["now"])
    bob = domain.make_endpoint(Principal.from_name("bob"), now=lambda: clock["now"])
    return alice, bob


class TestRoundTripProperties:
    @given(body=st.binary(min_size=0, max_size=2048), secret=st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_unprotect_inverts_protect(self, endpoints, body, secret):
        alice, bob = endpoints
        wire = alice.protect(body, bob.principal, secret=secret)
        assert bob.unprotect(wire, alice.principal, secret=secret) == body

    @given(body=st.binary(min_size=0, max_size=512))
    @settings(max_examples=40, deadline=None)
    def test_wire_expansion_bounded(self, endpoints, body):
        alice, bob = endpoints
        wire = alice.protect(body, bob.principal, secret=True)
        # Header + body + worst-case block padding.
        assert len(wire) <= alice.header_size + len(body) + 8
        assert len(wire) >= alice.header_size + len(body)

    @given(body=st.binary(min_size=1, max_size=256))
    @settings(max_examples=40, deadline=None)
    def test_encrypted_wire_never_contains_long_plaintext_runs(self, endpoints, body):
        alice, bob = endpoints
        if len(body) < 16:
            return
        wire = alice.protect(body, bob.principal, secret=True)
        assert body not in wire[alice.header_size :]


class TestTamperProperties:
    @given(
        body=st.binary(min_size=1, max_size=256),
        position=st.integers(min_value=0, max_value=10_000),
        flip=st.integers(min_value=1, max_value=255),
    )
    @settings(max_examples=80, deadline=None)
    def test_any_single_byte_corruption_rejected(self, endpoints, body, position, flip):
        alice, bob = endpoints
        wire = bytearray(alice.protect(body, bob.principal, secret=True))
        position %= len(wire)
        # Skip the timestamp's high bytes: corrupting them may produce a
        # *stale* rejection rather than a MAC rejection -- both are
        # rejections, so accept either error class.
        wire[position] ^= flip
        with pytest.raises(ReceiveError):
            bob.unprotect(bytes(wire), alice.principal, secret=True)

    @given(body=st.binary(min_size=0, max_size=128))
    @settings(max_examples=30, deadline=None)
    def test_truncated_wire_rejected(self, endpoints, body):
        alice, bob = endpoints
        wire = alice.protect(body, bob.principal, secret=True)
        with pytest.raises(ReceiveError):
            bob.unprotect(wire[: max(0, alice.header_size - 1)], alice.principal, secret=True)


class TestHeaderProperties:
    @given(
        sfl=st.integers(min_value=0, max_value=2**64 - 1),
        confounder=st.integers(min_value=0, max_value=2**32 - 1),
        timestamp=st.integers(min_value=0, max_value=2**32 - 1),
        mac=st.binary(min_size=16, max_size=16),
    )
    @settings(max_examples=100, deadline=None)
    def test_header_codec_roundtrip(self, sfl, confounder, timestamp, mac):
        from repro.core.config import AlgorithmSuite

        suite = AlgorithmSuite()
        header = FBSHeader(sfl=sfl, confounder=confounder, mac=mac, timestamp=timestamp)
        decoded = FBSHeader.decode(header.encode(suite), suite)
        assert decoded == header
