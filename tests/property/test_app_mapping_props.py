"""Property tests for the application-layer mapping."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.app_mapping import ApplicationDirectory, FBSApplication
from repro.core.deploy import FBSDomain
from repro.core.keying import Principal
from repro.netsim import Network


@pytest.fixture(scope="module")
def app_world():
    net = Network(seed=88)
    net.add_segment("lan", "10.0.0.0", bandwidth_bps=1e9)
    h1 = net.add_host("h1", segment="lan")
    h2 = net.add_host("h2", segment="lan")
    domain = FBSDomain(seed=89)
    directory = ApplicationDirectory()
    apps = {}
    for i, (name, host) in enumerate((("sender", h1), ("receiver", h2))):
        principal = Principal.from_name(name)
        mkd = domain.enroll_principal(principal, now=lambda h=host: h.sim.now)
        apps[name] = FBSApplication(host, principal, mkd, directory, sfl_seed=i + 1)
    inbox = []
    apps["receiver"].on_receive = lambda body, src, tag: inbox.append((body, src.name))
    return net, apps, inbox


class TestAppRoundtrip:
    @given(
        payload=st.binary(min_size=0, max_size=1024),
        conversation=st.binary(min_size=0, max_size=16),
        secret=st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_any_payload_any_tag(self, app_world, payload, conversation, secret):
        net, apps, inbox = app_world
        before = len(inbox)
        apps["sender"].send(
            payload, "receiver", conversation=conversation, secret=secret
        )
        net.sim.run()
        # secret is negotiated out of band in this mapping: both sides
        # use secret_by_default; mismatched per-call secrets are dropped,
        # matching defaults are delivered.
        if secret == apps["receiver"].secret_by_default:
            assert inbox[before:] == [(payload, "sender")]
        else:
            assert inbox[before:] == []

    @given(payloads=st.lists(st.binary(min_size=1, max_size=64), min_size=1, max_size=10))
    @settings(max_examples=20, deadline=None)
    def test_ordering_preserved_on_clean_network(self, app_world, payloads):
        net, apps, inbox = app_world
        before = len(inbox)
        for payload in payloads:
            apps["sender"].send(payload, "receiver", conversation=b"seq")
        net.sim.run()
        assert [body for body, _ in inbox[before:]] == payloads
