"""Property-based tests for the crypto substrate."""

import hashlib
import hmac as stdlib_hmac
import zlib

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.crc import crc32
from repro.crypto.des import DES
from repro.crypto.mac import hmac_md5, truncate_mac
from repro.crypto.md5 import MD5, md5
from repro.crypto.modes import (
    CipherMode,
    decrypt,
    encrypt,
    pad_block,
    unpad_block,
)
from repro.crypto.sha1 import sha1

keys = st.binary(min_size=8, max_size=8)
blocks = st.binary(min_size=8, max_size=8)
ivs = st.binary(min_size=8, max_size=8)
payloads = st.binary(min_size=0, max_size=512)


class TestDesProperties:
    @given(key=keys, block=blocks)
    @settings(max_examples=50, deadline=None)
    def test_decrypt_inverts_encrypt(self, key, block):
        cipher = DES(key)
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block

    @given(key=keys, block=blocks)
    @settings(max_examples=50, deadline=None)
    def test_encrypt_is_permutation(self, key, block):
        cipher = DES(key)
        ciphertext = cipher.encrypt_block(block)
        assert len(ciphertext) == 8
        # Injective: re-encrypting the decryption returns the ciphertext.
        assert cipher.encrypt_block(cipher.decrypt_block(ciphertext)) == ciphertext

    @given(key=keys, block=blocks)
    @settings(max_examples=25, deadline=None)
    def test_fast_kernel_matches_spec_reference(self, key, block):
        # The table-driven kernel against the per-bit FIPS 46 walk.
        from repro.crypto.des_reference import DES as ReferenceDES

        fast, ref = DES(key), ReferenceDES(key)
        assert fast.encrypt_block(block) == ref.encrypt_block(block)
        assert fast.decrypt_block(block) == ref.decrypt_block(block)


class TestModeProperties:
    @given(data=payloads)
    @settings(max_examples=100, deadline=None)
    def test_pad_unpad_identity(self, data):
        padded = pad_block(data)
        assert len(padded) % 8 == 0
        assert unpad_block(padded) == data

    @given(
        key=keys,
        iv=ivs,
        data=payloads,
        mode=st.sampled_from(list(CipherMode)),
    )
    @settings(max_examples=60, deadline=None)
    def test_mode_roundtrip(self, key, iv, data, mode):
        cipher = DES(key)
        assert decrypt(mode, cipher, iv, encrypt(mode, cipher, iv, data)) == data

    @given(key=keys, iv=ivs, data=st.binary(min_size=1, max_size=256))
    @settings(max_examples=40, deadline=None)
    def test_cbc_ciphertext_differs_from_plaintext(self, key, iv, data):
        out = encrypt(CipherMode.CBC, DES(key), iv, data)
        assert out != data


class TestHashProperties:
    @given(data=st.binary(min_size=0, max_size=2048))
    @settings(max_examples=100, deadline=None)
    def test_md5_matches_hashlib(self, data):
        assert md5(data) == hashlib.md5(data).digest()

    @given(data=st.binary(min_size=0, max_size=2048))
    @settings(max_examples=100, deadline=None)
    def test_sha1_matches_hashlib(self, data):
        assert sha1(data) == hashlib.sha1(data).digest()

    @given(data=st.binary(max_size=1024), split=st.integers(min_value=0, max_value=1024))
    @settings(max_examples=60, deadline=None)
    def test_md5_streaming_split_invariant(self, data, split):
        split = min(split, len(data))
        h = MD5(data[:split])
        h.update(data[split:])
        assert h.digest() == md5(data)

    @given(data=st.binary(max_size=2048))
    @settings(max_examples=100, deadline=None)
    def test_crc32_matches_zlib(self, data):
        assert crc32(data) == zlib.crc32(data)

    @given(a=st.binary(max_size=512), b=st.binary(max_size=512))
    @settings(max_examples=60, deadline=None)
    def test_crc32_incremental(self, a, b):
        assert crc32(a + b) == crc32(b, crc32(a))


class TestMacProperties:
    @given(key=st.binary(max_size=100), data=st.binary(max_size=512))
    @settings(max_examples=60, deadline=None)
    def test_hmac_matches_stdlib(self, key, data):
        assert hmac_md5(key, data) == stdlib_hmac.new(key, data, "md5").digest()

    @given(
        mac=st.binary(min_size=16, max_size=16),
        nbytes=st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=40, deadline=None)
    def test_truncation_is_prefix(self, mac, nbytes):
        assert truncate_mac(mac, nbytes * 8) == mac[:nbytes]


class TestDesAlgebra:
    @given(key=keys, block=blocks)
    @settings(max_examples=40, deadline=None)
    def test_complementation_property(self, key, block):
        # DES's classic algebraic identity: DES_{~K}(~P) == ~DES_K(P).
        # A table-transcription error would almost surely break this.
        def inv(b):
            return bytes(x ^ 0xFF for x in b)

        straight = DES(key).encrypt_block(block)
        complemented = DES(inv(key)).encrypt_block(inv(block))
        assert complemented == inv(straight)

    @given(key=keys, block=blocks)
    @settings(max_examples=20, deadline=None)
    def test_no_fixed_points_in_practice(self, key, block):
        # Not an algebraic law, but a vanishing-probability event: any
        # hit would indicate a degenerate implementation (e.g. identity
        # permutation bugs).
        assert DES(key).encrypt_block(block) != block or True  # smoke only
        # The real check: double encryption differs from single.
        once = DES(key).encrypt_block(block)
        twice = DES(key).encrypt_block(once)
        assert twice != once
