"""Property-based bit-identity for the vector lane kernels.

Random batch shapes and lengths, always compared against the scalar
kernels -- the vector path has no behaviour of its own to test, only
the equivalence.  Includes MAC rejection parity under single-bit flips,
the property the protocol's integrity check rides on.
"""

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

np = pytest.importorskip("numpy")

from repro.crypto import modes
from repro.crypto.des import DES
from repro.crypto.mac import constant_time_equal, keyed_md5
from repro.crypto.vector import (
    cbc_decrypt_many,
    cbc_encrypt_many,
    keyed_md5_many,
    md5_many,
)

# Lane counts hit 1 (degenerate batch), small, and past the typical
# batch width; payloads span several blocks to exercise raggedness.
batches = st.lists(st.binary(min_size=0, max_size=300), min_size=1, max_size=20)
des_keys = st.binary(min_size=8, max_size=8)
lane_ivs = st.binary(min_size=8, max_size=8)


class TestMd5Identity:
    @given(messages=batches)
    @settings(max_examples=50, deadline=None)
    def test_md5_matches_hashlib(self, messages):
        expected = [hashlib.md5(m).digest() for m in messages]
        assert md5_many(messages) == expected

    @given(
        messages=batches,
        key_sizes=st.lists(
            st.integers(min_value=0, max_value=40), min_size=1, max_size=20
        ),
    )
    @settings(max_examples=50, deadline=None)
    def test_keyed_md5_matches_scalar(self, messages, key_sizes):
        keys = [
            bytes([i]) * key_sizes[i % len(key_sizes)]
            for i in range(len(messages))
        ]
        expected = [keyed_md5(k, m) for k, m in zip(keys, messages)]
        assert keyed_md5_many(keys, messages) == expected


class TestCbcIdentity:
    def _ciphers(self, keys, n):
        pool = [DES(k) for k in keys]
        return [pool[i % len(pool)] for i in range(n)]

    @given(
        plains=batches,
        keys=st.lists(des_keys, min_size=1, max_size=4),
        ivs=st.lists(lane_ivs, min_size=20, max_size=20),
    )
    @settings(max_examples=50, deadline=None)
    def test_encrypt_matches_scalar(self, plains, keys, ivs):
        n = len(plains)
        ciphers = self._ciphers(keys, n)
        expected = [
            modes.encrypt(modes.CipherMode.CBC, ciphers[i], ivs[i], plains[i])
            for i in range(n)
        ]
        assert cbc_encrypt_many(ciphers, ivs[:n], plains) == expected

    @given(
        plains=batches,
        keys=st.lists(des_keys, min_size=1, max_size=4),
        ivs=st.lists(lane_ivs, min_size=20, max_size=20),
        flip_byte=st.integers(min_value=0, max_value=10_000),
        flip_bit=st.integers(min_value=0, max_value=7),
    )
    @settings(max_examples=50, deadline=None)
    def test_decrypt_parity_with_bit_flip(
        self, plains, keys, ivs, flip_byte, flip_bit
    ):
        n = len(plains)
        ciphers = self._ciphers(keys, n)
        wires = cbc_encrypt_many(ciphers, ivs[:n], plains)
        # Flip one bit of one lane's ciphertext: vector decrypt must
        # fail (None) on exactly the lanes where scalar decrypt raises,
        # and agree byte-for-byte on the lanes where both succeed.
        lane = flip_byte % n
        blob = bytearray(wires[lane])
        blob[flip_byte % len(blob)] ^= 1 << flip_bit
        wires[lane] = bytes(blob)
        got = cbc_decrypt_many(ciphers, ivs[:n], wires)
        for i in range(n):
            try:
                expected = modes.decrypt(
                    modes.CipherMode.CBC, ciphers[i], ivs[i], wires[i]
                )
            except ValueError:
                expected = None
            assert got[i] == expected


class TestMacRejectionParity:
    @given(
        messages=batches,
        flip_byte=st.integers(min_value=0, max_value=10_000),
        flip_bit=st.integers(min_value=0, max_value=7),
    )
    @settings(max_examples=50, deadline=None)
    def test_single_bit_flip_rejects_in_both_paths(
        self, messages, flip_byte, flip_bit
    ):
        keys = [bytes([0x42 + i]) * 16 for i in range(len(messages))]
        macs = keyed_md5_many(keys, messages)
        lane = flip_byte % len(messages)
        blob = bytearray(messages[lane])
        if not blob:
            blob = bytearray(b"\x00")
        blob[flip_byte % len(blob)] ^= 1 << flip_bit
        tampered = list(messages)
        tampered[lane] = bytes(blob)
        recomputed_v = keyed_md5_many(keys, tampered)
        for i in range(len(messages)):
            recomputed_s = keyed_md5(keys[i], tampered[i])
            assert recomputed_v[i] == recomputed_s
            # Both paths verify with the same constant-time compare,
            # so acceptance is identical lane by lane -- and the
            # tampered lane is always rejected.
            assert constant_time_equal(
                recomputed_v[i], macs[i]
            ) == constant_time_equal(recomputed_s, macs[i])
            if i == lane:
                assert not constant_time_equal(recomputed_v[i], macs[i])
