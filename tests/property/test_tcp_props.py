"""Property-based TCP tests: exact delivery under arbitrary adversity."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim import Network
from repro.netsim.link import LinkConditions
from repro.netsim.sockets import TcpClient, TcpServer


class TestReliability:
    @given(
        size=st.integers(min_value=0, max_value=40_000),
        loss=st.floats(min_value=0.0, max_value=0.15),
        jitter=st.floats(min_value=0.0, max_value=0.01),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=20, deadline=None)
    def test_exact_bytes_delivered(self, size, loss, jitter, seed):
        net = Network(seed=seed)
        net.add_segment(
            "lan",
            "10.0.0.0",
            conditions=LinkConditions(loss_probability=loss, reorder_jitter=jitter),
        )
        a = net.add_host("a", segment="lan")
        b = net.add_host("b", segment="lan")
        server = TcpServer(b, 80)
        client = TcpClient(a, b.address, 80)
        blob = bytes(i & 0xFF for i in range(size))

        def go():
            if blob:
                client.send(blob)
            client.close()

        client.conn.on_connect = go
        net.sim.run(until=600.0)
        net.sim.run()
        if client.failure is None:
            received = bytes(server.received[0]) if server.received else b""
            assert received == blob
        # (A client giving up after MAX_RETRIES under heavy loss is
        # acceptable; silent corruption never is.)

    @given(
        chunks=st.lists(st.binary(min_size=0, max_size=5000), min_size=1, max_size=8),
        seed=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=20, deadline=None)
    def test_chunked_sends_concatenate(self, chunks, seed):
        net = Network(seed=seed)
        net.add_segment("lan", "10.0.0.0")
        a = net.add_host("a", segment="lan")
        b = net.add_host("b", segment="lan")
        server = TcpServer(b, 80)
        client = TcpClient(a, b.address, 80)

        def go():
            for chunk in chunks:
                client.send(chunk)
            client.close()

        client.conn.on_connect = go
        net.sim.run()
        expected = b"".join(chunks)
        received = bytes(server.received[0]) if server.received else b""
        assert received == expected
