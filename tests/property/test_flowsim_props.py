"""Property-based tests on flow simulation invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim.addresses import FiveTuple, IPAddress
from repro.traces.analysis import FlowAnalysis
from repro.traces.flowsim import ExactFlowSimulator
from repro.traces.records import PacketRecord, Trace


def traces(max_packets=80):
    tuple_pool = st.integers(min_value=0, max_value=4)

    def build(entries):
        records = []
        for tuple_id, time, size in entries:
            records.append(
                PacketRecord(
                    time=time,
                    five_tuple=FiveTuple(
                        proto=17,
                        saddr=IPAddress("10.0.0.1"),
                        sport=1000 + tuple_id,
                        daddr=IPAddress("10.0.0.2"),
                        dport=53,
                    ),
                    size=size,
                )
            )
        trace = Trace(records)
        trace.sort()
        return trace

    return st.lists(
        st.tuples(
            tuple_pool,
            st.floats(min_value=0, max_value=10_000),
            st.integers(min_value=0, max_value=1500),
        ),
        max_size=max_packets,
    ).map(build)


class TestConservation:
    @given(trace=traces(), threshold=st.floats(min_value=1.0, max_value=5000.0))
    @settings(max_examples=50, deadline=None)
    def test_packets_and_bytes_conserved(self, trace, threshold):
        flows = ExactFlowSimulator(threshold=threshold).run(trace)
        assert sum(f.packets for f in flows) == len(trace)
        assert sum(f.octets for f in flows) == trace.total_bytes

    @given(trace=traces(), threshold=st.floats(min_value=1.0, max_value=5000.0))
    @settings(max_examples=50, deadline=None)
    def test_flow_boundaries_well_formed(self, trace, threshold):
        flows = ExactFlowSimulator(threshold=threshold).run(trace)
        for flow in flows:
            assert flow.start <= flow.end
            assert flow.packets >= 1
            assert flow.duration <= trace.duration + 1e-9

    @given(trace=traces())
    @settings(max_examples=30, deadline=None)
    def test_flow_count_monotone_in_threshold(self, trace):
        # Larger THRESHOLD can only merge flows, never split them.
        counts = [
            len(ExactFlowSimulator(threshold=t).run(trace))
            for t in (10.0, 100.0, 1000.0, 100_000.0)
        ]
        assert counts == sorted(counts, reverse=True)

    @given(trace=traces())
    @settings(max_examples=30, deadline=None)
    def test_incarnations_sequential_per_tuple(self, trace):
        flows = ExactFlowSimulator(threshold=50.0).run(trace)
        by_tuple = {}
        for flow in sorted(flows, key=lambda f: f.start):
            by_tuple.setdefault(flow.five_tuple, []).append(flow.incarnation)
        for incarnations in by_tuple.values():
            assert incarnations == list(range(len(incarnations)))

    @given(trace=traces(), threshold=st.floats(min_value=1.0, max_value=5000.0))
    @settings(max_examples=30, deadline=None)
    def test_analysis_consistency(self, trace, threshold):
        analysis = FlowAnalysis.from_trace(trace, threshold=threshold)
        assert analysis.repeated_flows == analysis.total_flows - analysis.unique_conversations
        if analysis.total_flows:
            assert 0.0 <= analysis.bytes_carried_by_top_flows(0.5) <= 1.0
