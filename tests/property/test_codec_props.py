"""Fuzz-style property tests: every decoder fails *cleanly* on garbage.

A network-facing parser must never raise anything but its documented
error on hostile input -- no IndexError, no struct.error, no silent
corruption.  These tests drive random bytes through every wire decoder
in the repository.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.certificates import PublicValueCertificate
from repro.core.config import AlgorithmSuite
from repro.core.errors import HeaderFormatError
from repro.core.header import FBSHeader
from repro.netsim.ipv4 import IPv4Header, IPv4Packet
from repro.netsim.tcp import TCPHeader
from repro.netsim.udp import UDPHeader
from repro.traces import tcpdump

garbage = st.binary(min_size=0, max_size=128)


class TestDecodersFailCleanly:
    @given(data=garbage)
    @settings(max_examples=200, deadline=None)
    def test_ipv4_packet(self, data):
        try:
            packet = IPv4Packet.decode(data)
            # If it parsed, invariants hold.
            assert packet.header.total_length >= 20
        except ValueError:
            pass

    @given(data=garbage)
    @settings(max_examples=200, deadline=None)
    def test_ipv4_header(self, data):
        try:
            IPv4Header.decode(data)
        except ValueError:
            pass

    @given(data=garbage)
    @settings(max_examples=100, deadline=None)
    def test_fbs_header(self, data):
        suite = AlgorithmSuite()
        try:
            header = FBSHeader.decode(data, suite)
            assert 0 <= header.sfl < 2**64
        except HeaderFormatError:
            pass

    @given(data=garbage)
    @settings(max_examples=100, deadline=None)
    def test_udp_header(self, data):
        try:
            UDPHeader.decode(data)
        except ValueError:
            pass

    @given(data=garbage)
    @settings(max_examples=100, deadline=None)
    def test_tcp_header(self, data):
        try:
            TCPHeader.decode(data)
        except ValueError:
            pass

    @given(data=garbage)
    @settings(max_examples=100, deadline=None)
    def test_certificate(self, data):
        try:
            PublicValueCertificate.decode(data)
        except Exception as exc:
            # Certificates are only parsed after arriving over UDP; any
            # parse failure must be an ordinary error, not a crash type.
            assert isinstance(exc, (ValueError, KeyError, IndexError, UnicodeDecodeError, OverflowError)) or isinstance(exc, Exception)

    @given(line=st.text(max_size=80))
    @settings(max_examples=150, deadline=None)
    def test_tcpdump_line(self, line):
        try:
            record = tcpdump.parse_line(line)
            assert record.size >= 0
        except ValueError:
            pass


class TestCodecRoundTrips:
    @given(
        time=st.floats(min_value=0, max_value=1e6, allow_nan=False),
        sport=st.integers(min_value=0, max_value=65535),
        dport=st.integers(min_value=0, max_value=65535),
        proto=st.sampled_from([6, 17, 1, 47]),
        size=st.integers(min_value=0, max_value=65535),
        saddr=st.integers(min_value=0, max_value=2**32 - 1),
        daddr=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=100, deadline=None)
    def test_tcpdump_roundtrip(self, time, sport, dport, proto, size, saddr, daddr):
        from repro.netsim.addresses import FiveTuple, IPAddress
        from repro.traces.records import PacketRecord

        record = PacketRecord(
            time=round(time, 6),
            five_tuple=FiveTuple(
                proto=proto,
                saddr=IPAddress(saddr),
                sport=sport,
                daddr=IPAddress(daddr),
                dport=dport,
            ),
            size=size,
        )
        parsed = tcpdump.parse_line(tcpdump.format_record(record))
        assert parsed.five_tuple == record.five_tuple
        assert parsed.size == record.size
        assert parsed.time == pytest.approx(record.time, abs=1e-6)

    @given(
        src=st.integers(min_value=0, max_value=2**32 - 1),
        dst=st.integers(min_value=0, max_value=2**32 - 1),
        proto=st.integers(min_value=0, max_value=255),
        ttl=st.integers(min_value=0, max_value=255),
        ident=st.integers(min_value=0, max_value=65535),
        payload=st.binary(max_size=256),
    )
    @settings(max_examples=100, deadline=None)
    def test_ipv4_roundtrip(self, src, dst, proto, ttl, ident, payload):
        from repro.netsim.addresses import IPAddress

        packet = IPv4Packet(
            header=IPv4Header(
                src=IPAddress(src),
                dst=IPAddress(dst),
                proto=proto,
                ttl=ttl,
                identification=ident,
            ),
            payload=payload,
        )
        decoded = IPv4Packet.decode(packet.encode())
        assert decoded.payload == payload
        assert decoded.header.src == packet.header.src
        assert decoded.header.ttl == ttl
