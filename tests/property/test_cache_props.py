"""Property-based tests on cache and flow-table invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.caches import AssociativeCache, DirectMappedCache
from repro.core.fam import DatagramAttributes
from repro.core.flows import FlowStateTable, SflAllocator
from repro.core.policy import FiveTuplePolicy
from repro.netsim.addresses import FiveTuple, IPAddress

keys = st.binary(min_size=1, max_size=16)


class TestCacheInvariants:
    @given(
        operations=st.lists(
            st.tuples(keys, st.integers(min_value=0, max_value=1000)), max_size=60
        ),
        capacity=st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=50, deadline=None)
    def test_direct_mapped_get_returns_last_put_or_none(self, operations, capacity):
        cache = DirectMappedCache(capacity)
        last_value = {}
        for key, value in operations:
            cache.put(key, value)
            last_value[key] = value
        for key, expected in last_value.items():
            got = cache.get(key)
            assert got is None or got == expected

    @given(
        operations=st.lists(
            st.tuples(keys, st.integers(min_value=0, max_value=1000)), max_size=60
        ),
        capacity=st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=50, deadline=None)
    def test_associative_never_exceeds_capacity(self, operations, capacity):
        cache = AssociativeCache(capacity)
        for key, value in operations:
            cache.put(key, value)
            assert len(cache) <= capacity

    @given(
        lookups=st.lists(keys, min_size=1, max_size=100),
        capacity=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=50, deadline=None)
    def test_miss_accounting_balances(self, lookups, capacity):
        cache = DirectMappedCache(capacity)
        for key in lookups:
            if cache.get(key) is None:
                cache.put(key, True)
        stats = cache.stats
        assert stats.hits + stats.misses == len(lookups)
        assert stats.cold_misses == len(set(lookups))  # first touch of each key


def five_tuples():
    return st.builds(
        FiveTuple,
        proto=st.sampled_from([6, 17]),
        saddr=st.integers(min_value=1, max_value=2**32 - 1).map(IPAddress),
        sport=st.integers(min_value=1, max_value=65535),
        daddr=st.integers(min_value=1, max_value=2**32 - 1).map(IPAddress),
        dport=st.integers(min_value=1, max_value=65535),
    )


class TestPolicyInvariants:
    @given(
        events=st.lists(
            st.tuples(five_tuples(), st.floats(min_value=0, max_value=1e5)),
            min_size=1,
            max_size=80,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_classification_always_valid_and_sfls_unique_per_flow_start(self, events):
        fst = FlowStateTable(64)
        alloc = SflAllocator(seed=9)
        policy = FiveTuplePolicy(threshold=600.0)
        events = sorted(events, key=lambda e: e[1])
        seen_sfls = []
        for ft, t in events:
            attrs = DatagramAttributes(
                destination_id=ft.daddr.to_bytes(), five_tuple=ft, size=10
            )
            entry = policy.classify(attrs, t, fst, alloc)
            assert entry.valid
            assert entry.key == ft.pack()
            seen_sfls.append(entry.sfl)
        # sfl allocation never repeats: distinct flow starts, distinct sfls.
        assert alloc.allocated == fst.new_flows

    @given(
        tuple_=five_tuples(),
        gaps=st.lists(
            st.floats(min_value=0.01, max_value=2000.0), min_size=1, max_size=40
        ),
        threshold=st.floats(min_value=1.0, max_value=1000.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_flow_splits_iff_gap_exceeds_threshold(self, tuple_, gaps, threshold):
        fst = FlowStateTable(64)
        alloc = SflAllocator(seed=3)
        policy = FiveTuplePolicy(threshold=threshold)
        attrs = DatagramAttributes(
            destination_id=tuple_.daddr.to_bytes(), five_tuple=tuple_, size=1
        )
        from hypothesis import assume

        # Accumulated float arithmetic makes gap == threshold ambiguous;
        # stay away from the boundary.
        assume(all(abs(gap - threshold) > 1e-6 * max(gap, threshold) for gap in gaps))
        t = 0.0
        expected_flows = 1
        policy.classify(attrs, t, fst, alloc)
        for gap in gaps:
            previous = t
            t += gap
            policy.classify(attrs, t, fst, alloc)
            if t - previous > threshold:
                expected_flows += 1
        assert alloc.allocated == expected_flows
        assert policy.repeated_flows == expected_flows - 1
