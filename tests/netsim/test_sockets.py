"""Socket wrapper tests."""

import pytest

from repro.netsim import Network
from repro.netsim.sockets import TcpClient, TcpServer, UdpSocket


def build_pair(seed=0):
    net = Network(seed=seed)
    net.add_segment("lan", "10.0.0.0")
    return net, net.add_host("a", segment="lan"), net.add_host("b", segment="lan")


class TestUdpSocket:
    def test_receive_queue_and_callback(self):
        net, a, b = build_pair()
        rx = UdpSocket(b, 4000)
        callback_hits = []
        rx.on_receive = lambda p, s, sp: callback_hits.append(p)
        UdpSocket(a).sendto(b"one", b.address, 4000)
        net.sim.run()
        assert rx.received[0][0] == b"one"
        assert callback_hits == [b"one"]

    def test_ephemeral_port_assigned(self):
        _, a, _ = build_pair()
        sock = UdpSocket(a)
        assert sock.port >= 1024

    def test_close_releases_port(self):
        net, a, b = build_pair()
        sock = UdpSocket(a, 4000)
        sock.close()
        UdpSocket(a, 4000)  # no error

    def test_closed_socket_gets_nothing(self):
        net, a, b = build_pair()
        rx = UdpSocket(b, 4000)
        rx.close()
        UdpSocket(a).sendto(b"void", b.address, 4000)
        net.sim.run()
        assert rx.received == []


class TestTcpWrappers:
    def test_client_state_flags(self):
        net, a, b = build_pair()
        TcpServer(b, 80)
        client = TcpClient(a, b.address, 80)
        assert not client.connected
        net.sim.run()
        assert client.connected
        assert client.failure is None

    def test_server_collects_per_connection_buffers(self):
        net, a, b = build_pair()
        server = TcpServer(b, 80)
        c1 = TcpClient(a, b.address, 80)
        c2 = TcpClient(a, b.address, 80)
        c1.conn.on_connect = lambda: c1.send(b"first")
        c2.conn.on_connect = lambda: c2.send(b"second")
        net.sim.run()
        assert len(server.connections) == 2
        assert sorted(bytes(buf) for buf in server.received) == [b"first", b"second"]

    def test_server_echoes_close(self):
        net, a, b = build_pair()
        server = TcpServer(b, 80)
        client = TcpClient(a, b.address, 80)

        def go():
            client.send(b"bye")
            client.close()

        client.conn.on_connect = go
        net.sim.run()
        assert server.closed_count == 1
        assert client.closed

    def test_failure_reported(self):
        net, a, b = build_pair()
        client = TcpClient(a, b.address, 81)  # nothing listening
        net.sim.run(until=200.0)
        net.sim.run()
        assert client.failure is not None
