"""Host tests: CPU accounting and security module installation."""

import pytest

from repro.netsim import Network
from repro.netsim.costmodel import CostModel
from repro.netsim.host import SecurityModule
from repro.netsim.sockets import UdpSocket


class _TagModule(SecurityModule):
    """Test module that tags payloads."""

    name = "tag"

    def __init__(self):
        self.out_count = 0
        self.in_count = 0

    def outbound(self, packet):
        self.out_count += 1
        packet.payload = b"TAG" + packet.payload
        return packet

    def inbound(self, packet):
        self.in_count += 1
        if not packet.payload.startswith(b"TAG"):
            return None
        packet.payload = packet.payload[3:]
        return packet

    def header_overhead(self):
        return 3


def build_pair(cost_model=None):
    net = Network(seed=0)
    net.add_segment("lan", "10.0.0.0")
    kwargs = {"cost_model": cost_model} if cost_model else {}
    a = net.add_host("a", segment="lan", **kwargs)
    b = net.add_host("b", segment="lan", **kwargs)
    return net, a, b


class TestCpuAccounting:
    def test_charges_serialize(self):
        net, a, _ = build_pair()
        t1 = a.charge_cpu(0.5)
        t2 = a.charge_cpu(0.25)
        assert t1 == 0.5
        assert t2 == 0.75
        assert a.cpu_seconds_used == 0.75

    def test_negative_charge_rejected(self):
        _, a, _ = build_pair()
        with pytest.raises(ValueError):
            a.charge_cpu(-1.0)

    def test_send_costs_delay_transmission(self):
        model = CostModel(per_packet=0.1, per_byte_touch=0.0)
        net, a, b = build_pair(cost_model=model)
        rx = UdpSocket(b, 5000)
        tx = UdpSocket(a)
        for _ in range(3):
            tx.sendto(b"x", b.address, 5000)
        net.sim.run()
        # Three sends at 100 ms each plus a receive each: > 0.3 s total.
        assert net.sim.now >= 0.3
        assert len(rx.received) == 3


class TestSecurityInstallation:
    def test_module_transforms_traffic(self):
        net, a, b = build_pair()
        module_a, module_b = _TagModule(), _TagModule()
        a.install_security(module_a)
        b.install_security(module_b)
        rx = UdpSocket(b, 5000)
        UdpSocket(a).sendto(b"payload", b.address, 5000)
        net.sim.run()
        assert rx.received[0][0] == b"payload"
        assert module_a.out_count == 1
        assert module_b.in_count == 1

    def test_asymmetric_install_drops(self):
        # Receiver without the module sees tagged bytes at the transport
        # layer: UDP checksum fails (the tag corrupted the segment).
        net, a, b = build_pair()
        a.install_security(_TagModule())
        rx = UdpSocket(b, 5000)
        UdpSocket(a).sendto(b"payload", b.address, 5000)
        net.sim.run()
        assert rx.received == []

    def test_remove_security(self):
        net, a, b = build_pair()
        a.install_security(_TagModule())
        a.remove_security()
        assert a.stack.output_hook is None
        assert a.tcp.header_reserve() == 0
        rx = UdpSocket(b, 5000)
        UdpSocket(a).sendto(b"clean", b.address, 5000)
        net.sim.run()
        assert rx.received[0][0] == b"clean"

    def test_header_reserve_wired_to_tcp(self):
        _, a, _ = build_pair()
        a.install_security(_TagModule())
        assert a.tcp.header_reserve() == 3

    def test_address_requires_interface(self):
        from repro.netsim.clock import Simulator
        from repro.netsim.host import Host

        host = Host(Simulator(), "floating")
        with pytest.raises(RuntimeError):
            _ = host.address
