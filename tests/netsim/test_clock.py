"""Simulator clock and scheduler tests."""

import pytest

from repro.netsim.clock import HostClock, Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(3.0, lambda: fired.append("c"))
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(2.0, lambda: fired.append("b"))
        sim.run()
        assert fired == ["a", "b", "c"]
        assert sim.now == 3.0

    def test_ties_fire_in_insertion_order(self):
        sim = Simulator()
        fired = []
        for label in "abcde":
            sim.schedule(1.0, lambda l=label: fired.append(l))
        sim.run()
        assert fired == list("abcde")

    def test_schedule_at_absolute(self):
        sim = Simulator(start_time=10.0)
        fired = []
        sim.schedule_at(12.5, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [12.5]

    def test_nested_scheduling(self):
        sim = Simulator()
        fired = []

        def outer():
            fired.append(("outer", sim.now))
            sim.schedule(1.0, lambda: fired.append(("inner", sim.now)))

        sim.schedule(1.0, outer)
        sim.run()
        assert fired == [("outer", 1.0), ("inner", 2.0)]

    def test_rejects_past_scheduling(self):
        sim = Simulator(start_time=5.0)
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)
        with pytest.raises(ValueError):
            sim.schedule_at(4.0, lambda: None)


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        token = sim.schedule(1.0, lambda: fired.append("x"))
        token.cancel()
        sim.run()
        assert fired == []

    def test_pending_counts_cancelled(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        token = sim.schedule(2.0, lambda: None)
        assert sim.pending() == 2
        token.cancel()
        assert sim.pending() == 1


class TestRunControl:
    def test_run_until_stops_clock(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(10.0, lambda: fired.append(10))
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0
        sim.run()
        assert fired == [1, 10]

    def test_run_until_advances_even_without_events(self):
        sim = Simulator()
        sim.run(until=7.0)
        assert sim.now == 7.0

    def test_step(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        assert sim.step() is True
        assert fired == [1]
        assert sim.step() is False

    def test_max_events_guard(self):
        sim = Simulator()

        def rearm():
            sim.schedule(0.001, rearm)

        sim.schedule(0.001, rearm)
        with pytest.raises(RuntimeError):
            sim.run(max_events=100)


class TestHostClock:
    def _clock(self, **kwargs):
        sim = Simulator()
        return HostClock(sim, **kwargs), sim

    def test_tracks_simulator_by_default(self):
        clock, sim = self._clock()
        sim.schedule(2.5, lambda: None)
        sim.run()
        assert clock.now() == sim.now
        assert not clock.skewed

    def test_offset(self):
        clock, sim = self._clock(offset=90.0)
        assert clock.now() == 90.0
        sim.schedule(10.0, lambda: None)
        sim.run()
        assert clock.now() == pytest.approx(100.0)
        assert clock.skewed

    def test_drift_scales_elapsed_time(self):
        clock, sim = self._clock(drift=0.01)
        sim.schedule(100.0, lambda: None)
        sim.run()
        assert clock.now() == pytest.approx(101.0)

    def test_set_skew_and_heal(self):
        clock, sim = self._clock()
        clock.set_skew(offset=400.0)
        assert clock.skewed
        assert clock.now() == 400.0
        clock.set_skew()
        assert not clock.skewed
        assert clock.now() == 0.0

    def test_impossible_drift_rejected(self):
        clock, _ = self._clock()
        with pytest.raises(ValueError):
            clock.set_skew(drift=-1.0)
        with pytest.raises(ValueError):
            HostClock(Simulator(), drift=-2.0)
