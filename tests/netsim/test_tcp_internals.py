"""TCP internals: sequence arithmetic, window limits, edge behaviours."""

import pytest

from repro.netsim import Network
from repro.netsim.sockets import TcpClient, TcpServer
from repro.netsim.tcp import _SEQ_MOD, _seq_le, _seq_lt


class TestSequenceArithmetic:
    def test_basic_ordering(self):
        assert _seq_lt(1, 2)
        assert not _seq_lt(2, 1)
        assert not _seq_lt(5, 5)

    def test_wraparound(self):
        near_max = _SEQ_MOD - 10
        assert _seq_lt(near_max, 5)  # 5 is "after" the wrap
        assert not _seq_lt(5, near_max)

    def test_le(self):
        assert _seq_le(7, 7)
        assert _seq_le(7, 8)
        assert not _seq_le(8, 7)

    def test_half_space_boundary(self):
        # Differences of exactly half the space are treated as "behind".
        assert not _seq_lt(0, 1 << 31)


class TestSequenceWrapTransfer:
    def test_transfer_across_seq_wrap(self):
        # Force the ISS near the wrap point: a modest transfer crosses
        # the 2^32 boundary and must still deliver exactly.
        net = Network(seed=33)
        net.add_segment("lan", "10.0.0.0")
        a = net.add_host("a", segment="lan")
        b = net.add_host("b", segment="lan")
        a.tcp._iss_source = lambda: _SEQ_MOD - 5000
        server = TcpServer(b, 80)
        client = TcpClient(a, b.address, 80)
        blob = bytes(range(256)) * 80  # 20 480 bytes: crosses the wrap

        def go():
            client.send(blob)
            client.close()

        client.conn.on_connect = go
        net.sim.run()
        assert bytes(server.received[0]) == blob


class TestWindowLimit:
    def test_sender_respects_peer_window(self):
        net = Network(seed=34)
        net.add_segment("lan", "10.0.0.0")
        a = net.add_host("a", segment="lan")
        b = net.add_host("b", segment="lan")
        TcpServer(b, 80)
        client = TcpClient(a, b.address, 80)

        sent_before_ack = []

        def go():
            # Pretend the peer advertised a small window (set after the
            # SYN-ACK so the handshake doesn't overwrite it).
            client.conn.peer_window = 4000
            client.send(b"z" * 20_000)
            sent_before_ack.append(client.conn.unacked)

        client.conn.on_connect = go
        net.sim.run()
        # At the instant of send, in-flight data was capped at the window.
        assert sent_before_ack[0] <= 4000


class TestEphemeralPorts:
    def test_udp_wraparound(self):
        net = Network(seed=35)
        net.add_segment("lan", "10.0.0.0")
        a = net.add_host("a", segment="lan")
        a.udp._next_ephemeral = 0xFFFF
        p1 = a.udp.allocate_ephemeral()
        p2 = a.udp.allocate_ephemeral()
        assert p1 == 0xFFFF
        assert p2 == 1024  # wrapped

    def test_tcp_distinct_ephemerals(self):
        net = Network(seed=36)
        net.add_segment("lan", "10.0.0.0")
        a = net.add_host("a", segment="lan")
        b = net.add_host("b", segment="lan")
        TcpServer(b, 80)
        c1 = TcpClient(a, b.address, 80)
        c2 = TcpClient(a, b.address, 80)
        assert c1.conn.local_port != c2.conn.local_port
