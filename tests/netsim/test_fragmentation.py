"""Fragmentation and reassembly tests."""

import pytest

from repro.netsim.addresses import IPAddress
from repro.netsim.fragmentation import FragmentationNeeded, Reassembler, fragment
from repro.netsim.ipv4 import IPV4_HEADER_LEN, IPProtocol, IPv4Header, IPv4Packet


def make_packet(payload_len, **header_overrides):
    fields = dict(
        src=IPAddress("10.0.0.1"),
        dst=IPAddress("10.0.0.2"),
        proto=IPProtocol.UDP,
        identification=42,
    )
    fields.update(header_overrides)
    payload = bytes(i & 0xFF for i in range(payload_len))
    return IPv4Packet(header=IPv4Header(**fields), payload=payload)


class TestFragment:
    def test_small_packet_untouched(self):
        packet = make_packet(100)
        assert fragment(packet, 1500) == [packet]

    def test_fragment_sizes(self):
        packet = make_packet(3000)
        pieces = fragment(packet, 1500)
        assert len(pieces) == 3
        # All but the last carry 8-byte-aligned payloads within the MTU.
        for piece in pieces[:-1]:
            assert len(piece.payload) % 8 == 0
            assert piece.size <= 1500
            assert piece.header.more_fragments

        assert not pieces[-1].header.more_fragments

    def test_payload_reconstructs(self):
        packet = make_packet(5000)
        pieces = fragment(packet, 1500)
        rebuilt = b"".join(p.payload for p in pieces)
        assert rebuilt == packet.payload

    def test_offsets_are_consistent(self):
        packet = make_packet(4000)
        pieces = fragment(packet, 1500)
        expected = 0
        for piece in pieces:
            assert piece.header.fragment_offset * 8 == expected
            expected += len(piece.payload)

    def test_df_raises(self):
        packet = make_packet(3000, dont_fragment=True)
        with pytest.raises(FragmentationNeeded):
            fragment(packet, 1500)

    def test_tiny_mtu_rejected(self):
        with pytest.raises(ValueError):
            fragment(make_packet(100), IPV4_HEADER_LEN + 4)


class TestReassembler:
    def _reassembler(self, now=0.0, timeout=30.0):
        clock = {"now": now}
        return Reassembler(now=lambda: clock["now"], timeout=timeout), clock

    def test_passthrough_unfragmented(self):
        reasm, _ = self._reassembler()
        packet = make_packet(100)
        assert reasm.push(packet) is packet

    def test_in_order_reassembly(self):
        reasm, _ = self._reassembler()
        packet = make_packet(4000)
        pieces = fragment(packet, 1500)
        results = [reasm.push(p) for p in pieces]
        assert results[:-1] == [None] * (len(pieces) - 1)
        assert results[-1].payload == packet.payload
        assert not results[-1].header.more_fragments

    def test_out_of_order_reassembly(self):
        reasm, _ = self._reassembler()
        packet = make_packet(4000)
        pieces = fragment(packet, 1500)
        result = None
        for piece in reversed(pieces):
            result = reasm.push(piece)
        assert result is not None and result.payload == packet.payload

    def test_interleaved_datagrams(self):
        reasm, _ = self._reassembler()
        a = make_packet(3000, identification=1)
        b = make_packet(3000, identification=2)
        pa = fragment(a, 1500)
        pb = fragment(b, 1500)
        done = []
        for pair in zip(pa, pb):
            for piece in pair:
                out = reasm.push(piece)
                if out is not None:
                    done.append(out)
        assert len(done) == 2
        assert {d.header.identification for d in done} == {1, 2}

    def test_duplicate_fragment_harmless(self):
        reasm, _ = self._reassembler()
        packet = make_packet(3000)
        pieces = fragment(packet, 1500)
        reasm.push(pieces[0])
        reasm.push(pieces[0])  # duplicate
        result = None
        for piece in pieces[1:]:
            result = reasm.push(piece)
        assert result is not None and result.payload == packet.payload

    def test_timeout_expires_partials(self):
        reasm, clock = self._reassembler(timeout=30.0)
        packet = make_packet(3000)
        pieces = fragment(packet, 1500)
        reasm.push(pieces[0])
        assert reasm.pending == 1
        clock["now"] = 100.0
        # The next push triggers expiry of the stale partial.
        other = fragment(make_packet(3000, identification=9), 1500)
        reasm.push(other[0])
        assert reasm.expired_datagrams == 1
        # Late-arriving rest of the first datagram can no longer complete
        # with the lost state (a fresh partial starts instead).
        result = None
        for piece in pieces[1:]:
            result = reasm.push(piece)
        assert result is None


class TestReassemblerBounds:
    def _reassembler(self, **kwargs):
        clock = {"now": 0.0}
        return Reassembler(now=lambda: clock["now"], **kwargs), clock

    def test_validation(self):
        with pytest.raises(ValueError):
            Reassembler(now=lambda: 0.0, max_partials=0)
        with pytest.raises(ValueError):
            Reassembler(now=lambda: 0.0, max_fragments=1)

    def test_partial_count_capped_with_oldest_first_eviction(self):
        reasm, _ = self._reassembler(max_partials=4)
        # 6 distinct never-completing datagrams: only 4 partials live.
        for ident in range(6):
            pieces = fragment(make_packet(3000, identification=ident), 1500)
            reasm.push(pieces[0])
        assert reasm.pending == 4
        assert reasm.overflow_drops == 2
        # The two oldest were evicted: their late fragments start fresh
        # partials instead of completing.
        old = fragment(make_packet(3000, identification=0), 1500)
        assert reasm.push(old[1]) is None
        # The newest survived: completing it still works.
        newest = fragment(make_packet(3000, identification=5), 1500)
        done = None
        for piece in newest[1:]:
            done = reasm.push(piece)
        assert done is not None

    def test_fragment_count_per_partial_capped(self):
        reasm, _ = self._reassembler(max_fragments=4)
        packet = make_packet(8000)
        pieces = fragment(packet, 1500)  # 6 fragments > cap of 4
        result = None
        for piece in pieces:
            result = reasm.push(piece)
        assert result is None
        assert reasm.overflow_drops == 1
        # The oversized partial was discarded when piece 5 arrived; the
        # final fragment starts over as a fresh (1-piece) partial.
        assert reasm.pending == 1

    def test_cap_never_breaks_in_budget_reassembly(self):
        reasm, _ = self._reassembler(max_partials=2, max_fragments=8)
        packet = make_packet(6000)
        result = None
        for piece in fragment(packet, 1500):
            result = reasm.push(piece)
        assert result is not None and result.payload == packet.payload
        assert reasm.overflow_drops == 0
