"""Simplified TCP tests: handshake, transfer, loss recovery, exact-fit."""

import pytest

from repro.netsim import Network
from repro.netsim.link import LinkConditions
from repro.netsim.sockets import TcpClient, TcpServer
from repro.netsim.tcp import TCP_HEADER_LEN, TCPHeader, TcpState


def build_pair(seed=0, conditions=None):
    net = Network(seed=seed)
    net.add_segment("lan", "10.0.0.0", conditions=conditions)
    return net, net.add_host("a", segment="lan"), net.add_host("b", segment="lan")


class TestHeaderCodec:
    def test_roundtrip(self):
        header = TCPHeader(sport=1, dport=2, seq=3_000_000_000, ack=7, flags=0x12)
        decoded = TCPHeader.decode(header.encode())
        assert decoded.seq == 3_000_000_000
        assert decoded.flags == 0x12
        assert decoded.window == 65535

    def test_length(self):
        assert len(TCPHeader(1, 2, 3, 4, 0).encode()) == TCP_HEADER_LEN

    def test_truncated(self):
        with pytest.raises(ValueError):
            TCPHeader.decode(b"\x00" * 10)


class TestHandshake:
    def test_connect(self):
        net, a, b = build_pair()
        TcpServer(b, 80)
        client = TcpClient(a, b.address, 80)
        net.sim.run()
        assert client.connected
        assert client.conn.state is TcpState.ESTABLISHED

    def test_connect_to_closed_port_fails_eventually(self):
        net, a, b = build_pair()
        client = TcpClient(a, b.address, 81)
        net.sim.run(until=300.0)
        net.sim.run()
        assert not client.connected
        assert client.failure is not None

    def test_server_sees_connection(self):
        net, a, b = build_pair()
        server = TcpServer(b, 80)
        TcpClient(a, b.address, 80)
        net.sim.run()
        assert len(server.connections) == 1
        assert server.connections[0].state is TcpState.ESTABLISHED


class TestTransfer:
    def test_small_message(self):
        net, a, b = build_pair()
        server = TcpServer(b, 80)
        client = TcpClient(a, b.address, 80)
        client.conn.on_connect = lambda: client.send(b"GET / HTTP/1.0\r\n\r\n")
        net.sim.run()
        assert bytes(server.received[0]) == b"GET / HTTP/1.0\r\n\r\n"

    def test_bulk_transfer(self):
        net, a, b = build_pair()
        server = TcpServer(b, 80)
        client = TcpClient(a, b.address, 80)
        blob = bytes(range(256)) * 500  # 128 000 bytes

        def go():
            client.send(blob)
            client.close()

        client.conn.on_connect = go
        net.sim.run()
        assert bytes(server.received[0]) == blob

    def test_bidirectional(self):
        net, a, b = build_pair()
        server = TcpServer(b, 80)

        def echo(conn, chunk):
            conn.send(b"echo:" + chunk)

        server.on_data = echo
        client = TcpClient(a, b.address, 80)
        client.conn.on_connect = lambda: client.send(b"hello")
        net.sim.run()
        assert bytes(client.received) == b"echo:hello"

    def test_two_concurrent_connections(self):
        net, a, b = build_pair()
        server = TcpServer(b, 80)
        c1 = TcpClient(a, b.address, 80)
        c2 = TcpClient(a, b.address, 80)
        c1.conn.on_connect = lambda: c1.send(b"one")
        c2.conn.on_connect = lambda: c2.send(b"two")
        net.sim.run()
        assert sorted(bytes(r) for r in server.received) == [b"one", b"two"]

    def test_send_before_established_queues(self):
        net, a, b = build_pair()
        server = TcpServer(b, 80)
        client = TcpClient(a, b.address, 80)
        client.send(b"early data")  # queued during SYN_SENT
        net.sim.run()
        assert bytes(server.received[0]) == b"early data"


class TestLossRecovery:
    def test_retransmission_completes_transfer(self):
        net, a, b = build_pair(
            seed=3, conditions=LinkConditions(loss_probability=0.15)
        )
        server = TcpServer(b, 80)
        client = TcpClient(a, b.address, 80)
        blob = bytes(range(256)) * 300

        def go():
            client.send(blob)
            client.close()

        client.conn.on_connect = go
        net.sim.run(until=120.0)
        net.sim.run()
        assert bytes(server.received[0]) == blob
        assert client.conn.segments_retransmitted > 0

    def test_reordering_tolerated(self):
        net, a, b = build_pair(
            seed=4, conditions=LinkConditions(reorder_jitter=0.02)
        )
        server = TcpServer(b, 80)
        client = TcpClient(a, b.address, 80)
        blob = bytes(range(256)) * 100

        def go():
            client.send(blob)
            client.close()

        client.conn.on_connect = go
        net.sim.run(until=120.0)
        net.sim.run()
        assert bytes(server.received[0]) == blob


class TestClose:
    def test_clean_close_both_sides(self):
        net, a, b = build_pair()
        server = TcpServer(b, 80)
        client = TcpClient(a, b.address, 80)

        def go():
            client.send(b"bye")
            client.close()

        client.conn.on_connect = go
        net.sim.run()
        assert client.conn.state is TcpState.CLOSED
        assert server.connections[0].state is TcpState.CLOSED
        assert a.tcp.open_connections == 0
        assert b.tcp.open_connections == 0

    def test_close_flushes_pending_data(self):
        net, a, b = build_pair()
        server = TcpServer(b, 80)
        client = TcpClient(a, b.address, 80)
        blob = b"z" * 50_000

        def go():
            client.send(blob)
            client.close()  # close immediately; data must still arrive

        client.conn.on_connect = go
        net.sim.run()
        assert len(server.received[0]) == len(blob)

    def test_send_after_close_rejected(self):
        net, a, b = build_pair()
        TcpServer(b, 80)
        client = TcpClient(a, b.address, 80)

        def go():
            client.close()
            with pytest.raises(RuntimeError):
                client.send(b"late")

        client.conn.on_connect = go
        net.sim.run()


class TestMss:
    def test_mss_reflects_mtu(self):
        net, a, b = build_pair()
        TcpServer(b, 80)
        client = TcpClient(a, b.address, 80)
        assert client.conn.mss == 1500 - 20 - 20

    def test_mss_honours_header_reserve(self):
        net, a, b = build_pair()
        a.tcp.header_reserve = lambda: 40
        TcpServer(b, 80)
        client = TcpClient(a, b.address, 80)
        assert client.conn.mss == 1500 - 20 - 20 - 40

    def test_full_mss_segments_set_df(self):
        net, a, b = build_pair()
        frames = []
        net.segment("lan").attach_tap(frames.append)
        server = TcpServer(b, 80)
        client = TcpClient(a, b.address, 80)
        blob = b"q" * 10_000

        def go():
            client.send(blob)
            client.close()

        client.conn.on_connect = go
        net.sim.run()
        from repro.netsim.ipv4 import IPv4Packet

        df_sizes = [
            len(IPv4Packet.decode(f).payload)
            for f in frames
            if IPv4Packet.decode(f).header.dont_fragment
        ]
        # Exact-fit segments (MSS + TCP header) carry DF.
        assert df_sizes and all(size == 1480 for size in df_sizes)
