"""IPv4 header/packet codec and checksum tests."""

import pytest

from repro.netsim.addresses import IPAddress
from repro.netsim.ipv4 import (
    IPV4_HEADER_LEN,
    IPProtocol,
    IPv4Header,
    IPv4Packet,
    checksum16,
)


def make_header(**overrides):
    fields = dict(
        src=IPAddress("10.0.0.1"),
        dst=IPAddress("10.0.0.2"),
        proto=IPProtocol.UDP,
        identification=7,
    )
    fields.update(overrides)
    return IPv4Header(**fields)


class TestChecksum:
    def test_rfc1071_example(self):
        # Classic example from RFC 1071 materials.
        data = bytes.fromhex("0001f203f4f5f6f7")
        assert checksum16(data) == 0x220D

    def test_odd_length_padded(self):
        assert checksum16(b"\x01") == checksum16(b"\x01\x00")

    def test_verification_property(self):
        header = make_header().encode()
        assert checksum16(header) == 0


class TestHeaderCodec:
    def test_roundtrip(self):
        header = make_header(ttl=17, tos=0x10, dont_fragment=True)
        header.total_length = 99
        decoded = IPv4Header.decode(header.encode())
        assert decoded.src == header.src
        assert decoded.dst == header.dst
        assert decoded.proto == header.proto
        assert decoded.ttl == 17
        assert decoded.tos == 0x10
        assert decoded.dont_fragment is True
        assert decoded.total_length == 99

    def test_fragment_fields_roundtrip(self):
        header = make_header(more_fragments=True, fragment_offset=185)
        decoded = IPv4Header.decode(header.encode())
        assert decoded.more_fragments and decoded.fragment_offset == 185

    def test_encoded_length(self):
        assert len(make_header().encode()) == IPV4_HEADER_LEN

    def test_corruption_detected(self):
        raw = bytearray(make_header().encode())
        raw[8] ^= 0xFF  # flip the TTL
        with pytest.raises(ValueError):
            IPv4Header.decode(bytes(raw))

    def test_truncated_rejected(self):
        with pytest.raises(ValueError):
            IPv4Header.decode(b"\x45\x00\x00")

    def test_wrong_version_rejected(self):
        raw = bytearray(make_header().encode())
        raw[0] = 0x65  # version 6
        with pytest.raises(ValueError):
            IPv4Header.decode(bytes(raw))

    def test_bad_fragment_offset_rejected(self):
        header = make_header(fragment_offset=9000)
        with pytest.raises(ValueError):
            header.encode()


class TestPacketCodec:
    def test_roundtrip(self):
        packet = IPv4Packet(header=make_header(), payload=b"hello ip layer")
        decoded = IPv4Packet.decode(packet.encode())
        assert decoded.payload == b"hello ip layer"
        assert decoded.header.src == packet.header.src

    def test_encode_fixes_total_length(self):
        packet = IPv4Packet(header=make_header(), payload=b"x" * 100)
        decoded = IPv4Packet.decode(packet.encode())
        assert decoded.header.total_length == IPV4_HEADER_LEN + 100
        assert decoded.size == IPV4_HEADER_LEN + 100

    def test_total_length_bounds_payload(self):
        raw = IPv4Packet(header=make_header(), payload=b"abcdef").encode()
        # Ethernet-style trailing padding must be ignored.
        decoded = IPv4Packet.decode(raw + b"\x00" * 10)
        assert decoded.payload == b"abcdef"

    def test_overlong_total_length_rejected(self):
        packet = IPv4Packet(header=make_header(), payload=b"abcdef")
        packet.header.total_length = 2000
        raw = packet.header.encode() + packet.payload
        with pytest.raises(ValueError):
            IPv4Packet.decode(raw)

    def test_empty_payload(self):
        packet = IPv4Packet(header=make_header(), payload=b"")
        assert IPv4Packet.decode(packet.encode()).payload == b""
