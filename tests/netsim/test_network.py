"""Topology builder and routing tests."""

import pytest

from repro.netsim import Network
from repro.netsim.costmodel import PENTIUM_133
from repro.netsim.sockets import UdpSocket


class TestTopology:
    def test_sequential_addressing(self):
        net = Network()
        net.add_segment("lan", "10.0.0.0")
        a = net.add_host("a", segment="lan")
        b = net.add_host("b", segment="lan")
        assert str(a.address) == "10.0.0.1"
        assert str(b.address) == "10.0.0.2"

    def test_explicit_address(self):
        net = Network()
        net.add_segment("lan", "10.0.0.0")
        host = net.add_host("x", segment="lan", address="10.0.0.99")
        assert str(host.address) == "10.0.0.99"

    def test_duplicate_names_rejected(self):
        net = Network()
        net.add_segment("lan", "10.0.0.0")
        net.add_host("a", segment="lan")
        with pytest.raises(ValueError):
            net.add_host("a", segment="lan")
        with pytest.raises(ValueError):
            net.add_segment("lan", "10.1.0.0")

    def test_directory(self):
        net = Network()
        net.add_segment("lan", "10.0.0.0")
        host = net.add_host("server", segment="lan")
        assert net.resolve("server") == host.address

    def test_cost_model_attached(self):
        net = Network()
        net.add_segment("lan", "10.0.0.0")
        host = net.add_host("fast", segment="lan", cost_model=PENTIUM_133)
        assert host.cost_model is PENTIUM_133


class TestRouting:
    def _two_segment_net(self):
        net = Network(seed=1)
        net.add_segment("lan1", "10.0.1.0")
        net.add_segment("lan2", "10.0.2.0")
        a = net.add_host("a", segment="lan1")
        b = net.add_host("b", segment="lan2")
        router = net.add_router("r", segments=["lan1", "lan2"])
        net.add_default_route(a, "lan1", router)
        net.add_default_route(b, "lan2", router)
        return net, a, b, router

    def test_cross_segment_delivery(self):
        net, a, b, router = self._two_segment_net()
        rx = UdpSocket(b, 5000)
        UdpSocket(a).sendto(b"routed", b.address, 5000)
        net.sim.run()
        assert rx.received[0][0] == b"routed"
        assert router.stack.stats.packets_forwarded == 1

    def test_reverse_path(self):
        net, a, b, router = self._two_segment_net()
        rx = UdpSocket(a, 5000)
        UdpSocket(b).sendto(b"back", a.address, 5000)
        net.sim.run()
        assert rx.received[0][0] == b"back"

    def test_default_route_requires_shared_segment(self):
        net = Network()
        net.add_segment("lan1", "10.0.1.0")
        net.add_segment("lan2", "10.0.2.0")
        a = net.add_host("a", segment="lan1")
        b = net.add_host("b", segment="lan2")
        with pytest.raises(ValueError):
            net.add_default_route(a, "lan2", b)
