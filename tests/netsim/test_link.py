"""Link and Ethernet segment tests."""

import pytest

from repro.netsim.clock import Simulator
from repro.netsim.link import (
    ETHERNET_FRAMING_OVERHEAD,
    EthernetSegment,
    Link,
    LinkConditions,
)


class TestLink:
    def test_delivery(self):
        sim = Simulator()
        link = Link(sim)
        received = []
        link.attach(received.append)
        link.send(b"frame-1")
        sim.run()
        assert received == [b"frame-1"]

    def test_serialization_time(self):
        sim = Simulator()
        link = Link(sim, bandwidth_bps=8_000_000, propagation_delay=0.0)
        assert link.serialization_time(1000 - ETHERNET_FRAMING_OVERHEAD) == pytest.approx(
            0.001
        )

    def test_frames_serialize_fifo(self):
        sim = Simulator()
        link = Link(sim, bandwidth_bps=1_000_000, propagation_delay=0.0)
        arrivals = []
        link.attach(lambda f: arrivals.append((sim.now, f)))
        link.send(b"a" * 100)
        link.send(b"b" * 100)
        sim.run()
        assert [f for _, f in arrivals] == [b"a" * 100, b"b" * 100]
        gap = arrivals[1][0] - arrivals[0][0]
        assert gap == pytest.approx(link.serialization_time(100))

    def test_propagation_delay(self):
        sim = Simulator()
        link = Link(sim, bandwidth_bps=1e9, propagation_delay=0.5)
        arrivals = []
        link.attach(lambda f: arrivals.append(sim.now))
        link.send(b"x")
        sim.run()
        assert arrivals[0] >= 0.5

    def test_loss(self):
        sim = Simulator()
        link = Link(sim, conditions=LinkConditions(loss_probability=1.0), seed=1)
        received = []
        link.attach(received.append)
        for _ in range(10):
            link.send(b"gone")
        sim.run()
        assert received == []
        assert link.frames_dropped == 10

    def test_duplication(self):
        sim = Simulator()
        link = Link(sim, conditions=LinkConditions(duplication_probability=1.0), seed=2)
        received = []
        link.attach(received.append)
        link.send(b"twice")
        sim.run()
        assert received == [b"twice", b"twice"]

    def test_reordering_possible(self):
        sim = Simulator()
        link = Link(
            sim,
            bandwidth_bps=1e9,
            conditions=LinkConditions(reorder_jitter=0.1),
            seed=3,
        )
        received = []
        link.attach(received.append)
        frames = [bytes([i]) for i in range(30)]
        for frame in frames:
            link.send(frame)
        sim.run()
        assert sorted(received) == sorted(frames)
        assert received != frames  # with jitter 0.1 over 30 frames, certain

    def test_requires_receiver(self):
        sim = Simulator()
        link = Link(sim)
        with pytest.raises(RuntimeError):
            link.send(b"nowhere")

    def test_invalid_conditions(self):
        with pytest.raises(ValueError):
            LinkConditions(loss_probability=1.5)
        with pytest.raises(ValueError):
            LinkConditions(reorder_jitter=-1)

    def test_invalid_bandwidth(self):
        with pytest.raises(ValueError):
            Link(Simulator(), bandwidth_bps=0)


class TestEthernetSegment:
    def test_broadcast_to_all_but_sender(self):
        sim = Simulator()
        seg = EthernetSegment(sim)
        inboxes = [[], [], []]
        ids = [seg.attach(inboxes[i].append) for i in range(3)]
        seg.send(ids[0], b"hello")
        sim.run()
        assert inboxes[0] == []
        assert inboxes[1] == [b"hello"]
        assert inboxes[2] == [b"hello"]

    def test_tap_sees_everything(self):
        sim = Simulator()
        seg = EthernetSegment(sim)
        sniffer = []
        station = seg.attach(lambda f: None)
        seg.attach_tap(sniffer.append)
        seg.send(station, b"frame")
        sim.run()
        assert sniffer == [b"frame"]

    def test_medium_serializes_across_stations(self):
        sim = Simulator()
        seg = EthernetSegment(sim, bandwidth_bps=1_000_000, propagation_delay=0.0)
        a = seg.attach(lambda f: None)
        b = seg.attach(lambda f: None)
        t1 = seg.send(a, b"x" * 87)  # 87+38 = 125 bytes = 1ms at 1 Mb/s
        t2 = seg.send(b, b"y" * 87)
        assert t2 == pytest.approx(t1 + 0.001)

    def test_unknown_station_rejected(self):
        seg = EthernetSegment(Simulator())
        with pytest.raises(ValueError):
            seg.send(5, b"x")

    def test_loss_applies(self):
        sim = Simulator()
        seg = EthernetSegment(
            sim, conditions=LinkConditions(loss_probability=1.0), seed=4
        )
        inbox = []
        a = seg.attach(lambda f: None)
        seg.attach(inbox.append)
        seg.send(a, b"lost")
        sim.run()
        assert inbox == []
        assert seg.frames_dropped == 1


def _bit_difference(a: bytes, b: bytes) -> int:
    assert len(a) == len(b)
    return sum(bin(x ^ y).count("1") for x, y in zip(a, b))


class TestLinkFaultModel:
    def test_corruption_flips_exactly_one_bit(self):
        sim = Simulator()
        link = Link(
            sim, conditions=LinkConditions(corruption_probability=1.0), seed=5
        )
        received = []
        link.attach(received.append)
        link.send(b"payload under test")
        sim.run()
        assert len(received) == 1
        assert _bit_difference(received[0], b"payload under test") == 1
        assert link.frames_corrupted == 1

    def test_corruption_probability_validated(self):
        with pytest.raises(ValueError):
            LinkConditions(corruption_probability=-0.1)
        with pytest.raises(ValueError):
            LinkConditions(corruption_probability=1.5)

    def test_duplicates_consume_airtime_and_count(self):
        sim = Simulator()
        link = Link(
            sim,
            bandwidth_bps=1_000_000,
            propagation_delay=0.0,
            conditions=LinkConditions(duplication_probability=1.0),
            seed=6,
        )
        arrivals = []
        link.attach(lambda f: arrivals.append(sim.now))
        frame = b"x" * (125 - ETHERNET_FRAMING_OVERHEAD)  # 1 ms on the wire
        link.send(frame)
        sim.run()
        # The copy is a second transmission: it serializes after the
        # original instead of arriving for free at the same instant.
        assert len(arrivals) == 2
        assert arrivals[1] - arrivals[0] == pytest.approx(0.001)
        assert link.frames_duplicated == 1
        assert link.frames_sent == 2
        assert link.bytes_sent == 2 * len(frame)
        assert link.busy_until == pytest.approx(0.002)

    def test_conditions_swappable_mid_run(self):
        sim = Simulator()
        link = Link(sim, seed=7)
        received = []
        link.attach(received.append)
        link.send(b"clean")
        link.conditions = LinkConditions(loss_probability=1.0)
        link.send(b"lost")
        sim.run()
        assert received == [b"clean"]
        assert link.frames_dropped == 1


class TestSegmentFaultModel:
    def test_duplicates_serialize_and_count(self):
        sim = Simulator()
        seg = EthernetSegment(
            sim,
            bandwidth_bps=1_000_000,
            propagation_delay=0.0,
            conditions=LinkConditions(duplication_probability=1.0),
            seed=8,
        )
        arrivals = []
        a = seg.attach(lambda f: None)
        seg.attach(lambda f: arrivals.append(sim.now))
        frame = b"x" * (125 - ETHERNET_FRAMING_OVERHEAD)  # 1 ms on the wire
        seg.send(a, frame)
        sim.run()
        assert len(arrivals) == 2
        assert arrivals[1] - arrivals[0] == pytest.approx(0.001)
        assert seg.frames_duplicated == 1
        assert seg.frames_sent == 2
        assert seg.bytes_sent == 2 * len(frame)

    def test_reorder_jitter_applied_per_delivery(self):
        # One wire frame, two receivers: each delivery draws its own
        # jitter, so arrival times differ (the old model jittered the
        # frame once, making "reordering" invisible between stations).
        sim = Simulator()
        seg = EthernetSegment(
            sim,
            propagation_delay=0.0,
            conditions=LinkConditions(reorder_jitter=0.05),
            seed=9,
        )
        times = {}
        a = seg.attach(lambda f: None)
        seg.attach(lambda f: times.setdefault("b", sim.now))
        seg.attach(lambda f: times.setdefault("c", sim.now))
        seg.send(a, b"jittered")
        sim.run()
        assert times["b"] != times["c"]

    def test_corruption_is_one_wire_signal(self):
        # A corrupted frame is damaged on the medium: every station and
        # the tap see the same damaged bytes, not independent damage.
        sim = Simulator()
        seg = EthernetSegment(
            sim, conditions=LinkConditions(corruption_probability=1.0), seed=10
        )
        inbox_b, inbox_c, sniffed = [], [], []
        a = seg.attach(lambda f: None)
        seg.attach(inbox_b.append)
        seg.attach(inbox_c.append)
        seg.attach_tap(sniffed.append)
        seg.send(a, b"frame on the wire")
        sim.run()
        assert seg.frames_corrupted == 1
        assert inbox_b == inbox_c == sniffed
        assert _bit_difference(inbox_b[0], b"frame on the wire") == 1

    def test_stats_align_with_link(self):
        # The segment exposes the same counter vocabulary as Link, so
        # fault campaigns can treat either interchangeably.
        seg = EthernetSegment(Simulator())
        link = Link(Simulator())
        for name in (
            "frames_sent",
            "frames_dropped",
            "frames_duplicated",
            "frames_corrupted",
            "bytes_sent",
        ):
            assert getattr(seg, name) == getattr(link, name) == 0
