"""IP stack tests: routing, hooks, forwarding, the 3-part structure."""

import pytest

from repro.netsim.addresses import IPAddress
from repro.netsim.clock import Simulator
from repro.netsim.ipv4 import IPProtocol, IPv4Header, IPv4Packet
from repro.netsim.stack import Interface, IPStack, Route


def make_stack(address="10.0.0.1", forwarding=False):
    sim = Simulator()
    stack = IPStack(sim, forwarding=forwarding)
    sent = []
    iface = Interface(
        address=IPAddress(address),
        network=IPAddress("10.0.0.0"),
        prefix_len=24,
        transmit=sent.append,
    )
    stack.add_interface(iface)
    return sim, stack, sent, iface


def make_packet(src="10.0.0.1", dst="10.0.0.2", payload=b"data", **kw):
    return IPv4Packet(
        header=IPv4Header(
            src=IPAddress(src), dst=IPAddress(dst), proto=IPProtocol.UDP, **kw
        ),
        payload=payload,
    )


class TestOutput:
    def test_basic_send(self):
        _, stack, sent, _ = make_stack()
        assert stack.ip_output(make_packet())
        assert len(sent) == 1
        decoded = IPv4Packet.decode(sent[0])
        assert decoded.payload == b"data"

    def test_ip_id_allocated(self):
        _, stack, sent, _ = make_stack()
        stack.ip_output(make_packet())
        stack.ip_output(make_packet())
        ids = [IPv4Packet.decode(f).header.identification for f in sent]
        assert ids[0] != ids[1] and all(i != 0 for i in ids)

    def test_no_route(self):
        _, stack, sent, _ = make_stack()
        assert not stack.ip_output(make_packet(dst="192.168.9.9"))
        assert stack.stats.no_route == 1
        assert sent == []

    def test_longest_prefix_match(self):
        sim, stack, sent, iface = make_stack()
        other_sent = []
        other = Interface(
            address=IPAddress("10.0.1.1"),
            network=IPAddress("10.0.1.0"),
            prefix_len=24,
            transmit=other_sent.append,
        )
        stack.add_interface(other)
        stack.add_route(
            Route(network=IPAddress("0.0.0.0"), prefix_len=0, interface=iface)
        )
        stack.ip_output(make_packet(dst="10.0.1.5"))
        assert len(other_sent) == 1 and not sent
        stack.ip_output(make_packet(dst="8.8.8.8"))
        assert len(sent) == 1

    def test_fragmentation_on_small_mtu(self):
        sim, stack, sent, iface = make_stack()
        iface.mtu = 600
        stack.ip_output(make_packet(payload=b"z" * 2000))
        assert len(sent) == 4
        assert stack.stats.fragments_created == 4

    def test_df_too_big_dropped(self):
        sim, stack, sent, iface = make_stack()
        iface.mtu = 600
        assert not stack.ip_output(make_packet(payload=b"z" * 2000, dont_fragment=True))
        assert stack.stats.bad_headers == 1


class TestOutputHook:
    def test_hook_rewrites_between_routing_and_fragmentation(self):
        sim, stack, sent, iface = make_stack()
        iface.mtu = 600

        def grow(packet):
            packet.payload = packet.payload + b"!" * 1000
            return packet

        stack.output_hook = grow
        stack.ip_output(make_packet(payload=b"z" * 100))
        # The hook ran before fragmentation: the grown payload fragmented.
        assert len(sent) == 2

    def test_hook_can_discard(self):
        _, stack, sent, _ = make_stack()
        stack.output_hook = lambda packet: None
        assert not stack.ip_output(make_packet())
        assert stack.stats.hook_discards == 1
        assert sent == []


class TestInput:
    def test_delivery_to_protocol(self):
        _, stack, _, _ = make_stack()
        got = []
        stack.register_protocol(IPProtocol.UDP, got.append)
        stack.ip_input(make_packet(src="10.0.0.2", dst="10.0.0.1").encode())
        assert len(got) == 1 and got[0].payload == b"data"
        assert stack.stats.packets_delivered == 1

    def test_not_local_not_forwarding_dropped(self):
        _, stack, _, _ = make_stack()
        got = []
        stack.register_protocol(IPProtocol.UDP, got.append)
        stack.ip_input(make_packet(src="10.0.0.2", dst="10.0.0.9").encode())
        assert got == []

    def test_malformed_counted(self):
        _, stack, _, _ = make_stack()
        stack.ip_input(b"\x45\x00garbage")
        assert stack.stats.bad_headers == 1

    def test_no_protocol_handler(self):
        _, stack, _, _ = make_stack()
        stack.ip_input(make_packet(src="10.0.0.2", dst="10.0.0.1").encode())
        assert stack.stats.no_protocol == 1

    def test_reassembly_before_dispatch(self):
        sim, stack, sent, iface = make_stack(address="10.0.0.2")
        got = []
        stack.register_protocol(IPProtocol.UDP, got.append)
        # Build fragments by sending through another stack with small MTU.
        _, sender, frames, siface = make_stack(address="10.0.0.1")
        siface.mtu = 600
        sender.ip_output(make_packet(payload=b"q" * 1500))
        assert len(frames) > 1
        for frame in frames:
            stack.ip_input(frame)
        assert len(got) == 1
        assert got[0].payload == b"q" * 1500


class TestInputHook:
    def test_hook_sees_reassembled_datagram(self):
        sim, stack, _, _ = make_stack(address="10.0.0.2")
        seen = []
        stack.input_hook = lambda p: (seen.append(len(p.payload)), p)[1]
        stack.register_protocol(IPProtocol.UDP, lambda p: None)
        _, sender, frames, siface = make_stack(address="10.0.0.1")
        siface.mtu = 600
        sender.ip_output(make_packet(payload=b"q" * 1500))
        for frame in frames:
            stack.ip_input(frame)
        assert seen == [1500]  # once, with the whole payload

    def test_hook_can_discard(self):
        _, stack, _, _ = make_stack()
        got = []
        stack.register_protocol(IPProtocol.UDP, got.append)
        stack.input_hook = lambda p: None
        stack.ip_input(make_packet(src="10.0.0.2", dst="10.0.0.1").encode())
        assert got == [] and stack.stats.hook_discards == 1


class TestForwarding:
    def _router(self):
        sim = Simulator()
        stack = IPStack(sim, forwarding=True)
        lan_frames, wan_frames = [], []
        lan = Interface(
            address=IPAddress("10.0.0.1"),
            network=IPAddress("10.0.0.0"),
            prefix_len=24,
            transmit=lan_frames.append,
        )
        wan = Interface(
            address=IPAddress("10.1.0.1"),
            network=IPAddress("10.1.0.0"),
            prefix_len=24,
            transmit=wan_frames.append,
        )
        stack.add_interface(lan)
        stack.add_interface(wan)
        return stack, lan_frames, wan_frames

    def test_forwards_and_decrements_ttl(self):
        stack, lan, wan = self._router()
        packet = make_packet(src="10.0.0.5", dst="10.1.0.9", ttl=10)
        stack.ip_input(packet.encode())
        assert len(wan) == 1
        assert IPv4Packet.decode(wan[0]).header.ttl == 9
        assert stack.stats.packets_forwarded == 1

    def test_ttl_exceeded_dropped(self):
        stack, lan, wan = self._router()
        packet = make_packet(src="10.0.0.5", dst="10.1.0.9", ttl=1)
        stack.ip_input(packet.encode())
        assert wan == []
        assert stack.stats.ttl_exceeded == 1

    def test_forwarding_bypasses_hooks(self):
        stack, lan, wan = self._router()
        calls = []
        stack.input_hook = lambda p: (calls.append("in"), p)[1]
        stack.output_hook = lambda p: (calls.append("out"), p)[1]
        stack.ip_input(make_packet(src="10.0.0.5", dst="10.1.0.9").encode())
        # FBS is end-to-end: forwarded packets see neither hook.
        assert calls == []
        assert len(wan) == 1
