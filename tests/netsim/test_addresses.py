"""IPAddress and FiveTuple tests."""

import pytest

from repro.netsim.addresses import FiveTuple, IPAddress


class TestIPAddress:
    def test_from_string(self):
        assert int(IPAddress("10.0.0.1")) == (10 << 24) + 1

    def test_str_roundtrip(self):
        for text in ("0.0.0.0", "255.255.255.255", "192.168.1.42"):
            assert str(IPAddress(text)) == text

    def test_from_int(self):
        assert str(IPAddress(0x0A000001)) == "10.0.0.1"

    def test_copy_constructor(self):
        a = IPAddress("1.2.3.4")
        assert IPAddress(a) == a

    def test_bytes_roundtrip(self):
        a = IPAddress("172.16.254.3")
        assert IPAddress.from_bytes(a.to_bytes()) == a

    @pytest.mark.parametrize("bad", ["1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d", "1..2.3"])
    def test_rejects_malformed_strings(self, bad):
        with pytest.raises(ValueError):
            IPAddress(bad)

    def test_rejects_out_of_range_int(self):
        with pytest.raises(ValueError):
            IPAddress(2**32)
        with pytest.raises(ValueError):
            IPAddress(-1)

    def test_rejects_wrong_type(self):
        with pytest.raises(TypeError):
            IPAddress(1.5)

    def test_hashable_and_ordered(self):
        a, b = IPAddress("10.0.0.1"), IPAddress("10.0.0.2")
        assert a < b
        assert len({a, b, IPAddress("10.0.0.1")}) == 2

    def test_subnet_membership(self):
        a = IPAddress("10.1.2.3")
        assert a.in_subnet(IPAddress("10.1.2.0"), 24)
        assert a.in_subnet(IPAddress("10.0.0.0"), 8)
        assert not a.in_subnet(IPAddress("10.1.3.0"), 24)
        assert a.in_subnet(IPAddress("0.0.0.0"), 0)  # default route
        assert a.in_subnet(a, 32)

    def test_bad_prefix_length(self):
        with pytest.raises(ValueError):
            IPAddress("10.0.0.1").in_subnet(IPAddress("10.0.0.0"), 33)

    def test_from_bytes_wrong_length(self):
        with pytest.raises(ValueError):
            IPAddress.from_bytes(b"\x01\x02\x03")


class TestFiveTuple:
    def _tuple(self):
        return FiveTuple(
            proto=17,
            saddr=IPAddress("10.0.0.1"),
            sport=1024,
            daddr=IPAddress("10.0.0.2"),
            dport=53,
        )

    def test_pack_unpack_roundtrip(self):
        ft = self._tuple()
        assert FiveTuple.unpack(ft.pack()) == ft

    def test_pack_length(self):
        assert len(self._tuple().pack()) == 13

    def test_reversed(self):
        ft = self._tuple()
        rev = ft.reversed()
        assert rev.saddr == ft.daddr and rev.sport == ft.dport
        assert rev.daddr == ft.saddr and rev.dport == ft.sport
        assert rev.reversed() == ft

    def test_hashable(self):
        assert len({self._tuple(), self._tuple()}) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            FiveTuple(proto=300, saddr=IPAddress(0), sport=1, daddr=IPAddress(0), dport=1)
        with pytest.raises(ValueError):
            FiveTuple(proto=6, saddr=IPAddress(0), sport=70000, daddr=IPAddress(0), dport=1)

    def test_str_contains_endpoints(self):
        text = str(self._tuple())
        assert "10.0.0.1:1024" in text and "10.0.0.2:53" in text
