"""Cost model tests: calibration anchors and monotonicity."""

import pytest

from repro.netsim.costmodel import FREE_CPU, PENTIUM_133, CostModel


class TestCalibrationAnchors:
    def test_des_rate_matches_cryptolib(self):
        # 549 kB/s on the Pentium 133 (Section 7.2).
        seconds = PENTIUM_133.des_cbc(549_000)
        assert seconds == pytest.approx(1.0)

    def test_md5_rate_matches_cryptolib(self):
        # 7060 kB/s on the Pentium 133 (Section 7.2).
        seconds = PENTIUM_133.md5(7_060_000)
        assert seconds == pytest.approx(1.0)

    def test_generic_send_order_of_magnitude(self):
        # ~1.5 ms per 1460-byte packet => ~7.7 Mb/s with the wire.
        cost = PENTIUM_133.generic_send(1460)
        assert 1e-3 < cost < 2e-3


class TestStructure:
    def test_nop_adds_fixed_overhead(self):
        n = 1000
        assert PENTIUM_133.fbs_nop(n) == pytest.approx(
            PENTIUM_133.generic_send(n) + PENTIUM_133.fbs_per_packet
        )

    def test_crypto_cost_exceeds_nop(self):
        n = 1460
        assert PENTIUM_133.fbs_crypto(n) > PENTIUM_133.fbs_nop(n)

    def test_crypto_never_cheaper_than_generic(self):
        for n in (0, 100, 1460, 8192):
            for encrypt in (False, True):
                for mac in (False, True):
                    assert (
                        PENTIUM_133.fbs_crypto(n, encrypt=encrypt, mac=mac)
                        >= PENTIUM_133.generic_send(n)
                    )

    def test_integration_saves_time(self):
        separate = PENTIUM_133.with_(integrated_crypto=False)
        n = 8192
        assert PENTIUM_133.fbs_crypto(n) < separate.fbs_crypto(n)

    def test_encrypt_dominates_mac(self):
        n = 1460
        enc_only = PENTIUM_133.fbs_crypto(n, encrypt=True, mac=False)
        mac_only = PENTIUM_133.fbs_crypto(n, encrypt=False, mac=True)
        assert enc_only > mac_only

    def test_with_override(self):
        model = PENTIUM_133.with_(modexp=1.0)
        assert model.modexp == 1.0
        assert model.per_byte_des == PENTIUM_133.per_byte_des

    def test_monotone_in_size(self):
        costs = [PENTIUM_133.fbs_crypto(n) for n in (0, 100, 1000, 10000)]
        assert costs == sorted(costs)


class TestFreeCpu:
    def test_all_zero(self):
        assert FREE_CPU.generic_send(10_000) == 0.0
        assert FREE_CPU.fbs_crypto(10_000) == 0.0
        assert FREE_CPU.modexp == 0.0
