"""UDP layer tests."""

import pytest

from repro.netsim import Network
from repro.netsim.addresses import IPAddress
from repro.netsim.sockets import UdpSocket
from repro.netsim.udp import UDP_HEADER_LEN, UDPHeader


class TestHeaderCodec:
    def test_roundtrip(self):
        header = UDPHeader(sport=1024, dport=53, length=36, checksum=0xABCD)
        decoded = UDPHeader.decode(header.encode())
        assert (decoded.sport, decoded.dport, decoded.length, decoded.checksum) == (
            1024,
            53,
            36,
            0xABCD,
        )

    def test_truncated(self):
        with pytest.raises(ValueError):
            UDPHeader.decode(b"\x00\x01")

    def test_length_constant(self):
        assert UDP_HEADER_LEN == 8


def build_pair(seed=0):
    net = Network(seed=seed)
    net.add_segment("lan", "10.0.0.0")
    return net, net.add_host("a", segment="lan"), net.add_host("b", segment="lan")


class TestDelivery:
    def test_roundtrip(self):
        net, a, b = build_pair()
        rx = UdpSocket(b, 5000)
        tx = UdpSocket(a)
        tx.sendto(b"ping", b.address, 5000)
        net.sim.run()
        payload, src, sport = rx.received[0]
        assert payload == b"ping"
        assert src == a.address
        assert sport == tx.port

    def test_reply_path(self):
        net, a, b = build_pair()
        rx = UdpSocket(b, 5000)
        rx.on_receive = lambda payload, src, sport: rx_sock_reply(payload, src, sport)
        replies = UdpSocket(a, 4000)

        def rx_sock_reply(payload, src, sport):
            b.udp.sendto(b"pong:" + payload, 5000, src, sport)

        a.udp.sendto(b"ping", 4000, b.address, 5000)
        net.sim.run()
        assert replies.received[0][0] == b"pong:ping"

    def test_unbound_port_counted(self):
        net, a, b = build_pair()
        tx = UdpSocket(a)
        tx.sendto(b"void", b.address, 9999)
        net.sim.run()
        assert b.udp.no_port == 1

    def test_large_datagram_fragments_and_reassembles(self):
        net, a, b = build_pair()
        rx = UdpSocket(b, 5000)
        tx = UdpSocket(a)
        blob = bytes(range(256)) * 32  # 8 KB: fragments on a 1500 MTU
        tx.sendto(blob, b.address, 5000)
        net.sim.run()
        assert rx.received[0][0] == blob
        assert a.stack.stats.fragments_created >= 6

    def test_ephemeral_ports_unique(self):
        net, a, _ = build_pair()
        ports = {UdpSocket(a).port for _ in range(50)}
        assert len(ports) == 50

    def test_checksum_detects_corruption(self):
        net, a, b = build_pair()
        rx = UdpSocket(b, 5000)
        # Corrupt frames in flight by tapping and re-injecting is covered
        # by attack tests; here, verify the checksum flag plumbs through.
        assert a.udp.compute_checksums
        tx = UdpSocket(a)
        tx.sendto(b"checked", b.address, 5000)
        net.sim.run()
        assert rx.received

    def test_checksums_can_be_disabled(self):
        net, a, b = build_pair()
        a.udp.compute_checksums = False
        rx = UdpSocket(b, 5000)
        UdpSocket(a).sendto(b"raw", b.address, 5000)
        net.sim.run()
        assert rx.received[0][0] == b"raw"


class TestBinding:
    def test_double_bind_rejected(self):
        _, a, _ = build_pair()
        UdpSocket(a, 6000)
        with pytest.raises(ValueError):
            UdpSocket(a, 6000)

    def test_rebind_after_close(self):
        _, a, _ = build_pair()
        sock = UdpSocket(a, 6000)
        sock.close()
        UdpSocket(a, 6000)  # no error

    def test_rebind_wait_guard(self):
        net, a, _ = build_pair()
        a.udp.rebind_wait = 100.0
        sock = UdpSocket(a, 6000)
        sock.close()
        with pytest.raises(ValueError):
            UdpSocket(a, 6000)
        net.sim.run(until=200.0)
        UdpSocket(a, 6000)  # allowed after the wait
