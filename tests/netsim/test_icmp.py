"""ICMP tests: echo, unreachable generation, and FBS interplay."""

import pytest

from repro.core.deploy import FBSDomain
from repro.netsim import Network
from repro.netsim.icmp import (
    CODE_FRAG_NEEDED,
    TYPE_ECHO_REPLY,
    TYPE_ECHO_REQUEST,
    TYPE_UNREACHABLE,
    IcmpMessage,
)
from repro.netsim.sockets import TcpClient, TcpServer


def build_pair(seed=0):
    net = Network(seed=seed)
    net.add_segment("lan", "10.0.0.0")
    return net, net.add_host("a", segment="lan"), net.add_host("b", segment="lan")


class TestMessageCodec:
    def test_roundtrip(self):
        message = IcmpMessage(
            type=TYPE_ECHO_REQUEST, code=0, identifier=7, sequence=3, payload=b"data"
        )
        decoded = IcmpMessage.decode(message.encode())
        assert decoded == message

    def test_checksum_detects_corruption(self):
        raw = bytearray(IcmpMessage(type=8, code=0, payload=b"x").encode())
        raw[-1] ^= 0xFF
        with pytest.raises(ValueError):
            IcmpMessage.decode(bytes(raw))

    def test_truncated(self):
        with pytest.raises(ValueError):
            IcmpMessage.decode(b"\x08\x00")


class TestEcho:
    def test_ping_reply(self):
        net, a, b = build_pair()
        replies = []
        a.icmp.ping(b.address, on_reply=replies.append)
        net.sim.run()
        assert replies == [b.address]
        assert b.icmp.echo_requests_answered == 1
        assert a.icmp.echo_replies_received == 1

    def test_concurrent_pings_demuxed(self):
        net, a, b = build_pair()
        hits = []
        a.icmp.ping(b.address, on_reply=lambda src: hits.append(1), sequence=1)
        a.icmp.ping(b.address, on_reply=lambda src: hits.append(2), sequence=1)
        net.sim.run()
        assert sorted(hits) == [1, 2]

    def test_ping_through_fbs(self):
        # Raw IP (ICMP) under FBS: classified as a host-level flow per
        # footnote 10, and still answered.
        net, a, b = build_pair(seed=1)
        domain = FBSDomain(seed=2)
        fbs_a = domain.enroll_host(a, encrypt_all=True)
        domain.enroll_host(b, encrypt_all=True)
        replies = []
        a.icmp.ping(b.address, on_reply=replies.append)
        net.sim.run()
        assert replies == [b.address]
        # The echo used the host-level policy (no 5-tuple available).
        assert fbs_a.endpoint.metrics.flows_started >= 1


class TestUnreachable:
    def test_router_reports_frag_needed(self):
        # A DF packet crossing a router onto a narrow segment triggers
        # ICMP type 3 code 4 back to the source.
        net = Network(seed=3)
        net.add_segment("lan1", "10.0.1.0")
        net.add_segment("lan2", "10.0.2.0")
        a = net.add_host("a", segment="lan1")
        b = net.add_host("b", segment="lan2")
        router = net.add_router("r", segments=["lan1", "lan2"])
        for iface in router.stack.interfaces:
            if str(iface.address).startswith("10.0.2"):
                iface.mtu = 576
        net.add_default_route(a, "lan1", router)
        net.add_default_route(b, "lan2", router)

        errors = []
        a.icmp.on_unreachable = lambda code, quote: errors.append(code)
        from repro.netsim.addresses import IPAddress
        from repro.netsim.ipv4 import IPProtocol, IPv4Header, IPv4Packet

        big = IPv4Packet(
            header=IPv4Header(
                src=a.address, dst=b.address, proto=IPProtocol.UDP, dont_fragment=True
            ),
            payload=b"z" * 1200,
        )
        a.send_raw(big)
        net.sim.run()
        assert errors == [CODE_FRAG_NEEDED]

    def test_local_df_drop_counted(self):
        # The paper's tcp_output bug shows up at the *sender's own*
        # stack; the host counts these locally.
        net, a, b = build_pair(seed=4)
        domain = FBSDomain(seed=5)
        domain.enroll_host(a, encrypt_all=True, apply_tcp_fix=False)
        domain.enroll_host(b, encrypt_all=True, apply_tcp_fix=False)
        TcpServer(b, 9000)
        client = TcpClient(a, b.address, 9000)
        client.conn.on_connect = lambda: client.send(bytes(10_000))
        net.sim.run(until=30.0)
        assert a.local_df_drops > 0
