"""Trace container and codec tests."""

import io

import pytest

from repro.netsim.addresses import FiveTuple, IPAddress
from repro.traces import tcpdump
from repro.traces.records import PacketRecord, Trace


def rec(t=0.0, sport=1000, dport=53, proto=17, size=64, saddr="10.0.0.1", daddr="10.0.0.2"):
    return PacketRecord(
        time=t,
        five_tuple=FiveTuple(
            proto=proto,
            saddr=IPAddress(saddr),
            sport=sport,
            daddr=IPAddress(daddr),
            dport=dport,
        ),
        size=size,
    )


class TestPacketRecord:
    def test_validation(self):
        with pytest.raises(ValueError):
            rec(t=-1.0)
        with pytest.raises(ValueError):
            rec(size=-5)


class TestTrace:
    def test_sorting(self):
        trace = Trace([rec(t=5.0), rec(t=1.0), rec(t=3.0)])
        trace.sort()
        assert [r.time for r in trace] == [1.0, 3.0, 5.0]

    def test_duration_and_bytes(self):
        trace = Trace([rec(t=1.0, size=10), rec(t=11.0, size=20)])
        assert trace.duration == 10.0
        assert trace.total_bytes == 30

    def test_empty(self):
        trace = Trace()
        assert len(trace) == 0
        assert trace.duration == 0.0

    def test_hosts(self):
        trace = Trace([rec(saddr="10.0.0.1", daddr="10.0.0.9")])
        assert trace.hosts() == {IPAddress("10.0.0.1"), IPAddress("10.0.0.9")}

    def test_filters(self):
        trace = Trace(
            [rec(saddr="10.0.0.1", daddr="10.0.0.2"), rec(saddr="10.0.0.2", daddr="10.0.0.1")]
        )
        assert len(trace.filter_sender(IPAddress("10.0.0.1"))) == 1
        assert len(trace.filter_receiver(IPAddress("10.0.0.1"))) == 1

    def test_merge(self):
        a = Trace([rec(t=1.0), rec(t=3.0)])
        b = Trace([rec(t=2.0)])
        merged = a.merged_with(b)
        assert [r.time for r in merged] == [1.0, 2.0, 3.0]

    def test_indexing(self):
        trace = Trace([rec(t=1.0), rec(t=2.0)])
        assert trace[1].time == 2.0


class TestTcpdumpCodec:
    def test_format(self):
        line = tcpdump.format_record(rec(t=17.25, sport=1024, dport=2049, proto=17, size=1460))
        assert line == "17.250000 10.0.0.1.1024 > 10.0.0.2.2049: udp 1460"

    def test_parse_roundtrip(self):
        record = rec(t=3.5, sport=2000, dport=80, proto=6, size=512)
        parsed = tcpdump.parse_line(tcpdump.format_record(record))
        assert parsed == record

    def test_parse_numeric_proto(self):
        parsed = tcpdump.parse_line("1.0 10.0.0.1.1 > 10.0.0.2.2: 47 100")
        assert parsed.five_tuple.proto == 47

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            tcpdump.parse_line("not a trace line")

    def test_dump_load_roundtrip(self):
        trace = Trace([rec(t=1.0), rec(t=2.0, proto=6)], description="test trace")
        buffer = io.StringIO()
        tcpdump.dump(trace, buffer)
        buffer.seek(0)
        loaded = tcpdump.load(buffer)
        assert len(loaded) == 2
        assert loaded.description == "test trace"
        assert loaded[0] == trace[0]

    def test_load_skips_blank_and_comments(self):
        text = "# header\n\n1.0 10.0.0.1.1 > 10.0.0.2.2: udp 10\n"
        loaded = tcpdump.load(io.StringIO(text))
        assert len(loaded) == 1
