"""Trace CLI tests."""

import io

import pytest

from repro.traces.cli import main


@pytest.fixture(scope="module")
def small_trace_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("traces") / "small.trace"
    out = io.StringIO()
    code = main(
        [
            "generate",
            "--kind",
            "lan",
            "--duration",
            "600",
            "--clients",
            "4",
            "--seed",
            "3",
            "-o",
            str(path),
        ],
        out=out,
    )
    assert code == 0
    return path


class TestGenerate:
    def test_generate_to_stdout(self):
        out = io.StringIO()
        code = main(
            ["generate", "--kind", "www", "--duration", "300", "--seed", "1", "-o", "-"],
            out=out,
        )
        assert code == 0
        lines = out.getvalue().strip().splitlines()
        assert len(lines) > 10
        assert ">" in lines[-1]

    def test_generate_to_file(self, small_trace_file):
        text = small_trace_file.read_text()
        assert "udp" in text or "tcp" in text

    def test_deterministic(self):
        a, b = io.StringIO(), io.StringIO()
        main(["generate", "--duration", "120", "--clients", "2", "--seed", "9", "-o", "-"], out=a)
        main(["generate", "--duration", "120", "--clients", "2", "--seed", "9", "-o", "-"], out=b)
        assert a.getvalue() == b.getvalue()


class TestAnalyze:
    def test_analyze_file(self, small_trace_file):
        out = io.StringIO()
        code = main(["analyze", str(small_trace_file), "--threshold", "600"], out=out)
        assert code == 0
        text = out.getvalue()
        assert "flows" in text
        assert "flow size CDF" in text

    def test_analyze_stdin(self, small_trace_file):
        out = io.StringIO()
        stdin = io.StringIO(small_trace_file.read_text())
        code = main(["analyze", "-"], out=out, stdin=stdin)
        assert code == 0
        assert "flows" in out.getvalue()


class TestSweep:
    def test_sweep(self, small_trace_file):
        out = io.StringIO()
        code = main(
            ["sweep", str(small_trace_file), "--thresholds", "300,600"], out=out
        )
        assert code == 0
        text = out.getvalue()
        assert "300" in text and "600" in text
        assert "repeated" in text


class TestCacheSim:
    def test_cachesim_send(self, small_trace_file):
        out = io.StringIO()
        code = main(
            [
                "cachesim",
                str(small_trace_file),
                "--host",
                "10.1.0.250",
                "--sizes",
                "2,32",
            ],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "TFKC" in text and "miss rate" in text

    def test_cachesim_receive(self, small_trace_file):
        out = io.StringIO()
        code = main(
            [
                "cachesim",
                str(small_trace_file),
                "--host",
                "10.1.0.250",
                "--side",
                "receive",
            ],
            out=out,
        )
        assert code == 0
        assert "RFKC" in out.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_rejects_unknown_kind(self):
        with pytest.raises(SystemExit):
            main(["generate", "--kind", "datacenter"])
