"""Heavy-tailed workload family: CDF sampling, on/off arrivals, flash
crowds, and the structural properties the sweep gates depend on."""

import random

import pytest

from repro.traces.analysis import FlowAnalysis
from repro.traces.heavytail import (
    CDF_PRESETS,
    CdfSampledWorkload,
    FlashCrowd,
    OnOffArrivals,
    PiecewiseCdf,
)


class TestPiecewiseCdf:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            PiecewiseCdf([])

    def test_rejects_non_increasing_probabilities(self):
        with pytest.raises(ValueError, match="increase"):
            PiecewiseCdf([(0.5, 100), (0.5, 200), (1.0, 300)])

    def test_rejects_decreasing_sizes(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            PiecewiseCdf([(0.5, 200), (1.0, 100)])

    def test_rejects_cdf_not_ending_at_one(self):
        with pytest.raises(ValueError, match="1.0"):
            PiecewiseCdf([(0.5, 100), (0.9, 200)])

    def test_samples_stay_within_support(self):
        cdf = PiecewiseCdf([(0.5, 1000), (1.0, 9000)], min_size=100)
        rng = random.Random(0)
        sizes = [cdf.sample(rng) for _ in range(2000)]
        assert all(100 <= s <= 9000 for s in sizes)
        # Both segments get hit.
        assert any(s < 1000 for s in sizes) and any(s > 1000 for s in sizes)

    def test_empirical_mean_matches_analytic(self):
        cdf = PiecewiseCdf([(0.5, 1000), (1.0, 9000)], min_size=100)
        rng = random.Random(1)
        empirical = sum(cdf.sample(rng) for _ in range(20000)) / 20000
        assert empirical == pytest.approx(cdf.mean(), rel=0.05)

    def test_presets_are_heavy_tailed(self):
        for name, cdf in CDF_PRESETS.items():
            rng = random.Random(2)
            sizes = sorted(cdf.sample(rng) for _ in range(5000))
            median = sizes[len(sizes) // 2]
            p99 = sizes[int(len(sizes) * 0.99)]
            # The defining shape: the tail dwarfs the typical flow.
            assert p99 > 50 * median, name

    def test_data_mining_tail_heavier_than_web_search(self):
        assert CDF_PRESETS["data-mining"].mean() > CDF_PRESETS["web-search"].mean()


class TestArrivalProcesses:
    def test_onoff_validation(self):
        with pytest.raises(ValueError):
            OnOffArrivals(rate=0.0)
        with pytest.raises(ValueError):
            OnOffArrivals(rate=1.0, on_mean=0.0)

    def test_flash_crowd_validation(self):
        with pytest.raises(ValueError):
            FlashCrowd(start=-1.0, duration=10.0, multiplier=2.0)
        with pytest.raises(ValueError):
            FlashCrowd(start=0.0, duration=0.0, multiplier=2.0)
        with pytest.raises(ValueError):
            FlashCrowd(start=0.0, duration=10.0, multiplier=0.5)

    def test_flash_crowd_factor_window(self):
        crowd = FlashCrowd(start=100.0, duration=50.0, multiplier=8.0)
        assert crowd.factor(99.9) == 1.0
        assert crowd.factor(100.0) == 8.0
        assert crowd.factor(149.9) == 8.0
        assert crowd.factor(150.0) == 1.0


class TestCdfSampledWorkload:
    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError, match="unknown CDF preset"):
            CdfSampledWorkload(cdf="no-such-cdf")

    def test_generate_is_deterministic_and_idempotent(self):
        workload = CdfSampledWorkload(duration=120.0, clients=4, seed=5)
        first = workload.generate()
        second = workload.generate()  # same instance, fresh RNG inside
        rebuilt = CdfSampledWorkload(duration=120.0, clients=4, seed=5).generate()
        assert list(first) == list(second) == list(rebuilt)

    def test_different_seeds_differ(self):
        a = CdfSampledWorkload(duration=120.0, clients=4, seed=5).generate()
        b = CdfSampledWorkload(duration=120.0, clients=4, seed=6).generate()
        assert list(a) != list(b)

    def test_persistent_five_tuples(self):
        # Each client keeps one stable conversation: exactly two
        # 5-tuples (request + response direction) per client, so
        # THRESHOLD -- not port churn -- decides the flow count.
        clients = 6
        trace = CdfSampledWorkload(
            duration=200.0, clients=clients, seed=0
        ).generate()
        tuples = {r.five_tuple for r in trace}
        assert len(tuples) <= 2 * clients

    def test_sizes_respect_cap_and_pacing(self):
        cap = 8192
        workload = CdfSampledWorkload(
            duration=200.0, clients=4, seed=1, size_cap=cap, mss=1460
        )
        trace = workload.generate()
        assert all(r.size <= 1460 for r in trace)
        assert all(0 <= r.time < 200.0 for r in trace)
        times = [r.time for r in trace]
        assert times == sorted(times)

    def test_off_gaps_make_threshold_matter(self):
        trace = CdfSampledWorkload(
            duration=600.0,
            clients=8,
            seed=3,
            arrivals=OnOffArrivals(rate=0.5, on_mean=20.0, off_mean=120.0),
            size_cap=65_536,
        ).generate()
        short = FlowAnalysis.from_trace(trace, threshold=15.0).total_flows
        long = FlowAnalysis.from_trace(trace, threshold=600.0).total_flows
        assert short > long

    def test_flash_crowd_concentrates_arrivals(self):
        duration = 600.0
        crowd = FlashCrowd(start=200.0, duration=100.0, multiplier=10.0)
        trace = CdfSampledWorkload(
            duration=duration,
            clients=16,
            seed=4,
            arrivals=OnOffArrivals(rate=0.05, on_mean=180.0, off_mean=60.0),
            flash_crowd=crowd,
            size_cap=65_536,
        ).generate()
        requests = [r.time for r in trace if r.five_tuple.dport == 80]
        inside = sum(1 for t in requests if 200.0 <= t < 300.0)
        before = sum(1 for t in requests if 100.0 <= t < 200.0)
        # 10x the rate over an equal-length window: the spike must be
        # unmistakable even under Poisson noise.
        assert inside > 3 * max(1, before)
