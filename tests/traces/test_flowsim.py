"""Flow simulator tests: exact tracking, table effects, cache replay."""

import pytest

from repro.crypto.crc import ModuloHash
from repro.netsim.addresses import FiveTuple, IPAddress
from repro.traces.flowsim import CacheSimulator, ExactFlowSimulator, TableFlowSimulator
from repro.traces.records import PacketRecord, Trace


def rec(t, sport=1000, dport=53, size=100, saddr="10.0.0.1", daddr="10.0.0.2"):
    return PacketRecord(
        time=t,
        five_tuple=FiveTuple(
            proto=17,
            saddr=IPAddress(saddr),
            sport=sport,
            daddr=IPAddress(daddr),
            dport=dport,
        ),
        size=size,
    )


class TestExactFlowSimulator:
    def test_single_flow(self):
        trace = Trace([rec(0.0), rec(1.0), rec(2.0)])
        flows = ExactFlowSimulator(threshold=600.0).run(trace)
        assert len(flows) == 1
        flow = flows[0]
        assert flow.packets == 3
        assert flow.octets == 300
        assert flow.duration == 2.0
        assert flow.incarnation == 0

    def test_gap_splits_flow(self):
        trace = Trace([rec(0.0), rec(700.0)])
        flows = ExactFlowSimulator(threshold=600.0).run(trace)
        assert len(flows) == 2
        assert flows[1].incarnation == 1  # a repeated flow

    def test_gap_within_threshold_kept(self):
        trace = Trace([rec(0.0), rec(599.0)])
        flows = ExactFlowSimulator(threshold=600.0).run(trace)
        assert len(flows) == 1

    def test_distinct_tuples_distinct_flows(self):
        trace = Trace([rec(0.0, sport=1), rec(0.1, sport=2)])
        flows = ExactFlowSimulator().run(trace)
        assert len(flows) == 2
        assert flows[0].sfl != flows[1].sfl

    def test_directionality(self):
        # a->b and b->a are different flows (unidirectional).
        trace = Trace(
            [rec(0.0, saddr="10.0.0.1", daddr="10.0.0.2"),
             rec(0.1, saddr="10.0.0.2", daddr="10.0.0.1")]
        )
        flows = ExactFlowSimulator().run(trace)
        assert len(flows) == 2

    def test_log_sorted_by_start(self):
        trace = Trace([rec(0.0, sport=1), rec(5.0, sport=2), rec(6.0, sport=1)])
        flows = ExactFlowSimulator().run(trace)
        starts = [f.start for f in flows]
        assert starts == sorted(starts)

    def test_empty_trace(self):
        assert ExactFlowSimulator().run(Trace()) == []

    def test_bad_threshold(self):
        with pytest.raises(ValueError):
            ExactFlowSimulator(threshold=0)


class TestTableFlowSimulator:
    def test_counters(self):
        trace = Trace([rec(0.0), rec(1.0), rec(2.0, sport=2)])
        sim = TableFlowSimulator(threshold=600.0, fst_size=64)
        stats = sim.run(trace)
        assert stats["lookups"] == 3
        assert stats["new_flows"] == 2
        assert stats["matches"] == 1

    def test_small_table_collisions(self):
        # Many conversations into a 2-slot table: collisions abound.
        records = [rec(float(i), sport=1000 + i) for i in range(50)]
        trace = Trace(records)
        stats = TableFlowSimulator(fst_size=2).run(trace)
        assert stats["collision_evictions"] > 0

    def test_large_table_matches_exact(self):
        records = [rec(float(i) * 0.5, sport=1000 + (i % 5)) for i in range(50)]
        trace = Trace(records)
        exact = ExactFlowSimulator(threshold=600.0).run(trace)
        stats = TableFlowSimulator(threshold=600.0, fst_size=4096).run(trace)
        assert stats["new_flows"] == len(exact)

    def test_custom_hash(self):
        trace = Trace([rec(0.0)])
        sim = TableFlowSimulator(fst_size=8, index_hash=ModuloHash())
        assert sim.run(trace)["new_flows"] == 1


class TestCacheSimulator:
    def _trace(self, conversations=10, packets_each=20):
        records = []
        for c in range(conversations):
            for p in range(packets_each):
                records.append(rec(c * 0.1 + p * 1.0, sport=1000 + c))
        trace = Trace(records)
        trace.sort()
        return trace

    def test_send_side_hits_dominate_with_big_cache(self):
        trace = self._trace()
        stats = CacheSimulator(256).send_side(trace, IPAddress("10.0.0.1"))
        assert stats.lookups == 200
        assert stats.misses == 10  # one cold miss per flow
        assert stats.cold_misses == 10

    def test_tiny_cache_thrashes(self):
        trace = self._trace()
        small = CacheSimulator(2).send_side(trace, IPAddress("10.0.0.1"))
        big = CacheSimulator(256).send_side(trace, IPAddress("10.0.0.1"))
        assert small.miss_rate > big.miss_rate

    def test_receive_side_viewpoint(self):
        trace = self._trace()
        stats = CacheSimulator(256).receive_side(trace, IPAddress("10.0.0.2"))
        assert stats.lookups == 200  # everything is destined to .2

    def test_other_viewpoint_sees_nothing(self):
        trace = self._trace()
        stats = CacheSimulator(64).send_side(trace, IPAddress("10.0.0.99"))
        assert stats.lookups == 0

    def test_miss_rate_monotone_in_cache_size(self):
        trace = self._trace(conversations=30, packets_each=10)
        rates = [
            CacheSimulator(size).send_side(trace, IPAddress("10.0.0.1")).miss_rate
            for size in (2, 8, 32, 128)
        ]
        assert all(rates[i] >= rates[i + 1] - 1e-9 for i in range(len(rates) - 1))
