"""The THRESHOLD / cache-geometry sweep harness and its gates."""

import copy
import json

import pytest

from repro.traces.cli import main as traces_main
from repro.traces.sweep import (
    SweepError,
    check_gates,
    run_sweep,
    sweep_spec,
)


@pytest.fixture(scope="module")
def small_report():
    # The full smoke profile runs in CI via `make traces-smoke`; tests
    # restrict to two workloads (the negative control + the bursty
    # heavy-tail) to stay fast while touching every gate kind.
    spec = sweep_spec(
        profile="smoke", seed=0, workloads=("onoff-bursty", "synthetic")
    )
    return run_sweep(spec)


class TestSpecValidation:
    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError, match="unknown profile"):
            sweep_spec(profile="galactic")

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError, match="unknown workload"):
            sweep_spec(workloads=("no-such-workload",))

    def test_unsweepable_workload_rejected(self):
        with pytest.raises(ValueError, match="no sweep viewpoint"):
            sweep_spec(workloads=("mix",))

    def test_default_grid_excludes_unsweepable(self):
        spec = sweep_spec(profile="smoke")
        assert "mix" not in spec.workloads
        assert "smoke" not in spec.workloads
        assert "synthetic" in spec.workloads


class TestReport:
    def test_all_gates_pass(self, small_report):
        assert small_report["ok"]
        assert all(gate["ok"] for gate in small_report["gates"])
        check_gates(small_report)  # must not raise

    def test_gate_kinds_present(self, small_report):
        kinds = {gate["gate"] for gate in small_report["gates"]}
        assert kinds == {
            "threshold_monotone",
            "threshold_reduces_setups",
            "threshold_uniform_control",
            "cache_miss_monotone",
            "crypto_clean_replay",
        }

    def test_bursty_trace_is_threshold_sensitive(self, small_report):
        flows = [
            row["flows"]
            for row in small_report["traces"]["onoff-bursty"]["threshold_sweep"]
        ]
        assert flows[-1] < flows[0]

    def test_uniform_control_does_not_move(self, small_report):
        flows = [
            row["flows"]
            for row in small_report["traces"]["synthetic"]["threshold_sweep"]
        ]
        assert len(set(flows)) == 1

    def test_report_is_byte_stable(self, small_report):
        again = run_sweep(
            sweep_spec(
                profile="smoke", seed=0, workloads=("onoff-bursty", "synthetic")
            )
        )
        assert json.dumps(small_report, sort_keys=True) == json.dumps(
            again, sort_keys=True
        )

    def test_check_gates_raises_on_tampered_report(self, small_report):
        broken = copy.deepcopy(small_report)
        broken["gates"][0]["ok"] = False
        broken["gates"][0]["detail"] = "tampered"
        with pytest.raises(SweepError, match="tampered"):
            check_gates(broken)


class TestCliHarnessMode:
    def test_harness_mode_writes_gated_report(self, tmp_path, capsys):
        out = tmp_path / "sweep.json"
        code = traces_main(
            [
                "sweep",
                "--profile",
                "smoke",
                "--workloads",
                "synthetic",
                "--seed",
                "0",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        report = json.loads(out.read_text())
        assert report["ok"]
        assert "[ok  ]" in capsys.readouterr().err

    def test_harness_mode_rejects_unknown_workload(self, capsys):
        code = traces_main(
            ["sweep", "--profile", "smoke", "--workloads", "bogus"]
        )
        assert code == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_file_mode_without_trace_is_usage_error(self, capsys):
        assert traces_main(["sweep"]) == 2
