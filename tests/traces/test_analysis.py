"""Flow analysis tests: the statistics behind Figures 9-14."""

import pytest

from repro.netsim.addresses import FiveTuple, IPAddress
from repro.traces.analysis import ActiveFlowSeries, FlowAnalysis, cdf, percentile
from repro.traces.flowsim import FlowRecord
from repro.traces.records import PacketRecord, Trace


def rec(t, sport=1000, size=100):
    return PacketRecord(
        time=t,
        five_tuple=FiveTuple(
            proto=17,
            saddr=IPAddress("10.0.0.1"),
            sport=sport,
            daddr=IPAddress("10.0.0.2"),
            dport=53,
        ),
        size=size,
    )


class TestHelpers:
    def test_cdf(self):
        points = cdf([1, 2, 3, 4], [0, 2, 5])
        assert points == [(0, 0.0), (2, 0.5), (5, 1.0)]

    def test_cdf_empty(self):
        assert cdf([], [1]) == [(1, 0.0)]

    def test_percentile(self):
        data = list(range(100))
        assert percentile(data, 0.5) == 50
        assert percentile(data, 0.0) == 0
        assert percentile(data, 1.0) == 99

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)
        with pytest.raises(ValueError):
            percentile([1], 1.5)


class TestFlowAnalysis:
    def _analysis(self):
        # Two flows on one tuple (split by a gap), one on another.
        trace = Trace(
            [rec(0.0), rec(10.0), rec(700.0), rec(0.5, sport=2), rec(1.0, sport=2)]
        )
        trace.sort()
        return FlowAnalysis.from_trace(trace, threshold=600.0)

    def test_flow_counts(self):
        analysis = self._analysis()
        assert analysis.total_flows == 3
        assert analysis.repeated_flows == 1
        assert analysis.unique_conversations == 2

    def test_size_cdfs(self):
        analysis = self._analysis()
        packets_cdf = analysis.size_packets_cdf([1, 2, 10])
        assert packets_cdf[-1][1] == 1.0
        bytes_cdf = analysis.size_bytes_cdf([100, 500])
        assert 0.0 <= bytes_cdf[0][1] <= 1.0

    def test_duration_cdf(self):
        analysis = self._analysis()
        duration_cdf = analysis.duration_cdf([0.0, 5.0, 100.0])
        assert duration_cdf[-1][1] == 1.0

    def test_summary_keys(self):
        summary = self._analysis().summary()
        for key in ("flows", "repeated_flows", "median_packets", "median_duration"):
            assert key in summary

    def test_empty_summary(self):
        analysis = FlowAnalysis([], threshold=600.0)
        assert analysis.summary() == {"flows": 0}
        assert analysis.bytes_carried_by_top_flows(0.1) == 0.0


class TestActiveFlowSeries:
    def test_counts_respect_threshold(self):
        # One flow [0, 10]; active until 10 + threshold.
        flows = [
            FlowRecord(
                five_tuple=rec(0.0).five_tuple,
                sfl=0,
                start=0.0,
                end=10.0,
                packets=2,
                octets=200,
                incarnation=0,
            )
        ]
        analysis = FlowAnalysis(flows, threshold=100.0)
        series = analysis.active_flow_series(sample_interval=5.0)
        by_time = dict(zip(series.times, series.counts))
        assert by_time[5.0] == 1
        assert by_time[10.0] == 1  # still within threshold of last packet

    def test_overlapping_flows_counted(self):
        tuples = rec(0.0).five_tuple
        flows = [
            FlowRecord(tuples, 0, 0.0, 50.0, 5, 500, 0),
            FlowRecord(tuples, 1, 10.0, 60.0, 5, 500, 1),
        ]
        analysis = FlowAnalysis(flows, threshold=10.0)
        series = analysis.active_flow_series(sample_interval=10.0)
        by_time = dict(zip(series.times, series.counts))
        assert by_time[20.0] == 2

    def test_stats(self):
        series = ActiveFlowSeries(600.0, [0.0, 60.0], [3, 5])
        assert series.peak == 5
        assert series.mean == 4.0

    def test_empty(self):
        series = FlowAnalysis([], 600.0).active_flow_series()
        assert series.times == [] and series.peak == 0 and series.mean == 0.0

    def test_threshold_sweep_monotone_active(self):
        # More THRESHOLD => flows stay active longer => counts rise (or
        # at least never fall) at every sample, on a fixed flow log.
        trace = Trace([rec(float(i) * 30.0, sport=1000 + i) for i in range(20)])
        means = []
        for threshold in (60.0, 300.0, 900.0):
            analysis = FlowAnalysis.from_trace(trace, threshold=threshold)
            means.append(analysis.active_flow_series(30.0).mean)
        assert means == sorted(means)
