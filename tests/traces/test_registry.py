"""The workload registry: one catalogue, every consumer derives from it.

The determinism contract (ISSUE 10 acceptance criteria): every
registered workload is byte-stable for a fixed seed, ``generate()`` is
idempotent, and a workload rebuilt from ``(name, seed, duration)`` in a
fresh object -- which is exactly what a pickled spawn ``WorkerSpec``
does in a fresh interpreter -- produces the identical stream.
"""

import pickle

import pytest

from repro.load.worker import WorkerSpec, run_worker
from repro.traces.registry import (
    WORKLOADS,
    build_workload,
    register_workload,
    workload_names,
    workload_summaries,
)

#: Short generation horizon so the full catalogue stays test-sized.
_DURATION = 90.0


class TestCatalogue:
    def test_expected_workloads_registered(self):
        assert set(workload_names()) >= {
            "smoke",
            "synthetic",
            "campus-lan",
            "www-server",
            "mix",
            "cdf-web-search",
            "cdf-data-mining",
            "onoff-bursty",
            "flash-crowd",
        }

    def test_names_sorted_and_summarized(self):
        names = workload_names()
        assert names == sorted(names)
        summaries = workload_summaries()
        assert list(summaries) == names
        assert all(summaries[name] for name in names)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_workload("smoke", WORKLOADS["smoke"])

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError, match="unknown workload"):
            build_workload("no-such-workload", seed=0)

    def test_datagram_cap(self):
        trace = build_workload("smoke", seed=0, datagrams=100)
        assert len(trace) == 100


class TestEveryWorkloadDeterministic:
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_byte_stable_for_fixed_seed(self, name):
        a = build_workload(name, seed=11, duration=_DURATION)
        b = build_workload(name, seed=11, duration=_DURATION)
        assert len(a) > 0
        assert list(a) == list(b)

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_generate_is_idempotent(self, name):
        # One workload object, two generate() calls: the RNG and any
        # allocator state must be rebuilt inside generate(), or a
        # replayed WorkerSpec would see a different stream.
        workload = WORKLOADS[name](7, _DURATION)
        assert list(workload.generate()) == list(workload.generate())

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_seed_actually_steers(self, name):
        a = build_workload(name, seed=0, duration=_DURATION)
        b = build_workload(name, seed=1, duration=_DURATION)
        assert list(a) != list(b)


class TestSpawnSafety:
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_pickled_spec_rebuilds_identical_stream(self, name):
        # The spawn start method ships a WorkerSpec, not a workload:
        # the child regenerates from (name, seed, duration).  Pickle
        # round-trip the spec and replay both -- identical results.
        spec = WorkerSpec(
            worker=0,
            workers=1,
            workload=name,
            seed=3,
            duration=_DURATION,
            datagrams=120,
        )
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert run_worker(clone) == run_worker(spec)
