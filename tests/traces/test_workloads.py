"""Workload generator tests: determinism and the structural properties
Figures 9-14 depend on."""

import pytest

from repro.netsim.ipv4 import IPProtocol
from repro.traces.analysis import FlowAnalysis
from repro.traces.workloads import CampusLanWorkload, WorkloadMix, WwwServerWorkload


@pytest.fixture(scope="module")
def lan_trace():
    return CampusLanWorkload(duration=1800.0, clients=8, seed=7).generate()


@pytest.fixture(scope="module")
def www_trace():
    return WwwServerWorkload(duration=1800.0, seed=8).generate()


class TestDeterminism:
    def test_same_seed_same_trace(self):
        a = CampusLanWorkload(duration=300.0, clients=3, seed=1).generate()
        b = CampusLanWorkload(duration=300.0, clients=3, seed=1).generate()
        assert len(a) == len(b)
        assert all(x == y for x, y in zip(a, b))

    def test_different_seed_different_trace(self):
        a = CampusLanWorkload(duration=300.0, clients=3, seed=1).generate()
        b = CampusLanWorkload(duration=300.0, clients=3, seed=2).generate()
        assert any(x != y for x, y in zip(a, b)) or len(a) != len(b)


class TestLanStructure:
    def test_nonempty_and_ordered(self, lan_trace):
        assert len(lan_trace) > 1000
        times = [r.time for r in lan_trace]
        assert times == sorted(times)

    def test_within_duration(self, lan_trace):
        assert all(0 <= r.time < 1800.0 for r in lan_trace)

    def test_mixed_protocols(self, lan_trace):
        protos = {r.five_tuple.proto for r in lan_trace}
        assert IPProtocol.UDP in protos and IPProtocol.TCP in protos

    def test_known_services_present(self, lan_trace):
        ports = {r.five_tuple.dport for r in lan_trace}
        assert 2049 in ports  # NFS
        assert 53 in ports  # DNS

    def test_majority_of_flows_are_short(self, lan_trace):
        analysis = FlowAnalysis.from_trace(lan_trace, threshold=600.0)
        summary = analysis.summary()
        # "the majority of flows are short, consist of few packets and
        # transfer only a small amount of data" (Figure 9): the median
        # flow is orders of magnitude below the heavy tail.
        assert summary["median_packets"] <= 20
        assert summary["median_bytes"] <= 2000
        assert summary["median_packets"] * 20 < summary["p90_packets"]

    def test_few_heavy_flows_carry_bulk(self, lan_trace):
        analysis = FlowAnalysis.from_trace(lan_trace, threshold=600.0)
        # The top 10% of flows carry the overwhelming majority of bytes.
        assert analysis.bytes_carried_by_top_flows(0.10) > 0.8

    def test_repeated_flows_exist_at_small_threshold(self, lan_trace):
        analysis = FlowAnalysis.from_trace(lan_trace, threshold=300.0)
        assert analysis.repeated_flows > 0


class TestWwwStructure:
    def test_hit_rate_in_range(self, www_trace):
        # ~10,000 hits/day = ~0.116/s: in 1800 s expect roughly 200 hits.
        requests = [
            r for r in www_trace
            if r.five_tuple.dport == 80 and r.size < 600
        ]
        assert 100 <= len(requests) <= 400

    def test_responses_dominate_bytes(self, www_trace):
        to_server = sum(r.size for r in www_trace if r.five_tuple.dport == 80)
        from_server = sum(r.size for r in www_trace if r.five_tuple.sport == 80)
        assert from_server > 5 * to_server

    def test_many_distinct_clients(self, www_trace):
        clients = {r.five_tuple.saddr for r in www_trace if r.five_tuple.dport == 80}
        assert len(clients) > 20


class TestMix:
    def test_merged_trace_ordered(self):
        mix = WorkloadMix(
            CampusLanWorkload(duration=300.0, clients=2, seed=3),
            WwwServerWorkload(duration=300.0, seed=4),
        )
        trace = mix.generate()
        times = [r.time for r in trace]
        assert times == sorted(times)
        assert len(trace) > 0

    def test_empty_mix_rejected(self):
        with pytest.raises(ValueError):
            WorkloadMix()

    def test_components_keep_independent_streams(self):
        # Each component owns its seed and RNG: adding another workload
        # to the mix must not perturb the first component's records --
        # they come out of the merged trace byte-identical.
        alone = list(
            CampusLanWorkload(duration=300.0, clients=2, seed=3).generate()
        )
        mixed = WorkloadMix(
            CampusLanWorkload(duration=300.0, clients=2, seed=3),
            WwwServerWorkload(duration=300.0, seed=9),
        ).generate()
        lan_tuples = {r.five_tuple for r in alone}
        from_mix = [r for r in mixed if r.five_tuple in lan_tuples]
        assert from_mix == alone
        assert len(mixed) > len(alone)

    def test_mix_generate_is_idempotent(self):
        mix = WorkloadMix(
            CampusLanWorkload(duration=300.0, clients=2, seed=3),
            WwwServerWorkload(duration=300.0, seed=4),
        )
        assert list(mix.generate()) == list(mix.generate())
