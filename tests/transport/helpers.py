"""Shared helpers for the transport suite: topologies and fault wrappers."""

from __future__ import annotations

from typing import List, Optional

from repro.netsim.network import Network
from repro.transport.base import Transport
from repro.transport.netsim import NetsimTransport, netsim_transport_pair


def two_host_pair(seed: int = 0, conditions=None, recv_queue: int = 1024):
    """A connected NetsimTransport pair over a fresh two-host segment."""
    net = Network(seed=seed)
    net.add_segment("lan", "10.50.0.0", conditions=conditions)
    host_a = net.add_host("a", segment="lan")
    host_b = net.add_host("b", segment="lan")
    t_a, t_b = netsim_transport_pair(host_a, host_b, recv_queue=recv_queue)
    return net, t_a, t_b


class DropSends(Transport):
    """A fault-injection wrapper: deterministically drops chosen sends.

    ``drop_first`` swallows the first N sends (the zero-message-keying
    first-contact hazard: the opening datagram vanishes and nothing but
    silence tells the sender).  Everything else delegates to the wrapped
    transport, so the wrapper composes with either substrate.
    """

    name = "drop-sends"

    def __init__(self, inner: Transport, drop_first: int = 0) -> None:
        super().__init__()
        self.inner = inner
        self.remaining = drop_first
        self.dropped: List[bytes] = []

    def now(self) -> float:
        return self.inner.now()

    async def send(self, payload: bytes) -> None:
        if self.remaining > 0:
            self.remaining -= 1
            self.dropped.append(payload)
            self.stats.datagrams_sent += 1
            return
        await self.inner.send(payload)
        self.stats.datagrams_sent += 1

    async def recv(self, timeout: Optional[float] = None) -> Optional[bytes]:
        return await self.inner.recv(timeout)

    async def close(self) -> None:
        await self.inner.close()

    async def sleep(self, seconds: float) -> None:
        await self.inner.sleep(seconds)

    def drain(self) -> List[bytes]:
        return self.inner.drain()
