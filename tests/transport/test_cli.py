"""``python -m repro.transport``: flags, reports, exit codes."""

import json

import pytest

from repro.transport.cli import main


class TestDemoCli:
    def test_netsim_demo_writes_byte_stable_report(self, tmp_path, capsys):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        assert main(["--demo", "netsim-echo", "--datagrams", "12",
                     "--out", str(a)]) == 0
        assert main(["--demo", "netsim-echo", "--datagrams", "12",
                     "--out", str(b)]) == 0
        assert a.read_bytes() == b.read_bytes()

    def test_udp_demo_round_trips(self, tmp_path, capsys):
        out = tmp_path / "udp.json"
        assert main(["--demo", "udp-echo", "--datagrams", "5",
                     "--out", str(out)]) == 0
        report = json.loads(out.read_text())
        assert report["substrate"] == "udp"
        assert report["echoed"] == 5
        summary = capsys.readouterr().err
        assert "5/5 echoed" in summary

    def test_report_to_stdout_by_default(self, capsys):
        assert main(["--demo", "netsim-echo", "--datagrams", "3"]) == 0
        captured = capsys.readouterr()
        report = json.loads(captured.out)
        assert report["datagrams"] == 3
        assert json.dumps(report, indent=2, sort_keys=True) + "\n" == captured.out

    def test_bad_demo_name_is_usage_error(self, capsys):
        assert main(["--demo", "smoke-signals"]) == 2

    def test_report_keys_are_ledger_only(self, capsys):
        # No timing, no addresses, no PIDs: anything nondeterministic in
        # the report would break the transport-smoke byte comparison.
        assert main(["--demo", "netsim-echo", "--datagrams", "2"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert set(report) == {
            "workload", "substrate", "datagrams", "payload_size", "seed",
            "echoed", "exchanges_retried", "client", "server",
        }
