"""Cross-substrate differentials: the ISSUE 8 acceptance criteria.

The same workload over the netsim adapter and over real UDP loopback
must produce *identical* accepted/rejected ledgers in a lossless run;
the load engine must produce byte-identical reports whether its wire
hop is an in-memory hand-off or a NetsimTransport relay.
"""

import asyncio

import pytest

from repro.load.worker import WorkerSpec, run_worker
from repro.transport.hop import DirectHop, NetsimHop, build_hop
from repro.transport.runner import render_report, run_echo


def _echo_report(substrate, **kwargs):
    return asyncio.run(run_echo(substrate=substrate, **kwargs))


class TestEchoLedgerEquality:
    def test_netsim_and_udp_ledgers_identical(self):
        # THE acceptance criterion: same workload, two substrates, one
        # ledger.  Only the substrate label may differ.
        netsim = _echo_report("netsim", datagrams=25, seed=0)
        udp = _echo_report("udp", datagrams=25, seed=0)
        assert netsim.pop("substrate") == "netsim"
        assert udp.pop("substrate") == "udp"
        assert netsim == udp

    def test_ledger_equality_holds_across_seeds(self):
        for seed in (1, 2):
            netsim = _echo_report("netsim", datagrams=8, seed=seed)
            udp = _echo_report("udp", datagrams=8, seed=seed)
            netsim.pop("substrate")
            udp.pop("substrate")
            assert netsim == udp, f"seed {seed} diverged"

    def test_lossless_run_accepts_everything(self):
        report = _echo_report("netsim", datagrams=25, seed=0)
        assert report["echoed"] == 25
        assert report["exchanges_retried"] == 0
        for side in ("client", "server"):
            assert report[side]["accepted"] == 25
            assert all(v == 0 for v in report[side]["rejected"].values())
            assert report[side]["transport"]["queue_drops"] == 0

    def test_rendered_report_is_byte_stable(self):
        one = render_report(_echo_report("udp", datagrams=10, seed=0))
        two = render_report(_echo_report("udp", datagrams=10, seed=0))
        assert one == two

    def test_unknown_substrate_rejected(self):
        with pytest.raises(ValueError):
            asyncio.run(run_echo(substrate="carrier-pigeon"))


class TestLoadHopEquality:
    def _result(self, transport, **overrides):
        spec = WorkerSpec(
            worker=0,
            workers=1,
            workload="smoke",
            seed=0,
            transport=transport,
            **overrides,
        )
        return run_worker(spec)

    def test_direct_and_netsim_hops_merge_identically(self):
        # Full result equality: counters, snapshot, rejected map -- the
        # wire hop must be invisible in every report byte.
        assert self._result("direct") == self._result("netsim")

    def test_hop_equality_with_encryption(self):
        assert self._result("direct", secret=True) == self._result(
            "netsim", secret=True
        )

    def test_hop_equality_across_shards(self):
        for worker in (0, 1):
            direct = run_worker(
                WorkerSpec(worker=worker, workers=2, workload="smoke")
            )
            netsim = run_worker(
                WorkerSpec(
                    worker=worker, workers=2, workload="smoke",
                    transport="netsim",
                )
            )
            assert direct == netsim, f"shard {worker} diverged"


class TestHopPlumbing:
    def test_build_hop_resolves_names(self):
        assert isinstance(build_hop("direct"), DirectHop)
        assert isinstance(build_hop("netsim"), NetsimHop)
        with pytest.raises(ValueError):
            build_hop("tin-cans")

    def test_direct_hop_is_identity(self):
        batch = [b"a", b"b", b"c"]
        assert DirectHop().relay(batch) == batch

    def test_netsim_hop_preserves_order_losslessly(self):
        hop = NetsimHop(seed=0)
        batch = [b"%04d" % i for i in range(500)]
        assert hop.relay(batch) == batch
        stats = hop.stats()
        assert stats["tx"]["datagrams_sent"] == 500
        assert stats["rx"]["queue_drops"] == 0

    def test_netsim_hop_carries_successive_batches(self):
        hop = NetsimHop(seed=0)
        assert hop.relay([b"one"]) == [b"one"]
        assert hop.relay([b"two", b"three"]) == [b"two", b"three"]
