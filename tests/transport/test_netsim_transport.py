"""The netsim adapter: virtual-time semantics and UdpSocket bit-identity."""

import asyncio

import pytest

from repro.netsim.network import Network
from repro.netsim.sockets import UdpSocket
from repro.transport import NetsimTransport, TransportClosedError
from repro.transport.netsim import netsim_transport_pair

from tests.transport.helpers import two_host_pair


class TestDatagramPath:
    def test_send_recv_roundtrip(self):
        net, t_a, t_b = two_host_pair()
        t_a.send_sync(b"hello")
        assert t_b.recv_sync(timeout=5.0) == b"hello"
        assert t_a.stats.datagrams_sent == 1
        assert t_b.stats.datagrams_received == 1

    def test_recv_advances_only_to_the_deadline(self):
        net, t_a, t_b = two_host_pair()
        assert t_b.recv_sync(timeout=3.0) is None
        assert net.sim.now == pytest.approx(3.0)

    def test_recv_stops_the_instant_a_datagram_lands(self):
        net, t_a, t_b = two_host_pair()
        net.sim.schedule_at(1.0, lambda: t_a.send_sync(b"later"))
        assert t_b.recv_sync(timeout=10.0) == b"later"
        # Virtual time stopped at delivery, not at the timeout.
        assert net.sim.now < 2.0

    def test_recv_zero_timeout_is_a_poll(self):
        net, t_a, t_b = two_host_pair()
        t_a.send_sync(b"queued")
        assert t_b.recv_sync(timeout=0) is None  # not yet delivered
        net.sim.run()
        assert t_b.recv_sync(timeout=0) == b"queued"
        assert net.sim.now == net.sim.now  # poll never advances time

    def test_recv_without_timeout_runs_to_quiescence(self):
        net, t_a, t_b = two_host_pair()
        assert t_b.recv_sync() is None  # event queue empties, no hang

    def test_bounded_queue_drops_and_counts(self):
        net, t_a, t_b = two_host_pair(recv_queue=2)
        for i in range(5):
            t_a.send_sync(b"%d" % i)
        net.sim.run()
        assert len(t_b.drain()) == 2
        assert t_b.stats.queue_drops == 3
        assert t_b.stats.datagrams_received == 2

    def test_send_after_close_raises(self):
        net, t_a, t_b = two_host_pair()
        t_a.close_sync()
        with pytest.raises(TransportClosedError):
            t_a.send_sync(b"nope")

    def test_close_releases_the_port(self):
        net = Network(seed=0)
        net.add_segment("lan", "10.50.0.0")
        host = net.add_host("a", segment="lan")
        t = NetsimTransport(host, local_port=4321)
        t.close_sync()
        # Rebind guarded by the port-reuse countermeasure: advance past it.
        net.sim.run(until=net.sim.now + 600.0)
        t2 = NetsimTransport(host, local_port=4321)
        assert t2.local_port == 4321

    def test_sleep_advances_virtual_time(self):
        net, t_a, t_b = two_host_pair()
        t_a.sleep_sync(7.5)
        assert net.sim.now == pytest.approx(7.5)

    def test_now_is_the_host_clock(self):
        net, t_a, t_b = two_host_pair()
        t_a.sleep_sync(2.0)
        assert t_a.now() == pytest.approx(net.hosts["a"].clock.now())


class TestAsyncSurface:
    def test_async_wrappers_complete_inline(self):
        # The inherited async surface never awaits, so one asyncio.run
        # drives the simulator exactly like the sync calls do.
        async def scenario():
            net, t_a, t_b = two_host_pair()
            await t_a.send(b"ping")
            got = await t_b.recv(timeout=5.0)
            await t_a.sleep(1.0)
            await t_a.close()
            return got, net.sim.now

        got, now = asyncio.run(scenario())
        assert got == b"ping"
        assert now > 0.0


class TestUdpSocketBitIdentity:
    """The adapter must be indistinguishable on the wire from the
    hand-wired UdpSocket it replaced (this is what let the resilience
    harness swap substrates without a single report byte changing)."""

    PAYLOADS = [b"alpha", b"bravo", b"charlie", b"x" * 900]

    def _run_sockets(self):
        net = Network(seed=42)
        net.add_segment("lan", "10.60.0.0")
        a = net.add_host("a", segment="lan")
        b = net.add_host("b", segment="lan")
        rx = UdpSocket(b, 4000)
        tx = UdpSocket(a)
        for i, p in enumerate(self.PAYLOADS):
            net.sim.schedule_at(i * 0.5, lambda p=p: tx.sendto(p, b.address, 4000))
        net.sim.run()
        return [payload for payload, _src, _port in rx.received], net.sim.now

    def _run_transports(self):
        net = Network(seed=42)
        net.add_segment("lan", "10.60.0.0")
        a = net.add_host("a", segment="lan")
        b = net.add_host("b", segment="lan")
        rx = NetsimTransport(b, local_port=4000)
        tx = NetsimTransport(a, remote=(b.address, 4000))
        for i, p in enumerate(self.PAYLOADS):
            net.sim.schedule_at(i * 0.5, lambda p=p: tx.send_sync(p))
        net.sim.run()
        return rx.drain(), net.sim.now

    def test_same_deliveries_same_virtual_time(self):
        socket_result = self._run_sockets()
        transport_result = self._run_transports()
        assert socket_result == transport_result

    def test_pair_helper_matches_manual_wiring(self):
        net = Network(seed=7)
        net.add_segment("lan", "10.61.0.0")
        a = net.add_host("a", segment="lan")
        b = net.add_host("b", segment="lan")
        t_a, t_b = netsim_transport_pair(a, b)
        t_a.send_sync(b"one way")
        t_b.send_sync(b"other way")
        net.sim.run()
        assert t_b.drain() == [b"one way"]
        assert t_a.drain() == [b"other way"]
