"""The real-socket backend: loopback pairs, loss, timeouts, shutdown.

Everything runs on 127.0.0.1 with ephemeral ports inside one event loop
per test (``asyncio.run`` from sync test functions -- the repo carries
no pytest-asyncio dependency).  Timeouts are kept tiny: a lossless
loopback exchange completes in well under a millisecond.
"""

import asyncio

import pytest

from repro.transport import (
    TransportClosedError,
    TransportError,
    UdpTransport,
    UdpTransportConfig,
)

from tests.transport.helpers import DropSends


async def _pair(config=None):
    """A connected loopback pair; only the client knows its peer."""
    server = await UdpTransport.create(config=config)
    client = await UdpTransport.create(
        remote=server.local_address, config=config
    )
    return client, server


class TestDatagramPath:
    def test_send_recv_roundtrip(self):
        async def scenario():
            client, server = await _pair()
            await client.send(b"over the kernel")
            got = await server.recv(timeout=2.0)
            await client.close()
            await server.close()
            return got, client.stats.datagrams_sent, server.stats.datagrams_received

        got, sent, received = asyncio.run(scenario())
        assert got == b"over the kernel"
        assert (sent, received) == (1, 1)

    def test_recv_timeout_returns_none(self):
        async def scenario():
            client, server = await _pair()
            got = await server.recv(timeout=0.05)
            await client.close()
            await server.close()
            return got

        assert asyncio.run(scenario()) is None

    def test_server_adopts_first_peer(self):
        # First contact needs no out-of-band address exchange: the
        # server learns where to reply from the first datagram.
        async def scenario():
            client, server = await _pair()
            assert server.remote is None
            await client.send(b"ping")
            await server.recv(timeout=2.0)
            await server.send(b"pong")
            got = await client.recv(timeout=2.0)
            await client.close()
            await server.close()
            return got

        assert asyncio.run(scenario()) == b"pong"

    def test_send_without_peer_raises(self):
        async def scenario():
            lonely = await UdpTransport.create()
            try:
                with pytest.raises(TransportError):
                    await lonely.send(b"to nowhere")
            finally:
                await lonely.close()

        asyncio.run(scenario())

    def test_bounded_queue_drops_and_counts(self):
        async def scenario():
            config = UdpTransportConfig(recv_queue=2)
            client, server = await _pair(config=config)
            for i in range(6):
                await client.send(b"%d" % i)
            # Let the loop deliver everything before reading.
            await asyncio.sleep(0.1)
            kept = server.drain()
            stats = server.stats
            await client.close()
            await server.close()
            return kept, stats

        kept, stats = asyncio.run(scenario())
        assert len(kept) == 2
        assert stats.datagrams_received == 2
        assert stats.queue_drops == 4

    def test_now_is_monotonic(self):
        async def scenario():
            t = await UdpTransport.create()
            t0 = t.now()
            await t.sleep(0.01)
            t1 = t.now()
            await t.close()
            return t0, t1

        t0, t1 = asyncio.run(scenario())
        assert t1 >= t0 + 0.005


class TestShutdown:
    def test_send_after_close_raises(self):
        async def scenario():
            client, server = await _pair()
            await client.close()
            with pytest.raises(TransportClosedError):
                await client.send(b"nope")
            await server.close()

        asyncio.run(scenario())

    def test_close_preserves_queued_datagrams(self):
        # Graceful shutdown: what already arrived stays readable.
        async def scenario():
            client, server = await _pair()
            await client.send(b"in flight")
            await asyncio.sleep(0.05)
            await server.close()
            kept = server.drain()
            await client.close()
            return kept

        assert asyncio.run(scenario()) == [b"in flight"]

    def test_close_is_idempotent(self):
        async def scenario():
            t = await UdpTransport.create()
            await t.close()
            await t.close()
            return t.closed

        assert asyncio.run(scenario()) is True

    def test_local_address_before_create_raises(self):
        t = UdpTransport()
        with pytest.raises(TransportError):
            t.local_address

    def test_sync_surface_refuses(self):
        # The UDP backend is event-loop only; the sync escapes exist for
        # substrates whose "event loop" is the simulator.
        t = UdpTransport()
        with pytest.raises(TransportError):
            t.send_sync(b"x")
        with pytest.raises(TransportError):
            t.recv_sync()


class TestInjectedLoss:
    def test_dropped_sends_time_out(self):
        async def scenario():
            client, server = await _pair()
            lossy = DropSends(client, drop_first=1)
            await lossy.send(b"vanishes")
            got = await server.recv(timeout=0.05)
            await lossy.close()
            await server.close()
            return got, lossy.dropped

        got, dropped = asyncio.run(scenario())
        assert got is None
        assert dropped == [b"vanishes"]

    def test_resend_after_drop_gets_through(self):
        async def scenario():
            client, server = await _pair()
            lossy = DropSends(client, drop_first=2)
            for _ in range(3):
                await lossy.send(b"try")
                got = await server.recv(timeout=0.05)
                if got is not None:
                    break
            await lossy.close()
            await server.close()
            return got, lossy.remaining

        got, remaining = asyncio.run(scenario())
        assert got == b"try"
        assert remaining == 0
