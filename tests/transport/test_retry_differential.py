"""Netsim-vs-UDP differential for the retry path under seeded loss.

The transport tentpole's promise is interface symmetry: the same driver
coroutine, the same channels, the same retry policy produce the same
*protocol-visible* outcome over simulated and real substrates.  The
existing differentials cover the lossless echo; this one covers the
interesting case -- first contact under loss plus a duplicated datagram
-- and asserts the :class:`SecureChannel` ledgers (including per-reason
rejection counts) come out byte-identical across substrates.

Loss is scripted, not sampled per-substrate: a seeded RNG precomputes
one drop schedule over send indices, and the same schedule is replayed
against both substrates by a fault-injection wrapper.  The duplicate
lands on send 0 -- the zero-message keying datagram itself -- so its
twin exercises the replay guard on the very first flow datagram.
"""

import asyncio
import random
from typing import List, Optional

from repro.core.config import FBSConfig
from repro.transport import RetryPolicy
from repro.transport.base import Transport
from repro.transport.channel import SecureChannel
from repro.transport.runner import build_netsim_channels, build_udp_channels

POLICY = RetryPolicy(initial=0.01, cap=0.02, jitter=0.0, attempts=4)
EXCHANGES = 6
TIMEOUT = 0.1

#: One seeded drop schedule, replayed identically over both substrates.
#: With seed 0xFB5 this drops sends {3, 4, 5, 8, 9, 11}: exchange 3
#: survives only on its final attempt, so the budget edge is exercised.
_LOSS_RNG = random.Random(0xFB5)
DROPS = frozenset(i for i in range(12) if _LOSS_RNG.random() < 0.3)
#: The first undropped send carries the duplicate -- here send 0, the
#: opening keying datagram.
DUPLICATE = next(i for i in range(12) if i not in DROPS)


class ScriptedFaults(Transport):
    """Replay a precomputed loss + duplication schedule over any substrate."""

    name = "scripted-faults"

    def __init__(self, inner: Transport, drops, duplicate: int) -> None:
        super().__init__()
        self.inner = inner
        self.drops = drops
        self.duplicate = duplicate
        self.sends = 0
        self.dropped = 0

    def now(self) -> float:
        return self.inner.now()

    async def send(self, payload: bytes) -> None:
        index = self.sends
        self.sends += 1
        self.stats.datagrams_sent += 1
        if index in self.drops:
            self.dropped += 1
            return
        await self.inner.send(payload)
        if index == self.duplicate:
            await self.inner.send(payload)

    async def recv(self, timeout: Optional[float] = None) -> Optional[bytes]:
        return await self.inner.recv(timeout)

    async def close(self) -> None:
        await self.inner.close()

    async def sleep(self, seconds: float) -> None:
        await self.inner.sleep(seconds)

    def drain(self) -> List[bytes]:
        return self.inner.drain()


async def _drive(client: SecureChannel, server: SecureChannel) -> int:
    """The interleaved retry driver, substrate-agnostic by construction."""
    rng = random.Random(7)
    echoed = 0
    for i in range(EXCHANGES):
        payload = b"differential %03d" % i
        for attempt in range(POLICY.attempts):
            if attempt:
                await client.transport.sleep(POLICY.backoff(attempt - 1, rng))
            await client.send(payload)
            request = await server.recv(TIMEOUT)
            if request is not None:
                await server.send(request)
                # A duplicate rides right behind its twin: drain it now
                # so it cannot shadow the next exchange's datagram.
                await server.recv(0.02)
            reply = await client.recv(TIMEOUT)
            if reply == payload:
                echoed += 1
                break
    return echoed


async def _run(substrate: str):
    config = FBSConfig(replay_guard_size=64)
    if substrate == "netsim":
        client, server = build_netsim_channels(
            seed=17, config=config, retry=POLICY
        )
    else:
        client, server = await build_udp_channels(
            seed=17, config=config, retry=POLICY
        )
    faults = ScriptedFaults(client.transport, DROPS, DUPLICATE)
    lossy_client = SecureChannel(
        client.endpoint, faults, peer=client.peer, retry=POLICY, seed=17
    )
    try:
        echoed = await _drive(lossy_client, server)
    finally:
        await lossy_client.close()
        await server.close()
    return echoed, lossy_client.ledger, server.ledger, faults


class TestRetryDifferential:
    def test_ledgers_identical_across_substrates(self):
        n_echoed, n_client, n_server, n_faults = asyncio.run(_run("netsim"))
        u_echoed, u_client, u_server, u_faults = asyncio.run(_run("udp"))

        # The schedule genuinely fired on both substrates.
        assert n_faults.dropped == u_faults.dropped == 5
        assert n_faults.sends == u_faults.sends == n_client["sent"]
        assert n_echoed == u_echoed == EXCHANGES

        # The comparison surface: full ledgers, per-reason counts and all.
        assert n_client == u_client
        assert n_server == u_server

        # And the ledgers show the scripted story, not a degenerate run:
        # retries happened (more sends than exchanges), the duplicated
        # first-contact datagram was refused by the replay guard, and no
        # other rejection reason fired.
        assert n_client["sent"] == 11
        assert n_server["accepted"] == EXCHANGES
        assert n_server["rejected"]["duplicate"] == 1
        assert all(
            count == 0
            for reason, count in n_server["rejected"].items()
            if reason != "duplicate"
        )
        assert all(count == 0 for count in n_client["rejected"].values())
