"""SecureChannel: protection, ledgers, and first-contact retry.

The retry tests exercise the zero-message-keying hazard the channel
exists to absorb: a lost opening datagram produces nothing but silence,
so the sender re-protects and resends under jittered backoff.  Loss is
injected two ways -- a deterministic send-dropping wrapper over real
UDP, and seeded probabilistic loss on a simulated segment (where the
whole retry dance runs in virtual time).
"""

import asyncio
import random

import pytest

from repro.core.config import FBSConfig
from repro.netsim.link import LinkConditions
from repro.transport import RetryPolicy, UdpTransportConfig, channel_pair
from repro.transport.channel import SecureChannel, _reject_reason
from repro.transport.runner import build_udp_channels

from tests.transport.helpers import DropSends, two_host_pair

#: Fast real-time backoff so the UDP retry tests stay sub-second.
FAST_RETRY = RetryPolicy(initial=0.01, cap=0.02, jitter=0.0, attempts=5)


async def _echo_forever(server, timeout=0.05):
    """Server loop for the UDP tests: unprotect, re-protect, echo."""
    while True:
        body = await server.recv(timeout)
        if body is not None:
            await server.send(body)


class TestLedger:
    def test_lossless_exchange_counts(self):
        net, t_a, t_b = two_host_pair()
        ch_a, ch_b = channel_pair(t_a, t_b, seed=5)

        async def scenario():
            await ch_a.send(b"first")
            got = await ch_b.recv(timeout=2.0)
            await ch_b.send(b"reply")
            reply = await ch_a.recv(timeout=2.0)
            return got, reply

        got, reply = asyncio.run(scenario())
        assert (got, reply) == (b"first", b"reply")
        assert ch_a.ledger["sent"] == 1 and ch_a.ledger["accepted"] == 1
        assert ch_b.ledger["sent"] == 1 and ch_b.ledger["accepted"] == 1
        assert all(v == 0 for v in ch_a.ledger["rejected"].values())

    def test_tampered_datagram_rejected_as_mac(self):
        net, t_a, t_b = two_host_pair()
        ch_a, ch_b = channel_pair(t_a, t_b, seed=5)

        async def scenario():
            wire = ch_a.endpoint.protect(b"genuine", ch_a.peer)
            await t_a.send(wire[:-1] + bytes([wire[-1] ^ 1]))
            return await ch_b.recv(timeout=2.0)

        assert asyncio.run(scenario()) is None
        assert ch_b.ledger["rejected"]["mac"] == 1
        assert ch_b.ledger["accepted"] == 0

    def test_garbage_rejected_as_header(self):
        net, t_a, t_b = two_host_pair()
        ch_a, ch_b = channel_pair(t_a, t_b, seed=5)

        async def scenario():
            await t_a.send(b"\x00\x01not an fbs datagram")
            return await ch_b.recv(timeout=2.0)

        assert asyncio.run(scenario()) is None
        assert ch_b.ledger["rejected"]["header"] == 1

    def test_ledger_dict_carries_transport_stats(self):
        net, t_a, t_b = two_host_pair()
        ch_a, ch_b = channel_pair(t_a, t_b, seed=5)
        snapshot = ch_a.ledger_dict()
        assert snapshot["transport"]["datagrams_sent"] == 0
        assert set(snapshot) == {"sent", "accepted", "rejected", "transport"}

    def test_reason_mapping_is_total(self):
        from repro.core.errors import (
            FBSError,
            HeaderFormatError,
            MacMismatchError,
            ReceiveError,
            StaleTimestampError,
        )

        assert _reject_reason(HeaderFormatError("x")) == "header"
        assert _reject_reason(StaleTimestampError("x")) == "stale_timestamp"
        assert _reject_reason(MacMismatchError("x")) == "mac"
        assert _reject_reason(ReceiveError("x")) == "duplicate"
        assert _reject_reason(FBSError("x")) == "keying"


class TestRetryPolicy:
    def test_backoff_doubles_to_the_cap(self):
        policy = RetryPolicy(initial=0.1, cap=0.5, jitter=0.0, attempts=8)
        rng = random.Random(0)
        waits = [policy.backoff(i, rng) for i in range(5)]
        assert waits == pytest.approx([0.1, 0.2, 0.4, 0.5, 0.5])

    def test_jitter_bounds(self):
        policy = RetryPolicy(initial=0.1, cap=1.0, jitter=0.5, attempts=8)
        rng = random.Random(1)
        for attempt in range(6):
            base = min(0.1 * 2 ** attempt, 1.0)
            wait = policy.backoff(attempt, rng)
            # Jitter widens the wait both ways, but the cap stays a hard
            # ceiling on any single backoff.
            assert base * 0.5 <= wait <= min(base * 1.5, policy.cap)

    def test_cap_is_a_ceiling_even_with_jitter(self):
        # Regression: the jitter multiplier used to be applied *after*
        # the cap, so a capped attempt could wait up to cap * (1 +
        # jitter) -- violating the documented "ceiling on any single
        # backoff".  An rng pinned to the top of the jitter range makes
        # the old behaviour deterministic: it returned cap * 1.5.
        class TopOfRange:
            @staticmethod
            def uniform(lo, hi):
                return hi

        policy = RetryPolicy(initial=0.1, cap=1.0, jitter=0.5, attempts=8)
        assert policy.backoff(10, TopOfRange()) == pytest.approx(1.0)
        # Below the cap the jitter still widens upward as documented.
        assert policy.backoff(0, TopOfRange()) == pytest.approx(0.15)
        # And across many real draws nothing ever exceeds the cap.
        rng = random.Random(2026)
        assert all(
            policy.backoff(attempt, rng) <= policy.cap
            for attempt in range(8)
            for _ in range(50)
        )

    def test_jitter_is_seed_deterministic(self):
        policy = RetryPolicy(jitter=0.5)
        a = [policy.backoff(i, random.Random(9)) for i in range(4)]
        b = [policy.backoff(i, random.Random(9)) for i in range(4)]
        assert a == b


class TestRequestDrainsTheWindow:
    def test_duplicate_straggler_does_not_burn_the_attempt(self):
        # Regression: request() used to treat any None from recv() as
        # silence, so a rejected arrival early in the window (here: a
        # duplicate straggler refused by the replay guard) ended the
        # attempt immediately and triggered a resend -- even though the
        # genuine reply was still in flight.  The fix drains the
        # *remaining* timeout window within the attempt.
        config = FBSConfig(replay_guard_size=64)
        net, t_a, t_b = two_host_pair(seed=21)
        ch_a, ch_b = channel_pair(t_a, t_b, seed=21, config=config)

        async def scenario():
            # Arm the replay guard: deliver one reply and accept it.
            first = ch_b.endpoint.protect(b"first reply", ch_b.peer)
            await t_b.send(first)
            got = await ch_a.recv(timeout=1.0)
            # Script the peer in virtual time: the straggler twin of
            # the accepted datagram arrives early in the request
            # window, the genuine reply later but still inside it.
            late = ch_b.endpoint.protect(b"late reply", ch_b.peer)
            sim = net.sim
            sim.schedule_at(sim.now + 0.05, lambda: t_b.send_sync(first))
            sim.schedule_at(sim.now + 0.15, lambda: t_b.send_sync(late))
            reply = await ch_a.request(b"ping", timeout=0.5)
            return got, reply

        got, reply = asyncio.run(scenario())
        assert got == b"first reply"
        assert reply == b"late reply"
        # The duplicate was rejected, but the attempt kept listening:
        # exactly one send, no retransmission.
        assert ch_a.ledger["sent"] == 1
        assert ch_a.ledger["rejected"]["duplicate"] == 1


class TestFirstContactRetryOverUdp:
    def test_request_survives_dropped_first_contact(self):
        async def scenario():
            client, server = await build_udp_channels(seed=3, retry=FAST_RETRY)
            lossy = DropSends(client.transport, drop_first=2)
            lossy_client = SecureChannel(
                client.endpoint, lossy, peer=client.peer,
                retry=FAST_RETRY, seed=3,
            )
            echo = asyncio.ensure_future(_echo_forever(server))
            try:
                reply = await lossy_client.request(b"open sesame", timeout=0.1)
            finally:
                echo.cancel()
            await lossy_client.close()
            await server.close()
            return reply, lossy_client.ledger["sent"], lossy.dropped

        reply, sent, dropped = asyncio.run(scenario())
        assert reply == b"open sesame"
        assert sent == 3  # two vanished, the third connected
        assert len(dropped) == 2

    def test_request_returns_none_when_budget_spent(self):
        async def scenario():
            client, server = await build_udp_channels(seed=4, retry=FAST_RETRY)
            black_hole = DropSends(client.transport, drop_first=10 ** 6)
            doomed = SecureChannel(
                client.endpoint, black_hole, peer=client.peer,
                retry=FAST_RETRY, seed=4,
            )
            reply = await doomed.request(b"anyone?", timeout=0.02)
            await doomed.close()
            await server.close()
            return reply, doomed.ledger["sent"]

        reply, sent = asyncio.run(scenario())
        assert reply is None
        assert sent == FAST_RETRY.attempts

    def test_every_retry_reprotects_with_fresh_timestamp(self):
        # Each attempt runs the full protect path: the sender ledger and
        # the endpoint's sent counter advance per retransmission, so a
        # late duplicate can never be double-delivered (replay guard).
        async def scenario():
            client, server = await build_udp_channels(seed=6, retry=FAST_RETRY)
            lossy = DropSends(client.transport, drop_first=1)
            ch = SecureChannel(
                client.endpoint, lossy, peer=client.peer,
                retry=FAST_RETRY, seed=6,
            )
            echo = asyncio.ensure_future(_echo_forever(server))
            try:
                await ch.request(b"fresh", timeout=0.1)
            finally:
                echo.cancel()
            protect_count = ch.ledger["sent"]
            await ch.close()
            await server.close()
            return protect_count

        assert asyncio.run(scenario()) == 2

    def test_transport_config_retry_knobs_become_the_policy(self):
        # Operators tune one object: with no explicit RetryPolicy the
        # UdpTransportConfig retry_* knobs drive first contact.
        async def scenario():
            config = UdpTransportConfig(
                retry_initial=0.11, retry_cap=0.22,
                retry_jitter=0.0, retry_attempts=3,
            )
            client, server = await build_udp_channels(
                seed=1, transport_config=config
            )
            policy = client.retry
            await client.close()
            await server.close()
            return policy

        policy = asyncio.run(scenario())
        assert policy == RetryPolicy(
            initial=0.11, cap=0.22, jitter=0.0, attempts=3
        )


class TestFirstContactRetryOverNetsim:
    def test_retry_in_pure_virtual_time(self):
        # Seeded probabilistic loss on the simulated segment; the whole
        # backoff dance runs on the virtual clock, so this test is
        # deterministic AND instant.
        conditions = LinkConditions(loss_probability=0.4)
        net, t_a, t_b = two_host_pair(seed=11, conditions=conditions)
        policy = RetryPolicy(initial=0.5, cap=4.0, jitter=0.5, attempts=10)
        ch_a, ch_b = channel_pair(t_a, t_b, seed=11, retry=policy)

        async def scenario():
            delivered = 0
            for i in range(5):
                payload = b"msg %d" % i
                for attempt in range(policy.attempts):
                    if attempt:
                        await t_a.sleep(policy.backoff(attempt - 1, ch_a._rng))
                    await ch_a.send(payload)
                    got = await ch_b.recv(timeout=2.0)
                    if got is not None:
                        await ch_b.send(got)
                    reply = await ch_a.recv(timeout=2.0)
                    if reply == payload:
                        delivered += 1
                        break
            return delivered

        delivered = asyncio.run(scenario())
        assert delivered == 5  # retries absorbed 40% loss
        assert ch_a.ledger["sent"] > 5  # some exchanges needed resends
        assert net.sim.now > 0.5  # backoff genuinely elapsed (virtually)
