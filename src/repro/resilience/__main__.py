"""Entry point for ``python -m repro.resilience``."""

import sys

from repro.resilience.cli import main

sys.exit(main())
