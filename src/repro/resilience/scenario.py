"""Scenario definitions: one named fault script plus its expectations.

A :class:`Scenario` is pure data -- traffic shape, initial link
conditions, a fault schedule (fractions of the send window), and the
*expectations* the invariant checks enforce: the goodput floor, the
recovery bound after a soft-state flush, and which rejection reasons
the scenario is allowed to produce.

The campaign matrix (:func:`build_matrix`) is the executable claim list
of the paper's soft-state story: loss, duplication, reordering,
corruption, forgery, replay, reboot, clock skew, sweeper races, and
path-MTU collapse each get a scenario whose invariants would fail if
FBS ever accepted damaged data or needed a synchronization message to
recover.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from repro.netsim.link import LinkConditions
from repro.resilience.faults import (
    Fault,
    FlushSoftState,
    ForgeryBurst,
    InstallSweeper,
    ReplayBurst,
    SetClockSkew,
    SetConditions,
    ShrinkMtu,
    TamperBurst,
)

__all__ = ["Scenario", "build_matrix", "FULL_DATAGRAMS", "SMOKE_DATAGRAMS"]

#: Datagrams per scenario in the full and smoke tiers.
FULL_DATAGRAMS = 60
SMOKE_DATAGRAMS = 24


@dataclass(frozen=True)
class Scenario:
    """One fault-injection scenario and its pass criteria."""

    name: str
    description: str
    #: Traffic shape: ``datagrams`` sends, one every ``interval`` s.
    datagrams: int = FULL_DATAGRAMS
    interval: float = 0.05
    payload_size: int = 200
    #: Initial link conditions (faults may replace them mid-run).
    conditions: LinkConditions = field(default_factory=LinkConditions)
    #: Fault schedule; ``at`` values are fractions of the send window.
    faults: Tuple[Fault, ...] = ()
    #: Host MTU (small values force fragmentation from the start).
    mtu: int = 1500
    #: Receiver replay-guard capacity (0 = off, the paper's default).
    replay_guard: int = 0
    #: Minimum fraction of sent payloads that must reach the receiver.
    min_goodput: float = 0.9
    #: Max rejected datagrams between a soft-state flush and the next
    #: acceptance (how fast soft state must rebuild).
    recovery_bound: int = 3
    #: Rejection reasons this scenario may produce (None = any).
    allowed_reasons: Optional[Tuple[str, ...]] = ()
    #: Whether duplicate delivery of one payload is a violation (on for
    #: replay scenarios, where the guard must enforce at-most-once).
    expect_no_duplicates: bool = False

    def scaled(self, datagrams: int) -> "Scenario":
        """The same scenario with a different stream length (the fault
        schedule is fractional, so it rescales automatically)."""
        return replace(self, datagrams=datagrams)


def build_matrix(smoke: bool = False) -> Tuple[Scenario, ...]:
    """The campaign matrix; ``smoke`` selects the short CI subset."""
    clean = LinkConditions()
    scenarios = (
        Scenario(
            name="baseline",
            description="clean network control run: everything delivered, "
            "nothing rejected",
            min_goodput=1.0,
        ),
        Scenario(
            name="lossy",
            description="15% frame loss: goodput degrades gracefully, "
            "no rejections (loss is silence, not damage)",
            conditions=LinkConditions(loss_probability=0.15),
            min_goodput=0.6,
        ),
        Scenario(
            name="dup_reorder",
            description="20% duplication + reorder jitter: duplicates and "
            "reordering are legitimate datagram behaviour, all accepted",
            conditions=LinkConditions(
                duplication_probability=0.2, reorder_jitter=0.004
            ),
            min_goodput=0.95,
        ),
        Scenario(
            name="corruption",
            description="25% per-frame bit flips: damaged datagrams are "
            "always rejected (MAC), never delivered",
            conditions=LinkConditions(corruption_probability=0.25),
            min_goodput=0.5,
            allowed_reasons=("header", "stale_timestamp", "keying", "mac"),
        ),
        Scenario(
            name="reboot",
            description="receiver and sender soft-state flushes mid-flow: "
            "recovery within bounded datagrams, zero sync messages",
            faults=(
                FlushSoftState(at=0.35, target="receiver"),
                FlushSoftState(at=0.55, target="sender"),
                FlushSoftState(at=0.75, target="receiver"),
            ),
            min_goodput=1.0,
        ),
        Scenario(
            name="forgery",
            description="spoofed-source random datagrams plus bit-tampered "
            "captures: zero forged payloads delivered",
            faults=(
                ForgeryBurst(at=0.3, count=15, size=200),
                TamperBurst(at=0.6, count=15),
            ),
            min_goodput=1.0,
            allowed_reasons=("header", "stale_timestamp", "keying", "mac"),
        ),
        Scenario(
            name="replay",
            description="verbatim wire replays against an enabled replay "
            "guard: at-most-once delivery, every replay rejected",
            faults=(ReplayBurst(at=0.6, count=15),),
            replay_guard=256,
            min_goodput=1.0,
            allowed_reasons=("duplicate",),
            expect_no_duplicates=True,
        ),
        Scenario(
            name="clock_skew_within",
            description="receiver clock 90s ahead with mild drift: inside "
            "the freshness window, traffic unaffected",
            faults=(
                SetClockSkew(at=0.3, target="receiver", offset=90.0, drift=0.001),
            ),
            min_goodput=1.0,
        ),
        Scenario(
            name="clock_skew_beyond",
            description="receiver clock 400s ahead mid-flow, later healed: "
            "stale rejections while skewed, recovery after",
            faults=(
                SetClockSkew(at=0.4, target="receiver", offset=400.0),
                SetClockSkew(at=0.7, target="receiver", offset=0.0),
            ),
            min_goodput=0.5,
            allowed_reasons=("stale_timestamp",),
        ),
        Scenario(
            name="sweeper_race",
            description="aggressive FST sweepers race live traffic: flows "
            "restart but nothing is rejected (teardown is soft)",
            faults=(
                InstallSweeper(at=0.2, target="receiver", threshold=0.2, interval=0.05),
                InstallSweeper(at=0.4, target="sender", threshold=0.2, interval=0.05),
            ),
            min_goodput=1.0,
        ),
        Scenario(
            name="mtu_collapse",
            description="path MTU shrinks mid-flow under 5% loss: fragments "
            "drop whole datagrams, reassembly memory stays bounded",
            payload_size=1400,
            conditions=LinkConditions(loss_probability=0.05),
            faults=(ShrinkMtu(at=0.5, target="sender", mtu=576),),
            min_goodput=0.6,
        ),
        Scenario(
            name="perfect_storm",
            description="loss + duplication + corruption + jitter + reboot "
            "+ forgery at once: degraded but never wrong",
            conditions=LinkConditions(
                loss_probability=0.08,
                duplication_probability=0.08,
                corruption_probability=0.08,
                reorder_jitter=0.003,
            ),
            faults=(
                ForgeryBurst(at=0.25, count=10, size=200),
                FlushSoftState(at=0.5, target="receiver"),
                SetConditions(at=0.8, conditions=clean),
            ),
            min_goodput=0.35,
            recovery_bound=6,
            allowed_reasons=("header", "stale_timestamp", "keying", "mac"),
        ),
    )
    if not smoke:
        return scenarios
    smoke_names = {"baseline", "corruption", "reboot", "forgery", "replay"}
    return tuple(
        scenario.scaled(SMOKE_DATAGRAMS)
        for scenario in scenarios
        if scenario.name in smoke_names
    )
