"""The scenario harness: real FBS traffic under scripted faults.

One :class:`ScenarioHarness` builds a three-host topology on a shared
Ethernet segment:

* ``alice`` (sender) and ``bob`` (receiver), both enrolled in one FBS
  domain with encryption on, each with its own tracer and registry;
* ``mallory`` (attacker), attached to the segment but *not* enrolled --
  she sends spoofed raw datagrams and, via a promiscuous tap, captures
  genuine frames to tamper with or replay.

The harness schedules the scenario's datagram stream and its fault
script into the simulator, runs the simulation to quiescence, and
packages everything the invariant checks need into a
:class:`ScenarioResult`.  All randomness is drawn from RNGs seeded from
``(campaign seed, scenario name)``, so one seed always produces one
byte-identical outcome.
"""

from __future__ import annotations

import random as _random
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.config import FBSConfig
from repro.core.deploy import FBSDomain
from repro.netsim import Network
from repro.netsim.host import Host
from repro.netsim.ipv4 import IPProtocol, IPv4Header, IPv4Packet
from repro.netsim.link import EthernetSegment
from repro.transport.netsim import NetsimTransport
from repro.obs.sinks import RingBufferSink
from repro.obs.tracer import Tracer
from repro.resilience.scenario import Scenario

__all__ = ["ScenarioHarness", "ScenarioResult", "RECEIVER_PORT"]

#: The UDP port bob listens on.
RECEIVER_PORT = 4000

#: IPv4 header bytes to skip when flipping bits in a captured frame
#: (tampering the IP header itself is caught by the IP checksum before
#: FBS ever sees the datagram -- a different, already-tested layer).
_IP_HEADER_LEN = 20

#: Seconds past the last scheduled send the reassembly probe keeps
#: watching (covers propagation + jitter + duplicate serialization).
_DRAIN_SECONDS = 2.0


def _derive_seed(campaign_seed: int, scenario_name: str, lane: int) -> int:
    """A stable per-(scenario, lane) seed.  ``zlib.crc32`` rather than
    ``hash()``: the latter is salted per process and would break
    run-to-run determinism."""
    return (campaign_seed * 1_000_003 + zlib.crc32(scenario_name.encode()) + lane) & 0x7FFFFFFF


@dataclass
class ScenarioResult:
    """Everything one scenario run produced, ready for invariant checks."""

    scenario: Scenario
    seed: int
    #: Payloads scheduled for sending, in order (index = sequence number).
    sent: List[bytes] = field(default_factory=list)
    #: Simulation times the sends were scheduled at.
    send_times: List[float] = field(default_factory=list)
    #: Payloads the receiver's application actually saw, in order.
    delivered: List[bytes] = field(default_factory=list)
    #: Receiver-side trace as event dicts, in emission order.
    events: List[Dict[str, object]] = field(default_factory=list)
    #: Receiver registry counters (rendered name -> int).
    counters: Dict[str, int] = field(default_factory=dict)
    #: Attack-traffic bookkeeping.
    forged_sent: int = 0
    tampered_sent: int = 0
    replays_sent: int = 0
    #: Receiver IP-stack stats.
    receiver_packets_sent: int = 0
    receiver_bad_headers: int = 0
    #: Reassembly memory probe.
    reassembly_max_pending: int = 0
    reassembly_probe_violations: int = 0
    reassembly_overflow_drops: int = 0
    #: Segment-level fault statistics.
    frames_sent: int = 0
    frames_dropped: int = 0
    frames_duplicated: int = 0
    frames_corrupted: int = 0
    #: End-of-run simulation clock.
    finished_at: float = 0.0

    @property
    def delivered_unique(self) -> int:
        return len(set(self.delivered))

    @property
    def goodput(self) -> float:
        return self.delivered_unique / len(self.sent) if self.sent else 0.0


class ScenarioHarness:
    """Builds, runs, and harvests one fault-injection scenario."""

    def __init__(self, scenario: Scenario, seed: int) -> None:
        self.scenario = scenario
        self.seed = seed
        self._attack_rng = _random.Random(
            _derive_seed(seed, scenario.name, lane=1)
        )
        payload_rng = _random.Random(_derive_seed(seed, scenario.name, lane=2))

        self.net = Network(seed=_derive_seed(seed, scenario.name, lane=3))
        self.net.add_segment(
            "lan", "10.0.0.0", conditions=scenario.conditions
        )
        self.sender = self.net.add_host("alice", segment="lan", mtu=scenario.mtu)
        self.receiver = self.net.add_host("bob", segment="lan", mtu=scenario.mtu)
        self.attacker = self.net.add_host("mallory", segment="lan", mtu=scenario.mtu)

        config = FBSConfig(replay_guard_size=scenario.replay_guard)
        domain = FBSDomain(
            seed=_derive_seed(seed, scenario.name, lane=4), config=config
        )
        self._sink = RingBufferSink(capacity=1 << 17)
        tracer = Tracer(self._sink, now=lambda: self.net.sim.now)
        self.sender_binding = domain.enroll_host(
            self.sender, encrypt_all=True
        )
        self.receiver_binding = domain.enroll_host(
            self.receiver, encrypt_all=True, tracer=tracer
        )

        # Both ends go through the transport interface: the adapter is
        # differentially pinned byte-identical to hand-wired UdpSockets,
        # so every seeded scenario report stays exactly as it was.
        self._rx = NetsimTransport(
            self.receiver, local_port=RECEIVER_PORT, recv_queue=1 << 16
        )
        self._tx = NetsimTransport(
            self.sender, remote=(self.receiver.address, RECEIVER_PORT)
        )

        # Promiscuous capture of genuine alice->bob frames, for the
        # tamper/replay injections (the Section 7.3 sniffer, weaponized).
        self._captured: List[bytes] = []
        self.segment.attach_tap(self._capture)

        # Attack bookkeeping (filled by the inject_* methods).
        self.forged_sent = 0
        self.tampered_sent = 0
        self.replays_sent = 0

        # -- traffic schedule (payloads pre-generated: deterministic). --
        self._sent: List[bytes] = []
        self._send_times: List[float] = []
        for i in range(scenario.datagrams):
            filler = bytes(
                payload_rng.randrange(256)
                for _ in range(max(0, scenario.payload_size - 12))
            )
            payload = b"seq %06d|" % i + filler
            t = i * scenario.interval
            self._sent.append(payload)
            self._send_times.append(t)
            self.net.sim.schedule_at(
                t, lambda p=payload: self._tx.send_sync(p)
            )

        # -- fault schedule (fractions of the send window). --
        window = scenario.datagrams * scenario.interval
        for fault in scenario.faults:
            self.net.sim.schedule_at(
                fault.at * window, lambda f=fault: f.apply(self)
            )

        # -- reassembly memory probe. --
        self._probe_until = window + _DRAIN_SECONDS
        self._max_pending = 0
        self._probe_violations = 0
        self.net.sim.schedule_at(0.0, self._probe_reassembler)

    # -- topology accessors (used by faults) -----------------------------------

    @property
    def segment(self) -> EthernetSegment:
        return self.net.segment("lan")

    def host(self, role: str) -> Host:
        """Resolve a fault's ``target`` role to its host."""
        return {
            "sender": self.sender,
            "receiver": self.receiver,
            "attacker": self.attacker,
        }[role]

    def binding(self, role: str):
        """Resolve a fault's ``target`` role to its FBS mapping."""
        return {
            "sender": self.sender_binding,
            "receiver": self.receiver_binding,
        }[role]

    # -- attack injections (called by faults, inside sim events) ---------------

    def _capture(self, frame: bytes) -> None:
        try:
            packet = IPv4Packet.decode(frame)
        except ValueError:
            return
        if (
            packet.header.src == self.sender.address
            and packet.header.dst == self.receiver.address
            and packet.header.fragment_offset == 0
            and not packet.header.more_fragments
        ):
            self._captured.append(frame)

    def inject_forgeries(self, count: int, size: int) -> None:
        """Mallory sends raw datagrams with alice's source address and
        random payloads."""
        for _ in range(count):
            payload = bytes(
                self._attack_rng.randrange(256) for _ in range(size)
            )
            packet = IPv4Packet(
                header=IPv4Header(
                    src=self.sender.address,
                    dst=self.receiver.address,
                    proto=int(IPProtocol.UDP),
                ),
                payload=payload,
            )
            self.attacker.send_raw(packet)
            self.forged_sent += 1

    def inject_tampered(self, count: int) -> None:
        """Re-deliver captured frames with one bit flipped past the IP
        header (inside the FBS header or protected body)."""
        if not self._captured:
            return
        for i in range(count):
            frame = self._captured[i % len(self._captured)]
            if len(frame) <= _IP_HEADER_LEN:
                continue
            position = self._attack_rng.randrange(
                (len(frame) - _IP_HEADER_LEN) * 8
            )
            mangled = bytearray(frame)
            mangled[_IP_HEADER_LEN + (position >> 3)] ^= 1 << (position & 7)
            self.receiver.frame_arrived(bytes(mangled))
            self.tampered_sent += 1

    def inject_replays(self, count: int) -> None:
        """Re-deliver captured frames verbatim (wire-level replay)."""
        for i in range(min(count, len(self._captured))):
            self.receiver.frame_arrived(self._captured[i])
            self.replays_sent += 1

    # -- reassembly probe -------------------------------------------------------

    def _probe_reassembler(self) -> None:
        reassembler = self.receiver.stack.reassembler
        pending = reassembler.pending
        if pending > self._max_pending:
            self._max_pending = pending
        if pending > reassembler.max_partials:
            self._probe_violations += 1
        if self.net.sim.now < self._probe_until:
            self.net.sim.schedule(
                self.scenario.interval, self._probe_reassembler
            )

    # -- run --------------------------------------------------------------------

    def run(self) -> ScenarioResult:
        """Run the simulation to quiescence and harvest the result."""
        self.net.sim.run()
        snapshot = self.receiver_binding.endpoint.registry.snapshot()
        counters = {
            name: value
            for name, value in snapshot["counters"].items()
            if isinstance(value, int)
        }
        return ScenarioResult(
            scenario=self.scenario,
            seed=self.seed,
            sent=self._sent,
            send_times=self._send_times,
            delivered=self._rx.drain(),
            events=[event.to_dict() for event in self._sink.events],
            counters=counters,
            forged_sent=self.forged_sent,
            tampered_sent=self.tampered_sent,
            replays_sent=self.replays_sent,
            receiver_packets_sent=self.receiver.stack.stats.packets_sent,
            receiver_bad_headers=self.receiver.stack.stats.bad_headers,
            reassembly_max_pending=self._max_pending,
            reassembly_probe_violations=self._probe_violations,
            reassembly_overflow_drops=self.receiver.stack.reassembler.overflow_drops,
            frames_sent=self.segment.frames_sent,
            frames_dropped=self.segment.frames_dropped,
            frames_duplicated=self.segment.frames_duplicated,
            frames_corrupted=self.segment.frames_corrupted,
            finished_at=self.net.sim.now,
        )
