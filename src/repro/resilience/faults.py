"""Deterministic fault actions for resilience campaigns.

Each fault is a frozen dataclass naming *when* it fires and *what* it
does to the running scenario.  ``at`` is a fraction of the scenario's
send window (0.0 = first datagram, 1.0 = last), so the same fault
schedule scales between the smoke tier and the full tier without
editing absolute times.

Faults act only through public seams -- link/segment ``conditions``,
``HostClock.set_skew``, ``FBSEndpoint.flush_all_caches``,
``FlowAssociationMechanism.configure_sweeper``, interface ``mtu`` --
so a campaign exercises exactly the control surface an operator (or an
attacker with wire access, for the injection faults) has.

Everything here is deterministic: injections draw from the harness's
seeded RNG, and fault application happens inside simulator events, so
one seed always produces one event sequence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.policy import ThresholdSweeper
from repro.netsim.link import LinkConditions

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.resilience.harness import ScenarioHarness

__all__ = [
    "Fault",
    "SetConditions",
    "FlushSoftState",
    "SetClockSkew",
    "ShrinkMtu",
    "InstallSweeper",
    "ForgeryBurst",
    "TamperBurst",
    "ReplayBurst",
]


@dataclass(frozen=True)
class Fault:
    """Base fault: fires at ``at`` (fraction of the send window)."""

    at: float

    def apply(self, harness: "ScenarioHarness") -> None:
        raise NotImplementedError

    def describe(self) -> str:
        return f"{type(self).__name__}@{self.at:g}"


@dataclass(frozen=True)
class SetConditions(Fault):
    """Swap the segment's fault conditions mid-run (loss storm starts,
    corruption begins, the network heals, ...)."""

    conditions: LinkConditions = field(default_factory=LinkConditions)

    def apply(self, harness: "ScenarioHarness") -> None:
        harness.segment.conditions = self.conditions


@dataclass(frozen=True)
class FlushSoftState(Fault):
    """Reboot a host's FBS state: every cache, the FST, and the replay
    guard vanish at once.  The protocol's claim is that nothing breaks."""

    target: str = "receiver"

    def apply(self, harness: "ScenarioHarness") -> None:
        harness.binding(self.target).endpoint.flush_all_caches()


@dataclass(frozen=True)
class SetClockSkew(Fault):
    """Skew a host's local clock (offset seconds, drift rate).

    Offsets inside the freshness window model ordinary loose
    synchronization; offsets beyond it model a broken NTP peer and must
    produce ``stale_timestamp`` rejections, never acceptances."""

    target: str = "receiver"
    offset: float = 0.0
    drift: float = 0.0

    def apply(self, harness: "ScenarioHarness") -> None:
        harness.host(self.target).clock.set_skew(
            offset=self.offset, drift=self.drift
        )


@dataclass(frozen=True)
class ShrinkMtu(Fault):
    """Shrink every interface MTU on a host (path MTU collapse), forcing
    mid-flow fragmentation of datagrams that used to fit."""

    target: str = "sender"
    mtu: int = 576

    def apply(self, harness: "ScenarioHarness") -> None:
        for interface in harness.host(self.target).stack.interfaces:
            interface.mtu = self.mtu


@dataclass(frozen=True)
class InstallSweeper(Fault):
    """Install an aggressively-paced FST sweeper mid-flow, racing flow
    teardown against live traffic.  Because flow state is soft, expiring
    an active flow restarts it; it must never reject it."""

    target: str = "receiver"
    threshold: float = 0.2
    interval: float = 0.05

    def apply(self, harness: "ScenarioHarness") -> None:
        harness.binding(self.target).endpoint.fam.configure_sweeper(
            ThresholdSweeper(threshold=self.threshold), self.interval
        )


@dataclass(frozen=True)
class ForgeryBurst(Fault):
    """The attacker host sends ``count`` raw datagrams with a spoofed
    source address and random payloads.  None may ever be delivered."""

    count: int = 10
    size: int = 200

    def apply(self, harness: "ScenarioHarness") -> None:
        harness.inject_forgeries(self.count, self.size)


@dataclass(frozen=True)
class TamperBurst(Fault):
    """Replay ``count`` captured genuine frames with one bit flipped
    inside the FBS region (wire tampering past the IP header).  The MAC
    must reject every one."""

    count: int = 10

    def apply(self, harness: "ScenarioHarness") -> None:
        harness.inject_tampered(self.count)


@dataclass(frozen=True)
class ReplayBurst(Fault):
    """Re-inject ``count`` captured genuine frames verbatim.  With the
    replay guard enabled each is rejected as ``duplicate``; no payload
    may be delivered twice."""

    count: int = 10

    def apply(self, harness: "ScenarioHarness") -> None:
        harness.inject_replays(self.count)
