"""Deterministic fault-injection campaigns for the FBS soft-state story.

The paper's central resilience claim is architectural: because every
piece of FBS receiver state is *soft* -- derivable from the datagram in
hand plus long-term keys -- the protocol survives loss, duplication,
reordering, corruption, reboots, clock skew, and state-table races
without ever accepting damaged data or sending a synchronization
message.  This package turns that claim into an executable campaign:

* :mod:`~repro.resilience.faults` -- scripted fault actions (link
  conditions, soft-state flushes, clock skew, MTU collapse, sweeper
  races, forgery/tamper/replay injections);
* :mod:`~repro.resilience.scenario` -- the named scenario matrix, each
  with declared pass criteria;
* :mod:`~repro.resilience.harness` -- builds real FBS traffic between
  netsim hosts (plus an attacker) and runs one scenario;
* :mod:`~repro.resilience.invariants` -- the falsifiable checks
  (authenticity, accounting, goodput, recovery, silence, memory);
* :mod:`~repro.resilience.campaign` / :mod:`~repro.resilience.report`
  -- the driver and the byte-identical-per-seed JSON report;
* ``python -m repro.resilience`` -- the CLI (exit 1 on any violation).
"""

from repro.resilience.campaign import run_campaign, run_scenario
from repro.resilience.harness import ScenarioHarness, ScenarioResult
from repro.resilience.invariants import INVARIANT_NAMES, check_all
from repro.resilience.report import REPORT_VERSION, to_json
from repro.resilience.scenario import Scenario, build_matrix

__all__ = [
    "run_campaign",
    "run_scenario",
    "ScenarioHarness",
    "ScenarioResult",
    "INVARIANT_NAMES",
    "check_all",
    "REPORT_VERSION",
    "to_json",
    "Scenario",
    "build_matrix",
]
