"""Campaign driver: run the scenario matrix, check invariants, report.

``run_campaign`` is the single entry point the CLI and the tests share:
build each scenario's harness from the seed, run it, check every
invariant, and fold the verdicts into the deterministic report
structure (:mod:`repro.resilience.report`).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.resilience.harness import ScenarioHarness, ScenarioResult
from repro.resilience.invariants import check_all
from repro.resilience.report import campaign_report, scenario_report
from repro.resilience.scenario import Scenario, build_matrix

__all__ = ["run_scenario", "run_campaign"]


def run_scenario(
    scenario: Scenario, seed: int
) -> Tuple[ScenarioResult, List[str]]:
    """Run one scenario; returns (result, invariant violations)."""
    result = ScenarioHarness(scenario, seed).run()
    return result, check_all(result)


def run_campaign(
    seed: int = 0,
    smoke: bool = False,
    only: Optional[Iterable[str]] = None,
) -> Dict[str, object]:
    """Run the matrix (or a named subset) and return the report dict."""
    scenarios = build_matrix(smoke=smoke)
    if only is not None:
        wanted = set(only)
        unknown = wanted - {s.name for s in scenarios}
        if unknown:
            raise ValueError(
                f"unknown scenario(s): {sorted(unknown)} "
                f"(available: {[s.name for s in scenarios]})"
            )
        scenarios = tuple(s for s in scenarios if s.name in wanted)
    slices = []
    for scenario in scenarios:
        result, violations = run_scenario(scenario, seed)
        slices.append(scenario_report(result, violations))
    return campaign_report(
        seed=seed, tier="smoke" if smoke else "full", scenarios=slices
    )
