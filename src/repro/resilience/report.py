"""Campaign reports: deterministic JSON, one verdict per scenario.

The report is the campaign's product: a JSON document that is
**byte-identical for the same seed** (CI runs the smoke campaign twice
and compares).  Determinism rules:

* every number comes from the simulation (seeded RNGs, virtual clock);
* floats are rounded to 6 decimals at the report boundary;
* serialization is ``json.dumps(..., sort_keys=True)`` with a trailing
  newline.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.obs.events import REJECTION_REASONS
from repro.resilience.harness import ScenarioResult
from repro.resilience.invariants import INVARIANT_NAMES

__all__ = ["REPORT_VERSION", "scenario_report", "campaign_report", "to_json"]

#: Bumped whenever the report schema changes shape.
REPORT_VERSION = 1


def scenario_report(
    result: ScenarioResult, violations: List[str]
) -> Dict[str, object]:
    """One scenario's slice of the campaign report."""
    rejections = {
        reason: result.counters.get(f"datagrams_rejected{{reason={reason}}}", 0)
        for reason in REJECTION_REASONS
    }
    scenario = result.scenario
    return {
        "name": scenario.name,
        "description": scenario.description,
        "verdict": "pass" if not violations else "fail",
        "violations": list(violations),
        "traffic": {
            "datagrams_sent": len(result.sent),
            "delivered": len(result.delivered),
            "delivered_unique": result.delivered_unique,
            "goodput": round(result.goodput, 6),
            "min_goodput": round(scenario.min_goodput, 6),
        },
        "attack": {
            "forged_sent": result.forged_sent,
            "tampered_sent": result.tampered_sent,
            "replays_sent": result.replays_sent,
        },
        "receiver": {
            "datagrams_received": result.counters.get("datagrams_received", 0),
            "datagrams_accepted": result.counters.get("datagrams_accepted", 0),
            "rejections": rejections,
            "soft_state_flushes": result.counters.get("soft_state_flushes", 0),
            "packets_sent": result.receiver_packets_sent,
            "bad_ip_headers": result.receiver_bad_headers,
        },
        "wire": {
            "frames_sent": result.frames_sent,
            "frames_dropped": result.frames_dropped,
            "frames_duplicated": result.frames_duplicated,
            "frames_corrupted": result.frames_corrupted,
        },
        "reassembly": {
            "max_pending": result.reassembly_max_pending,
            "probe_violations": result.reassembly_probe_violations,
            "overflow_drops": result.reassembly_overflow_drops,
        },
        "finished_at": round(result.finished_at, 6),
    }


def campaign_report(
    seed: int, tier: str, scenarios: List[Dict[str, object]]
) -> Dict[str, object]:
    """The full campaign document."""
    failed = [s["name"] for s in scenarios if s["verdict"] != "pass"]
    return {
        "report_version": REPORT_VERSION,
        "seed": seed,
        "tier": tier,
        "invariants": list(INVARIANT_NAMES),
        "scenarios": scenarios,
        "summary": {
            "total": len(scenarios),
            "passed": len(scenarios) - len(failed),
            "failed": len(failed),
            "failed_scenarios": failed,
        },
    }


def to_json(report: Dict[str, object]) -> str:
    """Canonical serialization (byte-identical for identical reports)."""
    return json.dumps(report, indent=2, sort_keys=True) + "\n"
