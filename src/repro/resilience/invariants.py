"""Protocol invariants checked against every scenario run.

Each check takes a :class:`~repro.resilience.harness.ScenarioResult`
and returns a list of violation strings (empty = holds).  The checks
encode the paper's soft-state security claims as falsifiable
propositions:

* **authenticity** -- nothing the receiver's application saw differs by
  one bit from something the sender sent (covers corruption, forgery,
  and tampering in one stroke: FBSReceive's MAC is the only defence).
* **accounting** -- every rejected datagram carries exactly one reason,
  and received = accepted + rejected holds between trace and registry.
* **allowed reasons** -- a scenario only produces the rejection reasons
  its fault script can explain (a corruption run must not produce
  ``duplicate``; a replay run must not produce ``mac``).
* **goodput** -- delivery degrades gracefully, never below the
  scenario's declared floor.
* **recovery** -- after every soft-state flush, the receiver accepts
  again within the scenario's bounded number of rejected datagrams.
* **silence** -- the receiver sends zero packets, ever: recovery and
  rejection alike need no synchronization messages.
* **bounded memory** -- reassembly state never exceeds its cap.
* **at-most-once** -- with the replay guard on, no payload is delivered
  twice.
"""

from __future__ import annotations

from typing import Dict, List

from repro.obs.events import REJECTION_REASONS
from repro.resilience.harness import ScenarioResult

__all__ = ["check_all", "INVARIANT_NAMES"]

#: The invariant names, in check order (reported per scenario).
INVARIANT_NAMES = (
    "authenticity",
    "accounting",
    "allowed_reasons",
    "goodput",
    "recovery",
    "silence",
    "bounded_memory",
    "at_most_once",
)


def _check_authenticity(result: ScenarioResult) -> List[str]:
    sent = set(result.sent)
    violations = []
    for index, payload in enumerate(result.delivered):
        if payload not in sent:
            violations.append(
                f"authenticity: delivered payload #{index} "
                f"({len(payload)} bytes) matches nothing the sender sent "
                "-- a forged or corrupted datagram was accepted"
            )
    return violations


def _rejection_counts(result: ScenarioResult) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for event in result.events:
        if event.get("type") == "DatagramRejected":
            reason = str(event.get("reason"))
            counts[reason] = counts.get(reason, 0) + 1
    return counts


def _check_accounting(result: ScenarioResult) -> List[str]:
    violations = []
    trace_counts = _rejection_counts(result)
    for reason in trace_counts:
        if reason not in REJECTION_REASONS:
            violations.append(
                f"accounting: rejection reason {reason!r} is not in the "
                "closed REJECTION_REASONS vocabulary"
            )
    for reason in REJECTION_REASONS:
        counter = result.counters.get(
            f"datagrams_rejected{{reason={reason}}}", 0
        )
        traced = trace_counts.get(reason, 0)
        if counter != traced:
            violations.append(
                f"accounting: registry says {counter} "
                f"datagrams_rejected{{reason={reason}}} but the trace has "
                f"{traced} DatagramRejected events with that reason"
            )
    received = result.counters.get("datagrams_received", 0)
    accepted = result.counters.get("datagrams_accepted", 0)
    rejected = sum(
        result.counters.get(f"datagrams_rejected{{reason={r}}}", 0)
        for r in REJECTION_REASONS
    )
    if received != accepted + rejected:
        violations.append(
            f"accounting: datagrams_received={received} but "
            f"accepted+rejected={accepted}+{rejected}: a datagram was "
            "dropped without exactly one rejection reason"
        )
    return violations


def _check_allowed_reasons(result: ScenarioResult) -> List[str]:
    allowed = result.scenario.allowed_reasons
    if allowed is None:
        return []
    violations = []
    for reason, count in sorted(_rejection_counts(result).items()):
        if reason not in allowed:
            violations.append(
                f"allowed_reasons: {count} rejection(s) with reason "
                f"{reason!r}, which scenario {result.scenario.name!r} "
                f"cannot explain (allowed: {sorted(allowed)})"
            )
    return violations


def _check_goodput(result: ScenarioResult) -> List[str]:
    floor = result.scenario.min_goodput
    if result.goodput + 1e-12 < floor:
        return [
            f"goodput: {result.delivered_unique}/{len(result.sent)} "
            f"= {result.goodput:.3f} delivered, below the scenario floor "
            f"{floor:.3f}"
        ]
    return []


def _check_recovery(result: ScenarioResult) -> List[str]:
    """After each SoftStateFlushed mark, the next acceptance must come
    within ``recovery_bound`` rejected datagrams."""
    violations = []
    bound = result.scenario.recovery_bound
    events = result.events
    last_send = result.send_times[-1] if result.send_times else 0.0
    for index, event in enumerate(events):
        if event.get("type") != "SoftStateFlushed":
            continue
        flush_t = float(event.get("t", 0.0))
        remaining = sum(1 for t in result.send_times if t > flush_t)
        rejected_after = 0
        recovered = False
        for later in events[index + 1:]:
            etype = later.get("type")
            if etype == "DatagramAccepted":
                recovered = True
                break
            if etype == "DatagramRejected":
                rejected_after += 1
        if recovered and rejected_after > bound:
            violations.append(
                f"recovery: flush at t={flush_t:.3f} needed "
                f"{rejected_after} rejected datagrams before the next "
                f"acceptance (bound: {bound})"
            )
        elif not recovered and remaining > bound and flush_t <= last_send:
            violations.append(
                f"recovery: flush at t={flush_t:.3f} was never followed "
                f"by an acceptance despite {remaining} datagrams still "
                "to come"
            )
    return violations


def _check_silence(result: ScenarioResult) -> List[str]:
    if result.receiver_packets_sent != 0:
        return [
            f"silence: the receiver sent {result.receiver_packets_sent} "
            "packet(s); soft-state recovery must need zero "
            "synchronization messages"
        ]
    return []


def _check_bounded_memory(result: ScenarioResult) -> List[str]:
    if result.reassembly_probe_violations > 0:
        return [
            "bounded_memory: reassembly pending-partial count exceeded "
            f"max_partials {result.reassembly_probe_violations} time(s) "
            f"(max observed: {result.reassembly_max_pending})"
        ]
    return []


def _check_at_most_once(result: ScenarioResult) -> List[str]:
    if not result.scenario.expect_no_duplicates:
        return []
    seen: Dict[bytes, int] = {}
    for payload in result.delivered:
        seen[payload] = seen.get(payload, 0) + 1
    violations = []
    for payload, count in seen.items():
        if count > 1:
            violations.append(
                "at_most_once: payload "
                f"{payload[:16]!r}... delivered {count} times with the "
                "replay guard enabled"
            )
    return violations


_CHECKS = (
    _check_authenticity,
    _check_accounting,
    _check_allowed_reasons,
    _check_goodput,
    _check_recovery,
    _check_silence,
    _check_bounded_memory,
    _check_at_most_once,
)


def check_all(result: ScenarioResult) -> List[str]:
    """Run every invariant; returns all violations (empty = scenario
    passes)."""
    violations: List[str] = []
    for check in _CHECKS:
        violations.extend(check(result))
    return violations
