"""``python -m repro.resilience``: run a fault-injection campaign.

The JSON report goes to ``--out`` (or stdout); the human-readable
verdict table goes to stderr so redirecting stdout captures exactly the
byte-identical report.  Exit status is 0 when every scenario passes and
1 when any invariant is violated -- CI fails on a red campaign.

Examples::

    python -m repro.resilience --seed 0                  # full matrix
    python -m repro.resilience --smoke --out report.json # CI tier
    python -m repro.resilience --only corruption reboot  # subset
    python -m repro.resilience --list                    # scenario names
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.resilience.campaign import run_campaign
from repro.resilience.report import to_json
from repro.resilience.scenario import build_matrix

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.resilience",
        description="Deterministic FBS fault-injection campaign.",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="campaign seed (default 0)"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the short CI tier instead of the full matrix",
    )
    parser.add_argument(
        "--only",
        nargs="+",
        metavar="NAME",
        help="run only the named scenario(s)",
    )
    parser.add_argument(
        "--out",
        metavar="PATH",
        help="write the JSON report here instead of stdout",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        dest="list_scenarios",
        help="list scenario names and exit",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.list_scenarios:
        for scenario in build_matrix(smoke=args.smoke):
            print(f"{scenario.name}: {scenario.description}")
        return 0

    try:
        report = run_campaign(
            seed=args.seed, smoke=args.smoke, only=args.only
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    payload = to_json(report)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fp:
            fp.write(payload)
    else:
        sys.stdout.write(payload)

    summary = report["summary"]
    for scenario in report["scenarios"]:
        marker = "ok  " if scenario["verdict"] == "pass" else "FAIL"
        goodput = scenario["traffic"]["goodput"]
        print(
            f"[{marker}] {scenario['name']:<20} goodput={goodput:.3f}",
            file=sys.stderr,
        )
        for violation in scenario["violations"]:
            print(f"       - {violation}", file=sys.stderr)
    print(
        f"{summary['passed']}/{summary['total']} scenarios passed "
        f"(tier={report['tier']}, seed={report['seed']})",
        file=sys.stderr,
    )
    return 0 if summary["failed"] == 0 else 1
