"""Diffie-Hellman key exchange -- the basis of zero-message keying.

FBS derives the implicit pair-based master key::

    K_{S,D} = g^{sd} mod p

from each principal's private value (``s``, ``d``) and the peer's public
value (``g^d mod p``, ``g^s mod p``) over a common, well-known group
(Section 5.2).  The confidentiality of the private values and the
authenticity of the public values are assumed by the protocol; the
certificate machinery that delivers authenticated public values lives in
:mod:`repro.core.certificates`.

Groups
------
``WELL_KNOWN_GROUPS`` ships the Oakley groups 1 and 2 (RFC 2409) -- the
groups contemporary with the paper -- plus two small fixed safe-prime
groups (``TEST128``, ``TEST256``) used throughout the test suite where
cryptographic strength is irrelevant but speed matters.
"""

from __future__ import annotations

import random as _random
from dataclasses import dataclass, field
from typing import Dict

__all__ = ["DHGroup", "DHPrivateKey", "WELL_KNOWN_GROUPS"]

_OAKLEY1_P = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A63A3620FFFFFFFFFFFFFFFF",
    16,
)

_OAKLEY2_P = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE65381FFFFFFFFFFFFFFFF",
    16,
)

# Fixed safe primes (p = 2q + 1, q prime) generated once and pinned for
# deterministic, fast tests.
_TEST128_P = 0xEB93F78CC415E2B0BA5B209EF18B20E7
_TEST256_P = 0x8DF854994726EEB94A597E2642F883D47B91D68CAE4021510D6D4CEE5AF60563


@dataclass(frozen=True)
class DHGroup:
    """A Diffie-Hellman group: prime modulus ``p`` and generator ``g``."""

    name: str
    p: int
    g: int = 2

    @property
    def key_bytes(self) -> int:
        """Size of a shared secret when serialized, in bytes."""
        return (self.p.bit_length() + 7) // 8

    def public_value(self, private: int) -> int:
        """Compute ``g^private mod p``."""
        return pow(self.g, private, self.p)

    def shared_secret(self, private: int, peer_public: int) -> int:
        """Compute the pair secret ``peer_public^private mod p``.

        Rejects degenerate peer values (0, 1, p-1, or out of range) that
        would collapse the shared secret into a guessable constant.
        """
        if not 1 < peer_public < self.p - 1:
            raise ValueError("degenerate or out-of-range DH public value")
        return pow(peer_public, private, self.p)

    def shared_secret_bytes(self, private: int, peer_public: int) -> bytes:
        """Shared secret as a fixed-width big-endian byte string."""
        return self.shared_secret(private, peer_public).to_bytes(
            self.key_bytes, "big"
        )


WELL_KNOWN_GROUPS: Dict[str, DHGroup] = {
    "OAKLEY1": DHGroup("OAKLEY1", _OAKLEY1_P, 2),
    "OAKLEY2": DHGroup("OAKLEY2", _OAKLEY2_P, 2),
    "TEST128": DHGroup("TEST128", _TEST128_P, 2),
    "TEST256": DHGroup("TEST256", _TEST256_P, 2),
}


@dataclass
class DHPrivateKey:
    """A principal's Diffie-Hellman private value and cached public value.

    The paper assumes each principal holds a long-term private value whose
    public counterpart is certified (Section 5.2).  ``generate`` draws the
    private value from an explicit seeded RNG for reproducibility.
    """

    group: DHGroup
    private: int
    public: int = field(init=False)

    def __post_init__(self) -> None:
        if not 1 < self.private < self.group.p - 2:
            raise ValueError("DH private value out of range")
        self.public = self.group.public_value(self.private)

    @classmethod
    def generate(cls, group: DHGroup, rng: _random.Random) -> "DHPrivateKey":
        """Generate a fresh private value from ``rng``."""
        private = rng.randrange(2, group.p - 2)
        return cls(group=group, private=private)

    def agree(self, peer_public: int) -> bytes:
        """Derive the pair-based master secret with a peer's public value."""
        return self.group.shared_secret_bytes(self.private, peer_public)
