"""CRC-32 and the cache-index hash family.

Section 5.3 of the paper discusses how the flow state table and key
caches must be indexed: "simple hash functions, such as modulo and
XOR'ing, are fast but ... provide little randomness unless the input to
the hash function is already random. The input for all our caches could
be highly correlated, e.g., local network addresses and sequential sfls.
Therefore, the hash function for these caches must randomize the input
... An example of such a hash function is CRC-32."

This module provides a from-scratch table-driven CRC-32 (IEEE 802.3
polynomial, the variant a 1997 kernel would have had at hand) and the
three index-hash strategies -- modulo, XOR-folding, and CRC-32 -- as
interchangeable objects so that :mod:`repro.core.caches` and the
Figure 11 bench can compare their collision behaviour.
"""

from __future__ import annotations

from typing import Tuple

__all__ = ["crc32", "CacheIndexHash", "ModuloHash", "XorFoldHash", "Crc32Hash"]

_POLY = 0xEDB88320  # reflected IEEE 802.3 polynomial


def _build_table() -> Tuple[int, ...]:
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            crc = (crc >> 1) ^ _POLY if crc & 1 else crc >> 1
        table.append(crc)
    return tuple(table)


_TABLE = _build_table()


def crc32(data: bytes, crc: int = 0) -> int:
    """Compute the CRC-32 of ``data`` (IEEE, same convention as zlib).

    ``crc`` allows incremental computation: pass the previous return value
    to continue a running checksum.
    """
    crc ^= 0xFFFFFFFF
    for byte in data:
        crc = _TABLE[(crc ^ byte) & 0xFF] ^ (crc >> 8)
    return crc ^ 0xFFFFFFFF


class CacheIndexHash:
    """Strategy interface: map a key byte-string to a table index."""

    name = "abstract"

    def index(self, key: bytes, table_size: int) -> int:
        """Return an index in ``[0, table_size)`` for ``key``."""
        raise NotImplementedError


class ModuloHash(CacheIndexHash):
    """Interpret the key as an integer and take it modulo the table size.

    The "simple, fast, little randomness" strawman: correlated inputs
    (sequential sfls, adjacent IP addresses) collide systematically.
    """

    name = "modulo"

    def index(self, key: bytes, table_size: int) -> int:
        if table_size <= 0:
            raise ValueError("table size must be positive")
        return int.from_bytes(key, "big") % table_size


class XorFoldHash(CacheIndexHash):
    """Fold the key into 32 bits by XOR, then reduce modulo table size."""

    name = "xor"

    def index(self, key: bytes, table_size: int) -> int:
        if table_size <= 0:
            raise ValueError("table size must be positive")
        acc = 0
        for i in range(0, len(key), 4):
            acc ^= int.from_bytes(key[i : i + 4], "big")
        return acc % table_size


class Crc32Hash(CacheIndexHash):
    """Randomize the key with CRC-32, then reduce modulo table size.

    The paper's recommended choice: "Using such a hash function and a
    reasonable size direct-mapped cache, we can reduce cache lookup time
    to O(1) time in most cases."
    """

    name = "crc32"

    def index(self, key: bytes, table_size: int) -> int:
        if table_size <= 0:
            raise ValueError("table size must be positive")
        return crc32(key) % table_size
