"""Primality testing and prime generation for DH/RSA parameters.

All randomness is drawn from an explicit seeded source so parameter
generation is reproducible; nothing in this module touches global RNG
state.
"""

from __future__ import annotations

import random as _random
from typing import Optional

__all__ = [
    "is_probable_prime",
    "generate_prime",
    "generate_safe_prime",
    "SMALL_PRIMES",
]

#: Small primes used for fast trial division before Miller-Rabin.
SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61,
    67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137,
    139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199,
)


def is_probable_prime(n: int, rounds: int = 24, rng: Optional[_random.Random] = None) -> bool:
    """Miller-Rabin primality test.

    Parameters
    ----------
    n:
        Candidate integer.
    rounds:
        Number of random bases; error probability is at most 4**-rounds.
    rng:
        Optional seeded source for the bases (deterministic testing).
    """
    if n < 2:
        return False
    for p in SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    # Write n-1 = d * 2^r with d odd.
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    rng = rng or _random.Random(n)
    for _ in range(rounds):
        a = rng.randrange(2, n - 1)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


def generate_prime(bits: int, rng: _random.Random) -> int:
    """Generate a random prime of exactly ``bits`` bits."""
    if bits < 3:
        raise ValueError("prime size must be at least 3 bits")
    while True:
        candidate = rng.getrandbits(bits) | (1 << (bits - 1)) | 1
        if is_probable_prime(candidate, rng=rng):
            return candidate


def generate_safe_prime(bits: int, rng: _random.Random) -> int:
    """Generate a safe prime p (p = 2q + 1 with q prime) of ``bits`` bits.

    Safe primes make every quadratic residue a generator of the order-q
    subgroup, which is the standard hygiene for Diffie-Hellman moduli.
    Sizes used in tests are small (128-512 bits) to keep generation fast;
    the shipped well-known groups use fixed published moduli.
    """
    if bits < 4:
        raise ValueError("safe prime size must be at least 4 bits")
    while True:
        q = generate_prime(bits - 1, rng)
        p = 2 * q + 1
        if p.bit_length() == bits and is_probable_prime(p, rng=rng):
            return p
