"""SHA-1 / Secure Hash Standard (FIPS 180), implemented from scratch.

The paper names SHS as an alternative candidate for the hash function
``H`` used in flow-key derivation (Section 5.2) and notes that it
"produces 160-bit hashes" (Section 5.3).  As with MD5, this is a clear
streaming reference implementation validated against FIPS vectors and
``hashlib`` in the tests.
"""

from __future__ import annotations

import struct

__all__ = ["SHA1", "sha1", "DIGEST_SIZE"]

#: SHA-1 digest size in bytes (160 bits).
DIGEST_SIZE = 20

_INIT_STATE = (0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0)


def _rotl32(value: int, amount: int) -> int:
    value &= 0xFFFFFFFF
    return ((value << amount) | (value >> (32 - amount))) & 0xFFFFFFFF


class SHA1:
    """Incremental SHA-1, mirroring the ``hashlib`` object protocol."""

    digest_size = DIGEST_SIZE
    block_size = 64
    name = "sha1"

    def __init__(self, data: bytes = b"") -> None:
        self._state = list(_INIT_STATE)
        self._buffer = b""
        self._length = 0
        if data:
            self.update(data)

    def update(self, data: bytes) -> None:
        """Absorb more message bytes."""
        self._length += len(data)
        self._buffer += data
        while len(self._buffer) >= 64:
            self._compress(self._buffer[:64])
            self._buffer = self._buffer[64:]

    def _compress(self, chunk: bytes) -> None:
        w = list(struct.unpack(">16I", chunk))
        for i in range(16, 80):
            w.append(_rotl32(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1))
        a, b, c, d, e = self._state
        for i in range(80):
            if i < 20:
                f = (b & c) | (~b & d)
                k = 0x5A827999
            elif i < 40:
                f = b ^ c ^ d
                k = 0x6ED9EBA1
            elif i < 60:
                f = (b & c) | (b & d) | (c & d)
                k = 0x8F1BBCDC
            else:
                f = b ^ c ^ d
                k = 0xCA62C1D6
            temp = (_rotl32(a, 5) + f + e + k + w[i]) & 0xFFFFFFFF
            e = d
            d = c
            c = _rotl32(b, 30)
            b = a
            a = temp
        self._state = [
            (self._state[0] + a) & 0xFFFFFFFF,
            (self._state[1] + b) & 0xFFFFFFFF,
            (self._state[2] + c) & 0xFFFFFFFF,
            (self._state[3] + d) & 0xFFFFFFFF,
            (self._state[4] + e) & 0xFFFFFFFF,
        ]

    def digest(self) -> bytes:
        """Return the 20-byte digest of everything absorbed so far."""
        clone = self.copy()
        bit_length = (clone._length * 8) & 0xFFFFFFFFFFFFFFFF
        clone.update(b"\x80")
        while len(clone._buffer) != 56:
            clone.update(b"\x00")
        clone._buffer += struct.pack(">Q", bit_length)
        clone._compress(clone._buffer)
        return struct.pack(">5I", *clone._state)

    def hexdigest(self) -> str:
        """Return the digest as a lowercase hex string."""
        return self.digest().hex()

    def copy(self) -> "SHA1":
        """Return an independent copy of the running state."""
        clone = SHA1()
        clone._state = list(self._state)
        clone._buffer = self._buffer
        clone._length = self._length
        return clone


def sha1(data: bytes) -> bytes:
    """One-shot SHA-1 digest of ``data``."""
    return SHA1(data).digest()
