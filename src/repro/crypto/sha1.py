"""SHA-1 / Secure Hash Standard (FIPS 180), implemented from scratch.

The paper names SHS as an alternative candidate for the hash function
``H`` used in flow-key derivation (Section 5.2) and notes that it
"produces 160-bit hashes" (Section 5.3).  Correctness is checked against
FIPS vectors and :mod:`hashlib` by the tests.

Like :mod:`repro.crypto.md5`, the compress function is unrolled for
CPython speed: the message schedule and all 80 steps are explicit, the
round constants are inlined, rotates are shift/or on locals, and the
five working variables rotate *roles* instead of being shuffled through
five assignments per step.  Buffered input lives in a ``bytearray``
consumed via an offset (linear streaming), the running state is an
immutable tuple, and ``digest`` builds the padding block in one shot.
"""

from __future__ import annotations

import struct

__all__ = ["SHA1", "sha1", "DIGEST_SIZE"]

#: SHA-1 digest size in bytes (160 bits).
DIGEST_SIZE = 20

_INIT_STATE = (0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0)

_WORDS16 = struct.Struct(">16I")
_STATE5 = struct.Struct(">5I")
_LENGTH8 = struct.Struct(">Q")


def _compress(state, block, offset=0):
    """Fold one 64-byte block at ``offset`` into ``state`` (a 5-tuple)."""
    w0, w1, w2, w3, w4, w5, w6, w7, w8, w9, w10, w11, w12, w13, w14, w15 = _WORDS16.unpack_from(block, offset)
    a0, b0, c0, d0, e0 = state
    a = a0
    b = b0
    c = c0
    d = d0
    e = e0
    # Message schedule: w16..w79, rotl1 of the taps.
    t = w13 ^ w8 ^ w2 ^ w0
    w16 = ((t << 1) | (t >> 31)) & 0xFFFFFFFF
    t = w14 ^ w9 ^ w3 ^ w1
    w17 = ((t << 1) | (t >> 31)) & 0xFFFFFFFF
    t = w15 ^ w10 ^ w4 ^ w2
    w18 = ((t << 1) | (t >> 31)) & 0xFFFFFFFF
    t = w16 ^ w11 ^ w5 ^ w3
    w19 = ((t << 1) | (t >> 31)) & 0xFFFFFFFF
    t = w17 ^ w12 ^ w6 ^ w4
    w20 = ((t << 1) | (t >> 31)) & 0xFFFFFFFF
    t = w18 ^ w13 ^ w7 ^ w5
    w21 = ((t << 1) | (t >> 31)) & 0xFFFFFFFF
    t = w19 ^ w14 ^ w8 ^ w6
    w22 = ((t << 1) | (t >> 31)) & 0xFFFFFFFF
    t = w20 ^ w15 ^ w9 ^ w7
    w23 = ((t << 1) | (t >> 31)) & 0xFFFFFFFF
    t = w21 ^ w16 ^ w10 ^ w8
    w24 = ((t << 1) | (t >> 31)) & 0xFFFFFFFF
    t = w22 ^ w17 ^ w11 ^ w9
    w25 = ((t << 1) | (t >> 31)) & 0xFFFFFFFF
    t = w23 ^ w18 ^ w12 ^ w10
    w26 = ((t << 1) | (t >> 31)) & 0xFFFFFFFF
    t = w24 ^ w19 ^ w13 ^ w11
    w27 = ((t << 1) | (t >> 31)) & 0xFFFFFFFF
    t = w25 ^ w20 ^ w14 ^ w12
    w28 = ((t << 1) | (t >> 31)) & 0xFFFFFFFF
    t = w26 ^ w21 ^ w15 ^ w13
    w29 = ((t << 1) | (t >> 31)) & 0xFFFFFFFF
    t = w27 ^ w22 ^ w16 ^ w14
    w30 = ((t << 1) | (t >> 31)) & 0xFFFFFFFF
    t = w28 ^ w23 ^ w17 ^ w15
    w31 = ((t << 1) | (t >> 31)) & 0xFFFFFFFF
    t = w29 ^ w24 ^ w18 ^ w16
    w32 = ((t << 1) | (t >> 31)) & 0xFFFFFFFF
    t = w30 ^ w25 ^ w19 ^ w17
    w33 = ((t << 1) | (t >> 31)) & 0xFFFFFFFF
    t = w31 ^ w26 ^ w20 ^ w18
    w34 = ((t << 1) | (t >> 31)) & 0xFFFFFFFF
    t = w32 ^ w27 ^ w21 ^ w19
    w35 = ((t << 1) | (t >> 31)) & 0xFFFFFFFF
    t = w33 ^ w28 ^ w22 ^ w20
    w36 = ((t << 1) | (t >> 31)) & 0xFFFFFFFF
    t = w34 ^ w29 ^ w23 ^ w21
    w37 = ((t << 1) | (t >> 31)) & 0xFFFFFFFF
    t = w35 ^ w30 ^ w24 ^ w22
    w38 = ((t << 1) | (t >> 31)) & 0xFFFFFFFF
    t = w36 ^ w31 ^ w25 ^ w23
    w39 = ((t << 1) | (t >> 31)) & 0xFFFFFFFF
    t = w37 ^ w32 ^ w26 ^ w24
    w40 = ((t << 1) | (t >> 31)) & 0xFFFFFFFF
    t = w38 ^ w33 ^ w27 ^ w25
    w41 = ((t << 1) | (t >> 31)) & 0xFFFFFFFF
    t = w39 ^ w34 ^ w28 ^ w26
    w42 = ((t << 1) | (t >> 31)) & 0xFFFFFFFF
    t = w40 ^ w35 ^ w29 ^ w27
    w43 = ((t << 1) | (t >> 31)) & 0xFFFFFFFF
    t = w41 ^ w36 ^ w30 ^ w28
    w44 = ((t << 1) | (t >> 31)) & 0xFFFFFFFF
    t = w42 ^ w37 ^ w31 ^ w29
    w45 = ((t << 1) | (t >> 31)) & 0xFFFFFFFF
    t = w43 ^ w38 ^ w32 ^ w30
    w46 = ((t << 1) | (t >> 31)) & 0xFFFFFFFF
    t = w44 ^ w39 ^ w33 ^ w31
    w47 = ((t << 1) | (t >> 31)) & 0xFFFFFFFF
    t = w45 ^ w40 ^ w34 ^ w32
    w48 = ((t << 1) | (t >> 31)) & 0xFFFFFFFF
    t = w46 ^ w41 ^ w35 ^ w33
    w49 = ((t << 1) | (t >> 31)) & 0xFFFFFFFF
    t = w47 ^ w42 ^ w36 ^ w34
    w50 = ((t << 1) | (t >> 31)) & 0xFFFFFFFF
    t = w48 ^ w43 ^ w37 ^ w35
    w51 = ((t << 1) | (t >> 31)) & 0xFFFFFFFF
    t = w49 ^ w44 ^ w38 ^ w36
    w52 = ((t << 1) | (t >> 31)) & 0xFFFFFFFF
    t = w50 ^ w45 ^ w39 ^ w37
    w53 = ((t << 1) | (t >> 31)) & 0xFFFFFFFF
    t = w51 ^ w46 ^ w40 ^ w38
    w54 = ((t << 1) | (t >> 31)) & 0xFFFFFFFF
    t = w52 ^ w47 ^ w41 ^ w39
    w55 = ((t << 1) | (t >> 31)) & 0xFFFFFFFF
    t = w53 ^ w48 ^ w42 ^ w40
    w56 = ((t << 1) | (t >> 31)) & 0xFFFFFFFF
    t = w54 ^ w49 ^ w43 ^ w41
    w57 = ((t << 1) | (t >> 31)) & 0xFFFFFFFF
    t = w55 ^ w50 ^ w44 ^ w42
    w58 = ((t << 1) | (t >> 31)) & 0xFFFFFFFF
    t = w56 ^ w51 ^ w45 ^ w43
    w59 = ((t << 1) | (t >> 31)) & 0xFFFFFFFF
    t = w57 ^ w52 ^ w46 ^ w44
    w60 = ((t << 1) | (t >> 31)) & 0xFFFFFFFF
    t = w58 ^ w53 ^ w47 ^ w45
    w61 = ((t << 1) | (t >> 31)) & 0xFFFFFFFF
    t = w59 ^ w54 ^ w48 ^ w46
    w62 = ((t << 1) | (t >> 31)) & 0xFFFFFFFF
    t = w60 ^ w55 ^ w49 ^ w47
    w63 = ((t << 1) | (t >> 31)) & 0xFFFFFFFF
    t = w61 ^ w56 ^ w50 ^ w48
    w64 = ((t << 1) | (t >> 31)) & 0xFFFFFFFF
    t = w62 ^ w57 ^ w51 ^ w49
    w65 = ((t << 1) | (t >> 31)) & 0xFFFFFFFF
    t = w63 ^ w58 ^ w52 ^ w50
    w66 = ((t << 1) | (t >> 31)) & 0xFFFFFFFF
    t = w64 ^ w59 ^ w53 ^ w51
    w67 = ((t << 1) | (t >> 31)) & 0xFFFFFFFF
    t = w65 ^ w60 ^ w54 ^ w52
    w68 = ((t << 1) | (t >> 31)) & 0xFFFFFFFF
    t = w66 ^ w61 ^ w55 ^ w53
    w69 = ((t << 1) | (t >> 31)) & 0xFFFFFFFF
    t = w67 ^ w62 ^ w56 ^ w54
    w70 = ((t << 1) | (t >> 31)) & 0xFFFFFFFF
    t = w68 ^ w63 ^ w57 ^ w55
    w71 = ((t << 1) | (t >> 31)) & 0xFFFFFFFF
    t = w69 ^ w64 ^ w58 ^ w56
    w72 = ((t << 1) | (t >> 31)) & 0xFFFFFFFF
    t = w70 ^ w65 ^ w59 ^ w57
    w73 = ((t << 1) | (t >> 31)) & 0xFFFFFFFF
    t = w71 ^ w66 ^ w60 ^ w58
    w74 = ((t << 1) | (t >> 31)) & 0xFFFFFFFF
    t = w72 ^ w67 ^ w61 ^ w59
    w75 = ((t << 1) | (t >> 31)) & 0xFFFFFFFF
    t = w73 ^ w68 ^ w62 ^ w60
    w76 = ((t << 1) | (t >> 31)) & 0xFFFFFFFF
    t = w74 ^ w69 ^ w63 ^ w61
    w77 = ((t << 1) | (t >> 31)) & 0xFFFFFFFF
    t = w75 ^ w70 ^ w64 ^ w62
    w78 = ((t << 1) | (t >> 31)) & 0xFFFFFFFF
    t = w76 ^ w71 ^ w65 ^ w63
    w79 = ((t << 1) | (t >> 31)) & 0xFFFFFFFF
    # Round 1 (steps 0-19).
    e = (e + (a << 5 | a >> 27) + (d ^ (b & (c ^ d))) + 0x5A827999 + w0) & 0xFFFFFFFF
    b = b << 30 | b >> 2
    d = (d + (e << 5 | e >> 27) + (c ^ (a & (b ^ c))) + 0x5A827999 + w1) & 0xFFFFFFFF
    a = a << 30 | a >> 2
    c = (c + (d << 5 | d >> 27) + (b ^ (e & (a ^ b))) + 0x5A827999 + w2) & 0xFFFFFFFF
    e = e << 30 | e >> 2
    b = (b + (c << 5 | c >> 27) + (a ^ (d & (e ^ a))) + 0x5A827999 + w3) & 0xFFFFFFFF
    d = d << 30 | d >> 2
    a = (a + (b << 5 | b >> 27) + (e ^ (c & (d ^ e))) + 0x5A827999 + w4) & 0xFFFFFFFF
    c = c << 30 | c >> 2
    e = (e + (a << 5 | a >> 27) + (d ^ (b & (c ^ d))) + 0x5A827999 + w5) & 0xFFFFFFFF
    b = b << 30 | b >> 2
    d = (d + (e << 5 | e >> 27) + (c ^ (a & (b ^ c))) + 0x5A827999 + w6) & 0xFFFFFFFF
    a = a << 30 | a >> 2
    c = (c + (d << 5 | d >> 27) + (b ^ (e & (a ^ b))) + 0x5A827999 + w7) & 0xFFFFFFFF
    e = e << 30 | e >> 2
    b = (b + (c << 5 | c >> 27) + (a ^ (d & (e ^ a))) + 0x5A827999 + w8) & 0xFFFFFFFF
    d = d << 30 | d >> 2
    a = (a + (b << 5 | b >> 27) + (e ^ (c & (d ^ e))) + 0x5A827999 + w9) & 0xFFFFFFFF
    c = c << 30 | c >> 2
    e = (e + (a << 5 | a >> 27) + (d ^ (b & (c ^ d))) + 0x5A827999 + w10) & 0xFFFFFFFF
    b = b << 30 | b >> 2
    d = (d + (e << 5 | e >> 27) + (c ^ (a & (b ^ c))) + 0x5A827999 + w11) & 0xFFFFFFFF
    a = a << 30 | a >> 2
    c = (c + (d << 5 | d >> 27) + (b ^ (e & (a ^ b))) + 0x5A827999 + w12) & 0xFFFFFFFF
    e = e << 30 | e >> 2
    b = (b + (c << 5 | c >> 27) + (a ^ (d & (e ^ a))) + 0x5A827999 + w13) & 0xFFFFFFFF
    d = d << 30 | d >> 2
    a = (a + (b << 5 | b >> 27) + (e ^ (c & (d ^ e))) + 0x5A827999 + w14) & 0xFFFFFFFF
    c = c << 30 | c >> 2
    e = (e + (a << 5 | a >> 27) + (d ^ (b & (c ^ d))) + 0x5A827999 + w15) & 0xFFFFFFFF
    b = b << 30 | b >> 2
    d = (d + (e << 5 | e >> 27) + (c ^ (a & (b ^ c))) + 0x5A827999 + w16) & 0xFFFFFFFF
    a = a << 30 | a >> 2
    c = (c + (d << 5 | d >> 27) + (b ^ (e & (a ^ b))) + 0x5A827999 + w17) & 0xFFFFFFFF
    e = e << 30 | e >> 2
    b = (b + (c << 5 | c >> 27) + (a ^ (d & (e ^ a))) + 0x5A827999 + w18) & 0xFFFFFFFF
    d = d << 30 | d >> 2
    a = (a + (b << 5 | b >> 27) + (e ^ (c & (d ^ e))) + 0x5A827999 + w19) & 0xFFFFFFFF
    c = c << 30 | c >> 2
    # Round 2 (steps 20-39).
    e = (e + (a << 5 | a >> 27) + (b ^ c ^ d) + 0x6ED9EBA1 + w20) & 0xFFFFFFFF
    b = b << 30 | b >> 2
    d = (d + (e << 5 | e >> 27) + (a ^ b ^ c) + 0x6ED9EBA1 + w21) & 0xFFFFFFFF
    a = a << 30 | a >> 2
    c = (c + (d << 5 | d >> 27) + (e ^ a ^ b) + 0x6ED9EBA1 + w22) & 0xFFFFFFFF
    e = e << 30 | e >> 2
    b = (b + (c << 5 | c >> 27) + (d ^ e ^ a) + 0x6ED9EBA1 + w23) & 0xFFFFFFFF
    d = d << 30 | d >> 2
    a = (a + (b << 5 | b >> 27) + (c ^ d ^ e) + 0x6ED9EBA1 + w24) & 0xFFFFFFFF
    c = c << 30 | c >> 2
    e = (e + (a << 5 | a >> 27) + (b ^ c ^ d) + 0x6ED9EBA1 + w25) & 0xFFFFFFFF
    b = b << 30 | b >> 2
    d = (d + (e << 5 | e >> 27) + (a ^ b ^ c) + 0x6ED9EBA1 + w26) & 0xFFFFFFFF
    a = a << 30 | a >> 2
    c = (c + (d << 5 | d >> 27) + (e ^ a ^ b) + 0x6ED9EBA1 + w27) & 0xFFFFFFFF
    e = e << 30 | e >> 2
    b = (b + (c << 5 | c >> 27) + (d ^ e ^ a) + 0x6ED9EBA1 + w28) & 0xFFFFFFFF
    d = d << 30 | d >> 2
    a = (a + (b << 5 | b >> 27) + (c ^ d ^ e) + 0x6ED9EBA1 + w29) & 0xFFFFFFFF
    c = c << 30 | c >> 2
    e = (e + (a << 5 | a >> 27) + (b ^ c ^ d) + 0x6ED9EBA1 + w30) & 0xFFFFFFFF
    b = b << 30 | b >> 2
    d = (d + (e << 5 | e >> 27) + (a ^ b ^ c) + 0x6ED9EBA1 + w31) & 0xFFFFFFFF
    a = a << 30 | a >> 2
    c = (c + (d << 5 | d >> 27) + (e ^ a ^ b) + 0x6ED9EBA1 + w32) & 0xFFFFFFFF
    e = e << 30 | e >> 2
    b = (b + (c << 5 | c >> 27) + (d ^ e ^ a) + 0x6ED9EBA1 + w33) & 0xFFFFFFFF
    d = d << 30 | d >> 2
    a = (a + (b << 5 | b >> 27) + (c ^ d ^ e) + 0x6ED9EBA1 + w34) & 0xFFFFFFFF
    c = c << 30 | c >> 2
    e = (e + (a << 5 | a >> 27) + (b ^ c ^ d) + 0x6ED9EBA1 + w35) & 0xFFFFFFFF
    b = b << 30 | b >> 2
    d = (d + (e << 5 | e >> 27) + (a ^ b ^ c) + 0x6ED9EBA1 + w36) & 0xFFFFFFFF
    a = a << 30 | a >> 2
    c = (c + (d << 5 | d >> 27) + (e ^ a ^ b) + 0x6ED9EBA1 + w37) & 0xFFFFFFFF
    e = e << 30 | e >> 2
    b = (b + (c << 5 | c >> 27) + (d ^ e ^ a) + 0x6ED9EBA1 + w38) & 0xFFFFFFFF
    d = d << 30 | d >> 2
    a = (a + (b << 5 | b >> 27) + (c ^ d ^ e) + 0x6ED9EBA1 + w39) & 0xFFFFFFFF
    c = c << 30 | c >> 2
    # Round 3 (steps 40-59).
    e = (e + (a << 5 | a >> 27) + ((b & c) | ((b | c) & d)) + 0x8F1BBCDC + w40) & 0xFFFFFFFF
    b = b << 30 | b >> 2
    d = (d + (e << 5 | e >> 27) + ((a & b) | ((a | b) & c)) + 0x8F1BBCDC + w41) & 0xFFFFFFFF
    a = a << 30 | a >> 2
    c = (c + (d << 5 | d >> 27) + ((e & a) | ((e | a) & b)) + 0x8F1BBCDC + w42) & 0xFFFFFFFF
    e = e << 30 | e >> 2
    b = (b + (c << 5 | c >> 27) + ((d & e) | ((d | e) & a)) + 0x8F1BBCDC + w43) & 0xFFFFFFFF
    d = d << 30 | d >> 2
    a = (a + (b << 5 | b >> 27) + ((c & d) | ((c | d) & e)) + 0x8F1BBCDC + w44) & 0xFFFFFFFF
    c = c << 30 | c >> 2
    e = (e + (a << 5 | a >> 27) + ((b & c) | ((b | c) & d)) + 0x8F1BBCDC + w45) & 0xFFFFFFFF
    b = b << 30 | b >> 2
    d = (d + (e << 5 | e >> 27) + ((a & b) | ((a | b) & c)) + 0x8F1BBCDC + w46) & 0xFFFFFFFF
    a = a << 30 | a >> 2
    c = (c + (d << 5 | d >> 27) + ((e & a) | ((e | a) & b)) + 0x8F1BBCDC + w47) & 0xFFFFFFFF
    e = e << 30 | e >> 2
    b = (b + (c << 5 | c >> 27) + ((d & e) | ((d | e) & a)) + 0x8F1BBCDC + w48) & 0xFFFFFFFF
    d = d << 30 | d >> 2
    a = (a + (b << 5 | b >> 27) + ((c & d) | ((c | d) & e)) + 0x8F1BBCDC + w49) & 0xFFFFFFFF
    c = c << 30 | c >> 2
    e = (e + (a << 5 | a >> 27) + ((b & c) | ((b | c) & d)) + 0x8F1BBCDC + w50) & 0xFFFFFFFF
    b = b << 30 | b >> 2
    d = (d + (e << 5 | e >> 27) + ((a & b) | ((a | b) & c)) + 0x8F1BBCDC + w51) & 0xFFFFFFFF
    a = a << 30 | a >> 2
    c = (c + (d << 5 | d >> 27) + ((e & a) | ((e | a) & b)) + 0x8F1BBCDC + w52) & 0xFFFFFFFF
    e = e << 30 | e >> 2
    b = (b + (c << 5 | c >> 27) + ((d & e) | ((d | e) & a)) + 0x8F1BBCDC + w53) & 0xFFFFFFFF
    d = d << 30 | d >> 2
    a = (a + (b << 5 | b >> 27) + ((c & d) | ((c | d) & e)) + 0x8F1BBCDC + w54) & 0xFFFFFFFF
    c = c << 30 | c >> 2
    e = (e + (a << 5 | a >> 27) + ((b & c) | ((b | c) & d)) + 0x8F1BBCDC + w55) & 0xFFFFFFFF
    b = b << 30 | b >> 2
    d = (d + (e << 5 | e >> 27) + ((a & b) | ((a | b) & c)) + 0x8F1BBCDC + w56) & 0xFFFFFFFF
    a = a << 30 | a >> 2
    c = (c + (d << 5 | d >> 27) + ((e & a) | ((e | a) & b)) + 0x8F1BBCDC + w57) & 0xFFFFFFFF
    e = e << 30 | e >> 2
    b = (b + (c << 5 | c >> 27) + ((d & e) | ((d | e) & a)) + 0x8F1BBCDC + w58) & 0xFFFFFFFF
    d = d << 30 | d >> 2
    a = (a + (b << 5 | b >> 27) + ((c & d) | ((c | d) & e)) + 0x8F1BBCDC + w59) & 0xFFFFFFFF
    c = c << 30 | c >> 2
    # Round 4 (steps 60-79).
    e = (e + (a << 5 | a >> 27) + (b ^ c ^ d) + 0xCA62C1D6 + w60) & 0xFFFFFFFF
    b = b << 30 | b >> 2
    d = (d + (e << 5 | e >> 27) + (a ^ b ^ c) + 0xCA62C1D6 + w61) & 0xFFFFFFFF
    a = a << 30 | a >> 2
    c = (c + (d << 5 | d >> 27) + (e ^ a ^ b) + 0xCA62C1D6 + w62) & 0xFFFFFFFF
    e = e << 30 | e >> 2
    b = (b + (c << 5 | c >> 27) + (d ^ e ^ a) + 0xCA62C1D6 + w63) & 0xFFFFFFFF
    d = d << 30 | d >> 2
    a = (a + (b << 5 | b >> 27) + (c ^ d ^ e) + 0xCA62C1D6 + w64) & 0xFFFFFFFF
    c = c << 30 | c >> 2
    e = (e + (a << 5 | a >> 27) + (b ^ c ^ d) + 0xCA62C1D6 + w65) & 0xFFFFFFFF
    b = b << 30 | b >> 2
    d = (d + (e << 5 | e >> 27) + (a ^ b ^ c) + 0xCA62C1D6 + w66) & 0xFFFFFFFF
    a = a << 30 | a >> 2
    c = (c + (d << 5 | d >> 27) + (e ^ a ^ b) + 0xCA62C1D6 + w67) & 0xFFFFFFFF
    e = e << 30 | e >> 2
    b = (b + (c << 5 | c >> 27) + (d ^ e ^ a) + 0xCA62C1D6 + w68) & 0xFFFFFFFF
    d = d << 30 | d >> 2
    a = (a + (b << 5 | b >> 27) + (c ^ d ^ e) + 0xCA62C1D6 + w69) & 0xFFFFFFFF
    c = c << 30 | c >> 2
    e = (e + (a << 5 | a >> 27) + (b ^ c ^ d) + 0xCA62C1D6 + w70) & 0xFFFFFFFF
    b = b << 30 | b >> 2
    d = (d + (e << 5 | e >> 27) + (a ^ b ^ c) + 0xCA62C1D6 + w71) & 0xFFFFFFFF
    a = a << 30 | a >> 2
    c = (c + (d << 5 | d >> 27) + (e ^ a ^ b) + 0xCA62C1D6 + w72) & 0xFFFFFFFF
    e = e << 30 | e >> 2
    b = (b + (c << 5 | c >> 27) + (d ^ e ^ a) + 0xCA62C1D6 + w73) & 0xFFFFFFFF
    d = d << 30 | d >> 2
    a = (a + (b << 5 | b >> 27) + (c ^ d ^ e) + 0xCA62C1D6 + w74) & 0xFFFFFFFF
    c = c << 30 | c >> 2
    e = (e + (a << 5 | a >> 27) + (b ^ c ^ d) + 0xCA62C1D6 + w75) & 0xFFFFFFFF
    b = b << 30 | b >> 2
    d = (d + (e << 5 | e >> 27) + (a ^ b ^ c) + 0xCA62C1D6 + w76) & 0xFFFFFFFF
    a = a << 30 | a >> 2
    c = (c + (d << 5 | d >> 27) + (e ^ a ^ b) + 0xCA62C1D6 + w77) & 0xFFFFFFFF
    e = e << 30 | e >> 2
    b = (b + (c << 5 | c >> 27) + (d ^ e ^ a) + 0xCA62C1D6 + w78) & 0xFFFFFFFF
    d = d << 30 | d >> 2
    a = (a + (b << 5 | b >> 27) + (c ^ d ^ e) + 0xCA62C1D6 + w79) & 0xFFFFFFFF
    c = c << 30 | c >> 2
    return (
        (a0 + a) & 0xFFFFFFFF,
        (b0 + b) & 0xFFFFFFFF,
        (c0 + c) & 0xFFFFFFFF,
        (d0 + d) & 0xFFFFFFFF,
        (e0 + e) & 0xFFFFFFFF,
    )


class SHA1:
    """Incremental SHA-1, mirroring the ``hashlib`` object protocol."""

    digest_size = DIGEST_SIZE
    block_size = 64
    name = "sha1"

    __slots__ = ("_state", "_buffer", "_length")

    def __init__(self, data: bytes = b"") -> None:
        self._state = _INIT_STATE
        self._buffer = bytearray()
        self._length = 0
        if data:
            self.update(data)

    def update(self, data: bytes) -> None:
        """Absorb more message bytes."""
        self._length += len(data)
        buffer = self._buffer
        buffer += data
        end = len(buffer)
        if end >= 64:
            state = self._state
            offset = 0
            while offset + 64 <= end:
                state = _compress(state, buffer, offset)
                offset += 64
            del buffer[:offset]
            self._state = state

    def digest(self) -> bytes:
        """Return the 20-byte digest of everything absorbed so far."""
        # One-shot FIPS 180 padding; see MD5.digest for the scheme (the
        # length field is big-endian here).
        length = self._length
        tail = (
            bytes(self._buffer)
            + b"\x80"
            + b"\x00" * ((55 - length) % 64)
            + _LENGTH8.pack((length * 8) & 0xFFFFFFFFFFFFFFFF)
        )
        state = self._state
        for offset in range(0, len(tail), 64):
            state = _compress(state, tail, offset)
        return _STATE5.pack(*state)

    def hexdigest(self) -> str:
        """Return the digest as a lowercase hex string."""
        return self.digest().hex()

    def copy(self) -> "SHA1":
        """Return an independent copy of the running state."""
        clone = SHA1.__new__(SHA1)
        clone._state = self._state
        clone._buffer = bytearray(self._buffer)
        clone._length = self._length
        return clone


def sha1(data: bytes) -> bytes:
    """One-shot SHA-1 digest of ``data``."""
    return SHA1(data).digest()
