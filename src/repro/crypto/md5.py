"""MD5 message digest (RFC 1321), implemented from scratch.

MD5 is the paper's choice both for the flow-key derivation hash ``H`` and
for the keyed MAC ("keyed MD5 is used to compute the MAC", Section 7.2).
This is a streaming implementation with the familiar ``update``/``digest``
interface; correctness is checked against the RFC 1321 test suite and
against :mod:`hashlib` by the tests.

Because every protected datagram pays one MD5 pass over its body, the
compress function is the datapath's single hottest loop and is written
for CPython speed:

* the 64 steps are fully unrolled into the four explicit 16-step rounds
  of RFC 1321, with the sine constants inlined and the rotates expressed
  as shift/or on locals (no helper calls, no per-step table indexing);
* the round functions use the 3-op forms ``F = d ^ (b & (c ^ d))`` and
  ``G = c ^ (d & (b ^ c))`` instead of the 4-op textbook forms;
* buffered input lives in a ``bytearray`` consumed via an offset, so
  streaming ``update`` calls are linear (the naive ``bytes`` reslice is
  quadratic);
* running state is an immutable tuple, so ``digest`` needs no clone: it
  builds the whole RFC 1321 padding block in one shot and folds it into
  a state copy-on-write.
"""

from __future__ import annotations

import struct

__all__ = ["MD5", "md5", "DIGEST_SIZE"]

#: MD5 digest size in bytes (the paper's 128-bit MAC field).
DIGEST_SIZE = 16

_INIT_STATE = (0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476)

_WORDS16 = struct.Struct("<16I")
_STATE4 = struct.Struct("<4I")
_LENGTH8 = struct.Struct("<Q")


def _compress(state, block, offset=0):
    """Fold one 64-byte block at ``offset`` into ``state`` (a 4-tuple)."""
    x0, x1, x2, x3, x4, x5, x6, x7, x8, x9, x10, x11, x12, x13, x14, x15 = (
        _WORDS16.unpack_from(block, offset)
    )
    a0, b0, c0, d0 = state
    a = a0
    b = b0
    c = c0
    d = d0
    # Round 1.
    t = (a + (d ^ (b & (c ^ d))) + 0xD76AA478 + x0) & 0xFFFFFFFF
    a = b + ((t << 7) | (t >> 25))
    t = (d + (c ^ (a & (b ^ c))) + 0xE8C7B756 + x1) & 0xFFFFFFFF
    d = a + ((t << 12) | (t >> 20))
    t = (c + (b ^ (d & (a ^ b))) + 0x242070DB + x2) & 0xFFFFFFFF
    c = d + ((t << 17) | (t >> 15))
    t = (b + (a ^ (c & (d ^ a))) + 0xC1BDCEEE + x3) & 0xFFFFFFFF
    b = c + ((t << 22) | (t >> 10))
    t = (a + (d ^ (b & (c ^ d))) + 0xF57C0FAF + x4) & 0xFFFFFFFF
    a = b + ((t << 7) | (t >> 25))
    t = (d + (c ^ (a & (b ^ c))) + 0x4787C62A + x5) & 0xFFFFFFFF
    d = a + ((t << 12) | (t >> 20))
    t = (c + (b ^ (d & (a ^ b))) + 0xA8304613 + x6) & 0xFFFFFFFF
    c = d + ((t << 17) | (t >> 15))
    t = (b + (a ^ (c & (d ^ a))) + 0xFD469501 + x7) & 0xFFFFFFFF
    b = c + ((t << 22) | (t >> 10))
    t = (a + (d ^ (b & (c ^ d))) + 0x698098D8 + x8) & 0xFFFFFFFF
    a = b + ((t << 7) | (t >> 25))
    t = (d + (c ^ (a & (b ^ c))) + 0x8B44F7AF + x9) & 0xFFFFFFFF
    d = a + ((t << 12) | (t >> 20))
    t = (c + (b ^ (d & (a ^ b))) + 0xFFFF5BB1 + x10) & 0xFFFFFFFF
    c = d + ((t << 17) | (t >> 15))
    t = (b + (a ^ (c & (d ^ a))) + 0x895CD7BE + x11) & 0xFFFFFFFF
    b = c + ((t << 22) | (t >> 10))
    t = (a + (d ^ (b & (c ^ d))) + 0x6B901122 + x12) & 0xFFFFFFFF
    a = b + ((t << 7) | (t >> 25))
    t = (d + (c ^ (a & (b ^ c))) + 0xFD987193 + x13) & 0xFFFFFFFF
    d = a + ((t << 12) | (t >> 20))
    t = (c + (b ^ (d & (a ^ b))) + 0xA679438E + x14) & 0xFFFFFFFF
    c = d + ((t << 17) | (t >> 15))
    t = (b + (a ^ (c & (d ^ a))) + 0x49B40821 + x15) & 0xFFFFFFFF
    b = c + ((t << 22) | (t >> 10))
    # Round 2.
    t = (a + (c ^ (d & (b ^ c))) + 0xF61E2562 + x1) & 0xFFFFFFFF
    a = b + ((t << 5) | (t >> 27))
    t = (d + (b ^ (c & (a ^ b))) + 0xC040B340 + x6) & 0xFFFFFFFF
    d = a + ((t << 9) | (t >> 23))
    t = (c + (a ^ (b & (d ^ a))) + 0x265E5A51 + x11) & 0xFFFFFFFF
    c = d + ((t << 14) | (t >> 18))
    t = (b + (d ^ (a & (c ^ d))) + 0xE9B6C7AA + x0) & 0xFFFFFFFF
    b = c + ((t << 20) | (t >> 12))
    t = (a + (c ^ (d & (b ^ c))) + 0xD62F105D + x5) & 0xFFFFFFFF
    a = b + ((t << 5) | (t >> 27))
    t = (d + (b ^ (c & (a ^ b))) + 0x02441453 + x10) & 0xFFFFFFFF
    d = a + ((t << 9) | (t >> 23))
    t = (c + (a ^ (b & (d ^ a))) + 0xD8A1E681 + x15) & 0xFFFFFFFF
    c = d + ((t << 14) | (t >> 18))
    t = (b + (d ^ (a & (c ^ d))) + 0xE7D3FBC8 + x4) & 0xFFFFFFFF
    b = c + ((t << 20) | (t >> 12))
    t = (a + (c ^ (d & (b ^ c))) + 0x21E1CDE6 + x9) & 0xFFFFFFFF
    a = b + ((t << 5) | (t >> 27))
    t = (d + (b ^ (c & (a ^ b))) + 0xC33707D6 + x14) & 0xFFFFFFFF
    d = a + ((t << 9) | (t >> 23))
    t = (c + (a ^ (b & (d ^ a))) + 0xF4D50D87 + x3) & 0xFFFFFFFF
    c = d + ((t << 14) | (t >> 18))
    t = (b + (d ^ (a & (c ^ d))) + 0x455A14ED + x8) & 0xFFFFFFFF
    b = c + ((t << 20) | (t >> 12))
    t = (a + (c ^ (d & (b ^ c))) + 0xA9E3E905 + x13) & 0xFFFFFFFF
    a = b + ((t << 5) | (t >> 27))
    t = (d + (b ^ (c & (a ^ b))) + 0xFCEFA3F8 + x2) & 0xFFFFFFFF
    d = a + ((t << 9) | (t >> 23))
    t = (c + (a ^ (b & (d ^ a))) + 0x676F02D9 + x7) & 0xFFFFFFFF
    c = d + ((t << 14) | (t >> 18))
    t = (b + (d ^ (a & (c ^ d))) + 0x8D2A4C8A + x12) & 0xFFFFFFFF
    b = c + ((t << 20) | (t >> 12))
    # Round 3.
    t = (a + (b ^ c ^ d) + 0xFFFA3942 + x5) & 0xFFFFFFFF
    a = b + ((t << 4) | (t >> 28))
    t = (d + (a ^ b ^ c) + 0x8771F681 + x8) & 0xFFFFFFFF
    d = a + ((t << 11) | (t >> 21))
    t = (c + (d ^ a ^ b) + 0x6D9D6122 + x11) & 0xFFFFFFFF
    c = d + ((t << 16) | (t >> 16))
    t = (b + (c ^ d ^ a) + 0xFDE5380C + x14) & 0xFFFFFFFF
    b = c + ((t << 23) | (t >> 9))
    t = (a + (b ^ c ^ d) + 0xA4BEEA44 + x1) & 0xFFFFFFFF
    a = b + ((t << 4) | (t >> 28))
    t = (d + (a ^ b ^ c) + 0x4BDECFA9 + x4) & 0xFFFFFFFF
    d = a + ((t << 11) | (t >> 21))
    t = (c + (d ^ a ^ b) + 0xF6BB4B60 + x7) & 0xFFFFFFFF
    c = d + ((t << 16) | (t >> 16))
    t = (b + (c ^ d ^ a) + 0xBEBFBC70 + x10) & 0xFFFFFFFF
    b = c + ((t << 23) | (t >> 9))
    t = (a + (b ^ c ^ d) + 0x289B7EC6 + x13) & 0xFFFFFFFF
    a = b + ((t << 4) | (t >> 28))
    t = (d + (a ^ b ^ c) + 0xEAA127FA + x0) & 0xFFFFFFFF
    d = a + ((t << 11) | (t >> 21))
    t = (c + (d ^ a ^ b) + 0xD4EF3085 + x3) & 0xFFFFFFFF
    c = d + ((t << 16) | (t >> 16))
    t = (b + (c ^ d ^ a) + 0x04881D05 + x6) & 0xFFFFFFFF
    b = c + ((t << 23) | (t >> 9))
    t = (a + (b ^ c ^ d) + 0xD9D4D039 + x9) & 0xFFFFFFFF
    a = b + ((t << 4) | (t >> 28))
    t = (d + (a ^ b ^ c) + 0xE6DB99E5 + x12) & 0xFFFFFFFF
    d = a + ((t << 11) | (t >> 21))
    t = (c + (d ^ a ^ b) + 0x1FA27CF8 + x15) & 0xFFFFFFFF
    c = d + ((t << 16) | (t >> 16))
    t = (b + (c ^ d ^ a) + 0xC4AC5665 + x2) & 0xFFFFFFFF
    b = c + ((t << 23) | (t >> 9))
    # Round 4.
    t = (a + (c ^ (b | (d ^ 0xFFFFFFFF))) + 0xF4292244 + x0) & 0xFFFFFFFF
    a = b + ((t << 6) | (t >> 26))
    t = (d + (b ^ (a | (c ^ 0xFFFFFFFF))) + 0x432AFF97 + x7) & 0xFFFFFFFF
    d = a + ((t << 10) | (t >> 22))
    t = (c + (a ^ (d | (b ^ 0xFFFFFFFF))) + 0xAB9423A7 + x14) & 0xFFFFFFFF
    c = d + ((t << 15) | (t >> 17))
    t = (b + (d ^ (c | (a ^ 0xFFFFFFFF))) + 0xFC93A039 + x5) & 0xFFFFFFFF
    b = c + ((t << 21) | (t >> 11))
    t = (a + (c ^ (b | (d ^ 0xFFFFFFFF))) + 0x655B59C3 + x12) & 0xFFFFFFFF
    a = b + ((t << 6) | (t >> 26))
    t = (d + (b ^ (a | (c ^ 0xFFFFFFFF))) + 0x8F0CCC92 + x3) & 0xFFFFFFFF
    d = a + ((t << 10) | (t >> 22))
    t = (c + (a ^ (d | (b ^ 0xFFFFFFFF))) + 0xFFEFF47D + x10) & 0xFFFFFFFF
    c = d + ((t << 15) | (t >> 17))
    t = (b + (d ^ (c | (a ^ 0xFFFFFFFF))) + 0x85845DD1 + x1) & 0xFFFFFFFF
    b = c + ((t << 21) | (t >> 11))
    t = (a + (c ^ (b | (d ^ 0xFFFFFFFF))) + 0x6FA87E4F + x8) & 0xFFFFFFFF
    a = b + ((t << 6) | (t >> 26))
    t = (d + (b ^ (a | (c ^ 0xFFFFFFFF))) + 0xFE2CE6E0 + x15) & 0xFFFFFFFF
    d = a + ((t << 10) | (t >> 22))
    t = (c + (a ^ (d | (b ^ 0xFFFFFFFF))) + 0xA3014314 + x6) & 0xFFFFFFFF
    c = d + ((t << 15) | (t >> 17))
    t = (b + (d ^ (c | (a ^ 0xFFFFFFFF))) + 0x4E0811A1 + x13) & 0xFFFFFFFF
    b = c + ((t << 21) | (t >> 11))
    t = (a + (c ^ (b | (d ^ 0xFFFFFFFF))) + 0xF7537E82 + x4) & 0xFFFFFFFF
    a = b + ((t << 6) | (t >> 26))
    t = (d + (b ^ (a | (c ^ 0xFFFFFFFF))) + 0xBD3AF235 + x11) & 0xFFFFFFFF
    d = a + ((t << 10) | (t >> 22))
    t = (c + (a ^ (d | (b ^ 0xFFFFFFFF))) + 0x2AD7D2BB + x2) & 0xFFFFFFFF
    c = d + ((t << 15) | (t >> 17))
    t = (b + (d ^ (c | (a ^ 0xFFFFFFFF))) + 0xEB86D391 + x9) & 0xFFFFFFFF
    b = c + ((t << 21) | (t >> 11))
    return (
        (a0 + a) & 0xFFFFFFFF,
        (b0 + b) & 0xFFFFFFFF,
        (c0 + c) & 0xFFFFFFFF,
        (d0 + d) & 0xFFFFFFFF,
    )


class MD5:
    """Incremental MD5, mirroring the ``hashlib`` object protocol."""

    digest_size = DIGEST_SIZE
    block_size = 64
    name = "md5"

    __slots__ = ("_state", "_buffer", "_length")

    def __init__(self, data: bytes = b"") -> None:
        self._state = _INIT_STATE
        self._buffer = bytearray()
        self._length = 0
        if data:
            self.update(data)

    def update(self, data: bytes) -> None:
        """Absorb more message bytes."""
        self._length += len(data)
        buffer = self._buffer
        buffer += data
        end = len(buffer)
        if end >= 64:
            state = self._state
            offset = 0
            while offset + 64 <= end:
                state = _compress(state, buffer, offset)
                offset += 64
            del buffer[:offset]
            self._state = state

    def digest(self) -> bytes:
        """Return the 16-byte digest of everything absorbed so far."""
        # One-shot RFC 1321 padding: 0x80, zeros to 56 mod 64, then the
        # 64-bit bit length.  The running state is an immutable tuple,
        # so finalizing never mutates (or clones) the live object.
        length = self._length
        tail = (
            bytes(self._buffer)
            + b"\x80"
            + b"\x00" * ((55 - length) % 64)
            + _LENGTH8.pack((length * 8) & 0xFFFFFFFFFFFFFFFF)
        )
        state = self._state
        for offset in range(0, len(tail), 64):
            state = _compress(state, tail, offset)
        return _STATE4.pack(*state)

    def hexdigest(self) -> str:
        """Return the digest as a lowercase hex string."""
        return self.digest().hex()

    def copy(self) -> "MD5":
        """Return an independent copy of the running state."""
        clone = MD5.__new__(MD5)
        clone._state = self._state
        clone._buffer = bytearray(self._buffer)
        clone._length = self._length
        return clone


def md5(data: bytes) -> bytes:
    """One-shot MD5 digest of ``data``."""
    return MD5(data).digest()
