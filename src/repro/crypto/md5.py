"""MD5 message digest (RFC 1321), implemented from scratch.

MD5 is the paper's choice both for the flow-key derivation hash ``H`` and
for the keyed MAC ("keyed MD5 is used to compute the MAC", Section 7.2).
This is a streaming implementation with the familiar ``update``/``digest``
interface; correctness is checked against the RFC 1321 test suite and
against :mod:`hashlib` by the tests.
"""

from __future__ import annotations

import math
import struct

__all__ = ["MD5", "md5", "DIGEST_SIZE"]

#: MD5 digest size in bytes (the paper's 128-bit MAC field).
DIGEST_SIZE = 16

# Per-round left-rotation amounts.
_SHIFTS = (
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
    5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20,
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
)

# Sine-derived additive constants, as specified by RFC 1321.
_K = tuple(int(abs(math.sin(i + 1)) * 2**32) & 0xFFFFFFFF for i in range(64))

_INIT_STATE = (0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476)


def _rotl32(value: int, amount: int) -> int:
    value &= 0xFFFFFFFF
    return ((value << amount) | (value >> (32 - amount))) & 0xFFFFFFFF


class MD5:
    """Incremental MD5, mirroring the ``hashlib`` object protocol."""

    digest_size = DIGEST_SIZE
    block_size = 64
    name = "md5"

    def __init__(self, data: bytes = b"") -> None:
        self._state = list(_INIT_STATE)
        self._buffer = b""
        self._length = 0
        if data:
            self.update(data)

    def update(self, data: bytes) -> None:
        """Absorb more message bytes."""
        self._length += len(data)
        self._buffer += data
        while len(self._buffer) >= 64:
            self._compress(self._buffer[:64])
            self._buffer = self._buffer[64:]

    def _compress(self, chunk: bytes) -> None:
        words = struct.unpack("<16I", chunk)
        a, b, c, d = self._state
        for i in range(64):
            if i < 16:
                f = (b & c) | (~b & d)
                g = i
            elif i < 32:
                f = (d & b) | (~d & c)
                g = (5 * i + 1) % 16
            elif i < 48:
                f = b ^ c ^ d
                g = (3 * i + 5) % 16
            else:
                f = c ^ (b | (~d & 0xFFFFFFFF))
                g = (7 * i) % 16
            temp = d
            d = c
            c = b
            rotated = _rotl32(a + f + _K[i] + words[g], _SHIFTS[i])
            b = (b + rotated) & 0xFFFFFFFF
            a = temp
        self._state = [
            (self._state[0] + a) & 0xFFFFFFFF,
            (self._state[1] + b) & 0xFFFFFFFF,
            (self._state[2] + c) & 0xFFFFFFFF,
            (self._state[3] + d) & 0xFFFFFFFF,
        ]

    def digest(self) -> bytes:
        """Return the 16-byte digest of everything absorbed so far."""
        clone = self.copy()
        bit_length = (clone._length * 8) & 0xFFFFFFFFFFFFFFFF
        clone.update(b"\x80")
        while len(clone._buffer) != 56:
            clone.update(b"\x00")
        # Bypass update() for the length block: the length has already
        # been captured.
        clone._buffer += struct.pack("<Q", bit_length)
        clone._compress(clone._buffer)
        return struct.pack("<4I", *clone._state)

    def hexdigest(self) -> str:
        """Return the digest as a lowercase hex string."""
        return self.digest().hex()

    def copy(self) -> "MD5":
        """Return an independent copy of the running state."""
        clone = MD5()
        clone._state = list(self._state)
        clone._buffer = self._buffer
        clone._length = self._length
        return clone


def md5(data: bytes) -> bytes:
    """One-shot MD5 digest of ``data``."""
    return MD5(data).digest()
