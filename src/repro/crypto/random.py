"""Random number generators: statistical vs. cryptographic.

The paper draws a sharp line between the two (Sections 2.2 and 5.3):

* Confounders "need only be statistically random, as opposed to
  cryptographically random", so they may come from "the highly efficient
  linear congruential generators" (Knuth vol. 2);
  :class:`LinearCongruential` implements that generator.
* Per-datagram keys in the host-pair-keying baseline must be
  cryptographically random, and the paper names the quadratic residue
  generator of Blum, Blum and Shub as the (expensive) canonical choice;
  :class:`BlumBlumShub` implements it, and the ablation benches show the
  cost gap the paper warns about.
* :class:`CounterRandom` is a deterministic MD5-counter stream used for
  reproducible simulation inputs (not a paper artifact).

Every generator is explicitly seeded; none touches global state.
"""

from __future__ import annotations

import math
import random as _random
from typing import Optional

from repro.crypto.md5 import md5
from repro.crypto.primes import generate_prime, is_probable_prime

__all__ = ["LinearCongruential", "BlumBlumShub", "CounterRandom"]


class LinearCongruential:
    """Knuth-style linear congruential generator (statistically random).

    Uses the classic MMIX parameters: ``x' = a*x + c mod 2^64``.  Fast but
    predictable -- exactly the trade-off the paper accepts for
    confounders, whose only job is to hide identical plaintext datagrams.
    """

    _A = 6364136223846793005
    _C = 1442695040888963407
    _MASK = (1 << 64) - 1

    def __init__(self, seed: int) -> None:
        self._state = seed & self._MASK

    def next_u32(self) -> int:
        """Return the next 32-bit output (high word of the LCG state)."""
        self._state = (self._A * self._state + self._C) & self._MASK
        return (self._state >> 32) & 0xFFFFFFFF

    def next_bytes(self, n: int) -> bytes:
        """Return ``n`` pseudo-random bytes."""
        out = bytearray()
        while len(out) < n:
            out += self.next_u32().to_bytes(4, "big")
        return bytes(out[:n])


class BlumBlumShub:
    """Blum-Blum-Shub quadratic residue generator (cryptographically random).

    ``x' = x^2 mod n`` with ``n = p*q``, ``p ≡ q ≡ 3 (mod 4)``; one bit is
    extracted per squaring (the least significant bit).  Deliberately slow
    -- the paper cites it as the performance bottleneck that makes
    per-datagram keying unattractive (Section 2.2).
    """

    def __init__(self, seed: int, bits: int = 128, rng: Optional[_random.Random] = None) -> None:
        rng = rng or _random.Random(seed ^ 0x5DEECE66D)
        self._n = self._blum_modulus(bits, rng)
        x = seed % self._n
        # The seed must be coprime with n and not a fixed point.
        while math.gcd(x, self._n) != 1 or x in (0, 1):
            x += 1
        self._state = pow(x, 2, self._n)

    @staticmethod
    def _blum_prime(bits: int, rng: _random.Random) -> int:
        while True:
            p = generate_prime(bits, rng)
            if p % 4 == 3:
                return p

    @classmethod
    def _blum_modulus(cls, bits: int, rng: _random.Random) -> int:
        p = cls._blum_prime(bits // 2, rng)
        q = cls._blum_prime(bits - bits // 2, rng)
        while q == p:
            q = cls._blum_prime(bits - bits // 2, rng)
        return p * q

    def next_bit(self) -> int:
        """Produce one cryptographically strong bit."""
        self._state = pow(self._state, 2, self._n)
        return self._state & 1

    def next_bytes(self, n: int) -> bytes:
        """Produce ``n`` strong bytes (8 squarings per byte)."""
        out = bytearray()
        for _ in range(n):
            byte = 0
            for _ in range(8):
                byte = (byte << 1) | self.next_bit()
            out.append(byte)
        return bytes(out)


class CounterRandom:
    """Deterministic MD5-counter byte stream for reproducible simulations.

    Not part of the paper; used wherever the test suite or workload
    generator needs an arbitrary-length reproducible byte stream.
    """

    def __init__(self, seed: bytes) -> None:
        self._seed = seed
        self._counter = 0
        self._pool = b""

    def next_bytes(self, n: int) -> bytes:
        """Return the next ``n`` bytes of the stream."""
        while len(self._pool) < n:
            block = md5(self._seed + self._counter.to_bytes(8, "big"))
            self._counter += 1
            self._pool += block
        out, self._pool = self._pool[:n], self._pool[n:]
        return out

    def next_u32(self) -> int:
        """Return the next 32-bit word of the stream."""
        return int.from_bytes(self.next_bytes(4), "big")
