"""Minimal RSA signatures for public-value certificates.

The paper assumes "the public values are made available and authenticated
via a distributed certification hierarchy (e.g., X.509 certificates)"
(Section 5.2).  Our certificate substrate signs certificates with RSA;
this module is a self-contained textbook-RSA-with-padding implementation
(MD5 digest, PKCS#1 v1.5-shaped encoding) sufficient for an authentic
end-to-end certificate-verification path inside the simulation.

It is NOT hardened for production use outside the simulation (no
constant-time bignum arithmetic, small default moduli for speed).
"""

from __future__ import annotations

import random as _random
from dataclasses import dataclass

from repro.crypto.md5 import md5
from repro.crypto.primes import generate_prime

__all__ = ["RSAPublicKey", "RSAKeyPair", "SignatureError"]

_MD5_DER_PREFIX = bytes.fromhex("3020300c06082a864886f70d020505000410")


class SignatureError(Exception):
    """Raised when a signature fails verification."""


def _emsa_encode(message: bytes, em_len: int) -> bytes:
    """PKCS#1 v1.5 style encoding of an MD5 digest into ``em_len`` bytes."""
    digest_info = _MD5_DER_PREFIX + md5(message)
    pad_len = em_len - len(digest_info) - 3
    if pad_len < 8:
        raise ValueError("RSA modulus too small for MD5 signature encoding")
    return b"\x00\x01" + b"\xff" * pad_len + b"\x00" + digest_info


@dataclass(frozen=True)
class RSAPublicKey:
    """An RSA public key ``(n, e)`` with signature verification."""

    n: int
    e: int

    @property
    def size_bytes(self) -> int:
        return (self.n.bit_length() + 7) // 8

    def verify(self, message: bytes, signature: bytes) -> None:
        """Verify ``signature`` over ``message``.

        Raises
        ------
        SignatureError
            If the signature does not check out.
        """
        if len(signature) != self.size_bytes:
            raise SignatureError("signature length mismatch")
        s = int.from_bytes(signature, "big")
        if s >= self.n:
            raise SignatureError("signature out of range")
        em = pow(s, self.e, self.n).to_bytes(self.size_bytes, "big")
        try:
            expected = _emsa_encode(message, self.size_bytes)
        except ValueError as exc:
            raise SignatureError(str(exc)) from exc
        if em != expected:
            raise SignatureError("signature verification failed")


@dataclass(frozen=True)
class RSAKeyPair:
    """An RSA key pair with deterministic generation and signing."""

    public: RSAPublicKey
    d: int

    @classmethod
    def generate(cls, bits: int, rng: _random.Random, e: int = 65537) -> "RSAKeyPair":
        """Generate a key pair with modulus of roughly ``bits`` bits."""
        if bits < 384:
            raise ValueError("RSA modulus must be at least 384 bits for MD5 signing")
        while True:
            p = generate_prime(bits // 2, rng)
            q = generate_prime(bits - bits // 2, rng)
            if p == q:
                continue
            phi = (p - 1) * (q - 1)
            if phi % e == 0:
                continue
            n = p * q
            d = pow(e, -1, phi)
            return cls(public=RSAPublicKey(n=n, e=e), d=d)

    def sign(self, message: bytes) -> bytes:
        """Produce a signature over ``message``."""
        em = _emsa_encode(message, self.public.size_bytes)
        m = int.from_bytes(em, "big")
        return pow(m, self.d, self.public.n).to_bytes(self.public.size_bytes, "big")
