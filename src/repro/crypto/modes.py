"""Block cipher modes of operation (FIPS 81) with FBS confounder rules.

FBS Section 5.2 defines how the per-datagram *confounder* is consumed by
the cipher:

* In CBC, CFB, and OFB modes the confounder is used directly as the
  initialization vector (IV).
* In ECB mode the confounder is "XOR'ed with every block of plaintext
  prior to encryption".
* The paper's IP mapping carries a 32-bit confounder which is "first
  duplicated to provide a 64-bit quantity" before use with DES
  (Section 7.2); that widening lives in :mod:`repro.core.header`, not
  here -- this module always takes a full-block IV.

Padding: datagram bodies are arbitrary length, so CBC/ECB use a
self-describing pad (PKCS#7 style) appended before encryption and removed
after decryption.  CFB and OFB are stream-like and need no padding.
"""

from __future__ import annotations

import enum
import struct
from typing import Callable

from repro.crypto.des import BLOCK_SIZE, DES, _crypt

__all__ = [
    "CipherMode",
    "pad_block",
    "unpad_block",
    "encrypt_ecb_confounded",
    "decrypt_ecb_confounded",
    "encrypt_cbc",
    "decrypt_cbc",
    "encrypt_cfb",
    "decrypt_cfb",
    "encrypt_ofb",
    "decrypt_ofb",
    "encrypt",
    "decrypt",
]


class CipherMode(enum.Enum):
    """FIPS 81 modes supported by the FBS encryption path."""

    ECB = "ecb"
    CBC = "cbc"
    CFB = "cfb"
    OFB = "ofb"


def _xor(a: bytes, b: bytes) -> bytes:
    return bytes(x ^ y for x, y in zip(a, b))


# The mode loops below stay in int space end to end: the whole buffer is
# unpacked into 64-bit ints with a single struct call, each block is one
# direct ``_crypt`` invocation against the cipher's precomputed schedule
# (no per-block method dispatch), and the output is repacked with a
# single struct call.  Per-block slicing, ``int.from_bytes``/``to_bytes``
# and per-byte generator XORs were the dominant cost of the previous
# byte-oriented loops.


def pad_block(data: bytes) -> bytes:
    """Append a PKCS#7-style pad bringing ``data`` to a block multiple.

    A full block of padding is added when the input is already aligned so
    the pad is always unambiguous.
    """
    pad_len = BLOCK_SIZE - (len(data) % BLOCK_SIZE)
    return data + bytes([pad_len]) * pad_len


def unpad_block(data: bytes) -> bytes:
    """Strip the pad appended by :func:`pad_block`.

    Raises
    ------
    ValueError
        If the padding is malformed (wrong length byte or inconsistent
        fill).  Under FBS a bad pad normally cannot be reached because the
        MAC is verified first, but the check guards direct users of the
        mode layer.
    """
    if not data or len(data) % BLOCK_SIZE:
        raise ValueError("ciphertext not a whole number of blocks")
    pad_len = data[-1]
    if not 1 <= pad_len <= BLOCK_SIZE:
        raise ValueError("corrupt padding length")
    if data[-pad_len:] != bytes([pad_len]) * pad_len:
        raise ValueError("corrupt padding fill")
    return data[:-pad_len]


def _check_iv(iv: bytes) -> None:
    if len(iv) != BLOCK_SIZE:
        raise ValueError(f"IV/confounder must be {BLOCK_SIZE} bytes, got {len(iv)}")


# ---------------------------------------------------------------------------
# ECB with confounder (the FBS Section 5.2 rule).
# ---------------------------------------------------------------------------

def encrypt_ecb_confounded(cipher: DES, confounder: bytes, plaintext: bytes) -> bytes:
    """ECB where the confounder is XOR'ed into every plaintext block."""
    _check_iv(confounder)
    padded = pad_block(plaintext)
    mask = int.from_bytes(confounder, "big")
    subkeys = cipher.subkeys
    fmt = ">%dQ" % (len(padded) // BLOCK_SIZE)
    return struct.pack(
        fmt, *[_crypt(value ^ mask, subkeys) for value in struct.unpack(fmt, padded)]
    )


def decrypt_ecb_confounded(cipher: DES, confounder: bytes, ciphertext: bytes) -> bytes:
    """Inverse of :func:`encrypt_ecb_confounded`."""
    _check_iv(confounder)
    if not ciphertext or len(ciphertext) % BLOCK_SIZE:
        raise ValueError("ciphertext not a whole number of blocks")
    mask = int.from_bytes(confounder, "big")
    subkeys = cipher.subkeys_rev
    fmt = ">%dQ" % (len(ciphertext) // BLOCK_SIZE)
    return unpad_block(
        struct.pack(
            fmt,
            *[_crypt(value, subkeys) ^ mask for value in struct.unpack(fmt, ciphertext)],
        )
    )


# ---------------------------------------------------------------------------
# CBC -- the mode used by the paper's implementation (DES in CBC mode).
# ---------------------------------------------------------------------------

def encrypt_cbc(cipher: DES, iv: bytes, plaintext: bytes) -> bytes:
    """CBC encryption; the confounder is the IV."""
    _check_iv(iv)
    padded = pad_block(plaintext)
    subkeys = cipher.subkeys
    fmt = ">%dQ" % (len(padded) // BLOCK_SIZE)
    chain = int.from_bytes(iv, "big")
    out = []
    append = out.append
    for value in struct.unpack(fmt, padded):
        chain = _crypt(value ^ chain, subkeys)
        append(chain)
    return struct.pack(fmt, *out)


def decrypt_cbc(cipher: DES, iv: bytes, ciphertext: bytes) -> bytes:
    """CBC decryption; inverse of :func:`encrypt_cbc`."""
    _check_iv(iv)
    if len(ciphertext) % BLOCK_SIZE:
        raise ValueError("ciphertext not a whole number of blocks")
    subkeys = cipher.subkeys_rev
    fmt = ">%dQ" % (len(ciphertext) // BLOCK_SIZE)
    chain = int.from_bytes(iv, "big")
    out = []
    append = out.append
    for value in struct.unpack(fmt, ciphertext):
        append(_crypt(value, subkeys) ^ chain)
        chain = value
    return unpad_block(struct.pack(fmt, *out))


# ---------------------------------------------------------------------------
# CFB / OFB -- stream modes (full-block feedback), no padding required.
# ---------------------------------------------------------------------------

def encrypt_cfb(cipher: DES, iv: bytes, plaintext: bytes) -> bytes:
    """Full-block CFB encryption.

    A trailing partial chunk is XOR'ed against the leading keystream
    bytes (ciphertext stealing is not needed: the chunk ends the
    message, so the chain value it would form is never consumed).
    """
    _check_iv(iv)
    subkeys = cipher.subkeys
    nfull = len(plaintext) // BLOCK_SIZE
    fmt = ">%dQ" % nfull
    chain = int.from_bytes(iv, "big")
    out = []
    append = out.append
    for value in struct.unpack_from(fmt, plaintext):
        chain = _crypt(chain, subkeys) ^ value
        append(chain)
    encrypted = struct.pack(fmt, *out)
    tail = plaintext[nfull * BLOCK_SIZE :]
    if tail:
        keystream = _crypt(chain, subkeys).to_bytes(BLOCK_SIZE, "big")
        encrypted += _xor(tail, keystream)
    return encrypted


def decrypt_cfb(cipher: DES, iv: bytes, ciphertext: bytes) -> bytes:
    """Full-block CFB decryption."""
    _check_iv(iv)
    subkeys = cipher.subkeys
    nfull = len(ciphertext) // BLOCK_SIZE
    fmt = ">%dQ" % nfull
    chain = int.from_bytes(iv, "big")
    out = []
    append = out.append
    for value in struct.unpack_from(fmt, ciphertext):
        append(_crypt(chain, subkeys) ^ value)
        chain = value
    plaintext = struct.pack(fmt, *out)
    tail = ciphertext[nfull * BLOCK_SIZE :]
    if tail:
        keystream = _crypt(chain, subkeys).to_bytes(BLOCK_SIZE, "big")
        plaintext += _xor(tail, keystream)
    return plaintext


def encrypt_ofb(cipher: DES, iv: bytes, plaintext: bytes) -> bytes:
    """OFB encryption (symmetric with decryption)."""
    _check_iv(iv)
    subkeys = cipher.subkeys
    nfull = len(plaintext) // BLOCK_SIZE
    fmt = ">%dQ" % nfull
    feedback = int.from_bytes(iv, "big")
    out = []
    append = out.append
    for value in struct.unpack_from(fmt, plaintext):
        feedback = _crypt(feedback, subkeys)
        append(value ^ feedback)
    encrypted = struct.pack(fmt, *out)
    tail = plaintext[nfull * BLOCK_SIZE :]
    if tail:
        feedback = _crypt(feedback, subkeys)
        encrypted += _xor(tail, feedback.to_bytes(BLOCK_SIZE, "big"))
    return encrypted


def decrypt_ofb(cipher: DES, iv: bytes, ciphertext: bytes) -> bytes:
    """OFB decryption -- identical to encryption."""
    return encrypt_ofb(cipher, iv, ciphertext)


_ENCRYPTORS: dict = {
    CipherMode.ECB: encrypt_ecb_confounded,
    CipherMode.CBC: encrypt_cbc,
    CipherMode.CFB: encrypt_cfb,
    CipherMode.OFB: encrypt_ofb,
}

_DECRYPTORS: dict = {
    CipherMode.ECB: decrypt_ecb_confounded,
    CipherMode.CBC: decrypt_cbc,
    CipherMode.CFB: decrypt_cfb,
    CipherMode.OFB: decrypt_ofb,
}


def encrypt(mode: CipherMode, cipher: DES, confounder: bytes, plaintext: bytes) -> bytes:
    """Encrypt under the given mode, applying the FBS confounder rule."""
    func: Callable[[DES, bytes, bytes], bytes] = _ENCRYPTORS[mode]
    return func(cipher, confounder, plaintext)


def decrypt(mode: CipherMode, cipher: DES, confounder: bytes, ciphertext: bytes) -> bytes:
    """Decrypt under the given mode, applying the FBS confounder rule."""
    func: Callable[[DES, bytes, bytes], bytes] = _DECRYPTORS[mode]
    return func(cipher, confounder, ciphertext)
