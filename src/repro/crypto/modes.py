"""Block cipher modes of operation (FIPS 81) with FBS confounder rules.

FBS Section 5.2 defines how the per-datagram *confounder* is consumed by
the cipher:

* In CBC, CFB, and OFB modes the confounder is used directly as the
  initialization vector (IV).
* In ECB mode the confounder is "XOR'ed with every block of plaintext
  prior to encryption".
* The paper's IP mapping carries a 32-bit confounder which is "first
  duplicated to provide a 64-bit quantity" before use with DES
  (Section 7.2); that widening lives in :mod:`repro.core.header`, not
  here -- this module always takes a full-block IV.

Padding: datagram bodies are arbitrary length, so CBC/ECB use a
self-describing pad (PKCS#7 style) appended before encryption and removed
after decryption.  CFB and OFB are stream-like and need no padding.
"""

from __future__ import annotations

import enum
from typing import Callable

from repro.crypto.des import BLOCK_SIZE, DES

__all__ = [
    "CipherMode",
    "pad_block",
    "unpad_block",
    "encrypt_ecb_confounded",
    "decrypt_ecb_confounded",
    "encrypt_cbc",
    "decrypt_cbc",
    "encrypt_cfb",
    "decrypt_cfb",
    "encrypt_ofb",
    "decrypt_ofb",
    "encrypt",
    "decrypt",
]


class CipherMode(enum.Enum):
    """FIPS 81 modes supported by the FBS encryption path."""

    ECB = "ecb"
    CBC = "cbc"
    CFB = "cfb"
    OFB = "ofb"


def _xor(a: bytes, b: bytes) -> bytes:
    return bytes(x ^ y for x, y in zip(a, b))


def pad_block(data: bytes) -> bytes:
    """Append a PKCS#7-style pad bringing ``data`` to a block multiple.

    A full block of padding is added when the input is already aligned so
    the pad is always unambiguous.
    """
    pad_len = BLOCK_SIZE - (len(data) % BLOCK_SIZE)
    return data + bytes([pad_len]) * pad_len


def unpad_block(data: bytes) -> bytes:
    """Strip the pad appended by :func:`pad_block`.

    Raises
    ------
    ValueError
        If the padding is malformed (wrong length byte or inconsistent
        fill).  Under FBS a bad pad normally cannot be reached because the
        MAC is verified first, but the check guards direct users of the
        mode layer.
    """
    if not data or len(data) % BLOCK_SIZE:
        raise ValueError("ciphertext not a whole number of blocks")
    pad_len = data[-1]
    if not 1 <= pad_len <= BLOCK_SIZE:
        raise ValueError("corrupt padding length")
    if data[-pad_len:] != bytes([pad_len]) * pad_len:
        raise ValueError("corrupt padding fill")
    return data[:-pad_len]


def _check_iv(iv: bytes) -> None:
    if len(iv) != BLOCK_SIZE:
        raise ValueError(f"IV/confounder must be {BLOCK_SIZE} bytes, got {len(iv)}")


# ---------------------------------------------------------------------------
# ECB with confounder (the FBS Section 5.2 rule).
# ---------------------------------------------------------------------------

def encrypt_ecb_confounded(cipher: DES, confounder: bytes, plaintext: bytes) -> bytes:
    """ECB where the confounder is XOR'ed into every plaintext block."""
    _check_iv(confounder)
    padded = pad_block(plaintext)
    out = bytearray()
    for i in range(0, len(padded), BLOCK_SIZE):
        block = _xor(padded[i : i + BLOCK_SIZE], confounder)
        out += cipher.encrypt_block(block)
    return bytes(out)


def decrypt_ecb_confounded(cipher: DES, confounder: bytes, ciphertext: bytes) -> bytes:
    """Inverse of :func:`encrypt_ecb_confounded`."""
    _check_iv(confounder)
    out = bytearray()
    for i in range(0, len(ciphertext), BLOCK_SIZE):
        block = cipher.decrypt_block(ciphertext[i : i + BLOCK_SIZE])
        out += _xor(block, confounder)
    return unpad_block(bytes(out))


# ---------------------------------------------------------------------------
# CBC -- the mode used by the paper's implementation (DES in CBC mode).
# ---------------------------------------------------------------------------

def encrypt_cbc(cipher: DES, iv: bytes, plaintext: bytes) -> bytes:
    """CBC encryption; the confounder is the IV."""
    _check_iv(iv)
    padded = pad_block(plaintext)
    out = bytearray()
    chain = iv
    for i in range(0, len(padded), BLOCK_SIZE):
        chain = cipher.encrypt_block(_xor(padded[i : i + BLOCK_SIZE], chain))
        out += chain
    return bytes(out)


def decrypt_cbc(cipher: DES, iv: bytes, ciphertext: bytes) -> bytes:
    """CBC decryption; inverse of :func:`encrypt_cbc`."""
    _check_iv(iv)
    if len(ciphertext) % BLOCK_SIZE:
        raise ValueError("ciphertext not a whole number of blocks")
    out = bytearray()
    chain = iv
    for i in range(0, len(ciphertext), BLOCK_SIZE):
        block = ciphertext[i : i + BLOCK_SIZE]
        out += _xor(cipher.decrypt_block(block), chain)
        chain = block
    return unpad_block(bytes(out))


# ---------------------------------------------------------------------------
# CFB / OFB -- stream modes (full-block feedback), no padding required.
# ---------------------------------------------------------------------------

def encrypt_cfb(cipher: DES, iv: bytes, plaintext: bytes) -> bytes:
    """Full-block CFB encryption."""
    _check_iv(iv)
    out = bytearray()
    chain = iv
    for i in range(0, len(plaintext), BLOCK_SIZE):
        keystream = cipher.encrypt_block(chain)
        chunk = plaintext[i : i + BLOCK_SIZE]
        enc = _xor(chunk, keystream[: len(chunk)])
        out += enc
        chain = (enc + chain)[:BLOCK_SIZE] if len(enc) < BLOCK_SIZE else enc
    return bytes(out)


def decrypt_cfb(cipher: DES, iv: bytes, ciphertext: bytes) -> bytes:
    """Full-block CFB decryption."""
    _check_iv(iv)
    out = bytearray()
    chain = iv
    for i in range(0, len(ciphertext), BLOCK_SIZE):
        keystream = cipher.encrypt_block(chain)
        chunk = ciphertext[i : i + BLOCK_SIZE]
        out += _xor(chunk, keystream[: len(chunk)])
        chain = (chunk + chain)[:BLOCK_SIZE] if len(chunk) < BLOCK_SIZE else chunk
    return bytes(out)


def encrypt_ofb(cipher: DES, iv: bytes, plaintext: bytes) -> bytes:
    """OFB encryption (symmetric with decryption)."""
    _check_iv(iv)
    out = bytearray()
    feedback = iv
    for i in range(0, len(plaintext), BLOCK_SIZE):
        feedback = cipher.encrypt_block(feedback)
        chunk = plaintext[i : i + BLOCK_SIZE]
        out += _xor(chunk, feedback[: len(chunk)])
    return bytes(out)


def decrypt_ofb(cipher: DES, iv: bytes, ciphertext: bytes) -> bytes:
    """OFB decryption -- identical to encryption."""
    return encrypt_ofb(cipher, iv, ciphertext)


_ENCRYPTORS: dict = {
    CipherMode.ECB: encrypt_ecb_confounded,
    CipherMode.CBC: encrypt_cbc,
    CipherMode.CFB: encrypt_cfb,
    CipherMode.OFB: encrypt_ofb,
}

_DECRYPTORS: dict = {
    CipherMode.ECB: decrypt_ecb_confounded,
    CipherMode.CBC: decrypt_cbc,
    CipherMode.CFB: decrypt_cfb,
    CipherMode.OFB: decrypt_ofb,
}


def encrypt(mode: CipherMode, cipher: DES, confounder: bytes, plaintext: bytes) -> bytes:
    """Encrypt under the given mode, applying the FBS confounder rule."""
    func: Callable[[DES, bytes, bytes], bytes] = _ENCRYPTORS[mode]
    return func(cipher, confounder, plaintext)


def decrypt(mode: CipherMode, cipher: DES, confounder: bytes, ciphertext: bytes) -> bytes:
    """Decrypt under the given mode, applying the FBS confounder rule."""
    func: Callable[[DES, bytes, bytes], bytes] = _DECRYPTORS[mode]
    return func(cipher, confounder, ciphertext)
