"""Cryptographic substrate for the FBS reproduction.

The paper implements FBS on top of CryptoLib (Lacy et al., USENIX Security
1993), which supplied DES, MD5, Diffie-Hellman and RSA.  This package is a
from-scratch, pure-Python replacement providing the same primitives:

* :mod:`repro.crypto.des` -- the DES block cipher (FIPS 46).
* :mod:`repro.crypto.modes` -- ECB/CBC/CFB/OFB modes of operation
  (FIPS 81), including the confounder conventions of FBS Section 5.2.
* :mod:`repro.crypto.md5` / :mod:`repro.crypto.sha1` -- the hash function
  candidates the paper names for ``H`` (MD5 per RFC 1321, SHS per
  FIPS 180).
* :mod:`repro.crypto.mac` -- keyed-hash MAC constructions (prefix-keyed
  MD5 as used in the paper's implementation, and HMAC).
* :mod:`repro.crypto.dh` -- Diffie-Hellman key exchange, the basis of
  zero-message keying.
* :mod:`repro.crypto.rsa` -- minimal RSA signatures for the public-value
  certificates.
* :mod:`repro.crypto.primes` -- Miller-Rabin and safe-prime generation.
* :mod:`repro.crypto.random` -- the two classes of random generator the
  paper distinguishes: *statistically* random (linear congruential, for
  confounders) and *cryptographically* random (Blum-Blum-Shub quadratic
  residue generator, for per-datagram keys in the host-pair baseline).
* :mod:`repro.crypto.crc` -- CRC-32 and the cache-index hash family used
  to index the flow state table and key caches.

All primitives are deterministic and carry published test vectors in the
test suite.  They are *reference* implementations: correct and
interoperable, not fast; the performance evaluation uses the calibrated
cost model in :mod:`repro.netsim.costmodel` instead of wall-clock speed.
"""

from repro.crypto.des import DES
from repro.crypto.modes import (
    CipherMode,
    decrypt_cbc,
    decrypt_cfb,
    decrypt_ecb_confounded,
    decrypt_ofb,
    encrypt_cbc,
    encrypt_cfb,
    encrypt_ecb_confounded,
    encrypt_ofb,
)
from repro.crypto.md5 import MD5, md5
from repro.crypto.sha1 import SHA1, sha1
from repro.crypto.mac import hmac_md5, hmac_sha1, keyed_md5, truncate_mac
from repro.crypto.dh import DHGroup, DHPrivateKey, WELL_KNOWN_GROUPS
from repro.crypto.rsa import RSAKeyPair, RSAPublicKey
from repro.crypto.random import (
    BlumBlumShub,
    CounterRandom,
    LinearCongruential,
)
from repro.crypto.crc import crc32, CacheIndexHash, ModuloHash, XorFoldHash, Crc32Hash

__all__ = [
    "DES",
    "CipherMode",
    "encrypt_cbc",
    "decrypt_cbc",
    "encrypt_cfb",
    "decrypt_cfb",
    "encrypt_ofb",
    "decrypt_ofb",
    "encrypt_ecb_confounded",
    "decrypt_ecb_confounded",
    "MD5",
    "md5",
    "SHA1",
    "sha1",
    "keyed_md5",
    "hmac_md5",
    "hmac_sha1",
    "truncate_mac",
    "DHGroup",
    "DHPrivateKey",
    "WELL_KNOWN_GROUPS",
    "RSAKeyPair",
    "RSAPublicKey",
    "LinearCongruential",
    "BlumBlumShub",
    "CounterRandom",
    "crc32",
    "CacheIndexHash",
    "ModuloHash",
    "XorFoldHash",
    "Crc32Hash",
]
