"""Keyed message authentication codes.

The FBS MAC (Section 5.2) is defined as::

    MAC = HMAC(K_f | confounder | timestamp | payload)

where ``HMAC`` denotes "some one-way cryptographic hash function" keyed on
the flow key.  The paper's implementation uses keyed MD5, i.e. the simple
prefix construction ``H(key | data)`` popular in 1997.  We provide both
that construction (for fidelity) and the RFC 2104 HMAC construction (the
modern, length-extension-resistant variant) so the ablation benches can
compare them.

The paper also notes that "it is possible though, with reduced security,
to use only part of these hashes as the MAC"; :func:`truncate_mac`
implements that trade-off.
"""

from __future__ import annotations

from typing import Callable

from repro.crypto.md5 import MD5, md5
from repro.crypto.sha1 import SHA1, sha1

__all__ = [
    "keyed_md5",
    "keyed_sha1",
    "hmac_md5",
    "hmac_sha1",
    "des_cbc_mac",
    "des_cbc_mac_with",
    "truncate_mac",
    "constant_time_equal",
]

_BLOCK = 64


def des_cbc_mac(key: bytes, data: bytes) -> bytes:
    """DES CBC-MAC (FIPS 113 / ANSI X9.9 shape): the final CBC block.

    The paper's footnote 12: "For efficiency, DES could have been used
    for both encryption and MAC computation."  The tag is 8 bytes; the
    key is the leading 8 bytes of the supplied key material.  Length
    extension is headed off by prepending the message length.
    """
    from repro.crypto.des import DES

    if len(key) < 8:
        raise ValueError("DES CBC-MAC needs at least 8 key bytes")
    return des_cbc_mac_with(DES(key[:8]), data)


def des_cbc_mac_with(cipher, data: bytes) -> bytes:
    """:func:`des_cbc_mac` driven by an already-constructed cipher.

    The per-flow fast path (``FlowCryptoState``) caches the DES key
    schedule; this entry point lets it MAC without rebuilding one.
    """
    import struct

    from repro.crypto.des import _crypt
    from repro.crypto.modes import pad_block

    padded = pad_block(len(data).to_bytes(8, "big") + data)
    subkeys = cipher.subkeys
    state = 0
    for value in struct.unpack(">%dQ" % (len(padded) // 8), padded):
        state = _crypt(value ^ state, subkeys)
    return state.to_bytes(8, "big")


def keyed_md5(key: bytes, data: bytes) -> bytes:
    """Prefix-keyed MD5: ``MD5(key | data)`` -- the paper's construction."""
    return md5(key + data)


def keyed_sha1(key: bytes, data: bytes) -> bytes:
    """Prefix-keyed SHA-1: ``SHA1(key | data)``."""
    return sha1(key + data)


def _hmac(hash_cls: Callable, key: bytes, data: bytes, digest_size: int) -> bytes:
    if len(key) > _BLOCK:
        key = hash_cls(key).digest()
    key = key.ljust(_BLOCK, b"\x00")
    inner = hash_cls(bytes(k ^ 0x36 for k in key))
    inner.update(data)
    outer = hash_cls(bytes(k ^ 0x5C for k in key))
    outer.update(inner.digest())
    return outer.digest()


def hmac_md5(key: bytes, data: bytes) -> bytes:
    """RFC 2104 HMAC-MD5."""
    return _hmac(MD5, key, data, 16)


def hmac_sha1(key: bytes, data: bytes) -> bytes:
    """RFC 2104 HMAC-SHA1."""
    return _hmac(SHA1, key, data, 20)


def truncate_mac(mac: bytes, bits: int) -> bytes:
    """Keep only the leading ``bits`` of a MAC (must be byte-aligned).

    Reduces header overhead at the cost of security margin, per the
    paper's Section 5.3 note on MAC sizing.
    """
    if bits % 8:
        raise ValueError("MAC truncation must be byte aligned")
    nbytes = bits // 8
    if not 0 < nbytes <= len(mac):
        raise ValueError(f"cannot truncate {len(mac)}-byte MAC to {nbytes} bytes")
    return mac[:nbytes]


def constant_time_equal(a: bytes, b: bytes) -> bool:
    """Compare two MACs without an early-exit timing channel."""
    if len(a) != len(b):
        return False
    acc = 0
    for x, y in zip(a, b):
        acc |= x ^ y
    return acc == 0
