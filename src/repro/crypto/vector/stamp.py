"""Batch FBS header stamping as byte-matrix column assignments.

:class:`repro.core.header.FBSHeader` encodes one header at a time with
three ``struct`` packs plus concatenation; for a batch the same layout
is produced by laying an ``(n, header_len)`` ``uint8`` matrix and
writing each big-endian field one *byte column* at a time -- a shift
and a column assignment per byte, so the numpy call count scales with
the header layout (~16 columns), never with the batch size.

Output is bit-identical to per-lane ``FBSHeader.encode``; the
differential batch tests pin it.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

__all__ = ["encode_headers_many"]


def _store_be(head: np.ndarray, column: int, values: np.ndarray, width: int):
    """Write ``values`` big-endian into ``width`` byte columns at ``column``."""
    for k in range(width):
        head[:, column + k] = (values >> (8 * (width - 1 - k))) & 0xFF


def encode_headers_many(
    sfls: Sequence[int],
    confounders: Sequence[int],
    macs: Sequence[bytes],
    timestamps: Sequence[int],
    mac_bytes: int,
    suite_id: Optional[int] = None,
) -> List[bytes]:
    """Encode ``n`` FBS headers at once; lane ``i`` uses field ``i``.

    ``suite_id`` mirrors ``carry_algorithm_id``: when given, each header
    starts with the two-byte algorithm prefix (suite id + reserved 0),
    exactly as ``FBSHeader.encode(suite, carry_algorithm_id=True)``.
    ``macs`` entries must already be truncated to ``mac_bytes``.
    """
    n = len(sfls)
    if len(confounders) != n or len(macs) != n or len(timestamps) != n:
        raise ValueError("header fields must be parallel")
    if n == 0:
        return []
    base = 2 if suite_id is not None else 0
    header_len = base + 8 + 4 + mac_bytes + 4
    head = np.zeros((n, header_len), dtype=np.uint8)
    if suite_id is not None:
        head[:, 0] = suite_id  # byte 1 stays 0 (reserved)
    _store_be(head, base, np.asarray(sfls, dtype=np.uint64), 8)
    _store_be(head, base + 8, np.asarray(confounders, dtype=np.uint32), 4)
    head[:, base + 12 : base + 12 + mac_bytes] = np.frombuffer(
        b"".join(macs), dtype=np.uint8
    ).reshape(n, mac_bytes)
    _store_be(
        head,
        base + 12 + mac_bytes,
        np.asarray(timestamps, dtype=np.uint32),
        4,
    )
    raw = head.tobytes()
    return [raw[i * header_len : (i + 1) * header_len] for i in range(n)]
