"""Lane-parallel MD5 / keyed MD5 over numpy ``uint32`` arrays.

One array element per *message* ("lane"): a batch of N datagrams runs
the 64 MD5 steps over length-N vectors, so the Python dispatch cost of
a step is paid once per batch instead of once per message.

What makes this fast at datagram-batch lane counts (tens of lanes,
where ufunc *dispatch* -- not arithmetic -- dominates):

* **Fully unrolled compress.**  The 64 steps are generated as straight-
  line source at import time and compiled once; the ufuncs and every
  per-step constant are bound in the function's globals, so each step
  is a fixed sequence of C calls with no Python-level table indexing.
* **Positional ``out`` everywhere.**  Every ufunc writes into a
  preallocated scratch array passed positionally (``np.add(a, b, t)``);
  keyword dispatch and per-step allocations both cost more than the
  64-lane arithmetic itself.
* **0-d array constants.**  Shift counts live in 0-d arrays: a numpy
  scalar or Python int operand re-enters dtype resolution on every
  call.
* **Same-dtype ops only.**  The rotate is the classic uint32
  ``(t << s) | (t >> (32 - s))`` -- four calls where a widening
  multiply-rotate would need three, but every call stays
  uint32-to-uint32.  Mixed-dtype ufuncs go through numpy's casting
  buffers and cost 2-3x per call, which loses more than the saved
  dispatch (measured: the three-call u64 variant is ~37% slower).
* **Ragged batches: march to the longest lane.**  Lanes are sorted by
  padded block count (longest first); each block step processes the
  still-active prefix ``[:m]`` and finished lanes simply freeze in
  place.  No length-bucketing passes, no scatter/gather per step.

Outputs are bit-identical to :mod:`repro.crypto.md5` (the differential
reference); the property suite pins the equivalence over random batch
shapes and lengths.
"""

from __future__ import annotations

import math
import struct
from bisect import bisect_right
from typing import List, Sequence

import numpy as np

__all__ = ["keyed_md5_many", "md5_many"]

_INIT = (0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476)

#: RFC 1321 sine-derived additive constants.
_K = tuple(
    int(abs(math.sin(i + 1)) * 4294967296.0) & 0xFFFFFFFF for i in range(64)
)

#: Per-round rotation amounts (cycle of four within each round).
_SHIFTS = (
    (7, 12, 17, 22),
    (5, 9, 14, 20),
    (4, 11, 16, 23),
    (6, 10, 15, 21),
)

_LENGTH8 = struct.Struct("<Q")


def _message_index(step: int) -> int:
    """Which of the 16 message words step ``step`` consumes (RFC 1321)."""
    position = step % 16
    round_no = step // 16
    if round_no == 0:
        return position
    if round_no == 1:
        return (1 + 5 * position) % 16
    if round_no == 2:
        return (5 + 3 * position) % 16
    return (7 * position) % 16


#: Message-word gather order and additive constants in step order, so
#: the whole per-block schedule ``X[idx] + K`` is one vectorized pass.
_IDXV = np.array([_message_index(step) for step in range(64)], dtype=np.intp)
_KV = np.array(_K, dtype=np.uint32)


def _compress_source() -> str:
    """Generate the unrolled 64-step compress function body."""
    lines = [
        "def _compress_lanes(A, B, C, D, f, t, u, *xk):",
        '    """Sixty-four unrolled MD5 steps over lane arrays, in place."""',
    ]
    registers = ["A", "B", "C", "D"]
    for step in range(64):
        a, b, c, d = registers
        round_no = step // 16
        if round_no == 0:  # F = (b & c) | (~b & d) == d ^ (b & (c ^ d))
            lines += [
                f"    xor_({c}, {d}, f)",
                f"    and_(f, {b}, f)",
                f"    xor_(f, {d}, f)",
            ]
        elif round_no == 1:  # G = (b & d) | (c & ~d) == c ^ (d & (b ^ c))
            lines += [
                f"    xor_({b}, {c}, f)",
                f"    and_(f, {d}, f)",
                f"    xor_(f, {c}, f)",
            ]
        elif round_no == 2:  # H = b ^ c ^ d
            lines += [
                f"    xor_({b}, {c}, f)",
                f"    xor_(f, {d}, f)",
            ]
        else:  # I = c ^ (b | ~d)
            lines += [
                f"    inv_({d}, f)",
                f"    or_(f, {b}, f)",
                f"    xor_(f, {c}, f)",
            ]
        lines += [
            f"    add_({a}, xk[{step}], t)",
            "    add_(t, f, t)",
            f"    lsh_(t, LS{step}, u)",
            f"    rsh_(t, RS{step}, t)",
            "    or_(u, t, t)",
            f"    add_({b}, t, {a})",
        ]
        registers = [d, a, b, c]
    # 64 steps rotate the register roles a whole number of times, so
    # the buffers end holding their own roles: no epilogue needed.
    return "\n".join(lines)


def _build_compress():
    namespace = {
        "xor_": np.bitwise_xor,
        "and_": np.bitwise_and,
        "or_": np.bitwise_or,
        "inv_": np.invert,
        "add_": np.add,
        "lsh_": np.left_shift,
        "rsh_": np.right_shift,
    }
    for step in range(64):
        shift = _SHIFTS[step // 16][step % 4]
        namespace[f"LS{step}"] = np.array(shift, dtype=np.uint32)
        namespace[f"RS{step}"] = np.array(32 - shift, dtype=np.uint32)
    exec(  # one compile at import; the source is fixed straight-line code
        compile(_compress_source(), "<repro.crypto.vector.md5>", "exec"),
        namespace,
    )
    return namespace["_compress_lanes"]


_compress_lanes = _build_compress()


def _digest_lanes(payloads: Sequence[bytes]) -> List[bytes]:
    """MD5 of every payload, lanes in parallel; original order preserved."""
    n = len(payloads)
    nblocks = [(len(payload) + 9 + 63) >> 6 for payload in payloads]
    # Longest lanes first (stable, so equal lengths keep batch order):
    # the active set at every block step is then a prefix view.
    order = sorted(range(n), key=lambda lane: -nblocks[lane])
    ascending = sorted(nblocks)
    max_blocks = nblocks[order[0]]
    width = max_blocks * 64
    buf = bytearray(n * width)
    for row, lane in enumerate(order):
        payload = payloads[lane]
        size = len(payload)
        offset = row * width
        buf[offset : offset + size] = payload
        buf[offset + size] = 0x80
        end = offset + nblocks[lane] * 64
        buf[end - 8 : end] = _LENGTH8.pack((size << 3) & 0xFFFFFFFFFFFFFFFF)
    words = (
        np.frombuffer(buf, dtype=np.uint8)
        .reshape(n, max_blocks, 64)
        .view("<u4")
        .astype(np.uint32)  # native byte order for the arithmetic
    )
    # The whole message schedule up front: one gather + one add for
    # every (lane, block), transposed so each step reads a contiguous
    # lane vector.
    schedule = np.ascontiguousarray(
        (words[:, :, _IDXV] + _KV).transpose(1, 2, 0)
    )  # [block, step, lane]
    state_a = np.full(n, _INIT[0], dtype=np.uint32)
    state_b = np.full(n, _INIT[1], dtype=np.uint32)
    state_c = np.full(n, _INIT[2], dtype=np.uint32)
    state_d = np.full(n, _INIT[3], dtype=np.uint32)
    work = [np.empty(n, dtype=np.uint32) for _ in range(4)]
    f_buf = np.empty(n, dtype=np.uint32)
    t_buf = np.empty(n, dtype=np.uint32)
    u_buf = np.empty(n, dtype=np.uint32)
    for block in range(max_blocks):
        m = n - bisect_right(ascending, block)
        rows = list(schedule[block])
        if m == n:
            a, b, c, d = work
            sa, sb, sc, sd = state_a, state_b, state_c, state_d
            f, t, u = f_buf, t_buf, u_buf
        else:
            a, b, c, d = (w[:m] for w in work)
            sa, sb, sc, sd = state_a[:m], state_b[:m], state_c[:m], state_d[:m]
            f, t, u = f_buf[:m], t_buf[:m], u_buf[:m]
            rows = [row[:m] for row in rows]
        np.copyto(a, sa)
        np.copyto(b, sb)
        np.copyto(c, sc)
        np.copyto(d, sd)
        _compress_lanes(a, b, c, d, f, t, u, *rows)
        np.add(sa, a, sa)
        np.add(sb, b, sb)
        np.add(sc, c, sc)
        np.add(sd, d, sd)
    digest_words = np.empty((n, 4), dtype="<u4")
    digest_words[:, 0] = state_a
    digest_words[:, 1] = state_b
    digest_words[:, 2] = state_c
    digest_words[:, 3] = state_d
    raw = digest_words.tobytes()
    out: List[bytes] = [b""] * n
    for row, lane in enumerate(order):
        out[lane] = raw[row * 16 : row * 16 + 16]
    return out


def md5_many(messages: Sequence[bytes]) -> List[bytes]:
    """MD5 digest of each message (bit-identical to ``repro.crypto.md5``)."""
    if not messages:
        return []
    return _digest_lanes(messages)


def keyed_md5_many(keys: Sequence[bytes], messages: Sequence[bytes]) -> List[bytes]:
    """Prefix-keyed MD5 per lane: ``MD5(key | message)``.

    Bit-identical to :func:`repro.crypto.mac.keyed_md5` (and therefore
    to ``FlowCryptoState.mac`` before truncation -- truncating to the
    suite's MAC width is the caller's job, as in the scalar path).
    """
    if len(keys) != len(messages):
        raise ValueError("keys must be parallel to messages")
    if not messages:
        return []
    return _digest_lanes(
        [keys[i] + messages[i] for i in range(len(messages))]
    )
