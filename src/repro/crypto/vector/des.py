"""Lane-parallel DES-CBC over numpy ``int64`` arrays.

The scalar kernel (:mod:`repro.crypto.des`) runs one block through
sixteen table-lookup rounds; here the same tables are applied to whole
*arrays* of blocks, so each SP-box lookup is one gather across every
lane and each round is ~40 ufunc calls regardless of batch size.

Everything is ``int64`` end to end: every intermediate fits in 34 bits
(so signedness never bites), and ``int64`` equals ``intp`` on 64-bit
platforms, which makes the gather indices directly usable -- unsigned
index arrays would force a cast inside every fancy-indexing call.

Key material enters as packed per-round XOR masks.  The scalar kernel
folds subkeys into *selected* ``_SPX`` tables, which cannot batch
across lanes with different keys; instead the raw 6-bit chunks
(``DES.raw_subkeys``) are packed into two 34-bit masks per round --
even-numbered chunks at bit offsets 28/20/12/4 and odd-numbered at
24/16/8/0, disjoint within each parity set -- so applying a round key
to the widened E-expansion word costs two XORs for all eight boxes.
Single-key batches (the common case: one flow dominating a batch)
collapse the masks to 0-d arrays that broadcast for free.

Two CBC drivers with different parallel axes:

* :func:`cbc_encrypt_many` -- encryption chains within a lane, so it
  runs *lane-parallel, block-sequential*: lanes sorted longest-first,
  each block step processing the still-active prefix.
* :func:`cbc_decrypt_many` -- decryption has no chaining dependency
  (``P_i = D(C_i) ^ C_{i-1}``), so every block of every lane is
  flattened into one array and decrypted in a single kernel call; the
  chain inputs are a global shift of the ciphertext with the IVs
  scattered at lane starts.

Outputs are bit-identical to :mod:`repro.crypto.modes` (the
differential reference); property tests pin the equivalence.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.crypto.des import _FP_LUT, _IP_LUT, _SP, DES
from repro.crypto.modes import pad_block, unpad_block

__all__ = ["cbc_decrypt_many", "cbc_encrypt_many"]


def _half_luts(luts) -> Tuple[Tuple[np.ndarray, np.ndarray], ...]:
    """Byte-permutation LUTs split into 32-bit halves.

    The 64-bit table values split into (high, low) int64 pairs so the
    kernel can keep blocks as two 32-bit halves and never touch values
    a gather would have to widen.
    """
    packed = []
    for lut in luts:
        # Entries are full 64-bit patterns (top bit may be set), so load
        # unsigned and convert each 32-bit half -- which always fits.
        arr = np.array(lut, dtype=np.uint64)
        hi = (arr >> np.uint64(32)).astype(np.int64)
        lo = (arr & np.uint64(0xFFFFFFFF)).astype(np.int64)
        packed.append((hi, lo))
    return tuple(packed)


_IP_HL = _half_luts(_IP_LUT)
_FP_HL = _half_luts(_FP_LUT)
_SP_V = tuple(np.array(rows, dtype=np.int64) for rows in _SP)

#: Byte position k of a (hi, lo) pair: which half, shifted how far.
_BYTE_SHIFTS = (24, 16, 8, 0, 24, 16, 8, 0)


def _permute_hl(hi, lo, luts):
    """Apply a byte-LUT bit permutation to packed 32-bit half arrays."""
    halves = (hi, hi, hi, hi, lo, lo, lo, lo)
    out_hi = None
    out_lo = None
    for k in range(8):
        index = (halves[k] >> _BYTE_SHIFTS[k]) & 255
        hi_lut, lo_lut = luts[k]
        if out_hi is None:
            out_hi = hi_lut[index]
            out_lo = lo_lut[index]
        else:
            out_hi |= hi_lut[index]
            out_lo |= lo_lut[index]
    return out_hi, out_lo


def _crypt_lanes(hi, lo, ke, ko):
    """IP + sixteen DES rounds + FP over lane arrays.

    ``hi``/``lo`` hold the raw big-endian block halves, one lane per
    element; ``ke``/``ko`` are the sixteen per-round XOR masks for the
    even/odd SP-box windows, each either a 0-d array (shared key) or an
    array parallel to the lanes.  Returns the output halves.
    """
    left, right = _permute_hl(hi, lo, _IP_HL)
    sp0, sp1, sp2, sp3, sp4, sp5, sp6, sp7 = _SP_V
    for rnd in range(16):
        # E(R) on a 34-bit widening of R, as in the scalar kernel: the
        # eight overlapping 6-bit windows sit at shifts 28, 24, ..., 0.
        y = ((right & 1) << 33) | (right << 1) | (right >> 31)
        ye = y ^ ke[rnd]
        yo = y ^ ko[rnd]
        f = sp0[ye >> 28]
        f |= sp1[(yo >> 24) & 63]
        f |= sp2[(ye >> 20) & 63]
        f |= sp3[(yo >> 16) & 63]
        f |= sp4[(ye >> 12) & 63]
        f |= sp5[(yo >> 8) & 63]
        f |= sp6[(ye >> 4) & 63]
        f |= sp7[yo & 63]
        left ^= f
        left, right = right, left
    # Final swap then inverse initial permutation.
    return _permute_hl(right, left, _FP_HL)


def _packed_subkeys(cipher: DES):
    """Per-round (even, odd) XOR masks, both directions, cached on the cipher.

    Chunk ``i`` of a round key XORs the E-expansion window at shift
    ``28 - 4*i`` of the widened word; splitting chunks by parity makes
    each set's windows disjoint, so eight 6-bit XORs pack into two.
    """
    cached = cipher._vector
    if cached is None:
        even = []
        odd = []
        for k0, k1, k2, k3, k4, k5, k6, k7 in cipher.raw_subkeys:
            even.append(k0 << 28 | k2 << 20 | k4 << 12 | k6 << 4)
            odd.append(k1 << 24 | k3 << 16 | k5 << 8 | k7)
        cached = (
            tuple(even),
            tuple(odd),
            tuple(reversed(even)),
            tuple(reversed(odd)),
        )
        cipher._vector = cached
    return cached


def _mask_rows(ciphers: Sequence[DES], decrypt: bool, repeats=None):
    """Sixteen (ke, ko) mask rows for a batch.

    ``ciphers`` is per lane; ``repeats`` optionally expands lanes to
    per-block rows (the flattened decrypt axis).  A single-key batch
    collapses to 0-d masks that broadcast against any lane count.
    """
    unique: List[DES] = []
    index_of = {}
    lane_index = []
    for cipher in ciphers:
        pos = index_of.get(id(cipher))
        if pos is None:
            pos = index_of[id(cipher)] = len(unique)
            unique.append(cipher)
        lane_index.append(pos)
    packed = [_packed_subkeys(cipher) for cipher in unique]
    select = 2 if decrypt else 0
    if len(unique) == 1:
        ke = [np.array(mask, dtype=np.int64) for mask in packed[0][select]]
        ko = [np.array(mask, dtype=np.int64) for mask in packed[0][select + 1]]
        return ke, ko
    ke_matrix = np.array([p[select] for p in packed], dtype=np.int64).T
    ko_matrix = np.array([p[select + 1] for p in packed], dtype=np.int64).T
    index = np.array(lane_index, dtype=np.intp)
    if repeats is not None:
        index = np.repeat(index, repeats)
    return list(ke_matrix[:, index]), list(ko_matrix[:, index])


def _blocks_to_halves(raw: bytes, count: int):
    """Pack ``count`` 8-byte blocks into native int64 (hi, lo) columns."""
    words = (
        np.frombuffer(raw, dtype=np.uint8)
        .reshape(count, 2, 4)
        .view(">u4")
        .astype(np.int64)
        .reshape(count, 2)
    )
    return words[:, 0], words[:, 1]


def cbc_encrypt_many(
    ciphers: Sequence[DES], ivs: Sequence[bytes], plaintexts: Sequence[bytes]
) -> List[bytes]:
    """PKCS#7-pad and CBC-encrypt independent lanes.

    Lane-parallel and block-sequential: encryption chains within each
    lane, so the batch axis is the only parallel axis.  Lanes run
    longest-first so a ragged batch shrinks to prefix views.  Output is
    bit-identical to per-lane ``modes.encrypt_cbc``.
    """
    n = len(plaintexts)
    if len(ciphers) != n or len(ivs) != n:
        raise ValueError("ciphers and ivs must be parallel to plaintexts")
    if n == 0:
        return []
    padded = [pad_block(plaintext) for plaintext in plaintexts]
    nblocks = [len(data) >> 3 for data in padded]
    order = sorted(range(n), key=lambda lane: -nblocks[lane])
    ascending = sorted(nblocks)
    max_blocks = nblocks[order[0]]
    width = max_blocks * 8
    buf = bytearray(n * width)
    for row, lane in enumerate(order):
        data = padded[lane]
        buf[row * width : row * width + len(data)] = data
    words = (
        np.frombuffer(buf, dtype=np.uint8)
        .reshape(n, max_blocks, 2, 4)
        .view(">u4")
        .astype(np.int64)
        .reshape(n, max_blocks, 2)
    )
    plain_hi = words[:, :, 0]
    plain_lo = words[:, :, 1]
    chain_hi, chain_lo = _blocks_to_halves(
        b"".join(ivs[lane] for lane in order), n
    )
    ke, ko = _mask_rows([ciphers[lane] for lane in order], decrypt=False)
    broadcast = ke[0].ndim == 0
    out_hi = np.empty((n, max_blocks), dtype=np.int64)
    out_lo = np.empty((n, max_blocks), dtype=np.int64)
    ke_m, ko_m = ke, ko
    m_prev = n
    for block in range(max_blocks):
        m = n - bisect_right(ascending, block)
        if m != m_prev and not broadcast:
            ke_m = [row[:m] for row in ke]
            ko_m = [row[:m] for row in ko]
        m_prev = m
        x_hi = plain_hi[:m, block] ^ chain_hi[:m]
        x_lo = plain_lo[:m, block] ^ chain_lo[:m]
        c_hi, c_lo = _crypt_lanes(x_hi, x_lo, ke_m, ko_m)
        out_hi[:m, block] = c_hi
        out_lo[:m, block] = c_lo
        chain_hi, chain_lo = c_hi, c_lo
    out_words = np.empty((n, max_blocks, 2), dtype=">u4")
    out_words[:, :, 0] = out_hi
    out_words[:, :, 1] = out_lo
    raw = out_words.tobytes()
    results = [b""] * n
    for row, lane in enumerate(order):
        results[lane] = raw[row * width : row * width + nblocks[lane] * 8]
    return results


def cbc_decrypt_many(
    ciphers: Sequence[DES], ivs: Sequence[bytes], ciphertexts: Sequence[bytes]
) -> List[Optional[bytes]]:
    """CBC-decrypt and unpad independent lanes; ``None`` marks a bad lane.

    Decryption is chain-free (``P_i = D(C_i) ^ C_{i-1}``), so every
    block of every lane flattens into one kernel call -- the parallel
    width is the *total block count*, not the lane count, which is what
    makes receive-side batching so much faster than send-side.

    A lane that is not a whole number of blocks, or whose padding is
    corrupt after decryption, yields ``None`` -- exactly the lanes
    where scalar ``modes.decrypt`` raises ``ValueError``.
    """
    n = len(ciphertexts)
    if len(ciphers) != n or len(ivs) != n:
        raise ValueError("ciphers and ivs must be parallel to ciphertexts")
    results: List[Optional[bytes]] = [None] * n
    valid = [
        lane
        for lane in range(n)
        if ciphertexts[lane] and len(ciphertexts[lane]) % 8 == 0
    ]
    if not valid:
        return results
    counts = [len(ciphertexts[lane]) >> 3 for lane in valid]
    starts = []
    total = 0
    for count in counts:
        starts.append(total)
        total += count
    cipher_hi, cipher_lo = _blocks_to_halves(
        b"".join(ciphertexts[lane] for lane in valid), total
    )
    prev_hi = np.empty(total, dtype=np.int64)
    prev_lo = np.empty(total, dtype=np.int64)
    prev_hi[1:] = cipher_hi[:-1]
    prev_lo[1:] = cipher_lo[:-1]
    iv_hi, iv_lo = _blocks_to_halves(
        b"".join(ivs[lane] for lane in valid), len(valid)
    )
    start_index = np.array(starts, dtype=np.intp)
    prev_hi[start_index] = iv_hi
    prev_lo[start_index] = iv_lo
    ke, ko = _mask_rows(
        [ciphers[lane] for lane in valid], decrypt=True, repeats=counts
    )
    out_hi, out_lo = _crypt_lanes(cipher_hi, cipher_lo, ke, ko)
    out_hi ^= prev_hi
    out_lo ^= prev_lo
    out_words = np.empty((total, 2), dtype=">u4")
    out_words[:, 0] = out_hi
    out_words[:, 1] = out_lo
    raw = out_words.tobytes()
    for position, lane in enumerate(valid):
        begin = starts[position] * 8
        segment = raw[begin : begin + counts[position] * 8]
        try:
            results[lane] = unpad_block(segment)
        except ValueError:
            results[lane] = None
    return results
