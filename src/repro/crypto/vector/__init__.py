"""numpy-vectorized batch crypto kernels: the lane datapath.

The scalar kernels (:mod:`repro.crypto.des`, :mod:`repro.crypto.md5`)
process one block of one datagram at a time; a ``protect_batch`` /
``unprotect_batch`` call pays the full Python interpreter overhead per
block.  This package runs the same algorithms across **N independent
datagram lanes at once**: every DES SP-table lookup becomes one array
gather over all lanes, every MD5 step becomes a handful of ufunc calls
over a lane vector, and header stamping becomes column assignments on a
byte matrix.  The per-lane outputs are bit-identical to the scalar
kernels -- the scalar modules stay the differential reference, in the
same pattern as ``des.reference``.

numpy is optional at runtime: :data:`HAVE_NUMPY` is ``False`` when the
import fails, the kernel names below then raise, and the protocol layer
(:class:`repro.core.protocol.FBSEndpoint`) silently falls back to the
scalar per-datagram loop.  Nothing in ``repro`` outside this package
imports numpy.
"""

try:
    import numpy  # noqa: F401  (probe only; kernels import it directly)
except ImportError:
    HAVE_NUMPY = False
else:
    HAVE_NUMPY = True

if HAVE_NUMPY:
    from repro.crypto.vector.des import cbc_decrypt_many, cbc_encrypt_many
    from repro.crypto.vector.md5 import keyed_md5_many, md5_many
    from repro.crypto.vector.stamp import encode_headers_many
else:

    def _unavailable(*_args, **_kwargs):
        raise RuntimeError(
            "repro.crypto.vector requires numpy; the scalar datapath "
            "(repro.crypto.des / .md5 / .modes) is the fallback"
        )

    cbc_decrypt_many = _unavailable
    cbc_encrypt_many = _unavailable
    keyed_md5_many = _unavailable
    md5_many = _unavailable
    encode_headers_many = _unavailable

__all__ = [
    "HAVE_NUMPY",
    "cbc_decrypt_many",
    "cbc_encrypt_many",
    "encode_headers_many",
    "keyed_md5_many",
    "md5_many",
]
