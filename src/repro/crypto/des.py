"""The DES block cipher (FIPS 46), implemented from scratch.

The paper's IP mapping uses DES for data confidentiality ("we use DES for
encryption and MD5 for MAC computation", Section 7.2) via the CryptoLib
library.  This module is a table-driven reference implementation operating
on 64-bit blocks with a 64-bit key (56 effective key bits; parity bits are
ignored, as in CryptoLib).

The implementation favours clarity over speed: permutations are expressed
directly from the FIPS tables.  Published test vectors are exercised in
``tests/crypto/test_des.py``.
"""

from __future__ import annotations

from typing import List, Sequence

__all__ = ["DES", "BLOCK_SIZE"]

#: DES block size in bytes.
BLOCK_SIZE = 8

# ---------------------------------------------------------------------------
# FIPS 46 permutation tables.  All tables are 1-indexed bit positions taken
# verbatim from the standard; bit 1 is the most significant bit of the input.
# ---------------------------------------------------------------------------

_IP = (
    58, 50, 42, 34, 26, 18, 10, 2,
    60, 52, 44, 36, 28, 20, 12, 4,
    62, 54, 46, 38, 30, 22, 14, 6,
    64, 56, 48, 40, 32, 24, 16, 8,
    57, 49, 41, 33, 25, 17, 9, 1,
    59, 51, 43, 35, 27, 19, 11, 3,
    61, 53, 45, 37, 29, 21, 13, 5,
    63, 55, 47, 39, 31, 23, 15, 7,
)

_FP = (
    40, 8, 48, 16, 56, 24, 64, 32,
    39, 7, 47, 15, 55, 23, 63, 31,
    38, 6, 46, 14, 54, 22, 62, 30,
    37, 5, 45, 13, 53, 21, 61, 29,
    36, 4, 44, 12, 52, 20, 60, 28,
    35, 3, 43, 11, 51, 19, 59, 27,
    34, 2, 42, 10, 50, 18, 58, 26,
    33, 1, 41, 9, 49, 17, 57, 25,
)

_E = (
    32, 1, 2, 3, 4, 5,
    4, 5, 6, 7, 8, 9,
    8, 9, 10, 11, 12, 13,
    12, 13, 14, 15, 16, 17,
    16, 17, 18, 19, 20, 21,
    20, 21, 22, 23, 24, 25,
    24, 25, 26, 27, 28, 29,
    28, 29, 30, 31, 32, 1,
)

_P = (
    16, 7, 20, 21,
    29, 12, 28, 17,
    1, 15, 23, 26,
    5, 18, 31, 10,
    2, 8, 24, 14,
    32, 27, 3, 9,
    19, 13, 30, 6,
    22, 11, 4, 25,
)

_PC1 = (
    57, 49, 41, 33, 25, 17, 9,
    1, 58, 50, 42, 34, 26, 18,
    10, 2, 59, 51, 43, 35, 27,
    19, 11, 3, 60, 52, 44, 36,
    63, 55, 47, 39, 31, 23, 15,
    7, 62, 54, 46, 38, 30, 22,
    14, 6, 61, 53, 45, 37, 29,
    21, 13, 5, 28, 20, 12, 4,
)

_PC2 = (
    14, 17, 11, 24, 1, 5,
    3, 28, 15, 6, 21, 10,
    23, 19, 12, 4, 26, 8,
    16, 7, 27, 20, 13, 2,
    41, 52, 31, 37, 47, 55,
    30, 40, 51, 45, 33, 48,
    44, 49, 39, 56, 34, 53,
    46, 42, 50, 36, 29, 32,
)

_SHIFTS = (1, 1, 2, 2, 2, 2, 2, 2, 1, 2, 2, 2, 2, 2, 2, 1)

_SBOXES = (
    # S1
    (
        (14, 4, 13, 1, 2, 15, 11, 8, 3, 10, 6, 12, 5, 9, 0, 7),
        (0, 15, 7, 4, 14, 2, 13, 1, 10, 6, 12, 11, 9, 5, 3, 8),
        (4, 1, 14, 8, 13, 6, 2, 11, 15, 12, 9, 7, 3, 10, 5, 0),
        (15, 12, 8, 2, 4, 9, 1, 7, 5, 11, 3, 14, 10, 0, 6, 13),
    ),
    # S2
    (
        (15, 1, 8, 14, 6, 11, 3, 4, 9, 7, 2, 13, 12, 0, 5, 10),
        (3, 13, 4, 7, 15, 2, 8, 14, 12, 0, 1, 10, 6, 9, 11, 5),
        (0, 14, 7, 11, 10, 4, 13, 1, 5, 8, 12, 6, 9, 3, 2, 15),
        (13, 8, 10, 1, 3, 15, 4, 2, 11, 6, 7, 12, 0, 5, 14, 9),
    ),
    # S3
    (
        (10, 0, 9, 14, 6, 3, 15, 5, 1, 13, 12, 7, 11, 4, 2, 8),
        (13, 7, 0, 9, 3, 4, 6, 10, 2, 8, 5, 14, 12, 11, 15, 1),
        (13, 6, 4, 9, 8, 15, 3, 0, 11, 1, 2, 12, 5, 10, 14, 7),
        (1, 10, 13, 0, 6, 9, 8, 7, 4, 15, 14, 3, 11, 5, 2, 12),
    ),
    # S4
    (
        (7, 13, 14, 3, 0, 6, 9, 10, 1, 2, 8, 5, 11, 12, 4, 15),
        (13, 8, 11, 5, 6, 15, 0, 3, 4, 7, 2, 12, 1, 10, 14, 9),
        (10, 6, 9, 0, 12, 11, 7, 13, 15, 1, 3, 14, 5, 2, 8, 4),
        (3, 15, 0, 6, 10, 1, 13, 8, 9, 4, 5, 11, 12, 7, 2, 14),
    ),
    # S5
    (
        (2, 12, 4, 1, 7, 10, 11, 6, 8, 5, 3, 15, 13, 0, 14, 9),
        (14, 11, 2, 12, 4, 7, 13, 1, 5, 0, 15, 10, 3, 9, 8, 6),
        (4, 2, 1, 11, 10, 13, 7, 8, 15, 9, 12, 5, 6, 3, 0, 14),
        (11, 8, 12, 7, 1, 14, 2, 13, 6, 15, 0, 9, 10, 4, 5, 3),
    ),
    # S6
    (
        (12, 1, 10, 15, 9, 2, 6, 8, 0, 13, 3, 4, 14, 7, 5, 11),
        (10, 15, 4, 2, 7, 12, 9, 5, 6, 1, 13, 14, 0, 11, 3, 8),
        (9, 14, 15, 5, 2, 8, 12, 3, 7, 0, 4, 10, 1, 13, 11, 6),
        (4, 3, 2, 12, 9, 5, 15, 10, 11, 14, 1, 7, 6, 0, 8, 13),
    ),
    # S7
    (
        (4, 11, 2, 14, 15, 0, 8, 13, 3, 12, 9, 7, 5, 10, 6, 1),
        (13, 0, 11, 7, 4, 9, 1, 10, 14, 3, 5, 12, 2, 15, 8, 6),
        (1, 4, 11, 13, 12, 3, 7, 14, 10, 15, 6, 8, 0, 5, 9, 2),
        (6, 11, 13, 8, 1, 4, 10, 7, 9, 5, 0, 15, 14, 2, 3, 12),
    ),
    # S8
    (
        (13, 2, 8, 4, 6, 15, 11, 1, 10, 9, 3, 14, 5, 0, 12, 7),
        (1, 15, 13, 8, 10, 3, 7, 4, 12, 5, 6, 11, 0, 14, 9, 2),
        (7, 11, 4, 1, 9, 12, 14, 2, 0, 6, 10, 13, 15, 3, 5, 8),
        (2, 1, 14, 7, 4, 10, 8, 13, 15, 12, 9, 0, 3, 5, 6, 11),
    ),
)


def _permute(value: int, width: int, table: Sequence[int]) -> int:
    """Apply a FIPS bit-permutation table to ``value`` of ``width`` bits.

    Table entries are 1-indexed from the most significant bit, per the
    standard's convention.  This direct form is the specification; the
    hot paths use byte-indexed lookup tables built from it by
    :func:`_build_permutation_luts` (bit permutations distribute over
    OR, so the result is the OR of one table lookup per input byte).
    """
    out = 0
    for pos in table:
        out = (out << 1) | ((value >> (width - pos)) & 1)
    return out


def _build_permutation_luts(width: int, table: Sequence[int]):
    """Precompute per-input-byte lookup tables for a bit permutation."""
    nbytes = width // 8
    luts = []
    for byte_index in range(nbytes):
        shift = width - 8 * (byte_index + 1)
        entries = [
            _permute(byte_value << shift, width, table) for byte_value in range(256)
        ]
        luts.append(tuple(entries))
    return tuple(luts)


def _apply_luts(value: int, width: int, luts) -> int:
    out = 0
    for byte_index, lut in enumerate(luts):
        shift = width - 8 * (byte_index + 1)
        out |= lut[(value >> shift) & 0xFF]
    return out


_IP_LUTS = _build_permutation_luts(64, _IP)
_FP_LUTS = _build_permutation_luts(64, _FP)
_PC1_LUTS = _build_permutation_luts(64, _PC1)
# PC2 consumes a 56-bit quantity: pad to 56 bits (7 bytes).
_PC2_LUTS = _build_permutation_luts(56, _PC2)
# The expansion E consumes 32 bits and emits 48.
_E_LUTS = _build_permutation_luts(32, _E)

# SP boxes: S-box output already run through the P permutation, so one
# lookup per 6-bit chunk replaces the per-round S + P work.
_SP = []
for _box in range(8):
    entries = []
    for _chunk in range(64):
        _row = ((_chunk >> 4) & 0b10) | (_chunk & 1)
        _col = (_chunk >> 1) & 0x0F
        _s_out = _SBOXES[_box][_row][_col] << (28 - 4 * _box)
        entries.append(_permute(_s_out, 32, _P))
    _SP.append(tuple(entries))
_SP = tuple(_SP)


def _rotate_left_28(value: int, amount: int) -> int:
    """Rotate a 28-bit quantity left by ``amount`` bits."""
    return ((value << amount) | (value >> (28 - amount))) & 0x0FFFFFFF


class DES:
    """DES with a fixed key, exposing single-block encrypt/decrypt.

    Parameters
    ----------
    key:
        8-byte key.  Parity bits (the least significant bit of each byte)
        are ignored, per FIPS 46.

    Higher-level modes of operation (CBC and friends, padding) live in
    :mod:`repro.crypto.modes`.
    """

    def __init__(self, key: bytes) -> None:
        if len(key) != BLOCK_SIZE:
            raise ValueError(f"DES key must be 8 bytes, got {len(key)}")
        self._subkeys = self._key_schedule(int.from_bytes(key, "big"))

    @staticmethod
    def _key_schedule(key: int) -> List[int]:
        """Derive the sixteen 48-bit round subkeys."""
        permuted = _apply_luts(key, 64, _PC1_LUTS)
        c = (permuted >> 28) & 0x0FFFFFFF
        d = permuted & 0x0FFFFFFF
        subkeys = []
        for shift in _SHIFTS:
            c = _rotate_left_28(c, shift)
            d = _rotate_left_28(d, shift)
            subkeys.append(_apply_luts((c << 28) | d, 56, _PC2_LUTS))
        return subkeys

    @staticmethod
    def _feistel(half: int, subkey: int) -> int:
        """The DES round function f(R, K), via fused SP-box lookups."""
        expanded = _apply_luts(half, 32, _E_LUTS) ^ subkey
        return (
            _SP[0][(expanded >> 42) & 0x3F]
            | _SP[1][(expanded >> 36) & 0x3F]
            | _SP[2][(expanded >> 30) & 0x3F]
            | _SP[3][(expanded >> 24) & 0x3F]
            | _SP[4][(expanded >> 18) & 0x3F]
            | _SP[5][(expanded >> 12) & 0x3F]
            | _SP[6][(expanded >> 6) & 0x3F]
            | _SP[7][expanded & 0x3F]
        )

    def _crypt_block(self, block: int, subkeys: Sequence[int]) -> int:
        block = _apply_luts(block, 64, _IP_LUTS)
        left = (block >> 32) & 0xFFFFFFFF
        right = block & 0xFFFFFFFF
        feistel = self._feistel
        for subkey in subkeys:
            left, right = right, left ^ feistel(right, subkey)
        # Final swap then inverse initial permutation.
        return _apply_luts((right << 32) | left, 64, _FP_LUTS)

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt a single 8-byte block."""
        if len(block) != BLOCK_SIZE:
            raise ValueError(f"DES block must be 8 bytes, got {len(block)}")
        value = self._crypt_block(int.from_bytes(block, "big"), self._subkeys)
        return value.to_bytes(BLOCK_SIZE, "big")

    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt a single 8-byte block."""
        if len(block) != BLOCK_SIZE:
            raise ValueError(f"DES block must be 8 bytes, got {len(block)}")
        value = self._crypt_block(
            int.from_bytes(block, "big"), tuple(reversed(self._subkeys))
        )
        return value.to_bytes(BLOCK_SIZE, "big")
