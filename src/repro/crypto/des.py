"""The DES block cipher (FIPS 46): the datapath fast kernel.

The paper's IP mapping uses DES for data confidentiality ("we use DES for
encryption and MD5 for MAC computation", Section 7.2) via the CryptoLib
library.  CryptoLib got its speed from precomputation, and so does this
module: everything data-independent is folded into tables at import time,
everything key-dependent is folded into the key schedule once in
``__init__``, and the per-block path is table lookups on plain ints.

* **Combined SP-boxes** -- each 6-bit S-box input maps straight to the
  P-permuted 32-bit round-function contribution, so one round is eight
  lookup/XOR/OR steps with no bit walking.
* **Byte-indexed IP/FP tables** -- the initial and final permutations
  are each eight 256-entry lookups (bit permutations distribute over OR).
* **Folded E expansion** -- the expansion's eight overlapping 6-bit
  windows are read directly off a 34-bit widening of the right half
  (``R`` with its edge bits wrapped around), so E costs three shifts per
  round instead of a table application.
* **Subkeys as 6-bit chunks** -- the key schedule stores each 48-bit
  round key pre-split into the eight chunks the SP lookups consume, and
  keeps the reversed (decryption) order too, so ``decrypt_block`` never
  re-materializes the schedule.

The per-bit specification implementation this kernel is differentially
tested against lives in :mod:`repro.crypto.des_reference` and is
re-exported here as ``reference`` (``from repro.crypto import des;
des.reference.DES``).  The FIPS tables themselves live in the reference
module -- single source of truth -- and are only consumed here at import
time to build the lookup tables.

Higher-level modes of operation (CBC and friends, padding) live in
:mod:`repro.crypto.modes`; they drive the ``encrypt_int``/``decrypt_int``
entry points to keep whole buffers in int space.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.crypto import des_reference as reference
from repro.crypto.des_reference import (
    E as _E,
    FP as _FP,
    IP as _IP,
    P as _P,
    PC1 as _PC1,
    PC2 as _PC2,
    SBOXES as _SBOXES,
    SHIFTS as _SHIFTS,
    permute as _permute,
)

__all__ = ["DES", "BLOCK_SIZE", "reference"]

#: DES block size in bytes.
BLOCK_SIZE = 8


def _byte_luts(width: int, table: Sequence[int]) -> Tuple[Tuple[int, ...], ...]:
    """Per-input-byte lookup tables for a bit permutation.

    A bit permutation distributes over OR, so permuting a ``width``-bit
    value equals OR-ing one precomputed table entry per input byte.
    """
    luts = []
    for byte_index in range(width // 8):
        shift = width - 8 * (byte_index + 1)
        luts.append(
            tuple(
                _permute(byte_value << shift, width, table)
                for byte_value in range(256)
            )
        )
    return tuple(luts)


_IP_LUT = _byte_luts(64, _IP)
_FP_LUT = _byte_luts(64, _FP)
_PC1_LUT = _byte_luts(64, _PC1)
# PC2 consumes a 56-bit quantity: pad to 56 bits (7 bytes).
_PC2_LUT = _byte_luts(56, _PC2)

# Combined SP-boxes: S-box output already run through the P permutation,
# so one lookup per 6-bit chunk replaces the per-round S + P work.
_SP = tuple(
    tuple(
        _permute(
            _SBOXES[box][((chunk >> 4) & 0b10) | (chunk & 1)][(chunk >> 1) & 0x0F]
            << (28 - 4 * box),
            32,
            _P,
        )
        for chunk in range(64)
    )
    for box in range(8)
)

# Every XOR-permutation of every SP-box: ``_SPX[box][k]`` is ``_SP[box]``
# re-indexed by a 6-bit subkey chunk (``_SPX[box][k][i] == _SP[box][i ^
# k]``).  The key schedule then *selects* eight tables per round and the
# round function drops all eight subkey XORs -- the per-key work moves to
# a handful of tuple lookups at schedule time, the per-block loop is pure
# subscripting.  8 boxes x 64 chunks x 64 entries ~= 32k shared ints.
_SPX = tuple(
    tuple(tuple(sp[i ^ k] for i in range(64)) for k in range(64))
    for sp in _SP
)


def _crypt(
    block: int,
    subkeys: Sequence[Tuple[Tuple[int, ...], ...]],
    # The tables are bound as default arguments so every lookup in the
    # hot loop resolves as a local, not a module global.
    ip0=_IP_LUT[0], ip1=_IP_LUT[1], ip2=_IP_LUT[2], ip3=_IP_LUT[3],
    ip4=_IP_LUT[4], ip5=_IP_LUT[5], ip6=_IP_LUT[6], ip7=_IP_LUT[7],
    fp0=_FP_LUT[0], fp1=_FP_LUT[1], fp2=_FP_LUT[2], fp3=_FP_LUT[3],
    fp4=_FP_LUT[4], fp5=_FP_LUT[5], fp6=_FP_LUT[6], fp7=_FP_LUT[7],
) -> int:
    """One DES block in int space (the direction is set by ``subkeys``).

    ``subkeys`` is the key schedule as produced by :func:`_key_schedule`:
    sixteen rounds of eight key-selected SP tables (see ``_SPX``), so the
    round function is subscripting and OR only.
    """
    t = (
        ip0[block >> 56]
        | ip1[(block >> 48) & 0xFF]
        | ip2[(block >> 40) & 0xFF]
        | ip3[(block >> 32) & 0xFF]
        | ip4[(block >> 24) & 0xFF]
        | ip5[(block >> 16) & 0xFF]
        | ip6[(block >> 8) & 0xFF]
        | ip7[block & 0xFF]
    )
    left = t >> 32
    right = t & 0xFFFFFFFF
    for t0, t1, t2, t3, t4, t5, t6, t7 in subkeys:
        # E(R) read off a 34-bit widening of R: bit 32 wrapped above the
        # MSB, bit 1 wrapped below the LSB.  The eight overlapping 6-bit
        # expansion windows then sit at shifts 28, 24, ..., 0 (the top
        # window needs no mask: y >> 28 is already just six bits).
        y = ((right & 1) << 33) | (right << 1) | (right >> 31)
        left, right = right, left ^ (
            t0[y >> 28]
            | t1[(y >> 24) & 0x3F]
            | t2[(y >> 20) & 0x3F]
            | t3[(y >> 16) & 0x3F]
            | t4[(y >> 12) & 0x3F]
            | t5[(y >> 8) & 0x3F]
            | t6[(y >> 4) & 0x3F]
            | t7[y & 0x3F]
        )
    # Final swap then inverse initial permutation.
    t = (right << 32) | left
    return (
        fp0[t >> 56]
        | fp1[(t >> 48) & 0xFF]
        | fp2[(t >> 40) & 0xFF]
        | fp3[(t >> 32) & 0xFF]
        | fp4[(t >> 24) & 0xFF]
        | fp5[(t >> 16) & 0xFF]
        | fp6[(t >> 8) & 0xFF]
        | fp7[t & 0xFF]
    )


def _apply_luts(value: int, width: int, luts: Tuple[Tuple[int, ...], ...]) -> int:
    out = 0
    for byte_index, lut in enumerate(luts):
        out |= lut[(value >> (width - 8 * (byte_index + 1))) & 0xFF]
    return out


def _round_key_luts() -> Tuple[Tuple[Tuple[int, ...], ...], ...]:
    """Per-round window tables with the rotation *and* PC2 folded in.

    The schedule's per-round work is ``rotate(C, t); rotate(D, t);
    PC2(C|D)``.  Both steps are bit permutations, so they compose: bit
    ``i`` of the unrotated C half lands at position ``(i + t) % 28``
    after the round's cumulative left-rotation ``t``, and its PC2 image
    from there is a fixed 48-bit mask.  Folding that composition into
    tables indexed by 7-bit windows of the *unrotated* halves turns the
    whole round into eight lookups and seven ORs -- no rotates, no
    56-bit re-packing, no generic table application.

    Layout: sixteen rounds x eight tables (windows of C at bit offsets
    21/14/7/0, then the same four windows of D) x 128 entries.
    """
    # PC2 image of each single bit of the (rotated) C and D halves.
    pc2_c_bit = [_apply_luts((1 << i) << 28, 56, _PC2_LUT) for i in range(28)]
    pc2_d_bit = [_apply_luts(1 << i, 56, _PC2_LUT) for i in range(28)]
    rounds = []
    total = 0
    for shift in _SHIFTS:
        total += shift
        tables = []
        for half_bits in (pc2_c_bit, pc2_d_bit):
            for base in (21, 14, 7, 0):
                window = []
                for value in range(128):
                    k48 = 0
                    for bit in range(7):
                        if (value >> bit) & 1:
                            k48 |= half_bits[(base + bit + total) % 28]
                    window.append(k48)
                tables.append(tuple(window))
        rounds.append(tuple(tables))
    return tuple(rounds)


_ROUND_KEY_LUTS = _round_key_luts()


def _raw_schedule(key: int) -> Tuple[Tuple[int, ...], ...]:
    """The sixteen round subkeys as raw 6-bit chunks (no table selection).

    This is the schedule the vector datapath consumes
    (:mod:`repro.crypto.vector` packs the chunks into per-round XOR
    masks); the scalar path uses :func:`_key_schedule`, which fuses the
    ``_SPX`` table selection into the same loop.
    """
    permuted = _apply_luts(key, 64, _PC1_LUT)
    c = (permuted >> 28) & 0x0FFFFFFF
    d = permuted & 0x0FFFFFFF
    c0, c1, c2, c3 = c >> 21, (c >> 14) & 127, (c >> 7) & 127, c & 127
    d0, d1, d2, d3 = d >> 21, (d >> 14) & 127, (d >> 7) & 127, d & 127
    rounds = []
    for cw0, cw1, cw2, cw3, dw0, dw1, dw2, dw3 in _ROUND_KEY_LUTS:
        k48 = (
            cw0[c0] | cw1[c1] | cw2[c2] | cw3[c3]
            | dw0[d0] | dw1[d1] | dw2[d2] | dw3[d3]
        )
        rounds.append(
            (
                (k48 >> 42) & 0x3F,
                (k48 >> 36) & 0x3F,
                (k48 >> 30) & 0x3F,
                (k48 >> 24) & 0x3F,
                (k48 >> 18) & 0x3F,
                (k48 >> 12) & 0x3F,
                (k48 >> 6) & 0x3F,
                k48 & 0x3F,
            )
        )
    return tuple(rounds)


def _key_schedule(key: int) -> Tuple[Tuple[Tuple[int, ...], ...], ...]:
    """The sixteen round subkeys as selected SP tables.

    Each round's 48-bit subkey is split into eight 6-bit chunks and each
    chunk picks its pre-XORed SP table from ``_SPX`` -- sixteen rounds of
    eight shared 64-entry tuples, no per-key table construction.  The
    48-bit subkeys come from :data:`_ROUND_KEY_LUTS`, which bakes the
    per-round rotation and PC2 into window lookups on the PC1 output.
    """
    permuted = _apply_luts(key, 64, _PC1_LUT)
    c = (permuted >> 28) & 0x0FFFFFFF
    d = permuted & 0x0FFFFFFF
    c0, c1, c2, c3 = c >> 21, (c >> 14) & 127, (c >> 7) & 127, c & 127
    d0, d1, d2, d3 = d >> 21, (d >> 14) & 127, (d >> 7) & 127, d & 127
    spx0, spx1, spx2, spx3, spx4, spx5, spx6, spx7 = _SPX
    subkeys = []
    for cw0, cw1, cw2, cw3, dw0, dw1, dw2, dw3 in _ROUND_KEY_LUTS:
        k48 = (
            cw0[c0] | cw1[c1] | cw2[c2] | cw3[c3]
            | dw0[d0] | dw1[d1] | dw2[d2] | dw3[d3]
        )
        subkeys.append(
            (
                spx0[(k48 >> 42) & 0x3F],
                spx1[(k48 >> 36) & 0x3F],
                spx2[(k48 >> 30) & 0x3F],
                spx3[(k48 >> 24) & 0x3F],
                spx4[(k48 >> 18) & 0x3F],
                spx5[(k48 >> 12) & 0x3F],
                spx6[(k48 >> 6) & 0x3F],
                spx7[k48 & 0x3F],
            )
        )
    return tuple(subkeys)


class DES:
    """DES with a fixed key, exposing single-block encrypt/decrypt.

    Parameters
    ----------
    key:
        8-byte key.  Parity bits (the least significant bit of each byte)
        are ignored, per FIPS 46.

    The key schedule -- including the reversed decryption order -- is
    computed exactly once here; per-block work is pure table lookups.
    ``schedule_builds`` counts schedule constructions process-wide so
    tests and benches can assert that cache-hit datapaths build zero
    schedules (the Figure 6 fast-path contract).

    Higher-level modes of operation (CBC and friends, padding) live in
    :mod:`repro.crypto.modes`.
    """

    __slots__ = ("subkeys", "subkeys_rev", "_key_int", "_raw", "_vector")

    #: Process-wide count of key-schedule constructions (one per DES()).
    schedule_builds = 0

    def __init__(self, key: bytes) -> None:
        if len(key) != BLOCK_SIZE:
            raise ValueError(f"DES key must be 8 bytes, got {len(key)}")
        DES.schedule_builds += 1
        self._key_int = int.from_bytes(key, "big")
        #: The encryption schedule: what :func:`_crypt` consumes.  The
        #: mode layer (:mod:`repro.crypto.modes`) reads these directly to
        #: drive ``_crypt`` without per-block method dispatch.
        self.subkeys = _key_schedule(self._key_int)
        self.subkeys_rev = tuple(reversed(self.subkeys))
        # Lazily-built views for the vector datapath: the raw 6-bit
        # schedule and the packed per-round masks cached on it by
        # repro.crypto.vector (None until a batch touches this key).
        self._raw = None
        self._vector = None

    @property
    def raw_subkeys(self) -> Tuple[Tuple[int, ...], ...]:
        """Sixteen rounds of eight raw 6-bit subkey chunks.

        Built on first use (the scalar path never needs it) and cached;
        the vector datapath packs these into per-lane XOR masks.
        """
        raw = self._raw
        if raw is None:
            raw = self._raw = _raw_schedule(self._key_int)
        return raw

    def encrypt_int(self, block: int) -> int:
        """Encrypt one block given (and returned) as a 64-bit int."""
        return _crypt(block, self.subkeys)

    def decrypt_int(self, block: int) -> int:
        """Decrypt one block given (and returned) as a 64-bit int."""
        return _crypt(block, self.subkeys_rev)

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt a single 8-byte block."""
        if len(block) != BLOCK_SIZE:
            raise ValueError(f"DES block must be 8 bytes, got {len(block)}")
        value = _crypt(int.from_bytes(block, "big"), self.subkeys)
        return value.to_bytes(BLOCK_SIZE, "big")

    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt a single 8-byte block."""
        if len(block) != BLOCK_SIZE:
            raise ValueError(f"DES block must be 8 bytes, got {len(block)}")
        value = _crypt(int.from_bytes(block, "big"), self.subkeys_rev)
        return value.to_bytes(BLOCK_SIZE, "big")
