"""The fbslint command line: ``python -m repro.analysis [paths]``.

Exit-code contract (relied on by CI and ``make lint``):

* **0** -- no findings (inline-suppressed and baselined ones excluded);
* **1** -- at least one finding;
* **2** -- usage or analysis error (unknown rule, unreadable path,
  syntax error in a scanned file).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.base import all_rules
from repro.analysis.baseline import Baseline
from repro.analysis.engine import LintError, lint_paths

__all__ = ["main"]

_DEFAULT_BASELINE = "fbslint.baseline"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "fbslint: AST-based checks for the FBS security invariants "
            "(key secrecy, determinism, header layout, error discipline)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help=(
            f"baseline file of grandfathered findings (default: "
            f"./{_DEFAULT_BASELINE} when it exists)"
        ),
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite the baseline file with the current findings and exit 0",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="RULES",
        default=None,
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule with its severity and description, then exit",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="print findings only, no summary line",
    )
    return parser


def _list_rules(out) -> None:
    for rule in all_rules():
        print(
            f"{rule.rule_id}  {rule.name:<24} [{rule.severity}] "
            f"{rule.description}",
            file=out,
        )


def _split(value: Optional[str]) -> Optional[List[str]]:
    if value is None:
        return None
    return [item.strip() for item in value.split(",") if item.strip()]


def main(argv: Optional[List[str]] = None, out=None) -> int:
    out = out or sys.stdout
    args = _build_parser().parse_args(argv)

    if args.list_rules:
        _list_rules(out)
        return 0

    baseline_path: Optional[Path] = None
    if args.baseline is not None:
        baseline_path = Path(args.baseline)
    elif Path(_DEFAULT_BASELINE).exists():
        baseline_path = Path(_DEFAULT_BASELINE)

    baseline = None
    if baseline_path is not None and not args.write_baseline:
        if not baseline_path.exists():
            print(f"error: baseline file not found: {baseline_path}", file=out)
            return 2
        try:
            baseline = Baseline.load(baseline_path)
        except ValueError as exc:
            print(f"error: {exc}", file=out)
            return 2

    try:
        result = lint_paths(
            [Path(p) for p in args.paths],
            root=Path.cwd(),
            select=_split(args.select),
            ignore=_split(args.ignore),
            baseline=baseline,
        )
    except LintError as exc:
        print(f"error: {exc}", file=out)
        return 2

    if args.write_baseline:
        target = baseline_path or Path(_DEFAULT_BASELINE)
        Baseline.write(target, result.findings)
        print(
            f"wrote {len(result.findings)} baseline entr"
            f"{'y' if len(result.findings) == 1 else 'ies'} to {target}",
            file=out,
        )
        return 0

    if args.format == "json":
        json.dump(
            {
                "findings": [f.as_dict() for f in result.findings],
                "baselined": [f.as_dict() for f in result.baselined],
                "suppressed": result.suppressed,
                "files_checked": result.files_checked,
            },
            out,
            indent=2,
        )
        print(file=out)
    else:
        for finding in result.findings:
            print(finding.render(), file=out)
        if not args.quiet:
            summary = (
                f"fbslint: {len(result.findings)} finding"
                f"{'' if len(result.findings) == 1 else 's'} in "
                f"{result.files_checked} files"
            )
            if result.baselined:
                summary += f" ({len(result.baselined)} baselined)"
            if result.suppressed:
                summary += f" ({result.suppressed} suppressed inline)"
            print(summary, file=out)

    return result.exit_code
