"""The fbslint command line: ``python -m repro.analysis [paths]``.

Exit-code contract (relied on by CI and ``make lint``):

* **0** -- no findings (inline-suppressed and baselined ones excluded);
* **1** -- at least one finding;
* **2** -- usage or analysis error (unknown rule, unreadable path,
  syntax error in a scanned file, docs out of sync).

v2 additions: ``--format sarif``; ``--cache``/``--cache-file`` for the
content-hash incremental cache; ``--changed REF`` to restrict reporting
to files changed vs a git ref plus their reverse-dependency cone;
``--no-unused-suppressions`` to opt out of FBS012;
``--check-docs``/``--write-docs`` for the DESIGN.md invariants table.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.base import all_rules
from repro.analysis.baseline import Baseline
from repro.analysis.cache import DEFAULT_CACHE_FILE
from repro.analysis.engine import LintError, lint_paths
from repro.analysis.sarif import render_sarif

__all__ = ["main"]

_DEFAULT_BASELINE = "fbslint.baseline"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "fbslint: whole-program dataflow checks for the FBS security "
            "invariants (key secrecy, determinism, header layout, error "
            "discipline)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help=(
            f"baseline file of grandfathered findings (default: "
            f"./{_DEFAULT_BASELINE} when it exists)"
        ),
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite the baseline file with the current findings and exit 0",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="RULES",
        default=None,
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--cache",
        action="store_true",
        help=(
            f"use the incremental summary cache at ./{DEFAULT_CACHE_FILE} "
            "(unchanged files replay their phase-1 analysis from disk)"
        ),
    )
    parser.add_argument(
        "--cache-file",
        metavar="FILE",
        default=None,
        help="use the incremental summary cache at FILE (implies --cache)",
    )
    parser.add_argument(
        "--changed",
        metavar="GIT_REF",
        default=None,
        help=(
            "report findings only for files changed vs GIT_REF plus their "
            "reverse-dependency cone (the whole project is still analyzed)"
        ),
    )
    parser.add_argument(
        "--no-unused-suppressions",
        action="store_true",
        help="do not report unused '# fbslint: disable' comments (FBS012)",
    )
    parser.add_argument(
        "--check-docs",
        action="store_true",
        help=(
            "verify the DESIGN.md enforced-invariants table matches the "
            "rule registry, then exit (0 in sync, 2 drifted)"
        ),
    )
    parser.add_argument(
        "--write-docs",
        action="store_true",
        help="regenerate the DESIGN.md enforced-invariants table, then exit",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule with its severity and description, then exit",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="print findings only, no summary line",
    )
    return parser


def _list_rules(out) -> None:
    for rule in all_rules():
        print(
            f"{rule.rule_id}  {rule.name:<24} [{rule.severity}] "
            f"{rule.description}",
            file=out,
        )


def _split(value: Optional[str]) -> Optional[List[str]]:
    if value is None:
        return None
    return [item.strip() for item in value.split(",") if item.strip()]


def _changed_files(ref: str) -> List[str]:
    """Paths (relative to the repo root) changed vs ``ref``."""
    try:
        proc = subprocess.run(
            ["git", "diff", "--name-only", "--diff-filter=d", ref, "--"],
            capture_output=True,
            text=True,
            check=True,
        )
    except (OSError, subprocess.CalledProcessError) as exc:
        detail = ""
        if isinstance(exc, subprocess.CalledProcessError):
            detail = f": {exc.stderr.strip()}"
        raise LintError(f"cannot diff against {ref!r}{detail}") from exc
    return [
        line.strip()
        for line in proc.stdout.splitlines()
        if line.strip().endswith(".py")
    ]


def main(argv: Optional[List[str]] = None, out=None) -> int:
    out = out or sys.stdout
    args = _build_parser().parse_args(argv)

    if args.list_rules:
        _list_rules(out)
        return 0

    if args.check_docs or args.write_docs:
        from repro.analysis.docsync import check_docs, write_docs

        design = Path("DESIGN.md")
        if args.write_docs:
            try:
                changed = write_docs(design)
            except (OSError, ValueError) as exc:
                print(f"error: {exc}", file=out)
                return 2
            print(
                f"{design}: table {'regenerated' if changed else 'already in sync'}",
                file=out,
            )
            return 0
        problems = check_docs(design)
        for problem in problems:
            print(f"error: {problem}", file=out)
        if not problems:
            print(f"{design}: enforced-invariants table in sync", file=out)
        return 2 if problems else 0

    baseline_path: Optional[Path] = None
    if args.baseline is not None:
        baseline_path = Path(args.baseline)
    elif Path(_DEFAULT_BASELINE).exists():
        baseline_path = Path(_DEFAULT_BASELINE)

    baseline = None
    if baseline_path is not None and not args.write_baseline:
        if not baseline_path.exists():
            print(f"error: baseline file not found: {baseline_path}", file=out)
            return 2
        try:
            baseline = Baseline.load(baseline_path)
        except ValueError as exc:
            print(f"error: {exc}", file=out)
            return 2

    cache_path: Optional[Path] = None
    if args.cache_file is not None:
        cache_path = Path(args.cache_file)
    elif args.cache:
        cache_path = Path(DEFAULT_CACHE_FILE)

    try:
        changed = (
            _changed_files(args.changed) if args.changed is not None else None
        )
        result = lint_paths(
            [Path(p) for p in args.paths],
            root=Path.cwd(),
            select=_split(args.select),
            ignore=_split(args.ignore),
            baseline=baseline,
            cache_path=cache_path,
            changed=changed,
            unused_suppressions=not args.no_unused_suppressions,
        )
    except LintError as exc:
        print(f"error: {exc}", file=out)
        return 2

    if args.write_baseline:
        target = baseline_path or Path(_DEFAULT_BASELINE)
        Baseline.write(target, result.findings)
        print(
            f"wrote {len(result.findings)} baseline entr"
            f"{'y' if len(result.findings) == 1 else 'ies'} to {target}",
            file=out,
        )
        return 0

    if args.format == "json":
        json.dump(
            {
                "findings": [f.as_dict() for f in result.findings],
                "baselined": [f.as_dict() for f in result.baselined],
                "suppressed": result.suppressed,
                "files_checked": result.files_checked,
            },
            out,
            indent=2,
            sort_keys=True,
        )
        print(file=out)
    elif args.format == "sarif":
        json.dump(render_sarif(result.findings), out, indent=2, sort_keys=True)
        print(file=out)
    else:
        for finding in result.findings:
            print(finding.render(), file=out)
        if not args.quiet:
            summary = (
                f"fbslint: {len(result.findings)} finding"
                f"{'' if len(result.findings) == 1 else 's'} in "
                f"{result.files_checked} files"
            )
            if result.baselined:
                summary += f" ({len(result.baselined)} baselined)"
            if result.suppressed:
                summary += f" ({result.suppressed} suppressed inline)"
            if cache_path is not None:
                summary += (
                    f" [cache: {result.cache_hits} replayed, "
                    f"{result.cache_misses} analyzed]"
                )
            print(summary, file=out)

    return result.exit_code
