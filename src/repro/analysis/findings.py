"""Finding objects produced by fbslint rules.

A finding pins a rule violation to a ``file:line`` location.  Its
*fingerprint* deliberately excludes the line number so that checked-in
baseline entries survive unrelated edits above the finding; it hashes
the logical path, the rule id, and the message text instead.

Interprocedural (v2) findings additionally carry ``flow``: the
source-to-sink witness path computed by
:mod:`repro.analysis.dataflow`.  The flow is embedded in the message
(so fingerprints and baseline entries are flow-path aware) and exported
structurally in ``--format json``/``--format sarif``.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from typing import Tuple

__all__ = ["Severity", "Finding"]


class Severity(enum.IntEnum):
    """How bad a violated invariant is.

    ``ERROR`` findings break the paper's security argument (secret
    leaks, wrong header layout); ``WARNING`` findings break engineering
    discipline the ROADMAP relies on (determinism, metrics, taxonomy).
    Both fail the lint run -- severity only orders the report.
    """

    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name.lower()


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule_id: str
    severity: Severity
    path: str
    line: int
    column: int
    message: str
    #: Set by the engine when a baseline entry absorbed this finding.
    baselined: bool = field(default=False, compare=False)
    #: Interprocedural witness path (source -> ... -> sink), when the
    #: finding came from a whole-program dataflow pass.
    flow: Tuple[str, ...] = field(default=(), compare=False)

    @property
    def fingerprint(self) -> str:
        """Stable identity for baseline matching (line-number free)."""
        raw = f"{self.path}|{self.rule_id}|{self.message}".encode("utf-8")
        return hashlib.sha1(raw).hexdigest()[:12]

    @property
    def sort_key(self) -> Tuple[str, int, int, str, str]:
        """Total order over findings.

        Path, line, column, rule id, then message -- so output order is
        deterministic even for multiple findings on one line (the
        pre-v2 sort stopped at ``(path, line, rule_id)`` and left
        same-line ties to list order).
        """
        return (self.path, self.line, self.column, self.rule_id, self.message)

    def render(self) -> str:
        """The canonical one-line report format."""
        tag = " (baselined)" if self.baselined else ""
        return (
            f"{self.path}:{self.line}:{self.column}: "
            f"{self.rule_id} [{self.severity}] {self.message}{tag}"
        )

    def as_dict(self) -> dict:
        """JSON-friendly representation (``--format json``, cache)."""
        payload = {
            "rule": self.rule_id,
            "severity": str(self.severity),
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
            "fingerprint": self.fingerprint,
            "baselined": self.baselined,
        }
        if self.flow:
            payload["flow"] = list(self.flow)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "Finding":
        """Inverse of :meth:`as_dict` (used by the summary cache)."""
        return cls(
            rule_id=payload["rule"],
            severity=Severity[payload["severity"].upper()],
            path=payload["path"],
            line=payload["line"],
            column=payload["column"],
            message=payload["message"],
            baselined=payload.get("baselined", False),
            flow=tuple(payload.get("flow", ())),
        )
