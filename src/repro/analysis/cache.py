"""Content-hash incremental cache for the whole-program analyzer.

The expensive half of a lint run is phase 1: parsing every module and
walking its AST once per local rule plus twice for the dataflow
summarizer.  Everything phase 2 needs -- the
:class:`~repro.analysis.callgraph.ModuleSummary`, the raw
(pre-suppression, pre-baseline) local findings, and the suppression
directives -- is serializable, so an unchanged file can be replayed
from disk without touching :mod:`ast` at all.  Phase 2 itself is
recomputed from the summaries on every run; it is cheap, and always
recomputing it means a change in one module is automatically re-judged
against its whole reverse-dependency cone.

Entries are keyed by report path and validated by the SHA-256 of the
file *content* (never mtimes -- the cache must behave identically
across checkouts) plus the id set of the rules that produced the cached
findings.  A stale or unreadable cache file is treated as empty; cache
writes go through a temp file + ``os.replace`` so a crashed run never
leaves a torn file behind.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.analysis.callgraph import ModuleSummary
from repro.analysis.findings import Finding
from repro.analysis.suppressions import SuppressionIndex

__all__ = ["SummaryCache", "content_hash", "DEFAULT_CACHE_FILE"]

#: Bump when summaries, findings, or suppression serialization change.
_CACHE_VERSION = 1

DEFAULT_CACHE_FILE = ".fbslint_cache.json"


def content_hash(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


class SummaryCache:
    """Per-file phase-1 artifacts keyed by content hash."""

    def __init__(self, path: Path, rules_signature: str) -> None:
        self.path = path
        self.rules_signature = rules_signature
        self.dirty = False
        self.hits = 0
        self.misses = 0
        self.entries: Dict[str, dict] = {}
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            payload = None
        if (
            isinstance(payload, dict)
            and payload.get("version") == _CACHE_VERSION
            and payload.get("rules") == rules_signature
            and isinstance(payload.get("entries"), dict)
        ):
            self.entries = payload["entries"]

    def get(
        self, report_path: str, sha: str
    ) -> Optional[Tuple[ModuleSummary, List[Finding], SuppressionIndex]]:
        entry = self.entries.get(report_path)
        if not isinstance(entry, dict) or entry.get("sha") != sha:
            self.misses += 1
            return None
        try:
            summary = ModuleSummary.from_dict(entry["summary"])
            findings = [Finding.from_dict(f) for f in entry["findings"]]
            suppressions = SuppressionIndex.from_dict(entry["suppressions"])
        except (KeyError, TypeError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return summary, findings, suppressions

    def put(
        self,
        report_path: str,
        sha: str,
        summary: ModuleSummary,
        findings: List[Finding],
        suppressions: SuppressionIndex,
    ) -> None:
        self.entries[report_path] = {
            "sha": sha,
            "summary": summary.as_dict(),
            "findings": [f.as_dict() for f in findings],
            "suppressions": suppressions.as_dict(),
        }
        self.dirty = True

    def save(self) -> None:
        if not self.dirty:
            return
        payload = {
            "version": _CACHE_VERSION,
            "rules": self.rules_signature,
            "entries": self.entries,
        }
        tmp = self.path.with_name(self.path.name + ".tmp")
        tmp.write_text(
            json.dumps(payload, sort_keys=True, separators=(",", ":")),
            encoding="utf-8",
        )
        os.replace(tmp, self.path)
        self.dirty = False
