"""DESIGN.md "Enforced invariants" table, generated from the registry.

The table between the ``fbslint-invariants`` markers in DESIGN.md is
owned by the rule registry: one row per registered rule with its
severity, description (the invariant), and rationale (what it
protects).  ``python -m repro.analysis --check-docs`` asserts the table
matches the registry (wired like :mod:`repro.obs.doccheck`);
``--write-docs`` regenerates it in place.  A hand-edit to the table, or
a new rule without a regeneration, fails CI instead of silently
drifting.
"""

from __future__ import annotations

from pathlib import Path
from typing import List

from repro.analysis.base import all_rules

__all__ = ["render_table", "check_docs", "write_docs", "DESIGN_FILE"]

DESIGN_FILE = "DESIGN.md"

_BEGIN = "<!-- fbslint-invariants:begin -->"
_END = "<!-- fbslint-invariants:end -->"


def render_table() -> str:
    """The generated block, markers included."""
    lines = [
        _BEGIN,
        "<!-- generated from the rule registry; regenerate with",
        "     `python -m repro.analysis --write-docs`, verified in CI by",
        "     `python -m repro.analysis --check-docs` -->",
        "| Rule | Severity | Invariant | Protects |",
        "|------|----------|-----------|----------|",
    ]
    for rule in all_rules():
        lines.append(
            f"| {rule.rule_id} `{rule.name}` | {rule.severity} "
            f"| {rule.description} | {rule.rationale} |"
        )
    lines.append(_END)
    return "\n".join(lines)


def _split(text: str, path: str) -> List[str]:
    """``[before, current-block, after]`` or a problem string."""
    begin = text.find(_BEGIN)
    end = text.find(_END)
    if begin == -1 or end == -1 or end < begin:
        raise ValueError(
            f"{path}: fbslint-invariants markers missing or malformed "
            f"(need {_BEGIN} ... {_END})"
        )
    end += len(_END)
    return [text[:begin], text[begin:end], text[end:]]


def check_docs(design_path: Path) -> List[str]:
    """Problems with the invariants table (empty = in sync)."""
    if not design_path.is_file():
        return [f"{design_path}: missing"]
    text = design_path.read_text(encoding="utf-8")
    try:
        _before, block, _after = _split(text, str(design_path))
    except ValueError as exc:
        return [str(exc)]
    expected = render_table()
    if block != expected:
        return [
            f"{design_path}: the enforced-invariants table is out of sync "
            "with the rule registry; regenerate with "
            "`python -m repro.analysis --write-docs`"
        ]
    return []


def write_docs(design_path: Path) -> bool:
    """Regenerate the table in place; returns True when the file changed."""
    text = design_path.read_text(encoding="utf-8")
    before, block, after = _split(text, str(design_path))
    expected = render_table()
    if block == expected:
        return False
    design_path.write_text(before + expected + after, encoding="utf-8")
    return True
