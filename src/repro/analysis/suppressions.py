"""Inline suppression comments.

Three forms, mirroring the linters this codebase's contributors know:

* ``# fbslint: disable=FBS001,FBS004`` -- suppress on this line;
* ``# fbslint: disable-next-line=FBS002`` -- suppress on the following
  line (for lines too long to carry a trailing comment);
* ``# fbslint: disable-file=FBS004`` -- anywhere in the file, suppress
  the rule for the whole module.

``disable=all`` suppresses every rule at that granularity.  Suppressions
are parsed from the token stream, so a violating *string* containing the
magic text does not suppress anything.

Since v2 the index also remembers each *directive* (the comment itself)
and which directives actually absorbed a finding, so the engine can
report suppressions that suppress nothing (FBS012) before the
suppression set rots.  The index is JSON-serializable for the summary
cache.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, List, Set, Tuple

from repro.analysis.findings import Finding

__all__ = ["SuppressionIndex"]

_DIRECTIVE = re.compile(
    r"#\s*fbslint:\s*(disable(?:-next-line|-file)?)\s*=\s*([A-Za-z0-9_,\s]+)"
)


class SuppressionIndex:
    """All fbslint directives of one source file, queryable per finding."""

    def __init__(self, source: str) -> None:
        #: line number -> rule ids suppressed on that line ("all" wildcard).
        self.by_line: Dict[int, Set[str]] = {}
        self.file_wide: Set[str] = set()
        #: Every directive as written: (comment line, kind, sorted rules).
        self.directives: List[Tuple[int, str, Tuple[str, ...]]] = []
        #: Indices into ``directives`` that absorbed at least one finding.
        self.used: Set[int] = set()
        try:
            tokens = tokenize.generate_tokens(io.StringIO(source).readline)
            comments = [
                (tok.start[0], tok.string)
                for tok in tokens
                if tok.type == tokenize.COMMENT
            ]
        except (tokenize.TokenError, IndentationError, SyntaxError):
            comments = []
        for line, text in comments:
            match = _DIRECTIVE.search(text)
            if not match:
                continue
            kind = match.group(1)
            rules = {
                r.strip().upper() if r.strip() != "all" else "all"
                for r in match.group(2).split(",")
                if r.strip()
            }
            if not rules:
                continue
            self.directives.append((line, kind, tuple(sorted(rules))))
            if kind == "disable-file":
                self.file_wide |= rules
            elif kind == "disable-next-line":
                self.by_line.setdefault(line + 1, set()).update(rules)
            else:
                self.by_line.setdefault(line, set()).update(rules)

    def _matching_directives(self, finding: Finding) -> List[int]:
        hits = []
        for idx, (line, kind, rules) in enumerate(self.directives):
            target = line + 1 if kind == "disable-next-line" else line
            if kind != "disable-file" and target != finding.line:
                continue
            if "all" in rules or finding.rule_id in rules:
                hits.append(idx)
        return hits

    def suppresses(self, finding: Finding) -> bool:
        """Does a directive silence this finding?  Marks the directive used."""
        hits = self._matching_directives(finding)
        if hits:
            self.used.update(hits)
            return True
        return False

    def unused_directives(self) -> List[Tuple[int, str, Tuple[str, ...]]]:
        """Directives that absorbed nothing in this run (FBS012 fodder)."""
        return [
            d for idx, d in enumerate(self.directives) if idx not in self.used
        ]

    # -- cache serialization -----------------------------------------------------------

    def as_dict(self) -> dict:
        return {
            "directives": [
                [line, kind, list(rules)] for line, kind, rules in self.directives
            ],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SuppressionIndex":
        index = cls("")
        for line, kind, rules in payload["directives"]:
            rules = tuple(rules)
            index.directives.append((line, kind, rules))
            if kind == "disable-file":
                index.file_wide |= set(rules)
            elif kind == "disable-next-line":
                index.by_line.setdefault(line + 1, set()).update(rules)
            else:
                index.by_line.setdefault(line, set()).update(rules)
        return index
