"""Inline suppression comments.

Three forms, mirroring the linters this codebase's contributors know:

* ``# fbslint: disable=FBS001,FBS004`` -- suppress on this line;
* ``# fbslint: disable-next-line=FBS002`` -- suppress on the following
  line (for lines too long to carry a trailing comment);
* ``# fbslint: disable-file=FBS004`` -- anywhere in the file, suppress
  the rule for the whole module.

``disable=all`` suppresses every rule at that granularity.  Suppressions
are parsed from the token stream, so a violating *string* containing the
magic text does not suppress anything.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, Set

from repro.analysis.findings import Finding

__all__ = ["SuppressionIndex"]

_DIRECTIVE = re.compile(
    r"#\s*fbslint:\s*(disable(?:-next-line|-file)?)\s*=\s*([A-Za-z0-9_,\s]+)"
)


class SuppressionIndex:
    """All fbslint directives of one source file, queryable per finding."""

    def __init__(self, source: str) -> None:
        #: line number -> rule ids suppressed on that line ("all" wildcard).
        self.by_line: Dict[int, Set[str]] = {}
        self.file_wide: Set[str] = set()
        try:
            tokens = tokenize.generate_tokens(io.StringIO(source).readline)
            comments = [
                (tok.start[0], tok.string)
                for tok in tokens
                if tok.type == tokenize.COMMENT
            ]
        except (tokenize.TokenError, IndentationError, SyntaxError):
            comments = []
        for line, text in comments:
            match = _DIRECTIVE.search(text)
            if not match:
                continue
            kind = match.group(1)
            rules = {
                r.strip().upper() if r.strip() != "all" else "all"
                for r in match.group(2).split(",")
                if r.strip()
            }
            if kind == "disable-file":
                self.file_wide |= rules
            elif kind == "disable-next-line":
                self.by_line.setdefault(line + 1, set()).update(rules)
            else:
                self.by_line.setdefault(line, set()).update(rules)

    def suppresses(self, finding: Finding) -> bool:
        for pool in (self.file_wide, self.by_line.get(finding.line, ())):
            if "all" in pool or finding.rule_id in pool:
                return True
        return False
