"""SARIF 2.1.0 rendering (``--format sarif``).

SARIF (Static Analysis Results Interchange Format) is what code-review
UIs and CI annotation tooling ingest.  One run, one tool (``fbslint``),
the full rule registry as ``tool.driver.rules``, and one result per
finding.  Interprocedural witness paths ride along in each result's
``properties.flow`` (the textual steps also appear in the message, so a
SARIF viewer without flow support loses nothing).
"""

from __future__ import annotations

from typing import List

from repro.analysis.base import all_rules
from repro.analysis.findings import Finding, Severity

__all__ = ["render_sarif"]

_SARIF_VERSION = "2.1.0"
_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _level(severity: Severity) -> str:
    return "error" if severity == Severity.ERROR else "warning"


def render_sarif(findings: List[Finding]) -> dict:
    """The SARIF log object for one lint run (JSON-serializable)."""
    rules = [
        {
            "id": rule.rule_id,
            "name": rule.name,
            "shortDescription": {"text": rule.description},
            "fullDescription": {"text": rule.rationale},
            "defaultConfiguration": {"level": _level(rule.severity)},
        }
        for rule in all_rules()
    ]
    rule_index = {rule["id"]: i for i, rule in enumerate(rules)}
    results = []
    for finding in findings:
        result = {
            "ruleId": finding.rule_id,
            "ruleIndex": rule_index.get(finding.rule_id, -1),
            "level": _level(finding.severity),
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path.replace("\\", "/"),
                        },
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.column,
                        },
                    }
                }
            ],
            "partialFingerprints": {"fbslintFingerprint": finding.fingerprint},
        }
        if finding.flow:
            result["properties"] = {"flow": list(finding.flow)}
        results.append(result)
    return {
        "$schema": _SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "fbslint",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
