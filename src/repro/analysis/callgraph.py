"""Phase 1 of the whole-program analyzer: module summaries + call graph.

fbslint v2 analyzes the tree in two phases.  Phase 1 (this module)
parses every module once and distills each into a serializable
:class:`ModuleSummary`: the functions it defines, the calls they make
(with enough surrounding context -- enclosing ``try`` handlers,
preceding metrics bumps, argument dataflow labels -- for the
interprocedural passes), the classes and their statically-evident
attribute types, and the module's imports.  Phase 2
(:mod:`repro.analysis.dataflow`) never touches an AST: it runs
fixpoint passes over a :class:`Project` built from these summaries,
which is what makes the content-hash cache
(:mod:`repro.analysis.cache`) possible -- an unchanged module's
summary is replayed from disk without re-parsing.

The dataflow vocabulary is a small label language.  Every expression
evaluates to a set of *labels* describing where its value may come
from:

* ``("src", desc, line)`` -- the result of a key-derivation call
  (taint source, knowledge-flow style);
* ``("set", desc, line)`` -- an unordered ``set``/``frozenset`` value
  (iteration-order source for FBS011);
* ``("param", name)`` -- the function's own parameter ``name``;
* ``("ret", site)`` -- the return value of call site ``site``;
* ``("attr", owner, name)`` -- attribute ``name`` of class ``owner``
  (``self.name`` loads/stores);
* ``("ord", *label)`` -- ``label`` behind an order-safe boundary (an
  element of a list/tuple/dict, or a ``sorted()`` result): taint still
  flows, iteration-order sensitivity does not.  Subscripts and loop
  targets peel one layer.

Whether a ``param``/``ret``/``attr`` label actually carries key
material (or set-ordering) is decided by the interprocedural fixpoint
in phase 2; phase 1 only records the local flows.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.context import ModuleContext

__all__ = [
    "CallSite",
    "RaiseSite",
    "SinkSite",
    "OrderSite",
    "FunctionSummary",
    "ClassSummary",
    "ModuleSummary",
    "Project",
    "summarize_module",
    "is_metrics_bump",
    "raised_name",
    "handler_names",
    "BUILTIN_EXC_PARENTS",
]

Label = Tuple[Any, ...]

#: A call whose target name contains one of these is a key-material
#: taint source (shared with the FBS001 local rule).
SOURCE_FRAGMENTS = (
    "flow_key",
    "master_key",
    "mac_key",
    "encryption_key",
    "session_key",
    "interval_key",
    "derive_key",
)
SOURCE_NAMES = {"agree"}

LOG_METHODS = {"debug", "info", "warning", "error", "exception", "critical", "log"}

#: Builtins that consume an iterable without exposing its order but
#: whose result still carries the contents (taint survives, order
#: hazard does not).
_ORDER_INSENSITIVE = {"sorted", "sum", "min", "max"}
#: Builtins whose scalar result carries neither contents nor order
#: (``len(key)`` is not key material).
_SCALAR_CONSUMERS = {"len", "any", "all", "bool"}
#: Builtins/constructors that expose the iteration order of their argument.
_ORDER_EXPOSING = {"list", "tuple", "enumerate", "iter", "reversed"}

#: Container mutators that inject their argument's taint into the receiver.
_CONTAINER_MUTATORS = {"append", "add", "insert", "extend", "update", "setdefault"}

#: Direct blocking primitives (FBS010); dotted call names.
BLOCKING_CALLS = {
    "time.sleep": "time.sleep()",
    "os.system": "os.system()",
    "os.popen": "os.popen()",
    "os.wait": "os.wait()",
    "subprocess.run": "subprocess.run()",
    "subprocess.call": "subprocess.call()",
    "subprocess.check_call": "subprocess.check_call()",
    "subprocess.check_output": "subprocess.check_output()",
    "subprocess.Popen": "subprocess.Popen()",
    "socket.create_connection": "socket.create_connection()",
    "socket.socket": "socket.socket()",
    "socket.getaddrinfo": "socket.getaddrinfo()",
    "socket.gethostbyname": "socket.gethostbyname()",
}
#: Bare names that block when called inside ``async def`` (sync file I/O).
BLOCKING_BARE = {"open": "open()", "input": "input()"}

_BANNED_TIME_ATTRS = {
    "time",
    "time_ns",
    "monotonic",
    "monotonic_ns",
    "perf_counter",
    "perf_counter_ns",
    "process_time",
    "process_time_ns",
    "clock",
}
_BANNED_DATETIME_ATTRS = {"now", "today", "utcnow"}

#: Minimal builtin exception hierarchy (child -> parent) used when
#: deciding whether an ``except`` clause guards a raise.
BUILTIN_EXC_PARENTS = {
    "Exception": "BaseException",
    "ArithmeticError": "Exception",
    "ZeroDivisionError": "ArithmeticError",
    "OverflowError": "ArithmeticError",
    "AssertionError": "Exception",
    "AttributeError": "Exception",
    "LookupError": "Exception",
    "KeyError": "LookupError",
    "IndexError": "LookupError",
    "NameError": "Exception",
    "NotImplementedError": "RuntimeError",
    "RecursionError": "RuntimeError",
    "OSError": "Exception",
    "IOError": "OSError",
    "FileNotFoundError": "OSError",
    "PermissionError": "OSError",
    "RuntimeError": "Exception",
    "StopIteration": "Exception",
    "TypeError": "Exception",
    "ValueError": "Exception",
    "UnicodeDecodeError": "ValueError",
    "UnicodeEncodeError": "ValueError",
}


def dotted(node: ast.AST) -> str:
    """``a.b.c`` for Name/Attribute chains, ``""`` otherwise."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    elif parts:
        parts.append("?")
    return ".".join(reversed(parts))


def raised_name(node: ast.Raise) -> Optional[str]:
    """The exception class name of ``raise X(...)`` / ``raise X``."""
    exc = node.exc
    if isinstance(exc, ast.Call):
        exc = exc.func
    if isinstance(exc, ast.Attribute):
        return exc.attr
    if isinstance(exc, ast.Name):
        return exc.id
    return None


def handler_names(handler: ast.ExceptHandler) -> Set[str]:
    """Exception class names caught by one handler."""
    node = handler.type
    names: Set[str] = set()
    if node is None:
        return {"BaseException"}
    items = node.elts if isinstance(node, ast.Tuple) else [node]
    for item in items:
        if isinstance(item, ast.Attribute):
            names.add(item.attr)
        elif isinstance(item, ast.Name):
            names.add(item.id)
    return names


def is_metrics_bump(stmt: Optional[ast.stmt]) -> bool:
    """Is this statement a rejection-accounting step?

    Either the legacy augmented ``+=`` on a ``metrics`` attribute path,
    or the registry-era bookkeeping call (``self._rejected(...)``,
    any call whose last name segment contains ``reject``).
    """
    if (
        isinstance(stmt, ast.AugAssign)
        and isinstance(stmt.op, ast.Add)
        and "metrics" in dotted(stmt.target).split(".")
    ):
        return True
    if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
        segments = dotted(stmt.value.func).split(".")
        return bool(segments) and "reject" in segments[-1]
    return False


def _is_source_call(node: ast.Call) -> Optional[str]:
    func = node.func
    name = func.attr if isinstance(func, ast.Attribute) else (
        func.id if isinstance(func, ast.Name) else ""
    )
    if name in SOURCE_NAMES or any(f in name for f in SOURCE_FRAGMENTS):
        return name
    return None


# -- summary dataclasses ---------------------------------------------------------------


@dataclass
class CallSite:
    """One call expression inside a function."""

    callee: str  # dotted target as written ("self._rejected", "modes.decrypt")
    line: int
    col: int
    #: Labels of each positional argument.
    args: List[List[Label]] = field(default_factory=list)
    #: Labels of each keyword argument.
    kwargs: Dict[str, List[Label]] = field(default_factory=dict)
    #: Exception names caught by ``try`` blocks enclosing this site.
    caught: List[str] = field(default_factory=list)
    #: A metrics bump immediately precedes this statement.
    bump_before: bool = False

    def as_dict(self) -> dict:
        return {
            "callee": self.callee,
            "line": self.line,
            "col": self.col,
            "args": [[list(l) for l in labels] for labels in self.args],
            "kwargs": {k: [list(l) for l in v] for k, v in sorted(self.kwargs.items())},
            "caught": sorted(self.caught),
            "bump_before": self.bump_before,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "CallSite":
        return cls(
            callee=d["callee"],
            line=d["line"],
            col=d["col"],
            args=[[tuple(l) for l in labels] for labels in d["args"]],
            kwargs={k: [tuple(l) for l in v] for k, v in d["kwargs"].items()},
            caught=list(d["caught"]),
            bump_before=d["bump_before"],
        )


@dataclass
class RaiseSite:
    """One ``raise`` statement."""

    name: Optional[str]  # None for a bare re-raise
    line: int
    col: int
    bump_before: bool
    #: Names caught by ``try`` blocks enclosing the raise itself.
    caught: List[str] = field(default_factory=list)
    #: For a bare ``raise``: the names its enclosing handler catches.
    reraise_of: List[str] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "line": self.line,
            "col": self.col,
            "bump_before": self.bump_before,
            "caught": sorted(self.caught),
            "reraise_of": sorted(self.reraise_of),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "RaiseSite":
        return cls(
            name=d["name"],
            line=d["line"],
            col=d["col"],
            bump_before=d["bump_before"],
            caught=list(d["caught"]),
            reraise_of=list(d["reraise_of"]),
        )


@dataclass
class SinkSite:
    """A taint sink occurrence (FBS001 v2)."""

    kind: str  # "print()", "logging call .debug()", "f-string", "=="
    line: int
    col: int
    labels: List[Label]
    desc: str  # human handle on the flowing expression

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "line": self.line,
            "col": self.col,
            "labels": [list(l) for l in self.labels],
            "desc": self.desc,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "SinkSite":
        return cls(
            kind=d["kind"],
            line=d["line"],
            col=d["col"],
            labels=[tuple(l) for l in d["labels"]],
            desc=d["desc"],
        )


@dataclass
class OrderSite:
    """An iteration-order exposure (FBS011): for/comprehension/list()."""

    kind: str  # "for loop", "comprehension", "list()", ...
    line: int
    col: int
    labels: List[Label]
    desc: str

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "line": self.line,
            "col": self.col,
            "labels": [list(l) for l in self.labels],
            "desc": self.desc,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "OrderSite":
        return cls(
            kind=d["kind"],
            line=d["line"],
            col=d["col"],
            labels=[tuple(l) for l in d["labels"]],
            desc=d["desc"],
        )


@dataclass
class FunctionSummary:
    """Everything phase 2 needs to know about one function."""

    qname: str  # "FBSEndpoint.unprotect", "decode", "<module>"
    name: str
    line: int
    params: List[str] = field(default_factory=list)
    is_async: bool = False
    is_public: bool = True
    class_name: Optional[str] = None
    decorators: List[str] = field(default_factory=list)
    calls: List[CallSite] = field(default_factory=list)
    raises: List[RaiseSite] = field(default_factory=list)
    sinks: List[SinkSite] = field(default_factory=list)
    order_sites: List[OrderSite] = field(default_factory=list)
    #: Labels that may flow into the return value (or a yield).
    returns: List[Label] = field(default_factory=list)
    #: ``self.X = <labels>`` stores: (attr, labels, line).
    attr_stores: List[Tuple[str, List[Label], int]] = field(default_factory=list)
    #: Direct wall-clock reads: (desc, line, col).
    wall_clock: List[Tuple[str, int, int]] = field(default_factory=list)
    #: Direct global/unseeded randomness: (desc, line, col).
    unseeded_random: List[Tuple[str, int, int]] = field(default_factory=list)
    #: Direct blocking primitives: (desc, line, col).
    blocking: List[Tuple[str, int, int]] = field(default_factory=list)
    #: json.dump/json.dumps calls missing sort_keys: (fn, line, col).
    unsorted_json: List[Tuple[str, int, int]] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "qname": self.qname,
            "name": self.name,
            "line": self.line,
            "params": self.params,
            "is_async": self.is_async,
            "is_public": self.is_public,
            "class_name": self.class_name,
            "decorators": self.decorators,
            "calls": [c.as_dict() for c in self.calls],
            "raises": [r.as_dict() for r in self.raises],
            "sinks": [s.as_dict() for s in self.sinks],
            "order_sites": [s.as_dict() for s in self.order_sites],
            "returns": [list(l) for l in self.returns],
            "attr_stores": [
                [a, [list(l) for l in labels], line]
                for a, labels, line in self.attr_stores
            ],
            "wall_clock": [list(t) for t in self.wall_clock],
            "unseeded_random": [list(t) for t in self.unseeded_random],
            "blocking": [list(t) for t in self.blocking],
            "unsorted_json": [list(t) for t in self.unsorted_json],
        }

    @classmethod
    def from_dict(cls, d: dict) -> "FunctionSummary":
        return cls(
            qname=d["qname"],
            name=d["name"],
            line=d["line"],
            params=list(d["params"]),
            is_async=d["is_async"],
            is_public=d["is_public"],
            class_name=d["class_name"],
            decorators=list(d["decorators"]),
            calls=[CallSite.from_dict(c) for c in d["calls"]],
            raises=[RaiseSite.from_dict(r) for r in d["raises"]],
            sinks=[SinkSite.from_dict(s) for s in d["sinks"]],
            order_sites=[OrderSite.from_dict(s) for s in d["order_sites"]],
            returns=[tuple(l) for l in d["returns"]],
            attr_stores=[
                (a, [tuple(l) for l in labels], line)
                for a, labels, line in d["attr_stores"]
            ],
            wall_clock=[tuple(t) for t in d["wall_clock"]],
            unseeded_random=[tuple(t) for t in d["unseeded_random"]],
            blocking=[tuple(t) for t in d["blocking"]],
            unsorted_json=[tuple(t) for t in d["unsorted_json"]],
        )


@dataclass
class ClassSummary:
    name: str
    line: int
    bases: List[str] = field(default_factory=list)
    methods: List[str] = field(default_factory=list)  # qnames into functions
    #: Statically-evident attribute types: attr -> dotted class expr
    #: (from ``self.attr = ClassName(...)`` assignments).
    attr_types: Dict[str, str] = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "line": self.line,
            "bases": self.bases,
            "methods": self.methods,
            "attr_types": dict(sorted(self.attr_types.items())),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "ClassSummary":
        return cls(
            name=d["name"],
            line=d["line"],
            bases=list(d["bases"]),
            methods=list(d["methods"]),
            attr_types=dict(d["attr_types"]),
        )


@dataclass
class ModuleSummary:
    """The phase-1 product for one source file."""

    path: str  # report path (repo-relative)
    module: Optional[str]  # dotted "repro.core.protocol" or None
    #: Import bindings: local name -> ("module", target) | ("from", module, name).
    imports: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    functions: Dict[str, FunctionSummary] = field(default_factory=dict)
    classes: Dict[str, ClassSummary] = field(default_factory=dict)
    #: Test modules are exempt from most interprocedural findings.
    is_test: bool = False
    #: Full dotted names of imported modules (dependency edges for the
    #: reverse-dependency cone in ``--changed`` mode).
    depends: List[str] = field(default_factory=list)

    @property
    def key(self) -> str:
        return self.module or self.path

    def as_dict(self) -> dict:
        return {
            "path": self.path,
            "module": self.module,
            "imports": {k: list(v) for k, v in sorted(self.imports.items())},
            "functions": {
                q: f.as_dict() for q, f in sorted(self.functions.items())
            },
            "classes": {n: c.as_dict() for n, c in sorted(self.classes.items())},
            "is_test": self.is_test,
            "depends": self.depends,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "ModuleSummary":
        return cls(
            path=d["path"],
            module=d["module"],
            imports={k: tuple(v) for k, v in d["imports"].items()},
            functions={
                q: FunctionSummary.from_dict(f) for q, f in d["functions"].items()
            },
            classes={n: ClassSummary.from_dict(c) for n, c in d["classes"].items()},
            is_test=d.get("is_test", False),
            depends=list(d.get("depends", ())),
        )


# -- phase-1 summarizer ----------------------------------------------------------------


class _ModuleSummarizer:
    def __init__(self, ctx: ModuleContext) -> None:
        self.ctx = ctx
        module = ".".join(ctx.module_parts) if ctx.module_parts else None
        self.summary = ModuleSummary(path=ctx.path, module=module)
        self._collect_imports(ctx.tree)
        self._alias_time: Set[str] = self._aliases_of("time")
        self._alias_datetime: Set[str] = self._aliases_of("datetime")
        self._alias_random: Set[str] = self._aliases_of("random")
        self._alias_json: Set[str] = self._aliases_of("json")
        self._from_time: Set[str] = self._from_names("time")
        self._from_datetime: Set[str] = self._from_names("datetime")
        self._from_random: Set[str] = self._from_names("random")
        self._from_json: Set[str] = self._from_names("json")

    def _aliases_of(self, root: str) -> Set[str]:
        return {
            local
            for local, target in self.summary.imports.items()
            if target[0] == "module" and target[1].split(".")[0] == root
        }

    def _from_names(self, root: str) -> Set[str]:
        return {
            local
            for local, target in self.summary.imports.items()
            if target[0] == "from" and target[1].split(".")[0] == root
        }

    def _collect_imports(self, tree: ast.Module) -> None:
        depends: List[str] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for item in node.names:
                    depends.append(item.name)
                    if item.asname:
                        self.summary.imports[item.asname] = ("module", item.name)
                    else:
                        root = item.name.split(".")[0]
                        self.summary.imports[root] = ("module", root)
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                depends.append(node.module)
                for item in node.names:
                    depends.append(f"{node.module}.{item.name}")
                    local = item.asname or item.name
                    self.summary.imports[local] = ("from", node.module, item.name)
        seen: Set[str] = set()
        for dep in depends:
            if dep not in seen:
                seen.add(dep)
                self.summary.depends.append(dep)

    def run(self) -> ModuleSummary:
        body_stmts: List[ast.stmt] = []
        for stmt in self.ctx.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._function(stmt, class_name=None, prefix="")
            elif isinstance(stmt, ast.ClassDef):
                self._class(stmt)
            else:
                body_stmts.append(stmt)
        # Module-level statements form a pseudo-function so module-level
        # calls/sinks take part in the interprocedural passes.
        fs = _FunctionSummarizer(
            self, "<module>", "<module>", body_stmts, params=[], is_async=False,
            class_name=None, line=1, decorators=[],
        ).run()
        self.summary.functions["<module>"] = fs
        return self.summary

    def _class(self, node: ast.ClassDef) -> None:
        cs = ClassSummary(
            name=node.name, line=node.lineno, bases=[dotted(b) for b in node.bases]
        )
        self.summary.classes[node.name] = cs
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qname = self._function(stmt, class_name=node.name, prefix=node.name + ".")
                cs.methods.append(qname)
            elif isinstance(stmt, ast.ClassDef):
                self._class(stmt)  # nested classes analyzed flat

    def _function(
        self,
        node: ast.stmt,
        class_name: Optional[str],
        prefix: str,
    ) -> str:
        qname = prefix + node.name
        params = [a.arg for a in (
            node.args.posonlyargs + node.args.args + node.args.kwonlyargs
        )]
        if node.args.vararg:
            params.append(node.args.vararg.arg)
        if node.args.kwarg:
            params.append(node.args.kwarg.arg)
        decorators = [dotted(d) for d in node.decorator_list]
        fs = _FunctionSummarizer(
            self,
            qname,
            node.name,
            node.body,
            params=params,
            is_async=isinstance(node, ast.AsyncFunctionDef),
            class_name=class_name,
            line=node.lineno,
            decorators=decorators,
        ).run()
        self.summary.functions[qname] = fs
        # Immediate nested defs get their own summaries (one level of
        # prefixing per nesting level; _direct_defs does not descend into
        # them, so each is summarized exactly once).
        for stmt in _direct_defs(node.body):
            self._function(stmt, class_name=class_name, prefix=qname + ".")
        return qname


class _FunctionSummarizer:
    """Intra-function label propagation (two passes to a fixpoint)."""

    def __init__(
        self,
        owner: _ModuleSummarizer,
        qname: str,
        name: str,
        body: Sequence[ast.stmt],
        params: List[str],
        is_async: bool,
        class_name: Optional[str],
        line: int,
        decorators: List[str],
    ) -> None:
        self.owner = owner
        self.body = body
        self.fs = FunctionSummary(
            qname=qname,
            name=name,
            line=line,
            params=params,
            is_async=is_async,
            is_public=not name.startswith("_") or name == "<module>",
            class_name=class_name,
            decorators=decorators,
        )
        self.env: Dict[str, Set[Label]] = {
            p: {("param", p)} for p in params if p not in ("self", "cls")
        }
        self.recording = False
        self._site_ids: Dict[Tuple[int, int, str], int] = {}
        #: >0 while evaluating arguments of an order-insensitive
        #: consumer (``sorted(x for x in s)`` is safe end to end).
        self._order_suppress = 0

    def run(self) -> FunctionSummary:
        for recording in (False, True):
            self.recording = recording
            self._block(self.body, caught=(), preceding=None)
        return self.fs

    # -- statement walk ----------------------------------------------------------------

    def _block(
        self,
        stmts: Sequence[ast.stmt],
        caught: Tuple[str, ...],
        preceding: Optional[ast.stmt],
    ) -> None:
        for i, stmt in enumerate(stmts):
            prev = stmts[i - 1] if i > 0 else preceding
            self._stmt(stmt, caught, prev)

    def _stmt(
        self, stmt: ast.stmt, caught: Tuple[str, ...], prev: Optional[ast.stmt]
    ) -> None:
        bump = is_metrics_bump(prev)
        if isinstance(stmt, ast.Assign):
            labels = self._eval(stmt.value, caught, bump)
            for target in stmt.targets:
                self._assign(target, labels, stmt.lineno)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                labels = self._eval(stmt.value, caught, bump)
                self._assign(stmt.target, labels, stmt.lineno)
        elif isinstance(stmt, ast.AugAssign):
            labels = self._eval(stmt.value, caught, bump)
            if isinstance(stmt.target, ast.Name):
                self.env.setdefault(stmt.target.id, set()).update(labels)
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value, caught, bump)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                labels = self._eval(stmt.value, caught, bump)
                if self.recording:
                    for l in sorted(labels):
                        if l not in self.fs.returns:
                            self.fs.returns.append(l)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self._eval(stmt.exc, caught, bump)
            if stmt.cause is not None:
                self._eval(stmt.cause, caught, bump)
            if self.recording:
                self.fs.raises.append(
                    RaiseSite(
                        name=raised_name(stmt),
                        line=stmt.lineno,
                        col=stmt.col_offset + 1,
                        bump_before=bump,
                        caught=sorted(set(caught)),
                        reraise_of=[],
                    )
                )
        elif isinstance(stmt, (ast.If, ast.While)):
            self._eval(stmt.test, caught, bump)
            self._block(stmt.body, caught, preceding=prev)
            self._block(stmt.orelse, caught, preceding=prev)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            iter_labels = self._eval(stmt.iter, caught, bump)
            self._record_order_site("for loop", stmt.iter, iter_labels)
            self._assign(stmt.target, self._element_labels(iter_labels), stmt.lineno)
            self._block(stmt.body, caught, preceding=prev)
            self._block(stmt.orelse, caught, preceding=prev)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                labels = self._eval(item.context_expr, caught, bump)
                if item.optional_vars is not None:
                    self._assign(item.optional_vars, labels, stmt.lineno)
            self._block(stmt.body, caught, preceding=prev)
        elif isinstance(stmt, ast.Try):
            names: Set[str] = set()
            for handler in stmt.handlers:
                names |= handler_names(handler)
            self._block(stmt.body, caught + tuple(sorted(names)), preceding=prev)
            for handler in stmt.handlers:
                self._handler(handler, caught, prev)
            self._block(stmt.orelse, caught, preceding=prev)
            self._block(stmt.finalbody, caught, preceding=prev)
        elif isinstance(stmt, ast.Assert):
            self._eval(stmt.test, caught, bump)
            if stmt.msg is not None:
                self._eval(stmt.msg, caught, bump)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # summarized separately
        elif isinstance(stmt, (ast.Import, ast.ImportFrom, ast.Pass, ast.Break,
                               ast.Continue, ast.Global, ast.Nonlocal)):
            return
        else:
            # Unmodeled statements (match, delete, ...): evaluate child
            # expressions so calls/sinks inside them are still recorded.
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._eval(child, caught, bump)
                elif isinstance(child, ast.stmt):
                    self._stmt(child, caught, None)

    def _handler(
        self, handler: ast.ExceptHandler, caught: Tuple[str, ...],
        prev: Optional[ast.stmt],
    ) -> None:
        h_names = sorted(handler_names(handler))
        for i, stmt in enumerate(handler.body):
            inner_prev = handler.body[i - 1] if i > 0 else prev
            if isinstance(stmt, ast.Raise) and stmt.exc is None:
                if self.recording:
                    self.fs.raises.append(
                        RaiseSite(
                            name=None,
                            line=stmt.lineno,
                            col=stmt.col_offset + 1,
                            bump_before=is_metrics_bump(inner_prev),
                            caught=sorted(set(caught)),
                            reraise_of=h_names,
                        )
                    )
            else:
                self._stmt(stmt, caught, inner_prev)

    def _assign(self, target: ast.AST, labels: Set[Label], line: int) -> None:
        if isinstance(target, ast.Name):
            self.env.setdefault(target.id, set()).update(labels)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._assign(elt, labels, line)
        elif isinstance(target, ast.Starred):
            self._assign(target.value, labels, line)
        elif isinstance(target, ast.Attribute):
            base = target.value
            if isinstance(base, ast.Name) and base.id in ("self", "cls"):
                owner = self.fs.class_name
                if owner and self.recording:
                    self.fs.attr_stores.append((target.attr, sorted(labels), line))
                    # Statically-evident attribute type for call resolution.
                    cls_summary = self.owner.summary.classes.get(owner)
                    if cls_summary is not None and target.attr not in cls_summary.attr_types:
                        ctor = self._constructor_of(labels)
                        if ctor:
                            cls_summary.attr_types[target.attr] = ctor

    def _constructor_of(self, labels: Set[Label]) -> Optional[str]:
        ctors = sorted({l[1] for l in labels if l[0] == "ctor"})
        if len(ctors) == 1:
            return ctors[0]
        return None

    # -- expression evaluation ---------------------------------------------------------

    def _eval(
        self, node: ast.expr, caught: Tuple[str, ...], bump: bool
    ) -> Set[Label]:
        if isinstance(node, ast.Name):
            return set(self.env.get(node.id, ()))
        if isinstance(node, ast.Call):
            return self._call(node, caught, bump)
        if isinstance(node, ast.Attribute):
            base = node.value
            if isinstance(base, ast.Name) and base.id in ("self", "cls"):
                owner = self.fs.class_name
                if owner:
                    key = self.owner.summary.key
                    return {("attr", f"{key}.{owner}", node.attr)}
                return set()
            return self._eval(base, caught, bump)
        if isinstance(node, ast.Subscript):
            labels = self._eval(node.value, caught, bump)
            self._eval(node.slice, caught, bump)
            if isinstance(node.slice, ast.Slice):
                return labels  # a slice keeps the container type
            # Indexing peels one container layer: an element extracted
            # from a list-of-sets is a set again.
            return self._unwrap_ord(labels)
        if isinstance(node, ast.BinOp):
            return self._eval(node.left, caught, bump) | self._eval(
                node.right, caught, bump
            )
        if isinstance(node, ast.BoolOp):
            out: Set[Label] = set()
            for v in node.values:
                out |= self._eval(v, caught, bump)
            return out
        if isinstance(node, ast.UnaryOp):
            return self._eval(node.operand, caught, bump)
        if isinstance(node, ast.IfExp):
            self._eval(node.test, caught, bump)
            return self._eval(node.body, caught, bump) | self._eval(
                node.orelse, caught, bump
            )
        if isinstance(node, ast.Compare):
            return self._compare(node, caught, bump)
        if isinstance(node, (ast.Tuple, ast.List)):
            # Elements sit behind an ordered container: iterating the
            # container is order-safe even when an element is a set.
            out = set()
            for elt in node.elts:
                out |= self._eval(elt, caught, bump)
            return self._wrap_ord(out)
        if isinstance(node, ast.Set):
            out = {("set", "set literal", node.lineno)}
            for elt in node.elts:
                out |= self._wrap_ord(
                    self._taint_only(self._eval(elt, caught, bump))
                )
            return out
        if isinstance(node, ast.Dict):
            out = set()
            for k in node.keys:
                if k is not None:
                    out |= self._eval(k, caught, bump)
            for v in node.values:
                out |= self._eval(v, caught, bump)
            return self._wrap_ord(out)
        if isinstance(node, ast.Starred):
            return self._eval(node.value, caught, bump)
        if isinstance(node, ast.Await):
            return self._eval(node.value, caught, bump)
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            if node.value is not None:
                labels = self._eval(node.value, caught, bump)
                if self.recording:
                    for l in sorted(labels):
                        if l not in self.fs.returns:
                            self.fs.returns.append(l)
            return set()
        if isinstance(node, ast.NamedExpr):
            labels = self._eval(node.value, caught, bump)
            self._assign(node.target, labels, node.lineno)
            return labels
        if isinstance(node, ast.JoinedStr):
            for part in node.values:
                if isinstance(part, ast.FormattedValue):
                    labels = self._eval(part.value, caught, bump)
                    self._record_sink(
                        "f-string", part, labels, self._describe(part.value)
                    )
            return set()
        if isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.SetComp, ast.DictComp)):
            return self._comprehension(node, caught, bump)
        if isinstance(node, ast.Lambda):
            return set()
        if isinstance(node, ast.FormattedValue):
            labels = self._eval(node.value, caught, bump)
            self._record_sink("f-string", node, labels, self._describe(node.value))
            return set()
        if isinstance(node, ast.Constant):
            return set()
        # Fallback: union over child expressions.
        out = set()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                out |= self._eval(child, caught, bump)
        return out

    @staticmethod
    def _taint_only(labels: Set[Label]) -> Set[Label]:
        return {l for l in labels if l[0] != "set"}

    @staticmethod
    def _wrap_ord(labels: Set[Label]) -> Set[Label]:
        """Neutralize order-sensitivity while preserving taint.

        An ``("ord", ...)`` prefix marks a label whose value sits behind
        an order-safe boundary: an element inside a list/tuple/dict, or
        the result of ``sorted()``.  The taint pass strips the prefix
        and keeps propagating; the report-order pass ignores wrapped
        labels entirely.
        """
        return {("ord",) + l for l in labels}

    @staticmethod
    def _unwrap_ord(labels: Set[Label]) -> Set[Label]:
        """Peel one container layer (subscript / loop-target extraction)."""
        return {tuple(l[1:]) if l[0] == "ord" else l for l in labels}

    @staticmethod
    def _element_labels(labels: Set[Label]) -> Set[Label]:
        """Labels a loop target inherits from the iterated value.

        An element extracted from a list-of-sets (ord-wrapped) is a set
        again; an element of a *set* is not itself a set, so the
        container's own order-sensitivity must not stick to it -- only
        its taint does (hence the ord wrap on the passthrough labels).
        """
        return {
            tuple(l[1:]) if l[0] == "ord" else ("ord",) + l
            for l in labels
            if l[0] != "set"
        }

    def _comprehension(self, node: ast.expr, caught: Tuple[str, ...], bump: bool) -> Set[Label]:
        # Set/dict comprehensions do not preserve source order anyway, so
        # iterating a set inside one exposes nothing new; only list and
        # generator comprehensions record order sites.
        exposes_order = isinstance(node, (ast.ListComp, ast.GeneratorExp))
        for gen in node.generators:
            iter_labels = self._eval(gen.iter, caught, bump)
            if exposes_order:
                self._record_order_site("comprehension", gen.iter, iter_labels)
            self._assign(gen.target, self._element_labels(iter_labels), node.lineno)
            for cond in gen.ifs:
                self._eval(cond, caught, bump)
        if isinstance(node, ast.DictComp):
            out = self._eval(node.key, caught, bump) | self._eval(
                node.value, caught, bump
            )
        else:
            out = self._eval(node.elt, caught, bump)
        if isinstance(node, ast.SetComp):
            return self._wrap_ord(self._taint_only(out)) | {
                ("set", "set comprehension", node.lineno)
            }
        return self._wrap_ord(out)

    def _compare(self, node: ast.Compare, caught: Tuple[str, ...], bump: bool) -> Set[Label]:
        operands = [node.left] + list(node.comparators)
        label_sets = [self._eval(op, caught, bump) for op in operands]
        for op, (left, llabels), (right, rlabels) in zip(
            node.ops,
            zip(operands, label_sets),
            zip(operands[1:], label_sets[1:]),
        ):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            for side, labels in ((left, llabels), (right, rlabels)):
                taint = self._taint_only(labels)
                if taint:
                    self._record_sink("==", node, taint, self._describe(side))
                    break
        return set()

    # -- calls -------------------------------------------------------------------------

    def _call(self, node: ast.Call, caught: Tuple[str, ...], bump: bool) -> Set[Label]:
        func = node.func
        callee = dotted(func)
        order_safe_args = isinstance(func, ast.Name) and func.id in (
            _ORDER_INSENSITIVE | _SCALAR_CONSUMERS | {"set", "frozenset"}
        )
        if order_safe_args:
            self._order_suppress += 1
        try:
            arg_labels = [self._eval(a, caught, bump) for a in node.args]
            kw_labels = {
                kw.arg: self._eval(kw.value, caught, bump)
                for kw in node.keywords
                if kw.arg is not None
            }
            for kw in node.keywords:
                if kw.arg is None:
                    self._eval(kw.value, caught, bump)
        finally:
            if order_safe_args:
                self._order_suppress -= 1

        fname = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else ""
        )

        # Detectors that do not produce dataflow labels.
        self._detect_clock_and_random(node, callee, fname)
        self._detect_blocking(node, callee, fname)
        self._detect_json(node, callee, fname, kw_labels, [kw.arg for kw in node.keywords])
        self._detect_taint_sink(node, func, fname, node.args, node.keywords,
                                arg_labels, kw_labels)

        # Container mutation: lst.append(key) taints lst.
        if (
            isinstance(func, ast.Attribute)
            and fname in _CONTAINER_MUTATORS
            and isinstance(func.value, ast.Name)
        ):
            pool = self.env.setdefault(func.value.id, set())
            for labels in arg_labels:
                pool.update(self._taint_only(labels))
            for labels in kw_labels.values():
                pool.update(self._taint_only(labels))

        # Key-material source?
        source = _is_source_call(node)
        if source is not None:
            self._register_site(node, callee, arg_labels, kw_labels, caught, bump)
            return {("src", f"{source}()", node.lineno)}

        # set()/frozenset() constructors.
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            out: Set[Label] = {("set", f"{func.id}()", node.lineno)}
            for labels in arg_labels:
                out |= self._wrap_ord(self._taint_only(labels))
            return out

        # Scalar consumers: len(key) is not key material, and the
        # result cannot leak iteration order either.
        if isinstance(func, ast.Name) and func.id in _SCALAR_CONSUMERS:
            return set()
        # Order-insensitive and order-exposing builtins.  Both
        # neutralize order-sensitivity in the result: sorted() by
        # construction, list()/tuple()/... because the one hazardous
        # conversion is recorded right here, once.
        if isinstance(func, ast.Name) and func.id in _ORDER_INSENSITIVE:
            out = set()
            for labels in arg_labels:
                out |= self._taint_only(labels)
            return self._wrap_ord(out)
        if isinstance(func, ast.Name) and func.id in _ORDER_EXPOSING:
            out = set()
            for labels in arg_labels:
                self._record_order_site(
                    f"{func.id}()", node, labels,
                    desc=self._describe(node.args[0]) if node.args else "",
                )
                out |= self._taint_only(labels)
            return self._wrap_ord(out)
        # "sep".join(xs) exposes iteration order of xs.
        if isinstance(func, ast.Attribute) and fname == "join" and node.args:
            self._record_order_site(
                "str.join()", node, arg_labels[0],
                desc=self._describe(node.args[0]),
            )

        site_id = self._register_site(node, callee, arg_labels, kw_labels, caught, bump)

        out = {("ret", site_id)} if site_id is not None else set()
        # A method call on a tainted receiver yields tainted output
        # (key.hex(), key.to_bytes(...)).
        if isinstance(func, ast.Attribute):
            out |= self._taint_only(self._eval(func.value, caught, bump))
        # Track which class a constructor call makes (for attr typing).
        if callee and callee.split(".")[-1][:1].isupper():
            out.add(("ctor", callee))
        return out

    def _register_site(
        self,
        node: ast.Call,
        callee: str,
        arg_labels: List[Set[Label]],
        kw_labels: Dict[str, Set[Label]],
        caught: Tuple[str, ...],
        bump: bool,
    ) -> Optional[int]:
        if not callee or not self.recording:
            # During pass 1 call sites are not registered; returns labels
            # referencing site ids must exist, so reuse ids keyed by
            # location to stay stable across passes.
            if not callee:
                return None
            key = (node.lineno, node.col_offset, callee)
            return self._site_ids.get(key)
        key = (node.lineno, node.col_offset, callee)
        if key in self._site_ids:
            return self._site_ids[key]
        site = CallSite(
            callee=callee,
            line=node.lineno,
            col=node.col_offset + 1,
            args=[sorted(labels) for labels in arg_labels],
            kwargs={k: sorted(v) for k, v in kw_labels.items()},
            caught=sorted(set(caught)),
            bump_before=bump,
        )
        self.fs.calls.append(site)
        site_id = len(self.fs.calls) - 1
        self._site_ids[key] = site_id
        return site_id

    # -- detectors ---------------------------------------------------------------------

    def _detect_taint_sink(
        self, node, func, fname, args, keywords, arg_labels, kw_labels
    ) -> None:
        sink = None
        if isinstance(func, ast.Name) and func.id in ("print", "repr", "str", "format"):
            sink = f"{func.id}()"
        elif isinstance(func, ast.Attribute) and fname in LOG_METHODS:
            sink = f"logging call .{fname}()"
        if sink is None:
            return
        for arg, labels in list(zip(args, arg_labels)) + [
            (kw.value, kw_labels.get(kw.arg, set()))
            for kw in keywords
            if kw.arg is not None
        ]:
            taint = self._taint_only(labels)
            if taint:
                self._record_sink(sink, node, taint, self._describe(arg))
                return

    def _detect_clock_and_random(self, node: ast.Call, callee: str, fname: str) -> None:
        if not self.recording:
            return
        owner = self.owner
        func = node.func
        loc = (node.lineno, node.col_offset + 1)
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            base = func.value.id
            if base in owner._alias_time and fname in _BANNED_TIME_ATTRS:
                self._add_once(self.fs.wall_clock, (f"time.{fname}()",) + loc)
                return
            if base in owner._alias_random:
                if fname in _GLOBAL_RANDOM_FUNCS:
                    self._add_once(
                        self.fs.unseeded_random, (f"random.{fname}()",) + loc
                    )
                elif fname == "Random" and not (node.args or node.keywords):
                    self._add_once(self.fs.unseeded_random, ("Random()",) + loc)
                elif fname == "SystemRandom":
                    self._add_once(self.fs.unseeded_random, ("SystemRandom()",) + loc)
                return
        if isinstance(func, ast.Attribute) and fname in _BANNED_DATETIME_ATTRS and not (
            node.args or node.keywords
        ):
            root = func.value
            while isinstance(root, ast.Attribute):
                root = root.value
            if isinstance(root, ast.Name) and (
                root.id in owner._alias_datetime or root.id in owner._from_datetime
            ):
                self._add_once(self.fs.wall_clock, (f"datetime {fname}()",) + loc)
                return
        if isinstance(func, ast.Name):
            if func.id in owner._from_time and func.id in _BANNED_TIME_ATTRS:
                self._add_once(self.fs.wall_clock, (f"time.{func.id}()",) + loc)
            elif func.id in owner._from_random:
                if func.id == "Random" and not (node.args or node.keywords):
                    self._add_once(self.fs.unseeded_random, ("Random()",) + loc)
                elif func.id == "SystemRandom":
                    self._add_once(self.fs.unseeded_random, ("SystemRandom()",) + loc)
                elif func.id in _GLOBAL_RANDOM_FUNCS:
                    self._add_once(
                        self.fs.unseeded_random, (f"{func.id}()",) + loc
                    )

    def _detect_blocking(self, node: ast.Call, callee: str, fname: str) -> None:
        if not self.recording:
            return
        loc = (node.lineno, node.col_offset + 1)
        desc = BLOCKING_CALLS.get(callee)
        if desc is None and callee in BLOCKING_BARE:
            desc = BLOCKING_BARE[callee]
        if desc is None and callee.startswith("subprocess."):
            desc = f"{callee}()"
        if desc is not None:
            self._add_once(self.fs.blocking, (desc,) + loc)

    def _detect_json(
        self, node: ast.Call, callee: str, fname: str, kw_labels, kw_names
    ) -> None:
        if not self.recording or fname not in ("dump", "dumps"):
            return
        func = node.func
        is_json = (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in self.owner._alias_json
        ) or (isinstance(func, ast.Name) and func.id in self.owner._from_json)
        if not is_json:
            return
        if "sort_keys" in kw_names:
            return
        self._add_once(
            self.fs.unsorted_json,
            (f"json.{fname}", node.lineno, node.col_offset + 1),
        )

    @staticmethod
    def _add_once(pool: List[Tuple], item: Tuple) -> None:
        if item not in pool:
            pool.append(item)

    def _record_sink(
        self, kind: str, node: ast.AST, labels: Set[Label], desc: str
    ) -> None:
        if not self.recording or not labels:
            return
        site = SinkSite(
            kind=kind,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            labels=sorted(self._taint_only(labels)),
            desc=desc,
        )
        if not site.labels:
            return
        for existing in self.fs.sinks:
            if (existing.kind, existing.line, existing.col) == (
                site.kind, site.line, site.col
            ):
                return
        self.fs.sinks.append(site)

    def _record_order_site(
        self, kind: str, node: ast.AST, labels: Set[Label], desc: str = ""
    ) -> None:
        if not self.recording or self._order_suppress:
            return
        interesting = sorted(
            l for l in labels if l[0] in ("set", "ret", "param", "attr")
        )
        if not interesting:
            return
        site = OrderSite(
            kind=kind,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            labels=interesting,
            desc=desc,
        )
        for existing in self.fs.order_sites:
            if (existing.kind, existing.line, existing.col) == (
                site.kind, site.line, site.col
            ):
                return
        self.fs.order_sites.append(site)

    def _describe(self, node: ast.AST) -> str:
        if isinstance(node, ast.Name):
            return repr(node.id)
        if isinstance(node, ast.Call):
            func = node.func
            name = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else "?"
            )
            return f"{name}() result"
        if isinstance(node, ast.Subscript):
            return self._describe(node.value)
        if isinstance(node, ast.Attribute):
            return repr(dotted(node))
        if isinstance(node, ast.BinOp):
            return self._describe(node.left)
        if isinstance(node, ast.FormattedValue):
            return self._describe(node.value)
        return "key material"


#: Module-level functions of :mod:`random` using the global generator
#: (mirrors the FBS003 local rule).
_GLOBAL_RANDOM_FUNCS = {
    "random", "randint", "randrange", "randbytes", "choice", "choices",
    "shuffle", "sample", "uniform", "getrandbits", "gauss", "normalvariate",
    "lognormvariate", "expovariate", "betavariate", "gammavariate",
    "paretovariate", "weibullvariate", "vonmisesvariate", "triangular", "seed",
}


def _direct_defs(body: Sequence[ast.stmt]) -> Iterator[ast.stmt]:
    """Immediate nested function defs (not descending into def/class)."""
    for stmt in body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield stmt
        elif isinstance(stmt, ast.ClassDef):
            continue
        else:
            for attr in ("body", "orelse", "finalbody"):
                inner = getattr(stmt, attr, None)
                if inner:
                    yield from _direct_defs(inner)
            for handler in getattr(stmt, "handlers", []) or []:
                yield from _direct_defs(handler.body)


def summarize_module(ctx: ModuleContext) -> ModuleSummary:
    """Distill one parsed module into its phase-1 summary."""
    summary = _ModuleSummarizer(ctx).run()
    summary.is_test = ctx.is_test_code
    return summary


# -- the project (phase-2 substrate) ---------------------------------------------------


class Project:
    """Whole-program view: summaries + symbol resolution + call graph."""

    def __init__(self, summaries: Sequence[ModuleSummary]) -> None:
        self.modules: Dict[str, ModuleSummary] = {}
        for s in summaries:
            # First module wins a contested dotted name (fixture files
            # impersonating core modules fall back to their path key).
            if s.key in self.modules:
                self.modules[s.path] = ModuleSummary(
                    path=s.path, module=None, imports=s.imports,
                    functions=s.functions, classes=s.classes, is_test=s.is_test,
                    depends=s.depends,
                )
            else:
                self.modules[s.key] = s
        self._resolve_memo: Dict[Tuple[str, Optional[str], str], Optional[Tuple[str, str]]] = {}

    # -- iteration ---------------------------------------------------------------------

    def iter_functions(self) -> Iterator[Tuple[ModuleSummary, FunctionSummary]]:
        for key in sorted(self.modules):
            summary = self.modules[key]
            for qname in sorted(summary.functions):
                yield summary, summary.functions[qname]

    def function(self, module_key: str, qname: str) -> Optional[FunctionSummary]:
        summary = self.modules.get(module_key)
        if summary is None:
            return None
        return summary.functions.get(qname)

    # -- name resolution ---------------------------------------------------------------

    def _lookup_export(
        self, module_key: str, name: str, depth: int = 0
    ) -> Optional[Tuple[str, str, str]]:
        """Resolve ``name`` inside module -> ("func"|"class"|"module", module, sym)."""
        if depth > 6:
            return None
        summary = self.modules.get(module_key)
        if summary is None:
            return None
        if name in summary.functions:
            return ("func", module_key, name)
        if name in summary.classes:
            return ("class", module_key, name)
        target = summary.imports.get(name)
        if target is None:
            # ``from repro.crypto import modes`` binds a submodule even
            # when the package __init__ never imports it.
            candidate = f"{module_key}.{name}"
            if candidate in self.modules:
                return ("module", candidate, name)
            return None
        if target[0] == "module":
            return ("module", target[1], name)
        _, src_module, src_name = target
        if src_module == module_key:
            return None
        resolved = self._lookup_export(src_module, src_name, depth + 1)
        if resolved is None and f"{src_module}.{src_name}" in self.modules:
            return ("module", f"{src_module}.{src_name}", src_name)
        return resolved

    def _find_method(
        self, module_key: str, class_name: str, method: str, depth: int = 0
    ) -> Optional[Tuple[str, str]]:
        """Find a method in a class or its statically-known bases."""
        if depth > 6:
            return None
        summary = self.modules.get(module_key)
        if summary is None:
            return None
        cls = summary.classes.get(class_name)
        if cls is None:
            return None
        qname = f"{class_name}.{method}"
        if qname in summary.functions:
            return (module_key, qname)
        for base in cls.bases:
            resolved = self._resolve_class(module_key, base)
            if resolved is not None:
                found = self._find_method(resolved[0], resolved[1], method, depth + 1)
                if found is not None:
                    return found
        return None

    def _resolve_class(
        self, module_key: str, dotted_name: str
    ) -> Optional[Tuple[str, str]]:
        """Resolve a dotted class reference -> (module_key, class_name)."""
        parts = dotted_name.split(".")
        if not parts or "?" in parts:
            return None
        export = self._lookup_export(module_key, parts[0])
        for part in parts[1:]:
            if export is None:
                return None
            kind, mod, sym = export
            if kind == "module":
                export = self._lookup_export(mod, part)
            elif kind == "class":
                return None  # Class.attr is not a class we track
            else:
                return None
        if export is not None and export[0] == "class":
            return (export[1], export[2])
        return None

    def resolve_call(
        self,
        summary: ModuleSummary,
        fn: FunctionSummary,
        site: CallSite,
    ) -> Optional[Tuple[str, str]]:
        """Resolve a call site to (module_key, function qname), if evident."""
        memo_key = (summary.key, fn.class_name, site.callee)
        if memo_key in self._resolve_memo:
            return self._resolve_memo[memo_key]
        result = self._resolve_uncached(summary, fn, site.callee)
        self._resolve_memo[memo_key] = result
        return result

    def _resolve_uncached(
        self, summary: ModuleSummary, fn: FunctionSummary, callee: str
    ) -> Optional[Tuple[str, str]]:
        parts = callee.split(".")
        if not parts or "?" in parts:
            return None
        # self.method() / cls.method() / self.attr.method()
        if parts[0] in ("self", "cls") and fn.class_name:
            if len(parts) == 2:
                return self._find_method(summary.key, fn.class_name, parts[1])
            if len(parts) == 3:
                cls = summary.classes.get(fn.class_name)
                if cls is None:
                    return None
                attr_type = cls.attr_types.get(parts[1])
                if attr_type is None:
                    return None
                resolved = self._resolve_class(summary.key, attr_type)
                if resolved is None:
                    return None
                return self._find_method(resolved[0], resolved[1], parts[2])
            return None
        if parts[0] in ("self", "cls"):
            return None
        export = self._lookup_export(summary.key, parts[0])
        idx = 1
        while export is not None and idx < len(parts):
            kind, mod, sym = export
            if kind == "module":
                export = self._lookup_export(mod, parts[idx])
                idx += 1
            elif kind == "class":
                if idx == len(parts) - 1:
                    found = self._find_method(mod, sym, parts[idx])
                    return found
                return None
            else:
                return None
        if export is None:
            return None
        kind, mod, sym = export
        if idx != len(parts):
            return None
        if kind == "func":
            return (mod, sym)
        if kind == "class":
            # Constructor: resolve to __init__ when it exists.
            return self._find_method(mod, sym, "__init__")
        return None

    # -- exception hierarchy -----------------------------------------------------------

    def exception_ancestors(self, name: str) -> Set[str]:
        """All (statically known) ancestors of an exception class name."""
        out: Set[str] = set()
        frontier = [name]
        while frontier:
            current = frontier.pop()
            parent = BUILTIN_EXC_PARENTS.get(current)
            if parent and parent not in out:
                out.add(parent)
                frontier.append(parent)
            for key in sorted(self.modules):
                cls = self.modules[key].classes.get(current)
                if cls is not None:
                    for base in cls.bases:
                        base_name = base.split(".")[-1]
                        if base_name not in out:
                            out.add(base_name)
                            frontier.append(base_name)
                    break
        out.add("BaseException")
        return out

    def exception_subclasses(self, root: str) -> Set[str]:
        """All class names that (statically) descend from ``root``."""
        out = {root}
        changed = True
        while changed:
            changed = False
            for key in sorted(self.modules):
                for cname in sorted(self.modules[key].classes):
                    if cname in out:
                        continue
                    cls = self.modules[key].classes[cname]
                    if any(b.split(".")[-1] in out for b in cls.bases):
                        out.add(cname)
                        changed = True
        return out
