"""fbslint: static enforcement of the FBS security invariants.

The paper's security argument rests on properties the rest of this
repository upholds by convention -- constant-time MAC compares, typed
receive errors with metrics, seeded randomness, a virtual-time netsim,
the 32-byte header layout.  *Knowledge Flow Analysis for Security
Protocols* (Torlak et al., PAPERS.md) makes the case for checking such
flow properties mechanically; this package is that check for our tree:
a two-phase whole-program analyzer.  Phase 1
(:mod:`repro.analysis.callgraph`) parses every module once into a
serializable summary and a project-wide symbol table + call graph;
phase 2 (:mod:`repro.analysis.dataflow`) runs interprocedural passes
over the graph -- key-material taint with source-to-sink witnesses,
exception-flow accounting, impurity propagation, async-blocking, and
report-order determinism -- behind the per-file rules FBS001-FBS012.
A content-hash cache (:mod:`repro.analysis.cache`) replays unchanged
files' phase-1 artifacts so warm runs skip parsing entirely.

Run it as ``python -m repro.analysis [paths]`` (see
:mod:`repro.analysis.cli` for the exit-code contract) or through
``make lint``.  DESIGN.md's "Enforced invariants" section documents
each rule (the table is generated from the registry; ``--check-docs``
keeps it honest) and how to suppress a false positive.
"""

from repro.analysis.base import Rule, all_rules, get_rule, register
from repro.analysis.baseline import Baseline
from repro.analysis.context import ModuleContext
from repro.analysis.engine import (
    LintError,
    LintResult,
    lint_file,
    lint_paths,
    lint_source,
)
from repro.analysis.findings import Finding, Severity
from repro.analysis.suppressions import SuppressionIndex

__all__ = [
    "Rule",
    "register",
    "all_rules",
    "get_rule",
    "Baseline",
    "ModuleContext",
    "LintError",
    "LintResult",
    "lint_source",
    "lint_file",
    "lint_paths",
    "Finding",
    "Severity",
    "SuppressionIndex",
]
