"""Phase 2 of the whole-program analyzer: interprocedural fixpoints.

Five passes run over the :class:`~repro.analysis.callgraph.Project`
built in phase 1.  None of them touch an AST -- they consume only the
serializable summaries, so a warm (cached) run pays for phase 2 alone.

* **Taint** (FBS001 v2): key material propagated through calls,
  returns, containers, and ``self.attr`` stores; every finding carries
  the full source-to-sink witness path (knowledge-flow style).
* **Exception flow** (FBS006/FBS007 v2): per-exception-class
  reachability from the receive datapath over call edges that are not
  *guarded* for that class (guarded = the call site sits in a ``try``
  catching the class or an ancestor, or is dominated by a metrics
  bump).
* **Impurity** (FBS002/FBS003 v2): a function that transitively
  reaches the wall clock or unseeded randomness is impure; calling an
  impure function from the deterministic core is as banned as the
  primitive itself.
* **Blocking** (FBS010): no blocking primitives -- even hidden behind
  sync helpers -- inside ``async def``.
* **Report order** (FBS011): unordered ``set`` iteration and
  ``json.dump`` without ``sort_keys`` in the report-producing packages.

Every fixpoint iterates modules and functions in sorted order and
records first-found provenance, so witness paths (and therefore finding
messages, fingerprints, and baseline entries) are deterministic.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.callgraph import (
    CallSite,
    FunctionSummary,
    ModuleSummary,
    Project,
)
from repro.analysis.findings import Finding, Severity

__all__ = ["run_project_passes"]

_MAX_ITERATIONS = 64

#: Fallback taxonomies when the real errors module is not in the
#: analyzed set (single-file runs, fixtures).
_FALLBACK_RECEIVE_ERRORS = {
    "ReceiveError",
    "StaleTimestampError",
    "MacMismatchError",
    "HeaderFormatError",
}
_FALLBACK_TAXONOMY = _FALLBACK_RECEIVE_ERRORS | {
    "FBSError",
    "UnknownPrincipalError",
    "ScenarioError",
    "CertificateError",
    "SignatureError",
}

#: Packages whose callers must stay pure (FBS002/FBS003 v2).  The load
#: and bench layers go through sanctioned clocks by design.
_PURITY_ZONE = ("repro.core", "repro.crypto", "repro.netsim", "repro.baselines")

#: Packages whose reports must be byte-identical (FBS011).
_REPORT_ZONE = (
    "repro.resilience",
    "repro.load",
    "repro.obs",
    "repro.analysis",
    "repro.transport",
    "repro.gateway",
)

#: Modules forming the receive datapath (FBS006 v2 roots; raises inside
#: them are the local FBS006 rule's job).
_DATAPATH_MODULES = ("repro.core.protocol",)
_DATAPATH_PACKAGES = ("repro.baselines",)


def _in_zone(summary: ModuleSummary, zone: Sequence[str]) -> bool:
    mod = summary.module
    if mod is None or summary.is_test:
        return False
    return any(mod == z or mod.startswith(z + ".") for z in zone)


def _is_datapath(summary: ModuleSummary) -> bool:
    mod = summary.module
    if mod is None or summary.is_test:
        return False
    if mod in _DATAPATH_MODULES:
        return True
    return any(mod == p or mod.startswith(p + ".") for p in _DATAPATH_PACKAGES)


def _bound_params(fn: FunctionSummary) -> List[str]:
    """Parameters that positional call arguments map onto."""
    params = fn.params
    if (
        params
        and params[0] in ("self", "cls")
        and "staticmethod" not in fn.decorators
    ):
        return params[1:]
    return list(params)


class _Passes:
    def __init__(self, project: Project, rule_ids: Set[str]) -> None:
        self.project = project
        self.rule_ids = rule_ids
        self.findings: List[Finding] = []
        # Resolved call edges, precomputed once:
        # (module_key, qname) -> [(site, callee_module_key, callee_qname)]
        self.edges: Dict[Tuple[str, str], List[Tuple[CallSite, str, str]]] = {}
        for summary, fn in project.iter_functions():
            out = []
            for site in fn.calls:
                resolved = project.resolve_call(summary, fn, site)
                if resolved is not None:
                    out.append((site, resolved[0], resolved[1]))
            self.edges[(summary.key, fn.qname)] = out

    def _emit(
        self,
        rule_id: str,
        severity: Severity,
        summary: ModuleSummary,
        line: int,
        col: int,
        message: str,
        flow: Tuple[str, ...] = (),
    ) -> None:
        if rule_id not in self.rule_ids:
            return
        self.findings.append(
            Finding(
                rule_id=rule_id,
                severity=severity,
                path=summary.path,
                line=line,
                column=col,
                message=message,
                flow=flow,
            )
        )

    def run(self) -> List[Finding]:
        if self.rule_ids & {"FBS001"}:
            self._taint_pass()
        if self.rule_ids & {"FBS002", "FBS003"}:
            self._impurity_pass()
        if self.rule_ids & {"FBS006"}:
            self._receive_accounting_pass()
        if self.rule_ids & {"FBS007"}:
            self._taxonomy_escape_pass()
        if self.rule_ids & {"FBS010"}:
            self._blocking_pass()
        if self.rule_ids & {"FBS011"}:
            self._report_order_pass()
        return self.findings

    # -- FBS001 v2: interprocedural key-material taint ---------------------------------

    def _taint_pass(self) -> None:
        project = self.project
        ret_taint: Dict[Tuple[str, str], Tuple[str, ...]] = {}
        param_taint: Dict[Tuple[str, str, str], Tuple[str, ...]] = {}
        attr_taint: Dict[Tuple[str, str], Tuple[str, ...]] = {}

        def eval_labels(
            summary: ModuleSummary,
            fn: FunctionSummary,
            labels: Iterable[Tuple],
        ) -> Optional[Tuple[str, ...]]:
            best: Optional[Tuple[str, ...]] = None
            for label in sorted(labels):
                # Order-safe boundaries are transparent to taint.
                while label and label[0] == "ord":
                    label = tuple(label[1:])
                if not label:
                    continue
                path: Optional[Tuple[str, ...]] = None
                if label[0] == "src":
                    path = (f"{label[1]} at {summary.path}:{label[2]}",)
                elif label[0] == "param":
                    path = param_taint.get((summary.key, fn.qname, label[1]))
                elif label[0] == "ret":
                    edge = self._edge_for_site(summary, fn, label[1])
                    if edge is not None:
                        site, cmod, cq = edge
                        inner = ret_taint.get((cmod, cq))
                        if inner is not None:
                            path = inner + (
                                f"returned to {summary.path}:{site.line}",
                            )
                elif label[0] == "attr":
                    path = attr_taint.get((label[1], label[2]))
                if path is not None and (best is None or len(path) < len(best)):
                    best = path
            return best

        for _ in range(_MAX_ITERATIONS):
            changed = False
            for summary, fn in project.iter_functions():
                key = (summary.key, fn.qname)
                # Returns.
                if key not in ret_taint:
                    path = eval_labels(summary, fn, fn.returns)
                    if path is not None:
                        ret_taint[key] = path + (
                            f"returned from {fn.qname}() ({summary.path})",
                        )
                        changed = True
                # Attribute stores.
                for attr, labels, line in fn.attr_stores:
                    owner = f"{summary.key}.{fn.class_name}"
                    akey = (owner, attr)
                    if akey in attr_taint:
                        continue
                    path = eval_labels(summary, fn, labels)
                    if path is not None:
                        attr_taint[akey] = path + (
                            f"stored into self.{attr} at {summary.path}:{line}",
                        )
                        changed = True
                # Arguments.
                for site, cmod, cq in self.edges[key]:
                    callee = project.function(cmod, cq)
                    if callee is None:
                        continue
                    positional = _bound_params(callee)
                    mapped = list(zip(positional, site.args))
                    mapped.extend(
                        (name, labels)
                        for name, labels in sorted(site.kwargs.items())
                        if name in callee.params
                    )
                    for pname, labels in mapped:
                        pkey = (cmod, cq, pname)
                        if pkey in param_taint:
                            continue
                        path = eval_labels(summary, fn, labels)
                        if path is not None:
                            param_taint[pkey] = path + (
                                f"passed to {cq}() as '{pname}' "
                                f"from {summary.path}:{site.line}",
                            )
                            changed = True
            if not changed:
                break

        for summary, fn in project.iter_functions():
            if summary.is_test:
                continue
            for sink in fn.sinks:
                path = eval_labels(summary, fn, sink.labels)
                if path is None or len(path) < 2:
                    continue  # purely local flows are the v1 rule's job
                witness = " -> ".join(path)
                self._emit(
                    "FBS001",
                    Severity.ERROR,
                    summary,
                    sink.line,
                    sink.col,
                    f"key material ({sink.desc}) reaches {sink.kind} through "
                    f"an interprocedural flow [{witness}]; key material must "
                    "never be printed, logged, formatted, or compared with ==",
                    flow=path,
                )

    def _edge_for_site(
        self, summary: ModuleSummary, fn: FunctionSummary, site_id: int
    ) -> Optional[Tuple[CallSite, str, str]]:
        if not isinstance(site_id, int) or site_id >= len(fn.calls):
            return None
        site = fn.calls[site_id]
        for edge in self.edges[(summary.key, fn.qname)]:
            if edge[0] is site:
                return edge
        return None

    # -- FBS002/FBS003 v2: impurity propagation ----------------------------------------

    def _impurity_pass(self) -> None:
        project = self.project
        # (module_key, qname) -> (kind, desc, where, chain)
        impure: Dict[Tuple[str, str], Tuple[str, str, str, Tuple[str, ...]]] = {}
        for summary, fn in project.iter_functions():
            key = (summary.key, fn.qname)
            if fn.wall_clock:
                desc, line, _col = fn.wall_clock[0]
                impure[key] = (
                    "clock", desc, f"{summary.path}:{line}",
                    (f"{fn.qname}()",),
                )
            elif fn.unseeded_random:
                desc, line, _col = fn.unseeded_random[0]
                impure[key] = (
                    "random", desc, f"{summary.path}:{line}",
                    (f"{fn.qname}()",),
                )
        for _ in range(_MAX_ITERATIONS):
            changed = False
            for summary, fn in project.iter_functions():
                key = (summary.key, fn.qname)
                if key in impure:
                    continue
                for site, cmod, cq in self.edges[key]:
                    fact = impure.get((cmod, cq))
                    if fact is not None:
                        kind, desc, where, chain = fact
                        impure[key] = (
                            kind, desc, where, (f"{fn.qname}()",) + chain
                        )
                        changed = True
                        break
            if not changed:
                break

        for summary, fn in project.iter_functions():
            if not _in_zone(summary, _PURITY_ZONE):
                continue
            if summary.module is not None and summary.module.startswith("repro.bench"):
                continue
            for site, cmod, cq in self.edges[(summary.key, fn.qname)]:
                fact = impure.get((cmod, cq))
                if fact is None:
                    continue
                kind, desc, where, chain = fact
                rule_id = "FBS002" if kind == "clock" else "FBS003"
                witness = " -> ".join(chain)
                what = (
                    "the wall clock" if kind == "clock"
                    else "unseeded randomness"
                )
                self._emit(
                    rule_id,
                    Severity.WARNING,
                    summary,
                    site.line,
                    site.col,
                    f"call to impure {cq}() transitively reaches {what} "
                    f"({desc} at {where}, via {witness}); deterministic "
                    "replay requires the simulated clock and seeded RNG "
                    "streams",
                    flow=chain,
                )

    # -- FBS006 v2: datapath rejection accounting --------------------------------------

    def _receive_errors(self) -> Set[str]:
        found = self.project.exception_subclasses("ReceiveError")
        if found == {"ReceiveError"}:
            return set(_FALLBACK_RECEIVE_ERRORS)
        return found

    def _guarded(self, site: CallSite, covering: Set[str]) -> bool:
        return site.bump_before or bool(set(site.caught) & covering)

    def _reach_unguarded(
        self,
        roots: List[Tuple[str, str]],
        covering: Set[str],
    ) -> Dict[Tuple[str, str], Tuple[str, ...]]:
        """BFS over call edges not guarded for the exception class."""
        project = self.project
        chains: Dict[Tuple[str, str], Tuple[str, ...]] = {}
        frontier: List[Tuple[str, str]] = []
        for key in roots:
            summary = project.modules.get(key[0])
            fn = project.function(*key)
            if summary is None or fn is None:
                continue
            chains[key] = (f"{fn.qname}() ({summary.path}:{fn.line})",)
            frontier.append(key)
        while frontier:
            next_frontier: List[Tuple[str, str]] = []
            for key in frontier:
                for site, cmod, cq in self.edges.get(key, ()):
                    ckey = (cmod, cq)
                    if ckey in chains or self._guarded(site, covering):
                        continue
                    callee_summary = project.modules.get(cmod)
                    callee = project.function(cmod, cq)
                    if callee_summary is None or callee is None:
                        continue
                    chains[ckey] = chains[key] + (
                        f"{cq}() ({callee_summary.path}:{callee.line})",
                    )
                    next_frontier.append(ckey)
            frontier = next_frontier
        return chains

    def _receive_accounting_pass(self) -> None:
        project = self.project
        receive_errors = self._receive_errors()
        roots = [
            (summary.key, qname)
            for key in sorted(project.modules)
            for summary in (project.modules[key],)
            if _is_datapath(summary)
            for qname in sorted(summary.functions)
        ]
        if not roots:
            return
        emitted: Set[Tuple[str, int, int]] = set()
        for exc in sorted(receive_errors):
            covering = {exc} | project.exception_ancestors(exc)
            chains = self._reach_unguarded(roots, covering)
            for key in sorted(chains):
                summary = project.modules[key[0]]
                if _is_datapath(summary) or summary.is_test:
                    continue  # local FBS006 owns the datapath modules
                fn = project.function(*key)
                for site in fn.raises:
                    raised = {site.name} if site.name else set(site.reraise_of)
                    if exc not in raised:
                        continue
                    if site.bump_before or set(site.caught) & covering:
                        continue
                    loc = (summary.path, site.line, site.col)
                    if loc in emitted:
                        continue
                    emitted.add(loc)
                    witness = " -> ".join(chains[key])
                    self._emit(
                        "FBS006",
                        Severity.WARNING,
                        summary,
                        site.line,
                        site.col,
                        f"{exc} raised in helper {fn.qname}() is reachable "
                        f"from the receive datapath [{witness}] without a "
                        "metrics bump on the path; every rejected datagram "
                        "must be counted exactly once",
                        flow=chains[key],
                    )

    # -- FBS007 v2: builtin exceptions escaping the protocol surface -------------------

    def _taxonomy_escape_pass(self) -> None:
        project = self.project
        taxonomy = project.exception_subclasses("FBSError") | _FALLBACK_TAXONOMY
        roots = []
        for key in sorted(project.modules):
            summary = project.modules[key]
            if summary.module not in _DATAPATH_MODULES or summary.is_test:
                continue
            for qname in sorted(summary.functions):
                fn = summary.functions[qname]
                if fn.is_public and fn.qname != "<module>":
                    roots.append((summary.key, qname))
        if not roots:
            return
        # Which builtin classes are raised anywhere reachable matters;
        # collect the candidate set first to bound the per-class BFS.
        candidates: Set[str] = set()
        for summary, fn in project.iter_functions():
            for site in fn.raises:
                if site.name and site.name not in taxonomy:
                    candidates.add(site.name)
        emitted: Set[Tuple[str, int, int]] = set()
        for exc in sorted(candidates):
            covering = {exc} | project.exception_ancestors(exc)
            chains = self._reach_unguarded(roots, covering)
            for key in sorted(chains):
                summary = project.modules[key[0]]
                if summary.module in _DATAPATH_MODULES or summary.is_test:
                    continue  # local FBS007 owns the protocol module
                fn = project.function(*key)
                for site in fn.raises:
                    if site.name != exc:
                        continue
                    if set(site.caught) & covering:
                        continue
                    loc = (summary.path, site.line, site.col)
                    if loc in emitted:
                        continue
                    emitted.add(loc)
                    witness = " -> ".join(chains[key])
                    self._emit(
                        "FBS007",
                        Severity.WARNING,
                        summary,
                        site.line,
                        site.col,
                        f"{exc} raised in {fn.qname}() can escape through a "
                        f"public protocol entry point [{witness}]; the "
                        "protocol surface must raise FBSError taxonomy "
                        "exceptions only",
                        flow=chains[key],
                    )

    # -- FBS010: no blocking calls inside async def ------------------------------------

    def _blocking_pass(self) -> None:
        project = self.project
        blocking: Dict[Tuple[str, str], Tuple[str, str, Tuple[str, ...]]] = {}
        for summary, fn in project.iter_functions():
            if fn.blocking and not fn.is_async:
                desc, line, _col = fn.blocking[0]
                blocking[(summary.key, fn.qname)] = (
                    desc, f"{summary.path}:{line}", (f"{fn.qname}()",)
                )
        for _ in range(_MAX_ITERATIONS):
            changed = False
            for summary, fn in project.iter_functions():
                key = (summary.key, fn.qname)
                if key in blocking or fn.is_async:
                    continue
                for site, cmod, cq in self.edges[key]:
                    fact = blocking.get((cmod, cq))
                    if fact is not None:
                        desc, where, chain = fact
                        blocking[key] = (desc, where, (f"{fn.qname}()",) + chain)
                        changed = True
                        break
            if not changed:
                break

        for summary, fn in project.iter_functions():
            if not fn.is_async or summary.is_test:
                continue
            for desc, line, col in fn.blocking:
                self._emit(
                    "FBS010",
                    Severity.WARNING,
                    summary,
                    line,
                    col,
                    f"blocking call {desc} inside async function "
                    f"{fn.qname}(); the event loop must never be blocked -- "
                    "use the loop clock or an executor",
                )
            for site, cmod, cq in self.edges[(summary.key, fn.qname)]:
                fact = blocking.get((cmod, cq))
                if fact is None:
                    continue
                desc, where, chain = fact
                witness = " -> ".join(chain)
                self._emit(
                    "FBS010",
                    Severity.WARNING,
                    summary,
                    site.line,
                    site.col,
                    f"async function {fn.qname}() calls {cq}(), which "
                    f"transitively blocks on {desc} at {where} (via "
                    f"{witness}); the event loop must never be blocked",
                    flow=chain,
                )

    # -- FBS011: deterministic report serialization ------------------------------------

    def _report_order_pass(self) -> None:
        project = self.project
        set_ret: Dict[Tuple[str, str], Tuple[str, ...]] = {}
        set_param: Dict[Tuple[str, str, str], Tuple[str, ...]] = {}
        set_attr: Dict[Tuple[str, str], Tuple[str, ...]] = {}

        def eval_set(
            summary: ModuleSummary,
            fn: FunctionSummary,
            labels: Iterable[Tuple],
        ) -> Optional[Tuple[str, ...]]:
            best: Optional[Tuple[str, ...]] = None
            for label in sorted(labels):
                if label[0] == "ord":
                    continue  # behind an order-safe boundary
                path: Optional[Tuple[str, ...]] = None
                if label[0] == "set":
                    path = (f"{label[1]} at {summary.path}:{label[2]}",)
                elif label[0] == "param":
                    path = set_param.get((summary.key, fn.qname, label[1]))
                elif label[0] == "ret":
                    edge = self._edge_for_site(summary, fn, label[1])
                    if edge is not None:
                        _site, cmod, cq = edge
                        path = set_ret.get((cmod, cq))
                elif label[0] == "attr":
                    path = set_attr.get((label[1], label[2]))
                if path is not None and (best is None or len(path) < len(best)):
                    best = path
            return best

        for _ in range(_MAX_ITERATIONS):
            changed = False
            for summary, fn in project.iter_functions():
                key = (summary.key, fn.qname)
                if key not in set_ret:
                    path = eval_set(summary, fn, fn.returns)
                    if path is not None:
                        set_ret[key] = path + (f"returned from {fn.qname}()",)
                        changed = True
                for attr, labels, line in fn.attr_stores:
                    akey = (f"{summary.key}.{fn.class_name}", attr)
                    if akey in set_attr:
                        continue
                    path = eval_set(summary, fn, labels)
                    if path is not None:
                        set_attr[akey] = path + (f"stored into self.{attr}",)
                        changed = True
                for site, cmod, cq in self.edges[key]:
                    callee = project.function(cmod, cq)
                    if callee is None:
                        continue
                    mapped = list(zip(_bound_params(callee), site.args))
                    mapped.extend(
                        (name, labels)
                        for name, labels in sorted(site.kwargs.items())
                        if name in callee.params
                    )
                    for pname, labels in mapped:
                        pkey = (cmod, cq, pname)
                        if pkey in set_param:
                            continue
                        path = eval_set(summary, fn, labels)
                        if path is not None:
                            set_param[pkey] = path + (
                                f"passed to {cq}() as '{pname}'",
                            )
                            changed = True
            if not changed:
                break

        for summary, fn in project.iter_functions():
            if not _in_zone(summary, _REPORT_ZONE):
                continue
            for site in fn.order_sites:
                path = eval_set(summary, fn, site.labels)
                if path is None:
                    continue
                origin = path[0]
                via = f" [{' -> '.join(path)}]" if len(path) > 1 else ""
                subject = f" over {site.desc}" if site.desc else ""
                self._emit(
                    "FBS011",
                    Severity.WARNING,
                    summary,
                    site.line,
                    site.col,
                    f"unordered iteration ({site.kind}){subject}: the value "
                    f"comes from {origin}{via}; wrap it in sorted(...) so "
                    "report output is byte-identical across runs",
                    flow=path,
                )
            for fname, line, col in fn.unsorted_json:
                self._emit(
                    "FBS011",
                    Severity.WARNING,
                    summary,
                    line,
                    col,
                    f"{fname}() without sort_keys=True in a report module; "
                    "byte-identical report contracts require sorted keys",
                )


def run_project_passes(project: Project, rule_ids: Set[str]) -> List[Finding]:
    """Run every interprocedural pass whose rule is selected."""
    return _Passes(project, rule_ids).run()
