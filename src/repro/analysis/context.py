"""Per-module context handed to every rule.

Rules scope themselves by *logical path* -- where the module lives
inside the ``repro`` package -- not by filesystem accident.  The wall
clock is legal in ``repro.bench`` but nowhere else; the metrics
discipline applies to ``repro.core`` and ``repro.baselines`` only.
Tests construct a :class:`ModuleContext` with an explicit logical path
so fixture files can impersonate any module.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = ["ModuleContext"]

#: ``# fbslint: module=repro.core.protocol`` pins a file's logical
#: module identity, overriding its filesystem location.  The rule-test
#: fixtures under ``tests/analysis/fixtures/`` use it to impersonate
#: the modules their rules are scoped to.
_MODULE_PRAGMA = re.compile(r"#\s*fbslint:\s*module\s*=\s*([\w.]+)")


def _module_parts(logical_path: str) -> Optional[Tuple[str, ...]]:
    """``src/repro/core/protocol.py`` -> ``("repro", "core", "protocol")``.

    Returns ``None`` when the path does not pass through a ``repro``
    package directory (scanning arbitrary files still runs the
    package-agnostic rules).
    """
    parts = logical_path.replace("\\", "/").split("/")
    if "repro" not in parts:
        return None
    idx = parts.index("repro")
    tail = parts[idx:]
    if tail[-1].endswith(".py"):
        tail[-1] = tail[-1][: -len(".py")]
    if tail[-1] == "__init__":
        tail = tail[:-1]
    return tuple(tail)


@dataclass
class ModuleContext:
    """Everything a rule may ask about the module under analysis."""

    #: Path used in reports and baseline entries (repo-relative).
    path: str
    #: Path used for package scoping; defaults to ``path``.
    logical_path: str
    tree: ast.Module
    source: str

    def __post_init__(self) -> None:
        pragma = _MODULE_PRAGMA.search(self.source)
        if pragma:
            self.module_parts: Optional[Tuple[str, ...]] = tuple(
                pragma.group(1).split(".")
            )
        else:
            self.module_parts = _module_parts(self.logical_path)
        self.lines = self.source.splitlines()

    # -- scope predicates ------------------------------------------------------

    def in_package(self, *prefix: str) -> bool:
        """Is the module inside ``repro.<prefix...>``?"""
        want = ("repro",) + prefix
        return (
            self.module_parts is not None
            and self.module_parts[: len(want)] == want
        )

    @property
    def is_bench(self) -> bool:
        """``repro.bench`` may read the wall clock (it measures it)."""
        return self.in_package("bench")

    @property
    def is_clock_sanctioned(self) -> bool:
        """May this module read the real clock (FBS002 carve-out)?

        ``repro.bench`` measures real time; ``repro.transport.udp`` *is*
        the real-time substrate -- its ``now()`` is the clock the rest
        of the stack injects, which is exactly how real-clock access
        stays quarantined behind the transport boundary.  Everything
        else (including the rest of ``repro.transport``) stays under
        the ban.
        """
        return self.is_bench or self.is_module("transport", "udp")

    @property
    def is_test_code(self) -> bool:
        """Test modules keep their ``assert`` statements."""
        if self.module_parts is None:
            parts = self.logical_path.replace("\\", "/").split("/")
            return "tests" in parts
        return any(p in ("tests", "conftest") for p in self.module_parts)

    def is_module(self, *parts: str) -> bool:
        """Exact module match, e.g. ``is_module("core", "protocol")``."""
        return self.module_parts == ("repro",) + parts
