"""The checked-in baseline of grandfathered findings.

A baseline lets fbslint land with a hard exit-code contract even while
old findings are being burned down: entries in the file absorb matching
findings (same path, rule, and message fingerprint -- line numbers are
deliberately not part of the match, so unrelated edits don't invalidate
the baseline).  New findings still fail the run.  ``--write-baseline``
regenerates the file; an empty file means the tree is clean.

Format: one entry per line, ``path|rule_id|fingerprint|message``; ``#``
comments and blank lines are ignored.  The trailing message is for the
human reading the diff -- only the first three fields match.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Set, Tuple

from repro.analysis.findings import Finding

__all__ = ["Baseline"]

_HEADER = """\
# fbslint baseline -- grandfathered findings (see DESIGN.md, "Enforced
# invariants").  Each line: path|rule|fingerprint|message.  An empty
# baseline means the tree is clean; new findings always fail the run.
# Regenerate with: python -m repro.analysis --write-baseline src
"""


class Baseline:
    """Set of grandfathered findings, keyed line-number-free."""

    def __init__(self, entries: Iterable[Tuple[str, str, str]] = ()) -> None:
        #: (path, rule_id, fingerprint) triples.
        self.entries: Set[Tuple[str, str, str]] = set(entries)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        entries = []
        for raw in path.read_text(encoding="utf-8").splitlines():
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            fields = line.split("|", 3)
            if len(fields) < 3:
                raise ValueError(f"{path}: malformed baseline line: {raw!r}")
            entries.append((fields[0], fields[1], fields[2]))
        return cls(entries)

    def absorbs(self, finding: Finding) -> bool:
        return (finding.path, finding.rule_id, finding.fingerprint) in self.entries

    @staticmethod
    def write(path: Path, findings: List[Finding]) -> None:
        """Serialize ``findings`` as the new baseline."""
        lines = [_HEADER]
        for f in sorted(findings, key=lambda f: (f.path, f.rule_id, f.line)):
            message = f.message.replace("|", "/").replace("\n", " ")
            lines.append(f"{f.path}|{f.rule_id}|{f.fingerprint}|{message}\n")
        path.write_text("".join(lines), encoding="utf-8")
