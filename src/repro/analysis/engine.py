"""The fbslint engine: discover files, run both phases, filter, report.

Since v2 the engine is a *two-phase whole-program analyzer*:

* **Phase 1** parses every module once, runs the local (per-file) rules
  over its AST, and distills it into a
  :class:`~repro.analysis.callgraph.ModuleSummary`.  With a cache file
  (:mod:`repro.analysis.cache`), unchanged files replay their phase-1
  artifacts from disk without re-parsing.
* **Phase 2** builds a :class:`~repro.analysis.callgraph.Project` from
  the summaries and runs the interprocedural passes
  (:mod:`repro.analysis.dataflow`): key-material taint, exception-flow
  accounting, impurity propagation, async-blocking, and report-order
  determinism.

The engine is a library first (``lint_source`` / ``lint_paths``) so the
test suite can aim individual rules at fixture files; the CLI in
:mod:`repro.analysis.cli` is a thin argparse wrapper over
:func:`lint_paths`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.base import Rule, all_rules
from repro.analysis.baseline import Baseline
from repro.analysis.cache import SummaryCache, content_hash
from repro.analysis.callgraph import ModuleSummary, Project, summarize_module
from repro.analysis.context import ModuleContext
from repro.analysis.dataflow import run_project_passes
from repro.analysis.findings import Finding, Severity
from repro.analysis.suppressions import SuppressionIndex

__all__ = ["LintError", "LintResult", "lint_source", "lint_file", "lint_paths"]

#: Directory names never descended into during discovery.
_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache"}


class LintError(Exception):
    """A file could not be analyzed (unreadable or unparsable)."""


@dataclass
class LintResult:
    """Everything one lint run produced."""

    #: Findings that fail the run (not suppressed, not baselined).
    findings: List[Finding] = field(default_factory=list)
    #: Findings absorbed by the baseline file.
    baselined: List[Finding] = field(default_factory=list)
    #: Count silenced by inline ``# fbslint: disable`` comments.
    suppressed: int = 0
    files_checked: int = 0
    #: Cache accounting for the run (files replayed / re-analyzed).
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def exit_code(self) -> int:
        """The CI contract: 0 clean, 1 findings."""
        return 1 if self.findings else 0

    def extend(self, other: "LintResult") -> None:
        self.findings.extend(other.findings)
        self.baselined.extend(other.baselined)
        self.suppressed += other.suppressed
        self.files_checked += other.files_checked


def _select_rules(
    select: Optional[Iterable[str]], ignore: Optional[Iterable[str]]
) -> List[Rule]:
    rules = all_rules()
    if select:
        wanted = {r.upper() for r in select}
        unknown = wanted - {r.rule_id for r in rules}
        if unknown:
            raise LintError(f"unknown rule id(s): {', '.join(sorted(unknown))}")
        rules = [r for r in rules if r.rule_id in wanted]
    if ignore:
        dropped = {r.upper() for r in ignore}
        rules = [r for r in rules if r.rule_id not in dropped]
    return rules


def _parse(source: str, path: str) -> ast.Module:
    try:
        return ast.parse(source, filename=path)
    except SyntaxError as exc:
        raise LintError(f"{path}:{exc.lineno}: syntax error: {exc.msg}") from exc


@dataclass
class _FileRecord:
    """Phase-1 artifacts for one file, fresh or replayed from cache."""

    report_path: str
    summary: ModuleSummary
    raw_findings: List[Finding]
    suppressions: SuppressionIndex


def _phase1(
    source: str,
    report_path: str,
    logical_path: str,
    rules: Sequence[Rule],
) -> _FileRecord:
    tree = _parse(source, report_path)
    ctx = ModuleContext(
        path=report_path, logical_path=logical_path, tree=tree, source=source
    )
    raw = [f for rule in rules for f in rule.check(ctx)]
    return _FileRecord(
        report_path=report_path,
        summary=summarize_module(ctx),
        raw_findings=raw,
        suppressions=SuppressionIndex(source),
    )


def _unused_suppression_findings(record: _FileRecord) -> List[Finding]:
    from repro.analysis.base import get_rule

    rule = get_rule("FBS012")
    out = []
    for line, kind, rule_ids in record.suppressions.unused_directives():
        out.append(
            Finding(
                rule_id=rule.rule_id,
                severity=rule.severity,
                path=record.report_path,
                line=line,
                column=1,
                message=(
                    f"unused suppression '# fbslint: {kind}="
                    f"{','.join(rule_ids)}' matches no finding; delete it "
                    "so the suppression set cannot rot"
                ),
            )
        )
    return out


def _finalize(
    records: List[_FileRecord],
    project_findings: List[Finding],
    baseline: Optional[Baseline],
    unused_suppressions: bool,
    restrict: Optional[Set[str]] = None,
) -> LintResult:
    """Merge local + project findings, dedupe, suppress, baseline, sort."""
    by_path = {r.report_path: r for r in records}
    result = LintResult(files_checked=len(records))

    merged: List[Finding] = []
    seen: Set[Tuple[str, str, int, int]] = set()
    local = [f for r in records for f in r.raw_findings]
    for finding in local + project_findings:
        key = (finding.rule_id, finding.path, finding.line, finding.column)
        if key in seen:
            continue
        seen.add(key)
        merged.append(finding)

    def _route(finding: Finding) -> None:
        record = by_path.get(finding.path)
        if record is not None and record.suppressions.suppresses(finding):
            result.suppressed += 1
        elif baseline is not None and baseline.absorbs(finding):
            result.baselined.append(finding)
        else:
            result.findings.append(finding)

    for finding in merged:
        _route(finding)

    if unused_suppressions:
        for record in records:
            for finding in _unused_suppression_findings(record):
                _route(finding)

    if restrict is not None:
        result.findings = [f for f in result.findings if f.path in restrict]
        result.baselined = [f for f in result.baselined if f.path in restrict]

    result.findings.sort(key=lambda f: (-int(f.severity),) + f.sort_key)
    result.baselined.sort(key=lambda f: f.sort_key)
    return result


def lint_source(
    source: str,
    path: str = "<string>",
    logical_path: Optional[str] = None,
    rules: Optional[Sequence[Rule]] = None,
    baseline: Optional[Baseline] = None,
    unused_suppressions: bool = True,
) -> LintResult:
    """Run both phases over one module's source text.

    ``logical_path`` overrides package scoping -- the fixture tests use
    it to make a file under ``tests/`` impersonate, say,
    ``src/repro/core/protocol.py``.  The interprocedural passes run
    over a single-module project, so helper-chain flows *within* the
    module are still found.  Unused-suppression findings (FBS012) are
    emitted only when the full rule set ran (an explicit ``rules``
    narrowing would make every directive for an unselected rule look
    unused).
    """
    narrowed = rules is not None
    active = list(rules) if rules is not None else all_rules()
    record = _phase1(source, path, logical_path or path, active)
    project = Project([record.summary])
    project_findings = run_project_passes(
        project, {rule.rule_id for rule in active}
    )
    return _finalize(
        [record],
        project_findings,
        baseline,
        unused_suppressions=unused_suppressions and not narrowed,
    )


def lint_file(
    path: Path,
    root: Optional[Path] = None,
    rules: Optional[Sequence[Rule]] = None,
    baseline: Optional[Baseline] = None,
    logical_path: Optional[str] = None,
) -> LintResult:
    """Lint one file; paths in findings are relative to ``root``."""
    source, report_path = _read(path, root)
    return lint_source(
        source,
        path=report_path,
        logical_path=logical_path or str(path),
        rules=rules,
        baseline=baseline,
    )


def _read(path: Path, root: Optional[Path]) -> Tuple[str, str]:
    try:
        source = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise LintError(f"cannot read {path}: {exc}") from exc
    report_path = path
    if root is not None:
        try:
            report_path = path.resolve().relative_to(root.resolve())
        except ValueError:
            report_path = path
    return source, str(report_path)


def discover(paths: Sequence[Path]) -> List[Path]:
    """Expand files/directories into the sorted list of ``.py`` files."""
    found: List[Path] = []
    for path in paths:
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not _SKIP_DIRS.intersection(candidate.parts):
                    found.append(candidate)
        elif path.suffix == ".py":
            found.append(path)
        elif not path.exists():
            raise LintError(f"no such path: {path}")
    return found


def _reverse_cone(
    summaries: List[ModuleSummary], changed_paths: Set[str]
) -> Set[str]:
    """Changed files plus every file that (transitively) imports them."""
    by_key = {s.key: s for s in summaries}
    # Edges: importer module key -> imported module keys present in the set.
    importers: Dict[str, Set[str]] = {}
    for s in summaries:
        for dep in s.depends:
            if dep in by_key:
                importers.setdefault(dep, set()).add(s.key)
    cone_keys = {s.key for s in summaries if s.path in changed_paths}
    frontier = sorted(cone_keys)
    while frontier:
        next_frontier = []
        for key in frontier:
            for importer in sorted(importers.get(key, ())):
                if importer not in cone_keys:
                    cone_keys.add(importer)
                    next_frontier.append(importer)
        frontier = next_frontier
    return changed_paths | {by_key[k].path for k in cone_keys}


def lint_paths(
    paths: Sequence[Path],
    root: Optional[Path] = None,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    baseline: Optional[Baseline] = None,
    cache_path: Optional[Path] = None,
    changed: Optional[Iterable[str]] = None,
    unused_suppressions: bool = True,
) -> LintResult:
    """Lint every python file under ``paths`` as one project.

    ``cache_path`` enables the content-hash incremental cache.
    ``changed`` (an iterable of report paths) restricts *reporting* to
    those files plus their reverse-dependency cone; the whole project
    is still summarized so interprocedural facts stay correct.
    """
    rules = _select_rules(select, ignore)
    narrowed = select is not None or ignore is not None
    root = root or Path.cwd()

    cache: Optional[SummaryCache] = None
    if cache_path is not None:
        signature = ",".join(rule.rule_id for rule in rules)
        cache = SummaryCache(cache_path, signature)

    records: List[_FileRecord] = []
    for file_path in discover(paths):
        source, report_path = _read(file_path, root)
        if cache is not None:
            sha = content_hash(source)
            hit = cache.get(report_path, sha)
            if hit is not None:
                summary, raw, suppressions = hit
                records.append(
                    _FileRecord(report_path, summary, raw, suppressions)
                )
                continue
            record = _phase1(source, report_path, str(file_path), rules)
            cache.put(
                report_path, sha, record.summary, record.raw_findings,
                record.suppressions,
            )
        else:
            record = _phase1(source, report_path, str(file_path), rules)
        records.append(record)

    if cache is not None:
        cache.save()

    project = Project([r.summary for r in records])
    project_findings = run_project_passes(
        project, {rule.rule_id for rule in rules}
    )

    restrict: Optional[Set[str]] = None
    if changed is not None:
        restrict = _reverse_cone(
            [r.summary for r in records], set(changed)
        )

    result = _finalize(
        records,
        project_findings,
        baseline,
        unused_suppressions=unused_suppressions and not narrowed,
        restrict=restrict,
    )
    if cache is not None:
        result.cache_hits = cache.hits
        result.cache_misses = cache.misses
    return result
