"""The fbslint engine: discover files, run rules, filter, report.

The engine is a library first (``lint_source`` / ``lint_paths``) so the
test suite can aim individual rules at fixture files; the CLI in
:mod:`repro.analysis.cli` is a thin argparse wrapper over
:func:`lint_paths`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Sequence

from repro.analysis.base import Rule, all_rules
from repro.analysis.baseline import Baseline
from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.suppressions import SuppressionIndex

__all__ = ["LintError", "LintResult", "lint_source", "lint_file", "lint_paths"]

#: Directory names never descended into during discovery.
_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache"}


class LintError(Exception):
    """A file could not be analyzed (unreadable or unparsable)."""


@dataclass
class LintResult:
    """Everything one lint run produced."""

    #: Findings that fail the run (not suppressed, not baselined).
    findings: List[Finding] = field(default_factory=list)
    #: Findings absorbed by the baseline file.
    baselined: List[Finding] = field(default_factory=list)
    #: Count silenced by inline ``# fbslint: disable`` comments.
    suppressed: int = 0
    files_checked: int = 0

    @property
    def exit_code(self) -> int:
        """The CI contract: 0 clean, 1 findings."""
        return 1 if self.findings else 0

    def extend(self, other: "LintResult") -> None:
        self.findings.extend(other.findings)
        self.baselined.extend(other.baselined)
        self.suppressed += other.suppressed
        self.files_checked += other.files_checked


def _select_rules(
    select: Optional[Iterable[str]], ignore: Optional[Iterable[str]]
) -> List[Rule]:
    rules = all_rules()
    if select:
        wanted = {r.upper() for r in select}
        unknown = wanted - {r.rule_id for r in rules}
        if unknown:
            raise LintError(f"unknown rule id(s): {', '.join(sorted(unknown))}")
        rules = [r for r in rules if r.rule_id in wanted]
    if ignore:
        dropped = {r.upper() for r in ignore}
        rules = [r for r in rules if r.rule_id not in dropped]
    return rules


def lint_source(
    source: str,
    path: str = "<string>",
    logical_path: Optional[str] = None,
    rules: Optional[Sequence[Rule]] = None,
    baseline: Optional[Baseline] = None,
) -> LintResult:
    """Run rules over one module's source text.

    ``logical_path`` overrides package scoping -- the fixture tests use
    it to make a file under ``tests/`` impersonate, say,
    ``src/repro/core/protocol.py``.
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        raise LintError(f"{path}:{exc.lineno}: syntax error: {exc.msg}") from exc
    ctx = ModuleContext(
        path=path, logical_path=logical_path or path, tree=tree, source=source
    )
    suppressions = SuppressionIndex(source)
    result = LintResult(files_checked=1)
    for rule in rules if rules is not None else all_rules():
        for finding in rule.check(ctx):
            if suppressions.suppresses(finding):
                result.suppressed += 1
            elif baseline is not None and baseline.absorbs(finding):
                result.baselined.append(finding)
            else:
                result.findings.append(finding)
    result.findings.sort(key=lambda f: (f.path, f.line, f.rule_id))
    return result


def lint_file(
    path: Path,
    root: Optional[Path] = None,
    rules: Optional[Sequence[Rule]] = None,
    baseline: Optional[Baseline] = None,
    logical_path: Optional[str] = None,
) -> LintResult:
    """Lint one file; paths in findings are relative to ``root``."""
    try:
        source = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise LintError(f"cannot read {path}: {exc}") from exc
    report_path = path
    if root is not None:
        try:
            report_path = path.resolve().relative_to(root.resolve())
        except ValueError:
            report_path = path
    return lint_source(
        source,
        path=str(report_path),
        logical_path=logical_path or str(path),
        rules=rules,
        baseline=baseline,
    )


def discover(paths: Sequence[Path]) -> List[Path]:
    """Expand files/directories into the sorted list of ``.py`` files."""
    found: List[Path] = []
    for path in paths:
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not _SKIP_DIRS.intersection(candidate.parts):
                    found.append(candidate)
        elif path.suffix == ".py":
            found.append(path)
        elif not path.exists():
            raise LintError(f"no such path: {path}")
    return found


def lint_paths(
    paths: Sequence[Path],
    root: Optional[Path] = None,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    baseline: Optional[Baseline] = None,
) -> LintResult:
    """Lint every python file under ``paths``."""
    rules = _select_rules(select, ignore)
    root = root or Path.cwd()
    total = LintResult()
    for file_path in discover(paths):
        total.extend(
            lint_file(file_path, root=root, rules=rules, baseline=baseline)
        )
    total.findings.sort(
        key=lambda f: (-int(f.severity), f.path, f.line, f.rule_id)
    )
    return total
