"""The fbslint rule framework: base class and registry.

A rule is a small object with an id (``FBS0xx``), a severity, a
one-line description (shown by ``--list-rules`` and quoted in
DESIGN.md), and a ``check`` method that walks the module AST and yields
:class:`~repro.analysis.findings.Finding` objects.  Rules register
themselves via the :func:`register` decorator; the engine runs every
registered rule unless ``--select``/``--ignore`` narrows the set.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Type

from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding, Severity

__all__ = ["Rule", "register", "all_rules", "get_rule"]


class Rule:
    """Base class for fbslint rules."""

    #: Stable identifier used in reports, suppressions, and baselines.
    rule_id: str = "FBS000"
    #: Short name (kebab case) used in ``--list-rules`` output.
    name: str = "abstract-rule"
    severity: Severity = Severity.WARNING
    #: One-line summary of the invariant the rule protects.
    description: str = ""
    #: Paper/DESIGN.md anchor the invariant comes from.
    rationale: str = ""

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Yield findings for one module.  Subclasses override."""
        raise NotImplementedError
        yield  # pragma: no cover

    # -- helpers shared by concrete rules ------------------------------------------

    def finding(self, ctx: ModuleContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule_id=self.rule_id,
            severity=self.severity,
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


_REGISTRY: Dict[str, Rule] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule (as a singleton) to the registry."""
    if cls.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    _REGISTRY[cls.rule_id] = cls()
    return cls


def all_rules() -> List[Rule]:
    """Every registered rule, ordered by id."""
    _load_builtin_rules()
    return [_REGISTRY[rid] for rid in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    _load_builtin_rules()
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise KeyError(f"unknown rule id {rule_id!r}") from None


def _load_builtin_rules() -> None:
    """Import the rule modules exactly once (they self-register)."""
    import repro.analysis.rules  # noqa: F401  (import for side effect)


# -- AST utilities used by several rules -----------------------------------------------


def dotted_name(node: ast.AST) -> str:
    """``a.b.c`` for Name/Attribute chains, ``""`` otherwise."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    elif parts:
        # Chain rooted in a call/subscript: mark the unknown root.
        parts.append("?")
    return ".".join(reversed(parts))


def call_name(call: ast.Call) -> str:
    """The trailing identifier of a call target (``x.y.f()`` -> ``f``)."""
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def walk_statements(body: Iterable[ast.stmt]) -> Iterator[List[ast.stmt]]:
    """Yield every statement list (block) in a body, recursively."""
    body = list(body)
    yield body
    for stmt in body:
        for attr in ("body", "orelse", "finalbody"):
            inner = getattr(stmt, attr, None)
            if inner:
                yield from walk_statements(inner)
        for handler in getattr(stmt, "handlers", []) or []:
            yield from walk_statements(handler.body)
