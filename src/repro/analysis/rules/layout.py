"""FBS005: the wire codec must agree with the declared header layout.

The paper's IP mapping (Section 7.2) fixes the security flow header at
**sfl 64 bits | confounder 32 | MAC 128 (default suite) | timestamp
32** -- 32 bytes.  ``core/header.py`` encodes those widths three ways
that can silently drift apart: struct format strings, the
``FBS_HEADER_LEN`` constant, and manual ``offset`` arithmetic.  This
rule cross-checks all three against the declared layout in any module
that defines ``FBSHeader`` or ``FBS_HEADER_LEN``:

* a struct item packing/unpacking a field named ``sfl`` must be 8
  bytes, ``confounder`` 4, ``timestamp`` 4;
* ``FBS_HEADER_LEN`` must evaluate to 8 + 4 + 16 + 4 = 32;
* an ``offset += N`` immediately following a ``struct.unpack_from(fmt,
  ...)`` must have ``N == calcsize(fmt)``.

Both spellings of a codec call are checked: direct ``struct.pack(fmt,
...)`` and calls through a precompiled module-level binding (``_CODEC =
struct.Struct(fmt)`` then ``_CODEC.pack(...)``) -- the fast-path idiom
``core/header.py`` uses must not make the widths invisible to the rule.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from repro.analysis.base import Rule, register, walk_statements
from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding, Severity

__all__ = ["HeaderLayoutRule"]

#: Declared field widths in bytes (paper SS3 / SS7.2, default suite).
_FIELD_BYTES = {"sfl": 8, "confounder": 4, "timestamp": 4}
_MAC_BYTES_DEFAULT = 16
_EXPECTED_HEADER_LEN = 8 + 4 + _MAC_BYTES_DEFAULT + 4

_STRUCT_ITEM_SIZE = {
    "x": 1, "c": 1, "b": 1, "B": 1, "?": 1,
    "h": 2, "H": 2, "e": 2,
    "i": 4, "I": 4, "l": 4, "L": 4, "f": 4,
    "q": 8, "Q": 8, "d": 8, "n": 8, "N": 8,
}


def _parse_format(fmt: str) -> Optional[List[int]]:
    """Byte size of each item in a struct format string.

    Returns ``None`` for formats this rule does not model (strings,
    padding repeats) -- those are skipped, not flagged.
    """
    if fmt and fmt[0] in "@=<>!":
        fmt = fmt[1:]
    sizes: List[int] = []
    repeat = ""
    for ch in fmt:
        if ch.isdigit():
            repeat += ch
            continue
        if ch.isspace():
            continue
        if ch not in _STRUCT_ITEM_SIZE or ch in ("s", "p"):
            return None
        count = int(repeat) if repeat else 1
        repeat = ""
        sizes.extend([_STRUCT_ITEM_SIZE[ch]] * count)
    return sizes if not repeat else None


def _const_int(node: ast.AST) -> Optional[int]:
    """Evaluate an integer constant expression (+, -, *)."""
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return node.value
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.Add, ast.Sub, ast.Mult)
    ):
        left, right = _const_int(node.left), _const_int(node.right)
        if left is None or right is None:
            return None
        if isinstance(node.op, ast.Add):
            return left + right
        if isinstance(node.op, ast.Sub):
            return left - right
        return left * right
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        value = _const_int(node.operand)
        return -value if value is not None else None
    return None


def _field_name(node: ast.AST) -> Optional[str]:
    """Trailing identifier of a struct argument or unpack target."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _struct_bindings(tree: ast.Module) -> Dict[str, str]:
    """Names bound to ``struct.Struct(<constant format>)`` instances."""
    bindings: Dict[str, str] = {}
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Assign) and isinstance(node.value, ast.Call)):
            continue
        func = node.value.func
        if not (
            isinstance(func, ast.Attribute)
            and func.attr == "Struct"
            and isinstance(func.value, ast.Name)
            and func.value.id == "struct"
            and node.value.args
            and isinstance(node.value.args[0], ast.Constant)
            and isinstance(node.value.args[0].value, str)
        ):
            continue
        for target in node.targets:
            if isinstance(target, ast.Name):
                bindings[target.id] = node.value.args[0].value
    return bindings


def _codec_call(
    node: ast.AST, bindings: Dict[str, str]
) -> Optional[Tuple[str, ast.Call, str, bool]]:
    """``(method, call, format, bound)`` for either codec spelling.

    ``bound`` is False for ``struct.<method>("fmt", ...)`` (the format is
    the first argument) and True for ``<name>.<method>(...)`` where
    ``<name>`` is a known ``struct.Struct`` binding (the format lives on
    the instance, so the argument list starts one slot earlier).
    """
    if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
        return None
    func = node.func
    if not isinstance(func.value, ast.Name):
        return None
    if (
        func.value.id == "struct"
        and node.args
        and isinstance(node.args[0], ast.Constant)
        and isinstance(node.args[0].value, str)
    ):
        return func.attr, node, node.args[0].value, False
    fmt = bindings.get(func.value.id)
    if fmt is not None and func.attr in ("pack", "pack_into", "unpack", "unpack_from"):
        return func.attr, node, fmt, True
    return None


@register
class HeaderLayoutRule(Rule):
    rule_id = "FBS005"
    name = "header-layout"
    severity = Severity.ERROR
    description = (
        "struct pack/unpack widths, FBS_HEADER_LEN, and offset arithmetic "
        "must agree with the declared sfl/confounder/MAC/timestamp layout "
        "(64/32/128/32 bits)"
    )
    rationale = "paper SS3, SS7.2: the 32-byte security flow header"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not self._applies(ctx.tree):
            return
        self._bindings = _struct_bindings(ctx.tree)
        # Build the unpack-call -> target-names map (and offset findings)
        # before the width checks that consume the map.
        offset_findings = list(self._check_offset_arithmetic(ctx))
        yield from self._check_header_len(ctx)
        yield from self._check_struct_widths(ctx)
        yield from offset_findings

    @staticmethod
    def _applies(tree: ast.Module) -> bool:
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef) and node.name == "FBSHeader":
                return True
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name) and target.id == "FBS_HEADER_LEN":
                        return True
        return False

    def _check_header_len(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if not (
                    isinstance(target, ast.Name) and target.id == "FBS_HEADER_LEN"
                ):
                    continue
                value = _const_int(node.value)
                if value is not None and value != _EXPECTED_HEADER_LEN:
                    yield self.finding(
                        ctx,
                        node,
                        f"FBS_HEADER_LEN is {value} but the declared layout "
                        f"(8B sfl + 4B confounder + {_MAC_BYTES_DEFAULT}B MAC "
                        f"+ 4B timestamp) is {_EXPECTED_HEADER_LEN}",
                    )

    def _check_struct_widths(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            hit = _codec_call(node, self._bindings)
            if hit is None:
                continue
            method, call, fmt, bound = hit
            sizes = _parse_format(fmt)
            if sizes is None:
                continue
            if method in ("pack", "pack_into"):
                # Field values follow the format when it is an argument,
                # and the buffer/offset for pack_into.
                skip = (0 if bound else 1) + (2 if method == "pack_into" else 0)
                yield from self._match_fields(
                    ctx, call, fmt, sizes, call.args[skip:]
                )
            elif method in ("unpack", "unpack_from"):
                yield from self._match_unpack_targets(ctx, call, fmt, sizes)

    def _match_fields(
        self,
        ctx: ModuleContext,
        call: ast.Call,
        fmt: str,
        sizes: List[int],
        values: List[ast.AST],
    ) -> Iterator[Finding]:
        if len(values) != len(sizes):
            return
        for size, value in zip(sizes, values):
            name = _field_name(value)
            want = _FIELD_BYTES.get(name or "")
            if want is not None and size != want:
                yield self.finding(
                    ctx,
                    call,
                    f"struct format {fmt!r} gives field '{name}' {size} "
                    f"bytes; the declared layout says {want} "
                    f"({want * 8} bits)",
                )

    def _match_unpack_targets(
        self, ctx: ModuleContext, call: ast.Call, fmt: str, sizes: List[int]
    ) -> Iterator[Finding]:
        # Find the assignment this unpack feeds, to name the fields.
        targets = self._unpack_targets.get(id(call))
        if targets is None or len(targets) != len(sizes):
            return
        for size, name in zip(sizes, targets):
            want = _FIELD_BYTES.get(name or "")
            if want is not None and size != want:
                yield self.finding(
                    ctx,
                    call,
                    f"struct format {fmt!r} reads field '{name}' as {size} "
                    f"bytes; the declared layout says {want} "
                    f"({want * 8} bits)",
                )

    def _check_offset_arithmetic(self, ctx: ModuleContext) -> Iterator[Finding]:
        # Also build the unpack-call -> target-names map used above.
        self._unpack_targets: Dict[int, List[Optional[str]]] = {}
        pending: List[Finding] = []
        for block in walk_statements(ctx.tree.body):
            for i, stmt in enumerate(block):
                if not isinstance(stmt, ast.Assign):
                    continue
                hit = _codec_call(stmt.value, self._bindings)
                if hit is None or hit[0] not in ("unpack", "unpack_from"):
                    continue
                _method, call, fmt, _bound = hit
                target = stmt.targets[0]
                if isinstance(target, ast.Tuple):
                    self._unpack_targets[id(call)] = [
                        _field_name(elt) for elt in target.elts
                    ]
                elif isinstance(target, ast.Name):
                    self._unpack_targets[id(call)] = [target.id]
                sizes = _parse_format(fmt)
                if sizes is None:
                    continue
                # offset += N directly after the unpack must match calcsize.
                if i + 1 < len(block):
                    nxt = block[i + 1]
                    if (
                        isinstance(nxt, ast.AugAssign)
                        and isinstance(nxt.op, ast.Add)
                        and isinstance(nxt.target, ast.Name)
                        and nxt.target.id == "offset"
                    ):
                        bump = _const_int(nxt.value)
                        if bump is not None and bump != sum(sizes):
                            pending.append(
                                self.finding(
                                    ctx,
                                    nxt,
                                    f"offset advances by {bump} after "
                                    f"unpacking {fmt!r} "
                                    f"({sum(sizes)} bytes) -- the cursor "
                                    "and the format disagree",
                                )
                            )
        yield from pending
