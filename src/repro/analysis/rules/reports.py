"""FBS011: deterministic report serialization.

The resilience and load layers promise byte-identical reports for
identical inputs (their CI smokes run twice and ``cmp`` the outputs).
Two constructs quietly break that promise: iterating an unordered
``set``/``frozenset`` into report output, and ``json.dump``/``dumps``
without ``sort_keys=True``.  The whole-program set-provenance pass in
:mod:`repro.analysis.dataflow` tracks set-typed values through calls,
returns, and attribute stores, and flags -- inside the report-producing
packages (``repro.resilience``, ``repro.load``, ``repro.obs``,
``repro.analysis``) -- any ``for``/comprehension/``list()``/``join``
over one that is not wrapped in ``sorted(...)``, plus any unsorted
``json.dump``.

The findings are produced by the interprocedural pass; this class
exists so the rule has an id, a severity, a ``--list-rules`` row, and a
DESIGN.md table entry like every other rule.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.base import Rule, register
from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding, Severity

__all__ = ["ReportDeterminismRule"]


@register
class ReportDeterminismRule(Rule):
    rule_id = "FBS011"
    name = "deterministic-reports"
    severity = Severity.WARNING
    description = (
        "report modules must not iterate unordered sets into output or call "
        "json.dump without sort_keys=True; reports are byte-identical"
    )
    rationale = (
        "DESIGN.md sections 9-10: resilience and load reports are replayed "
        "and diffed byte-for-byte; iteration order is part of the contract"
    )

    #: Findings come from the whole-program set-provenance pass.
    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        return iter(())
