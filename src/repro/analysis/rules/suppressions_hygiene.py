"""FBS012: unused suppression comments.

A ``# fbslint: disable=FBSxxx`` directive that suppresses nothing is a
trap: the violation it once excused is gone (or never existed), but the
comment keeps a hole open for a future regression to slip through
silently.  After filtering, the engine reports every directive that
absorbed no finding in the run.  ``--no-unused-suppressions`` opts out,
and the check is skipped automatically when ``--select``/``--ignore``
narrowed the rule set (a directive for an unselected rule is not
evidence of rot).

The findings are produced by the engine's filtering step (it is the
only place that knows which directives matched); this class exists so
the diagnostic has an id, a severity, a ``--list-rules`` row, and a
DESIGN.md table entry like every other rule.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.base import Rule, register
from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding, Severity

__all__ = ["UnusedSuppressionRule"]


@register
class UnusedSuppressionRule(Rule):
    rule_id = "FBS012"
    name = "unused-suppression"
    severity = Severity.WARNING
    description = (
        "a '# fbslint: disable' comment that suppresses no finding is "
        "reported so the suppression set cannot rot"
    )
    rationale = (
        "stale suppressions hide future regressions; the directive must "
        "die with the violation it excused"
    )

    #: Findings come from the engine's suppression-filtering step.
    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        return iter(())
