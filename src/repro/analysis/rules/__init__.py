"""Built-in fbslint rules.

Importing this package registers every rule with
:mod:`repro.analysis.base`.  Each module groups the rules guarding one
discipline:

* :mod:`~repro.analysis.rules.taint` -- FBS001 secret-flow taint;
* :mod:`~repro.analysis.rules.determinism` -- FBS002 wall clock,
  FBS003 seeded randomness;
* :mod:`~repro.analysis.rules.robustness` -- FBS004 assert-as-guard,
  FBS007 exception taxonomy;
* :mod:`~repro.analysis.rules.layout` -- FBS005 header layout;
* :mod:`~repro.analysis.rules.metrics_discipline` -- FBS006
  metrics-before-raise;
* :mod:`~repro.analysis.rules.containment` -- FBS009 multiprocessing
  stays inside ``repro.load``.
"""

from repro.analysis.rules import (  # noqa: F401  (imports register rules)
    containment,
    determinism,
    layout,
    metrics_discipline,
    robustness,
    taint,
)
