"""Built-in fbslint rules.

Importing this package registers every rule with
:mod:`repro.analysis.base`.  Each module groups the rules guarding one
discipline:

* :mod:`~repro.analysis.rules.taint` -- FBS001 secret-flow taint;
* :mod:`~repro.analysis.rules.determinism` -- FBS002 wall clock,
  FBS003 seeded randomness;
* :mod:`~repro.analysis.rules.robustness` -- FBS004 assert-as-guard,
  FBS007 exception taxonomy;
* :mod:`~repro.analysis.rules.layout` -- FBS005 header layout;
* :mod:`~repro.analysis.rules.metrics_discipline` -- FBS006
  metrics-before-raise;
* :mod:`~repro.analysis.rules.containment` -- FBS009 multiprocessing
  stays inside ``repro.load``;
* :mod:`~repro.analysis.rules.async_readiness` -- FBS010 no blocking
  calls in ``async def``;
* :mod:`~repro.analysis.rules.reports` -- FBS011 deterministic report
  serialization;
* :mod:`~repro.analysis.rules.suppressions_hygiene` -- FBS012 unused
  suppression comments.

FBS010-FBS012 are *project rules*: their ``check`` methods are empty
and their findings come from the whole-program passes in
:mod:`repro.analysis.dataflow` (or, for FBS012, from the engine's
suppression-filtering step).  FBS001/FBS002/FBS003/FBS006/FBS007 run
both ways -- the local checks here plus interprocedural versions in the
dataflow passes.
"""

from repro.analysis.rules import (  # noqa: F401  (imports register rules)
    async_readiness,
    containment,
    determinism,
    layout,
    metrics_discipline,
    reports,
    robustness,
    suppressions_hygiene,
    taint,
)
