"""FBS002/FBS003: the simulation must be deterministic.

Every experiment in EXPERIMENTS.md is reproducible because the netsim
advances a simulated clock and every RNG is explicitly seeded.  Two
rules guard that:

* **FBS002** -- ``time.time``/``time.monotonic``/argless
  ``datetime.now`` (and friends) are banned outside ``repro.bench`` and
  ``repro.transport.udp`` (the real-socket substrate: its ``now()`` is
  the clock the rest of the stack injects, keeping real time
  quarantined behind the transport boundary); protocol and simulation
  code takes the simulated clock (``sim.now`` / the ``now`` callable)
  instead.
* **FBS003** -- no module-global ``random.*`` calls and no unseeded
  ``Random()`` / ``SystemRandom`` anywhere in ``src/repro``; every
  generator is constructed with an explicit seed (see
  ``repro.crypto.random``: "Every generator is explicitly seeded; none
  touches global state").
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Set

from repro.analysis.base import Rule, register
from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding, Severity

__all__ = ["WallClockRule", "UnseededRandomRule"]

_BANNED_TIME_ATTRS = {
    "time",
    "time_ns",
    "monotonic",
    "monotonic_ns",
    "perf_counter",
    "perf_counter_ns",
    "process_time",
    "process_time_ns",
    "clock",
}
_BANNED_DATETIME_ATTRS = {"now", "today", "utcnow"}

#: Module-level functions of :mod:`random` that use the shared global
#: (implicitly OS-seeded) generator.
_GLOBAL_RANDOM_FUNCS = {
    "random",
    "randint",
    "randrange",
    "randbytes",
    "choice",
    "choices",
    "shuffle",
    "sample",
    "uniform",
    "getrandbits",
    "gauss",
    "normalvariate",
    "lognormvariate",
    "expovariate",
    "betavariate",
    "gammavariate",
    "paretovariate",
    "weibullvariate",
    "vonmisesvariate",
    "triangular",
    "seed",
}

#: ``numpy.random`` module-level sampling functions: they draw from the
#: process-global (implicitly seeded) legacy ``RandomState``, exactly
#: the nondeterminism FBS003 bans for the stdlib generator.
_NUMPY_GLOBAL_FUNCS = {
    "beta",
    "binomial",
    "bytes",
    "choice",
    "exponential",
    "gamma",
    "normal",
    "permutation",
    "poisson",
    "rand",
    "randint",
    "randn",
    "random",
    "random_sample",
    "ranf",
    "sample",
    "seed",
    "shuffle",
    "standard_normal",
    "uniform",
}

#: ``numpy.random`` constructors that are nondeterministic when called
#: without a seed argument.
_NUMPY_CONSTRUCTORS = {"default_rng", "RandomState"}


def _import_aliases(tree: ast.Module) -> Dict[str, Set[str]]:
    """Map module name -> local aliases, plus from-imported names.

    Returns ``{"time": {"time", "t"}, "from:time": {"monotonic"}, ...}``.
    """
    aliases: Dict[str, Set[str]] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                root = item.name.split(".")[0]
                aliases.setdefault(root, set()).add(
                    (item.asname or item.name).split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module:
            root = node.module.split(".")[0]
            pool = aliases.setdefault(f"from:{root}", set())
            for item in node.names:
                pool.add(item.asname or item.name)
    return aliases


@register
class WallClockRule(Rule):
    rule_id = "FBS002"
    name = "no-wall-clock"
    severity = Severity.WARNING
    description = (
        "time.time/time.monotonic/argless datetime.now are banned outside "
        "repro.bench and repro.transport.udp (the real-socket substrate, "
        "whose now() is the clock everything else injects); use the "
        "simulated clock (sim.now / the now callable)"
    )
    rationale = "EXPERIMENTS.md reproducibility; netsim is a virtual-time simulator"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.is_clock_sanctioned or ctx.is_test_code:
            return
        aliases = _import_aliases(ctx.tree)
        time_aliases = aliases.get("time", set())
        datetime_aliases = aliases.get("datetime", set())
        from_time = aliases.get("from:time", set())
        from_datetime = aliases.get("from:datetime", set())
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute):
                base = func.value
                # time.time(), t.monotonic(), ...
                if (
                    isinstance(base, ast.Name)
                    and base.id in time_aliases
                    and func.attr in _BANNED_TIME_ATTRS
                ):
                    yield self._clock_finding(ctx, node, f"time.{func.attr}()")
                # datetime.datetime.now() / datetime.now() / date.today(),
                # flagged only when argless (an aware now(tz) is still a
                # wall-clock read, but the issue bans the argless form).
                elif func.attr in _BANNED_DATETIME_ATTRS and not (
                    node.args or node.keywords
                ):
                    root = base
                    while isinstance(root, ast.Attribute):
                        root = root.value
                    if isinstance(root, ast.Name) and (
                        root.id in datetime_aliases or root.id in from_datetime
                    ):
                        yield self._clock_finding(
                            ctx, node, f"datetime {func.attr}()"
                        )
            elif isinstance(func, ast.Name):
                if func.id in from_time and func.id in _BANNED_TIME_ATTRS:
                    yield self._clock_finding(ctx, node, f"time.{func.id}()")

    def _clock_finding(self, ctx: ModuleContext, node: ast.AST, what: str) -> Finding:
        return self.finding(
            ctx,
            node,
            f"{what} reads the wall clock; outside repro.bench use the "
            "simulated clock (sim.now / the injected now callable)",
        )


@register
class UnseededRandomRule(Rule):
    rule_id = "FBS003"
    name = "seeded-randomness"
    severity = Severity.WARNING
    description = (
        "no global random.* / numpy.random.* calls and no unseeded "
        "Random()/SystemRandom/default_rng() in src/repro -- construct "
        "seeded generators explicitly"
    )
    rationale = "repro.crypto.random: every generator is explicitly seeded"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.is_test_code:
            return
        aliases = _import_aliases(ctx.tree)
        random_aliases = aliases.get("random", set())
        from_random = aliases.get("from:random", set())
        numpy_aliases = aliases.get("numpy", set())
        from_numpy = aliases.get("from:numpy", set())
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute) and isinstance(
                func.value, ast.Attribute
            ):
                # np.random.<fn>(): the chained module attribute form.
                base = func.value
                if (
                    base.attr == "random"
                    and isinstance(base.value, ast.Name)
                    and base.value.id in numpy_aliases
                ):
                    yield from self._check_numpy(ctx, node, func.attr)
            elif isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
                if func.value.id not in random_aliases:
                    continue
                if func.attr in _GLOBAL_RANDOM_FUNCS:
                    yield self.finding(
                        ctx,
                        node,
                        f"random.{func.attr}() uses the process-global, "
                        "implicitly seeded generator; construct "
                        "random.Random(seed) instead",
                    )
                elif func.attr == "Random" and not (node.args or node.keywords):
                    yield self.finding(
                        ctx,
                        node,
                        "Random() without a seed is nondeterministic; pass an "
                        "explicit seed",
                    )
                elif func.attr == "SystemRandom":
                    yield self.finding(
                        ctx,
                        node,
                        "SystemRandom draws OS entropy and cannot be seeded; "
                        "simulation code must stay reproducible",
                    )
            elif isinstance(func, ast.Name) and func.id in from_numpy:
                # from numpy.random import default_rng / RandomState.
                if func.id in _NUMPY_CONSTRUCTORS:
                    yield from self._check_numpy(ctx, node, func.id)
            elif isinstance(func, ast.Name) and func.id in from_random:
                if func.id == "Random" and not (node.args or node.keywords):
                    yield self.finding(
                        ctx,
                        node,
                        "Random() without a seed is nondeterministic; pass an "
                        "explicit seed",
                    )
                elif func.id == "SystemRandom":
                    yield self.finding(
                        ctx,
                        node,
                        "SystemRandom draws OS entropy and cannot be seeded; "
                        "simulation code must stay reproducible",
                    )
                elif func.id in _GLOBAL_RANDOM_FUNCS:
                    yield self.finding(
                        ctx,
                        node,
                        f"{func.id}() (from random import ...) uses the "
                        "process-global generator; construct "
                        "random.Random(seed) instead",
                    )

    def _check_numpy(
        self, ctx: ModuleContext, node: ast.Call, attr: str
    ) -> Iterator[Finding]:
        if attr in _NUMPY_GLOBAL_FUNCS:
            yield self.finding(
                ctx,
                node,
                f"numpy.random.{attr}() draws from the process-global legacy "
                "generator; construct numpy.random.default_rng(seed) instead",
            )
        elif attr in _NUMPY_CONSTRUCTORS and not (node.args or node.keywords):
            yield self.finding(
                ctx,
                node,
                f"numpy.random.{attr}() without a seed is nondeterministic; "
                "pass an explicit seed",
            )
