"""FBS009: multiprocessing stays inside ``repro.load``.

FBS soft state -- flow tables, key caches, replay-guard memory, open
trace sinks -- is not fork-safe: a forked child inheriting live state
would share RNG positions and file descriptors with its parent, and two
processes mutating copies of "the same" cache silently fork the
experiment's reality.  The scale-out load engine is the one place that
is allowed to cross process boundaries, and it does so under the
*spawn* start method with workers that rebuild their world from a
picklable spec (see ``repro.load.worker``).

The rule flags, outside ``repro.load`` (and test code):

* any ``import multiprocessing`` / ``from multiprocessing import ...``
  (including submodules);
* ``os.fork()`` / ``os.forkpty()`` calls;
* ``concurrent.futures.ProcessPoolExecutor`` -- a fork/spawn pool by
  another name.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.base import Rule, dotted_name, register
from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding, Severity

__all__ = ["MultiprocessingContainmentRule"]


@register
class MultiprocessingContainmentRule(Rule):
    rule_id = "FBS009"
    name = "multiprocessing-containment"
    severity = Severity.WARNING
    description = (
        "multiprocessing/os.fork/ProcessPoolExecutor are banned outside "
        "repro.load; soft state and trace sinks are not fork-safe"
    )
    rationale = (
        "DESIGN.md section 10: workers share nothing and rebuild their "
        "world from a picklable spec under the spawn start method"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.in_package("load") or ctx.is_test_code:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for item in node.names:
                    if item.name.split(".")[0] == "multiprocessing":
                        yield self.finding(
                            ctx,
                            node,
                            f"import of {item.name!r}: process fan-out "
                            "belongs in repro.load (FBS soft state is "
                            "not fork-safe)",
                        )
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                if module.split(".")[0] == "multiprocessing":
                    yield self.finding(
                        ctx,
                        node,
                        f"import from {module!r}: process fan-out belongs "
                        "in repro.load (FBS soft state is not fork-safe)",
                    )
                elif module.startswith("concurrent.futures"):
                    for item in node.names:
                        if item.name == "ProcessPoolExecutor":
                            yield self.finding(
                                ctx,
                                node,
                                "ProcessPoolExecutor is a process pool; "
                                "process fan-out belongs in repro.load",
                            )
            elif isinstance(node, ast.Call):
                target = dotted_name(node.func)
                if target in ("os.fork", "os.forkpty"):
                    yield self.finding(
                        ctx,
                        node,
                        f"{target}() forks live FBS state; process "
                        "fan-out belongs in repro.load",
                    )
                elif target.endswith("ProcessPoolExecutor"):
                    yield self.finding(
                        ctx,
                        node,
                        "ProcessPoolExecutor is a process pool; process "
                        "fan-out belongs in repro.load",
                    )
