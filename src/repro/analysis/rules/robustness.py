"""FBS004/FBS007: failures must be loud and typed.

* **FBS004** -- ``assert`` compiles away under ``python -O``, so a
  guard written as an assert silently stops guarding in optimized
  deployments.  Library code in ``src/repro`` must raise explicit,
  typed errors; test code keeps its asserts.
* **FBS007** -- the exception taxonomy: public FBS protocol entry
  points raise :class:`repro.core.errors.FBSError` subclasses only, so
  callers can write one ``except FBSError`` and mean it; and nowhere in
  the tree may a bare ``except:`` or an ``except Exception: pass``
  swallow a failure.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set, Tuple

from repro.analysis.base import Rule, register
from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding, Severity

__all__ = ["NoAssertRule", "ExceptionTaxonomyRule"]

#: Modules whose public functions form the FBS protocol API surface.
_PUBLIC_PROTOCOL_MODULES: Set[Tuple[str, ...]] = {
    ("repro", "core", "protocol"),
}

#: The known FBS exception taxonomy (repro.core.errors) -- the only
#: things a public protocol entry point may raise.
_TAXONOMY = {
    "FBSError",
    "ReceiveError",
    "StaleTimestampError",
    "MacMismatchError",
    "HeaderFormatError",
    "UnknownPrincipalError",
    "ScenarioError",
}

_BUILTIN_EXCEPTIONS = {
    "Exception",
    "BaseException",
    "RuntimeError",
    "ValueError",
    "TypeError",
    "KeyError",
    "IndexError",
    "AttributeError",
    "OSError",
    "IOError",
    "ArithmeticError",
    "ZeroDivisionError",
    "StopIteration",
    "AssertionError",
    "NotImplementedError",
}


def _raised_name(node: ast.Raise) -> Optional[str]:
    """The exception class name of ``raise X(...)`` / ``raise X``."""
    exc = node.exc
    if isinstance(exc, ast.Call):
        exc = exc.func
    if isinstance(exc, ast.Attribute):
        return exc.attr
    if isinstance(exc, ast.Name):
        return exc.id
    return None


@register
class NoAssertRule(Rule):
    rule_id = "FBS004"
    name = "no-assert-in-library"
    severity = Severity.ERROR
    description = (
        "assert statements vanish under python -O; library guards must be "
        "explicit raise statements with typed errors"
    )
    rationale = "guards in src/repro must survive optimized runs (tests excluded)"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.is_test_code:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assert):
                yield self.finding(
                    ctx,
                    node,
                    "assert used as a guard in library code; it disappears "
                    "under python -O -- raise a typed error instead",
                )


@register
class ExceptionTaxonomyRule(Rule):
    rule_id = "FBS007"
    name = "exception-taxonomy"
    severity = Severity.WARNING
    description = (
        "no bare except / except-Exception-pass anywhere; public protocol "
        "entry points raise FBSError subclasses only"
    )
    rationale = "callers rely on 'except FBSError' catching every protocol failure"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler):
                yield from self._check_handler(ctx, node)
        if ctx.module_parts in _PUBLIC_PROTOCOL_MODULES:
            yield from self._check_public_raises(ctx)

    def _check_handler(
        self, ctx: ModuleContext, node: ast.ExceptHandler
    ) -> Iterator[Finding]:
        if node.type is None:
            yield self.finding(
                ctx,
                node,
                "bare 'except:' catches SystemExit/KeyboardInterrupt too; "
                "name the exception (an FBSError subclass where applicable)",
            )
            return
        broad = (
            isinstance(node.type, ast.Name)
            and node.type.id in ("Exception", "BaseException")
        )
        swallows = all(isinstance(stmt, ast.Pass) for stmt in node.body)
        if broad and swallows:
            yield self.finding(
                ctx,
                node,
                f"'except {node.type.id}: pass' silently swallows every "
                "failure; narrow the type or handle the error",
            )

    def _check_public_raises(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ) or node.name.startswith("_"):
                continue
            for inner in ast.walk(node):
                if not isinstance(inner, ast.Raise):
                    continue
                name = _raised_name(inner)
                if name is None or name in _TAXONOMY:
                    continue
                if name in _BUILTIN_EXCEPTIONS:
                    yield self.finding(
                        ctx,
                        inner,
                        f"public protocol entry point '{node.name}' raises "
                        f"{name}; the protocol API raises FBSError "
                        "subclasses only (repro.core.errors)",
                    )
