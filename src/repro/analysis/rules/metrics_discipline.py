"""FBS006: every receive-path rejection bumps a metrics counter first.

The ROADMAP's production north star needs observable drop reasons: a
datagram rejected without a counter increment is invisible at scale.
The convention in ``core/protocol.py`` is::

    self.metrics.stale_timestamps += 1
    raise StaleTimestampError(...)

This rule enforces it mechanically in ``repro.core.protocol`` and
``repro.baselines``: a ``raise`` of a :class:`ReceiveError` subclass
(or a bare ``raise`` inside an ``except ReceiveError-subclass`` block)
must be immediately preceded -- as its previous sibling statement, or
the statement just before its enclosing block -- by either an augmented
``+=`` on an attribute path containing ``metrics``, or a call whose
name contains ``reject`` (the registry-era form: the engine's
``self._rejected(reason, ...)`` helper bumps the labeled counter and
emits the ``DatagramRejected`` event in one place).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

from repro.analysis.base import Rule, dotted_name, register
from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding, Severity

__all__ = ["MetricsBeforeRaiseRule", "NoDirectMetricsBumpRule"]

_RECEIVE_ERRORS = {
    "ReceiveError",
    "StaleTimestampError",
    "MacMismatchError",
    "HeaderFormatError",
}


def _raised_name(node: ast.Raise) -> Optional[str]:
    exc = node.exc
    if isinstance(exc, ast.Call):
        exc = exc.func
    if isinstance(exc, ast.Attribute):
        return exc.attr
    if isinstance(exc, ast.Name):
        return exc.id
    return None


def _handler_names(handler: ast.ExceptHandler) -> Set[str]:
    """Exception class names caught by one handler."""
    node = handler.type
    names: Set[str] = set()
    if node is None:
        return names
    items = node.elts if isinstance(node, ast.Tuple) else [node]
    for item in items:
        if isinstance(item, ast.Attribute):
            names.add(item.attr)
        elif isinstance(item, ast.Name):
            names.add(item.id)
    return names


def _is_metrics_bump(stmt: Optional[ast.stmt]) -> bool:
    if (
        isinstance(stmt, ast.AugAssign)
        and isinstance(stmt.op, ast.Add)
        and "metrics" in dotted_name(stmt.target).split(".")
    ):
        return True
    # Registry-era form: a rejection-bookkeeping call, e.g.
    # ``self._rejected("mac", header.sfl)``.
    if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
        segments = dotted_name(stmt.value.func).split(".")
        return bool(segments) and "reject" in segments[-1]
    return False


@register
class MetricsBeforeRaiseRule(Rule):
    rule_id = "FBS006"
    name = "metrics-before-raise"
    severity = Severity.WARNING
    description = (
        "every raise of a ReceiveError subclass in core/protocol.py and "
        "baselines/*.py must be preceded by a metrics counter increment"
    )
    rationale = "rejected datagrams must be countable (ROADMAP observability)"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        # The codec layers (header.py, timestamps.py) raise and let the
        # protocol engine count; the discipline binds the engine itself
        # and the baseline receive paths.
        if not (ctx.is_module("core", "protocol") or ctx.in_package("baselines")):
            return
        yield from self._block(ctx, ctx.tree.body, set(), preceding=None)

    def _block(
        self,
        ctx: ModuleContext,
        stmts: List[ast.stmt],
        caught: Set[str],
        preceding: Optional[ast.stmt],
    ) -> Iterator[Finding]:
        for i, stmt in enumerate(stmts):
            prev = stmts[i - 1] if i > 0 else preceding
            if isinstance(stmt, ast.Raise):
                name = _raised_name(stmt)
                is_receive = name in _RECEIVE_ERRORS or (
                    name is None and caught & _RECEIVE_ERRORS
                )
                if is_receive and not _is_metrics_bump(prev):
                    label = name or "re-raise"
                    yield self.finding(
                        ctx,
                        stmt,
                        f"{label} raised without a preceding metrics counter "
                        "increment -- bump the drop counter first so the "
                        "rejection is observable",
                    )
                continue
            # Recurse; a raise opening a nested block may rely on the
            # statement just before that block (bump-then-if patterns).
            for attr in ("body", "orelse", "finalbody"):
                inner = getattr(stmt, attr, None)
                if inner:
                    yield from self._block(ctx, inner, caught, preceding=prev)
            for handler in getattr(stmt, "handlers", []) or []:
                yield from self._block(
                    ctx,
                    handler.body,
                    caught | _handler_names(handler),
                    preceding=prev,
                )


@register
class NoDirectMetricsBumpRule(Rule):
    """FBS008: the engine counts through the registry, not the facade.

    ``FBSMetrics`` is now a property facade over the endpoint's
    :class:`~repro.obs.registry.MetricsRegistry`; the instrumented
    modules (protocol, caches, FAM, replay guard, keying) must update
    bound registry instruments (``self._c_sent.inc()``) rather than
    write through the facade (``self.metrics.datagrams_sent += 1``).
    A facade write from the datapath bypasses the labeled canonical
    counters' invariants -- rejection reasons stop being mutually
    exclusive the moment two paths bump the same legacy field.
    Tests and examples may still write facade fields freely; the rule
    binds only the instrumented core modules.
    """

    rule_id = "FBS008"
    name = "no-direct-metrics-bump"
    severity = Severity.WARNING
    description = (
        "instrumented core modules must not write FBSMetrics fields "
        "directly -- update bound registry instruments instead"
    )
    rationale = (
        "facade writes bypass the canonical labeled counters "
        "(ISSUE 3 observability contract)"
    )

    _SCOPED = (
        ("core", "protocol"),
        ("core", "caches"),
        ("core", "fam"),
        ("core", "replay_guard"),
        ("core", "keying"),
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not any(ctx.is_module(*parts) for parts in self._SCOPED):
            return
        for node in ast.walk(ctx.tree):
            target: Optional[ast.expr] = None
            if isinstance(node, ast.AugAssign):
                target = node.target
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
            if target is None:
                continue
            segments = dotted_name(target).split(".")
            # Writing *through* the facade (``...metrics.<field>``) is
            # the violation; assigning the facade itself
            # (``self.metrics = FBSMetrics(...)``) is construction.
            if "metrics" in segments[:-1]:
                yield self.finding(
                    ctx,
                    node,
                    f"direct write to {dotted_name(target)} -- bump a bound "
                    "registry counter instead (FBSMetrics is a read facade "
                    "for the datapath)",
                )
