"""FBS001: key material must never leak through debug/compare sinks.

The FBS security argument (paper Sections 5.2, 6.1) rests on flow and
master keys staying secret.  This rule runs a light intra-module taint
analysis: any value produced by a key-derivation call (``flow_key``,
``master_key``, ``encryption_key``, ``mac_key``, ``agree``, ...) is
tainted, taint propagates through assignment/slicing/concatenation, and
a tainted value reaching ``print``/``repr``/a logging call/an f-string
is a leak.  A tainted value in an ``==``/``!=`` comparison is a timing
channel: digest and key compares must go through
:func:`repro.crypto.mac.constant_time_equal`.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from repro.analysis.base import Rule, call_name, register
from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding, Severity

__all__ = ["SecretFlowRule"]

#: A call whose target name contains one of these is a taint source.
_SOURCE_FRAGMENTS = (
    "flow_key",
    "master_key",
    "mac_key",
    "encryption_key",
    "session_key",
    "interval_key",
    "derive_key",
)
#: Exact call names that are also taint sources (DH agreement).
_SOURCE_NAMES = {"agree"}

_LOG_METHODS = {"debug", "info", "warning", "error", "exception", "critical", "log"}

#: Array constructors/combinators that return (a view of) their array
#: arguments: key bytes fed to these stay key material
#: (``repro.crypto.vector`` moves MAC keys through ndarrays).
_NDARRAY_FUNCS = {
    "array",
    "asarray",
    "ascontiguousarray",
    "concatenate",
    "frombuffer",
    "stack",
}
#: ndarray methods that re-expose the receiver's bytes under a new
#: shape/dtype/container -- taint follows the receiver through them.
_NDARRAY_METHODS = {
    "astype",
    "copy",
    "flatten",
    "ravel",
    "reshape",
    "tobytes",
    "transpose",
    "view",
}


def _is_source_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    name = call_name(node)
    return name in _SOURCE_NAMES or any(f in name for f in _SOURCE_FRAGMENTS)


class _Taint:
    """Module-wide tainted-name tracking (a lint heuristic, not a proof)."""

    def __init__(self, tree: ast.Module) -> None:
        self.names: Set[str] = set()
        # Two propagation passes reach a fixpoint for the chains that
        # occur in practice (a = derive(); b = a[:8]; c = b + iv).
        for _ in range(2):
            for node in ast.walk(tree):
                if isinstance(node, ast.Assign) and self.expr(node.value):
                    for target in node.targets:
                        self._taint_target(target)
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    if self.expr(node.value):
                        self._taint_target(node.target)

    def _taint_target(self, target: ast.AST) -> None:
        if isinstance(target, ast.Name):
            self.names.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._taint_target(elt)

    def expr(self, node: ast.AST) -> bool:
        """Is this expression (transitively) key material?"""
        if _is_source_call(node):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.names
        if isinstance(node, ast.Subscript):
            return self.expr(node.value)
        if isinstance(node, ast.BinOp):
            return self.expr(node.left) or self.expr(node.right)
        if isinstance(node, (ast.Tuple, ast.List)):
            return any(self.expr(elt) for elt in node.elts)
        if isinstance(node, ast.Starred):
            return self.expr(node.value)
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            func = node.func
            # np.frombuffer(key) and friends: the array is the key.
            if func.attr in _NDARRAY_FUNCS and any(
                self.expr(arg) for arg in node.args
            ):
                return True
            # tainted.astype(...).tobytes() etc.: taint follows the
            # receiver through reshaping/re-encoding methods.
            if func.attr in _NDARRAY_METHODS and self.expr(func.value):
                return True
        return False

    def describe(self, node: ast.AST) -> str:
        """Human-readable handle on the tainted expression."""
        if isinstance(node, ast.Name):
            return repr(node.id)
        if isinstance(node, ast.Call):
            return f"{call_name(node)}() result"
        if isinstance(node, ast.Subscript):
            return self.describe(node.value)
        if isinstance(node, ast.BinOp):
            for side in (node.left, node.right):
                if self.expr(side):
                    return self.describe(side)
        return "key material"


@register
class SecretFlowRule(Rule):
    rule_id = "FBS001"
    name = "secret-flow-taint"
    severity = Severity.ERROR
    description = (
        "key-derivation results must not reach print/repr/logging/f-strings "
        "(taint follows ndarray views/copies), and must be compared via "
        "constant_time_equal, never ==/!="
    )
    rationale = "paper SS5.2/SS6.1 (key secrecy); DESIGN.md 'Enforced invariants'"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        taint = _Taint(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                sink = self._call_sink(node)
                if sink is not None:
                    bad = self._tainted_arg(node, taint)
                    if bad is not None:
                        yield self.finding(
                            ctx,
                            node,
                            f"key material ({taint.describe(bad)}) passed to "
                            f"{sink} -- secrets must never be rendered",
                        )
            elif isinstance(node, ast.Compare):
                yield from self._check_compare(ctx, node, taint)
            elif isinstance(node, ast.FormattedValue):
                if taint.expr(node.value):
                    yield self.finding(
                        ctx,
                        node,
                        f"key material ({taint.describe(node.value)}) "
                        "interpolated into an f-string",
                    )

    @staticmethod
    def _call_sink(node: ast.Call) -> Optional[str]:
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("print", "repr", "str", "format"):
            return f"{func.id}()"
        if isinstance(func, ast.Attribute) and func.attr in _LOG_METHODS:
            return f"logging call .{func.attr}()"
        return None

    @staticmethod
    def _tainted_arg(node: ast.Call, taint: _Taint) -> Optional[ast.AST]:
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            if taint.expr(arg):
                return arg
            # print(f"... {key} ...") leaks through the f-string arg.
            if isinstance(arg, ast.JoinedStr):
                for part in arg.values:
                    if isinstance(part, ast.FormattedValue) and taint.expr(
                        part.value
                    ):
                        return part.value
        return None

    def _check_compare(
        self, ctx: ModuleContext, node: ast.Compare, taint: _Taint
    ) -> Iterator[Finding]:
        operands = [node.left] + list(node.comparators)
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            for side in (left, right):
                if taint.expr(side):
                    yield self.finding(
                        ctx,
                        node,
                        f"key material ({taint.describe(side)}) compared with "
                        "==/!= -- use repro.crypto.mac.constant_time_equal",
                    )
                    break
