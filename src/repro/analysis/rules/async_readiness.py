"""FBS010: no blocking calls inside ``async def``.

The ROADMAP's datagram gateway will put the FBS receive path behind an
asyncio event loop.  A single blocking call -- ``time.sleep``, a sync
socket operation, ``subprocess``, blocking file I/O -- stalls *every*
flow multiplexed on that loop, which in netsim terms turns one slow
endpoint into whole-trace head-of-line blocking.  The rule bans the
blocking primitives inside ``async def`` bodies, and (via the
whole-program blocking-propagation pass in
:mod:`repro.analysis.dataflow`) calls from async functions to sync
helpers that transitively reach one.

The findings are produced by the interprocedural pass; this class
exists so the rule has an id, a severity, a ``--list-rules`` row, and a
DESIGN.md table entry like every other rule.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.base import Rule, register
from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding, Severity

__all__ = ["AsyncBlockingRule"]


@register
class AsyncBlockingRule(Rule):
    rule_id = "FBS010"
    name = "no-blocking-in-async"
    severity = Severity.WARNING
    description = (
        "async def bodies must not reach blocking calls (time.sleep, sync "
        "sockets, subprocess, blocking file I/O), even through sync helpers"
    )
    rationale = (
        "ROADMAP item 3: the asyncio gateway multiplexes every flow on one "
        "event loop; a blocked loop is head-of-line blocking for the whole "
        "trace"
    )

    #: Findings come from the whole-program blocking pass.
    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        return iter(())
