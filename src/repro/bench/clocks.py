"""Real-clock access for benchmarks.

FBS002 bans wall-clock reads outside ``repro.bench``: protocol and
simulation code must take the simulated clock so every experiment is
reproducible.  Benchmarks, by definition, measure the real machine, so
this module is the one sanctioned place that touches :mod:`time`.

The scale-out load engine (:mod:`repro.load`) imports these helpers
*lazily and only in timing mode*: its canonical, byte-stable reports
are built purely from simulated time, and only the scaling bench
(``benchmarks/bench_load.py``) turns timing on.
"""

from __future__ import annotations

import time

__all__ = ["process_cpu_seconds", "wall_seconds"]


def process_cpu_seconds() -> float:
    """CPU seconds consumed by this process (user + system).

    The scaling bench's primary measure: per-shard CPU cost is
    hardware-independent (a 1-core CI runner time-slicing 4 workers
    reports the same per-worker CPU cost as a 4-core box running them
    concurrently), which is what makes the 1->N scaling curve a gateable
    number.
    """
    return time.process_time()


def wall_seconds() -> float:
    """A monotonic wall-clock reading (recorded for transparency only)."""
    return time.perf_counter()
