"""ttcp/rcp-style throughput measurement (Figure 8).

The paper: "We measure throughput using both ttcp and regular rcp" on
"Pentium 133s ... on a dedicated 10M Ethernet segment", comparing

* **GENERIC** -- regular 4.4BSD IP (~7,700 kb/s),
* **FBS NOP** -- FBS with nullified encryption and MAC, and
* **FBS DES+MD5** -- full data confidentiality (~3,400 kb/s).

``measure_udp_throughput`` is the ttcp analogue (UDP blast, goodput at
the receiver); ``measure_tcp_throughput`` is the rcp analogue (TCP bulk
copy).  Both run on the calibrated Pentium-133 cost model; see
:mod:`repro.netsim.costmodel` for the calibration anchors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.core.config import AlgorithmSuite, FBSConfig, MacAlgorithm
from repro.core.deploy import FBSDomain
from repro.netsim.costmodel import PENTIUM_133, CostModel
from repro.netsim.host import Host
from repro.netsim.network import Network
from repro.netsim.sockets import TcpClient, TcpServer, UdpSocket

__all__ = [
    "ThroughputResult",
    "setup_security",
    "measure_udp_throughput",
    "measure_tcp_throughput",
    "FIGURE8_CONFIGS",
]


@dataclass
class ThroughputResult:
    """One measurement: configuration and goodput."""

    configuration: str
    kind: str  # "ttcp" or "rcp"
    payload_bytes: int
    elapsed_seconds: float
    datagrams: int

    @property
    def kbps(self) -> float:
        """Goodput in kilobits per second (the Figure 8 unit)."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.payload_bytes * 8 / self.elapsed_seconds / 1000.0


def setup_security(configuration: str, sender: Host, receiver: Host, seed: int = 0) -> None:
    """Install the named Figure 8 configuration on both hosts.

    ``generic`` installs nothing; ``fbs-nop`` installs FBS with the NULL
    MAC and no encryption; ``fbs-des-md5`` installs the full thing.
    """
    if configuration == "generic":
        return
    if configuration == "fbs-nop":
        config = FBSConfig(suite=AlgorithmSuite(mac=MacAlgorithm.NULL))
        encrypt = False
    elif configuration == "fbs-des-md5":
        config = FBSConfig()
        encrypt = True
    elif configuration == "fbs-md5":
        config = FBSConfig()
        encrypt = False
    else:
        raise ValueError(f"unknown configuration {configuration!r}")
    domain = FBSDomain(seed=seed + 100, config=config)
    domain.enroll_host(sender, encrypt_all=encrypt)
    domain.enroll_host(receiver, encrypt_all=encrypt)


#: The three bars of Figure 8 (plus the MAC-only intermediate point).
FIGURE8_CONFIGS = ("generic", "fbs-nop", "fbs-md5", "fbs-des-md5")


def _build_pair(
    seed: int, cost_model: CostModel, bandwidth_bps: float
) -> tuple:
    net = Network(seed=seed)
    net.add_segment("lan", "10.5.0.0", bandwidth_bps=bandwidth_bps)
    sender = net.add_host("sender", segment="lan", cost_model=cost_model)
    receiver = net.add_host("receiver", segment="lan", cost_model=cost_model)
    return net, sender, receiver


def measure_udp_throughput(
    configuration: str,
    total_bytes: int = 500_000,
    payload_size: int = 8192,
    cost_model: CostModel = PENTIUM_133,
    bandwidth_bps: float = 10_000_000.0,
    seed: int = 0,
) -> ThroughputResult:
    """The ttcp measurement: a paced UDP blast, goodput at the receiver.

    The default ``payload_size`` of 8192 matches ttcp's default write
    size; each datagram fragments into six frames in *every*
    configuration, so fragmentation costs cancel out of the comparison
    (with 1460-byte writes, only the FBS configurations would fragment,
    biasing the penalty).
    """
    net, sender, receiver = _build_pair(seed, cost_model, bandwidth_bps)
    setup_security(configuration, sender, receiver, seed=seed)

    inbox = UdpSocket(receiver, 5001)
    outbox = UdpSocket(sender, 5002)
    count = max(1, total_bytes // payload_size)
    warmup = 2  # absorb one-time keying (upcall, modexp, PVC fetch)
    payload = b"\xa5" * payload_size
    segment = net.segment("lan")
    state = {"sent": 0}
    timing = {"start": None}

    def on_receive(_payload, _src, _sport) -> None:
        if len(inbox.received) == warmup:
            timing["start"] = net.sim.now

    inbox.on_receive = on_receive

    def pump() -> None:
        if state["sent"] >= count + warmup:
            return
        outbox.sendto(payload, receiver.address, 5001)
        state["sent"] += 1
        # Pace on whichever resource backs up: the sender CPU or the wire.
        next_time = max(net.sim.now, sender.cpu_busy_until, segment.busy_until)
        net.sim.schedule_at(next_time, pump)

    pump()
    net.sim.run()
    measured = max(0, len(inbox.received) - warmup)
    start = timing["start"] if timing["start"] is not None else 0.0
    elapsed = net.sim.now - start
    return ThroughputResult(
        configuration=configuration,
        kind="ttcp",
        payload_bytes=measured * payload_size,
        elapsed_seconds=elapsed,
        datagrams=measured,
    )


def measure_routed_udp_throughput(
    mode: str,
    total_bytes: int = 300_000,
    payload_size: int = 4096,
    cost_model: CostModel = PENTIUM_133,
    bandwidth_bps: float = 10_000_000.0,
    seed: int = 0,
) -> ThroughputResult:
    """Throughput across a two-LAN + WAN topology, per deployment mode.

    ``mode``: ``generic`` (no security), ``fbs-e2e`` (end hosts run the
    IP mapping; routers forward ciphertext), or ``fbs-gateway`` (plain
    hosts, gateways tunnel across the WAN).  Quantifies the deployment
    trade-off of Section 7.1: gateway mode spares the hosts but pays
    double encapsulation headers and gateway CPU.
    """
    from repro.core.deploy import FBSDomain

    net = Network(seed=seed)
    net.add_segment("lan1", "10.0.1.0", bandwidth_bps=bandwidth_bps)
    net.add_segment("lan2", "10.0.2.0", bandwidth_bps=bandwidth_bps)
    net.add_segment("wan", "192.168.0.0", bandwidth_bps=bandwidth_bps)
    sender = net.add_host("sender", segment="lan1", cost_model=cost_model)
    receiver = net.add_host("receiver", segment="lan2", cost_model=cost_model)
    gw1 = net.add_router("gw1", segments=["lan1", "wan"], cost_model=cost_model)
    gw2 = net.add_router("gw2", segments=["lan2", "wan"], cost_model=cost_model)
    net.add_default_route(sender, "lan1", gw1)
    net.add_default_route(receiver, "lan2", gw2)
    net.add_default_route(gw1, "wan", gw2)
    net.add_default_route(gw2, "wan", gw1)

    if mode == "fbs-e2e":
        domain = FBSDomain(seed=seed + 200)
        domain.enroll_host(sender, encrypt_all=True)
        domain.enroll_host(receiver, encrypt_all=True)
    elif mode == "fbs-gateway":
        domain = FBSDomain(seed=seed + 200)
        t1 = domain.enroll_gateway(gw1)
        t2 = domain.enroll_gateway(gw2)
        t1.add_peer("10.0.2.0", 24, gw2.address)
        t2.add_peer("10.0.1.0", 24, gw1.address)
    elif mode != "generic":
        raise ValueError(f"unknown mode {mode!r}")

    inbox = UdpSocket(receiver, 5001)
    outbox = UdpSocket(sender, 5002)
    count = max(1, total_bytes // payload_size)
    warmup = 2
    payload = b"\x3c" * payload_size
    lan1 = net.segment("lan1")
    state = {"sent": 0}
    timing = {"start": None}

    def on_receive(_payload, _src, _sport) -> None:
        if len(inbox.received) == warmup:
            timing["start"] = net.sim.now

    inbox.on_receive = on_receive

    def pump() -> None:
        if state["sent"] >= count + warmup:
            return
        outbox.sendto(payload, receiver.address, 5001)
        state["sent"] += 1
        next_time = max(
            net.sim.now, sender.cpu_busy_until, lan1.busy_until, gw1.cpu_busy_until
        )
        net.sim.schedule_at(next_time, pump)

    pump()
    net.sim.run()
    measured = max(0, len(inbox.received) - warmup)
    start = timing["start"] if timing["start"] is not None else 0.0
    return ThroughputResult(
        configuration=mode,
        kind="routed-ttcp",
        payload_bytes=measured * payload_size,
        elapsed_seconds=net.sim.now - start,
        datagrams=measured,
    )


def measure_tcp_throughput(
    configuration: str,
    total_bytes: int = 1_000_000,
    cost_model: CostModel = PENTIUM_133,
    bandwidth_bps: float = 10_000_000.0,
    seed: int = 0,
) -> ThroughputResult:
    """The rcp measurement: a TCP bulk copy, timed to last delivery."""
    net, sender, receiver = _build_pair(seed, cost_model, bandwidth_bps)
    setup_security(configuration, sender, receiver, seed=seed)

    server = TcpServer(receiver, 514)  # rcp's shell port, for flavour
    client = TcpClient(sender, receiver.address, 514)
    payload = b"\x5a" * total_bytes
    done_at = {"time": None}

    def on_connect() -> None:
        client.send(payload)
        client.close()

    client.conn.on_connect = on_connect

    def on_data(_conn, _chunk) -> None:
        if server.received and len(server.received[0]) >= total_bytes:
            done_at["time"] = net.sim.now

    server.on_data = on_data
    net.sim.run(until=600.0)
    delivered = len(server.received[0]) if server.received else 0
    elapsed = done_at["time"] if done_at["time"] is not None else net.sim.now
    return ThroughputResult(
        configuration=configuration,
        kind="rcp",
        payload_bytes=delivered,
        elapsed_seconds=elapsed,
        datagrams=receiver.tcp.segments_received,
    )
