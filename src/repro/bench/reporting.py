"""Plain-text table/CDF rendering for the bench scripts."""

from __future__ import annotations

from typing import List, Sequence, Tuple

__all__ = ["render_table", "render_cdf"]


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned ASCII table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for r, row in enumerate(cells):
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        if r == 0:
            lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    return "\n".join(lines)


def render_cdf(
    title: str,
    points: Sequence[Tuple[float, float]],
    unit: str = "",
    width: int = 40,
) -> str:
    """Render a CDF as an ASCII bar chart (one row per evaluation point)."""
    lines = [title]
    for x, frac in points:
        bar = "#" * int(round(frac * width))
        lines.append(f"  <= {x:>12g} {unit:<8} |{bar:<{width}}| {frac * 100:5.1f}%")
    return "\n".join(lines)
