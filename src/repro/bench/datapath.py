"""Datapath kernel micro-benchmarks (the BENCH_datapath.json stages).

Section 5.3's claim -- "with proper caching, the overhead of the FBS
protocol can be reduced to the bare minimum, i.e., only MAC computation
and encryption" -- makes the crypto kernels *the* datapath cost.  This
module times each stage of that path in isolation and end to end:

* the DES fast kernel (``repro.crypto.des``) against the FIPS 46
  specification implementation (``repro.crypto.des_reference``),
* the DES key schedule (what a flow-key cache miss pays),
* the MD5/SHA-1 compress kernels and the prefix-keyed MAC,
* DES-CBC over datagram-sized buffers,
* batch-of-64 lanes through the vectorized kernels
  (``repro.crypto.vector``) against a scalar loop over the same 64
  datagrams -- 8 distinct flows cycle across the lanes so the vector
  path pays its per-key subkey gathers, and
* full ``protect``/``unprotect`` round trips through two
  :class:`~repro.core.protocol.FBSEndpoint` instances, with the Figure 6
  caches warm -- plus an explicit check that a warm-cache datagram
  performs **zero** key derivations, zero crypto-state builds, and zero
  DES key-schedule constructions.

``PRE_PR_BASELINE`` freezes the numbers the same stages measured on the
pre-fast-path kernels (bit-at-a-time-free but byte-oriented DES, rolled
MD5/SHA-1 loops, per-datagram key derivation + schedule build), so
``run_datapath_bench`` can report before/after deltas without checking
out old code.  Absolute rates move with the host; the *ratios* are the
reproducible part, and the live fast-vs-reference DES ratio is measured
fresh on every run.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional

__all__ = [
    "PRE_PR_BASELINE",
    "run_datapath_bench",
    "render_datapath_report",
    "write_roundtrip_trace",
]


#: Stage rates measured at the pre-PR commit (seed kernels) on the same
#: harness loops as below.  Units: ``*_ops_s`` are operations/second,
#: ``*_Bps`` bytes/second.  Round-trip stages alternate one ``protect``
#: and one ``unprotect`` between two warm endpoints.
PRE_PR_BASELINE: Dict[str, float] = {
    "des_block_ops_s": 39405.5,
    "des_schedule_ops_s": 40531.8,
    "md5_1k_ops_s": 1480.4,
    "keyed_md5_1k_ops_s": 1510.6,
    "des_cbc_1k_Bps": 251314.0,
    "roundtrip_secret_64B_ops_s": 1289.15,
    "roundtrip_secret_256B_ops_s": 417.00,
    "roundtrip_secret_1024B_ops_s": 114.59,
    "roundtrip_mac_only_1024B_ops_s": 733.21,
}


def _window(fn: Callable[[], object], min_time: float) -> float:
    """One ``min_time`` timing window: calls/second of ``fn``."""
    calls = 0
    batch = 1
    start = time.perf_counter()
    deadline = start + min_time
    while True:
        for _ in range(batch):
            fn()
        calls += batch
        now = time.perf_counter()
        if now >= deadline:
            break
        batch = min(batch * 2, 4096)
    return calls / (now - start)


def _rate(fn: Callable[[], object], min_time: float, repeats: int = 3) -> float:
    """Best-of-``repeats`` calls/second of ``fn``, ``min_time`` each.

    Interference (scheduler preemption, host steal time) only ever
    *slows* a measurement, so the fastest repetition is the least-noisy
    estimate of the kernel's true rate -- the same reasoning behind
    taking ``min(timeit.repeat(...))``.
    """
    fn()  # warm caches and lazy imports outside the timed region
    return max(_window(fn, min_time) for _ in range(repeats))


def _paired_rates(
    base_fn: Callable[[], object],
    fast_fn: Callable[[], object],
    min_time: float,
    repeats: int = 3,
) -> tuple:
    """Best-of rates for two kernels from *interleaved* windows.

    The gated numbers downstream are the fast/base *ratios*, and host
    interference (steal time, frequency throttling) comes in bursts
    that can last longer than one stage's whole measurement.  Timing
    the two sides back to back inside each repetition means a burst
    degrades both or neither, so the ratio survives even when the
    absolute rates do not.
    """
    base_fn()  # warm caches and lazy imports outside the timed region
    fast_fn()
    base = fast = 0.0
    for _ in range(repeats):
        base = max(base, _window(base_fn, min_time))
        fast = max(fast, _window(fast_fn, min_time))
    return base, fast


def _endpoint_pair():
    """Two enrolled endpoints sharing a domain (the test-suite idiom)."""
    from repro.core.deploy import FBSDomain
    from repro.core.keying import Principal

    domain = FBSDomain(seed=7)
    alice = domain.make_endpoint(Principal.from_name("bench-alice"))
    bob = domain.make_endpoint(Principal.from_name("bench-bob"))
    return alice, bob


def _fast_path_deltas() -> Dict[str, int]:
    """Per-datagram keying work with warm caches (must all be zero)."""
    from repro.crypto.des import DES

    alice, bob = _endpoint_pair()
    body = b"\xa5" * 256
    # Warm every cache level: FST, TFKC/RFKC (crypto state included).
    for _ in range(3):
        bob.unprotect(alice.protect(body, bob.principal, secret=True),
                      alice.principal, secret=True)
    before = (
        alice.metrics.send_flow_key_derivations
        + bob.metrics.receive_flow_key_derivations,
        alice.metrics.crypto_state_builds + bob.metrics.crypto_state_builds,
        DES.schedule_builds,
    )
    bob.unprotect(alice.protect(body, bob.principal, secret=True),
                  alice.principal, secret=True)
    after = (
        alice.metrics.send_flow_key_derivations
        + bob.metrics.receive_flow_key_derivations,
        alice.metrics.crypto_state_builds + bob.metrics.crypto_state_builds,
        DES.schedule_builds,
    )
    return {
        "flow_key_derivations": after[0] - before[0],
        "crypto_state_builds": after[1] - before[1],
        "des_schedule_builds": after[2] - before[2],
    }


def write_roundtrip_trace(destination, datagrams: int = 64) -> int:
    """Drive ``datagrams`` round trips through a *traced* endpoint pair.

    Writes the full event stream (flow start, key derivations, cache
    hits/misses, protected/accepted datagrams) as JSONL to
    ``destination`` -- a path or an open text file -- and returns the
    number of events written.  ``python -m repro.obs summarize`` on the
    output shows the warm-path story behind the round-trip stage rates:
    keying events only at the front, cache hits thereafter.
    """
    from repro.core.deploy import FBSDomain
    from repro.core.keying import Principal
    from repro.obs import JsonlSink, Tracer

    clock = [0.0]
    with JsonlSink(destination) as sink:
        tracer = Tracer(sink, now=lambda: clock[0])
        domain = FBSDomain(seed=7)
        alice = domain.make_endpoint(
            Principal.from_name("bench-alice"), tracer=tracer
        )
        bob = domain.make_endpoint(
            Principal.from_name("bench-bob"), tracer=tracer
        )
        for i in range(datagrams):
            clock[0] = i * 1e-3
            secret = bool(i % 2)
            body = bytes([i & 0xFF]) * 256
            wire = alice.protect(body, bob.principal, secret=secret)
            bob.unprotect(wire, alice.principal, secret=secret)
        return sink.events_written


def run_datapath_bench(profile: str = "full") -> Dict[str, object]:
    """Run every stage; return a JSON-serializable result dictionary.

    ``profile`` is ``"full"`` (default, ~15 s) or ``"smoke"`` (sub-second
    per stage, for CI -- rates are noisier but the ratios and the
    zero-work fast-path check are as strict).
    """
    from repro.core.keying import KeyDerivation
    from repro.crypto import des_reference
    from repro.crypto.des import DES
    from repro.crypto.mac import keyed_md5
    from repro.crypto.md5 import md5
    from repro.crypto.modes import decrypt_cbc, encrypt_cbc
    from repro.crypto.sha1 import sha1

    if profile not in ("full", "smoke"):
        raise ValueError(f"unknown profile {profile!r}")
    min_time = 0.5 if profile == "full" else 0.05

    key = b"\x13\x34\x57\x79\x9b\xbc\xdf\xf1"
    cipher = DES(key)
    ref_cipher = des_reference.DES(key)
    block_int = 0x0123456789ABCDEF
    block = block_int.to_bytes(8, "big")
    kilobyte = bytes(range(256)) * 4
    iv = b"\x00\x11\x22\x33\x44\x55\x66\x77"
    mac_key = KeyDerivation.mac_key(b"\x5a" * 16)
    cbc_ciphertext = encrypt_cbc(cipher, iv, kilobyte)

    stages: Dict[str, float] = {}
    stages["des_block_ops_s"] = _rate(
        lambda: cipher.encrypt_int(block_int), min_time
    )
    stages["des_block_reference_ops_s"] = _rate(
        lambda: ref_cipher.encrypt_block(block), min_time
    )
    stages["des_schedule_ops_s"] = _rate(lambda: DES(key), min_time)
    stages["md5_1k_ops_s"] = _rate(lambda: md5(kilobyte), min_time)
    stages["sha1_1k_ops_s"] = _rate(lambda: sha1(kilobyte), min_time)
    stages["keyed_md5_1k_ops_s"] = _rate(
        lambda: keyed_md5(mac_key, kilobyte), min_time
    )
    stages["des_cbc_1k_Bps"] = len(kilobyte) * _rate(
        lambda: encrypt_cbc(cipher, iv, kilobyte), min_time
    )
    stages["des_cbc_decrypt_1k_Bps"] = len(kilobyte) * _rate(
        lambda: decrypt_cbc(cipher, iv, cbc_ciphertext), min_time
    )

    # Batch-of-64: vectorized lane kernels vs a scalar loop over the
    # same datagrams.  One "op" is the whole 64-lane batch.  8 distinct
    # flows (DES keys + MAC keys) cycle across the lanes so the vector
    # path pays its per-key subkey/prefix gathers, matching a mixed-flow
    # receive batch.  Stages are skipped (and the gates with them) when
    # numpy is absent -- the datapath itself falls back to scalar there.
    from repro.crypto import vector

    if vector.HAVE_NUMPY:
        lanes = 64
        bodies = [
            bytes((i + j) & 0xFF for j in range(1024)) for i in range(lanes)
        ]
        lane_keys = [
            bytes(((37 * k + j) | 1) & 0xFF for j in range(8))
            for k in range(8)
        ]
        flow_ciphers = [DES(k) for k in lane_keys]
        lane_ciphers = [flow_ciphers[i % 8] for i in range(lanes)]
        flow_mac_keys = [
            KeyDerivation.mac_key(bytes([0x10 + k]) * 16) for k in range(8)
        ]
        lane_mac_keys = [flow_mac_keys[i % 8] for i in range(lanes)]
        ivs = [bytes([i]) * 8 for i in range(lanes)]
        lane_ct = vector.cbc_encrypt_many(lane_ciphers, ivs, bodies)

        (
            stages["batch64_keyed_md5_1k_scalar_ops_s"],
            stages["batch64_keyed_md5_1k_vector_ops_s"],
        ) = _paired_rates(
            lambda: [keyed_md5(k, b) for k, b in zip(lane_mac_keys, bodies)],
            lambda: vector.keyed_md5_many(lane_mac_keys, bodies),
            min_time,
        )
        (
            stages["batch64_des_cbc_1k_scalar_ops_s"],
            stages["batch64_des_cbc_1k_vector_ops_s"],
        ) = _paired_rates(
            lambda: [
                encrypt_cbc(c, v, b)
                for c, v, b in zip(lane_ciphers, ivs, bodies)
            ],
            lambda: vector.cbc_encrypt_many(lane_ciphers, ivs, bodies),
            min_time,
        )
        (
            stages["batch64_des_cbc_decrypt_1k_scalar_ops_s"],
            stages["batch64_des_cbc_decrypt_1k_vector_ops_s"],
        ) = _paired_rates(
            lambda: [
                decrypt_cbc(c, v, ct)
                for c, v, ct in zip(lane_ciphers, ivs, lane_ct)
            ],
            lambda: vector.cbc_decrypt_many(lane_ciphers, ivs, lane_ct),
            min_time,
        )

    # End-to-end round trips: one protect + one unprotect per op, caches
    # warm, alternating directions of work between the two endpoints.
    # These are the headline numbers, so give them double the window.
    rt_time = 2 * min_time
    roundtrip_sizes = (64, 256, 1024) if profile == "full" else (256,)
    for size in roundtrip_sizes:
        alice, bob = _endpoint_pair()
        body = b"\xc3" * size

        def secret_roundtrip(alice=alice, bob=bob, body=body):
            wire = alice.protect(body, bob.principal, secret=True)
            return bob.unprotect(wire, alice.principal, secret=True)

        stages[f"roundtrip_secret_{size}B_ops_s"] = _rate(
            secret_roundtrip, rt_time
        )
    mac_sizes = (1024,) if profile == "full" else ()
    for size in mac_sizes:
        alice, bob = _endpoint_pair()
        body = b"\x3c" * size

        def mac_roundtrip(alice=alice, bob=bob, body=body):
            wire = alice.protect(body, bob.principal, secret=False)
            return bob.unprotect(wire, alice.principal, secret=False)

        stages[f"roundtrip_mac_only_{size}B_ops_s"] = _rate(
            mac_roundtrip, rt_time
        )

    speedups: Dict[str, float] = {
        "des_block_fast_vs_reference": (
            stages["des_block_ops_s"] / stages["des_block_reference_ops_s"]
        )
    }
    for name, before in PRE_PR_BASELINE.items():
        if name in stages:
            speedups[f"{name}_vs_pre_pr"] = stages[name] / before
    # Vector-vs-scalar-loop ratios for the batch stages.  The decrypt
    # and MAC ratios are gated (>= 5x) by benchmarks/bench_datapath.py;
    # CBC *encrypt* is chain-limited (block i needs ciphertext i-1, so
    # only the lane dimension vectorizes) and is reported ungated.
    for pair in ("keyed_md5", "des_cbc", "des_cbc_decrypt"):
        scalar = stages.get(f"batch64_{pair}_1k_scalar_ops_s")
        vectored = stages.get(f"batch64_{pair}_1k_vector_ops_s")
        if scalar and vectored:
            speedups[f"batch64_{pair}_vector_vs_scalar"] = vectored / scalar

    return {
        "profile": profile,
        "stages": stages,
        "pre_pr_baseline": dict(PRE_PR_BASELINE),
        "speedups": speedups,
        "fast_path_per_datagram": _fast_path_deltas(),
    }


def render_datapath_report(results: Dict[str, object]) -> str:
    """The human-readable table written to benchmarks/reports/."""
    from repro.bench.reporting import render_table

    stages = results["stages"]
    speedups = results["speedups"]
    rows = []
    for name, value in stages.items():
        vs_pre = speedups.get(f"{name}_vs_pre_pr")
        rows.append(
            (
                name,
                f"{value:,.1f}",
                f"x{vs_pre:.2f}" if vs_pre is not None else "-",
            )
        )
    lines = [
        f"Datapath kernels ({results['profile']} profile)",
        render_table(["stage", "rate", "vs pre-PR"], rows),
        "",
        "DES fast kernel vs FIPS 46 reference: "
        f"x{speedups['des_block_fast_vs_reference']:.1f}",
    ]
    batch = {
        name: value
        for name, value in speedups.items()
        if name.endswith("_vector_vs_scalar")
    }
    if batch:
        lines.append(
            "Batch-of-64 vector vs scalar loop: "
            + ", ".join(f"{k}=x{v:.2f}" for k, v in sorted(batch.items()))
        )
    lines += [
        "Warm-cache per-datagram keying work (must be all zero): "
        + ", ".join(
            f"{k}={v}" for k, v in results["fast_path_per_datagram"].items()
        ),
    ]
    return "\n".join(lines)
