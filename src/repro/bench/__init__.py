"""Shared measurement harness used by the ``benchmarks/`` targets.

* :mod:`repro.bench.throughput` -- ttcp/rcp-style throughput
  measurement over the simulated testbed (Figure 8).
* :mod:`repro.bench.reporting` -- plain-text table rendering shared by
  the per-figure bench scripts.
* :mod:`repro.bench.datapath` -- crypto-kernel and warm-cache datapath
  micro-benchmarks (the BENCH_datapath.json stages).
"""

from repro.bench.datapath import (
    PRE_PR_BASELINE,
    render_datapath_report,
    run_datapath_bench,
    write_roundtrip_trace,
)
from repro.bench.throughput import (
    ThroughputResult,
    measure_udp_throughput,
    measure_tcp_throughput,
    measure_routed_udp_throughput,
    FIGURE8_CONFIGS,
    setup_security,
)
from repro.bench.reporting import render_table, render_cdf

__all__ = [
    "ThroughputResult",
    "measure_udp_throughput",
    "measure_tcp_throughput",
    "measure_routed_udp_throughput",
    "FIGURE8_CONFIGS",
    "setup_security",
    "render_table",
    "render_cdf",
    "PRE_PR_BASELINE",
    "run_datapath_bench",
    "render_datapath_report",
    "write_roundtrip_trace",
]
