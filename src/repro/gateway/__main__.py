"""Entry point for ``python -m repro.gateway`` (see :mod:`repro.gateway.cli`)."""

import sys

from repro.gateway.cli import main

if __name__ == "__main__":
    sys.exit(main())
