"""Docs-vs-code sync for the gateway operator guide.

``docs/DEPLOYMENT.md`` carries the multi-tenant gateway's operator
section; this check keeps it honest the same way the transport section
is kept honest: every :class:`~repro.gateway.tenants.GatewayConfig`
field and every admission drop/eviction reason must appear in backticks
in the guide.  Wired into ``python -m repro.obs check-docs`` (imported
lazily there: obs never imports upward eagerly).
"""

from __future__ import annotations

import dataclasses
import os
import re
from typing import List

from repro.gateway.admission import DROP_REASONS, EVICTION_REASONS
from repro.gateway.tenants import GatewayConfig

__all__ = ["check_gateway_doc"]

_BACKTICKED = re.compile(r"`([^`\n]+)`")


def check_gateway_doc(doc_path: str) -> List[str]:
    """Problems with the gateway operator section (empty = in sync)."""
    problems: List[str] = []
    if not os.path.isfile(doc_path):
        return [f"{doc_path}: missing"]
    with open(doc_path, "r", encoding="utf-8") as fp:
        text = fp.read()
    mentioned = set(_BACKTICKED.findall(text))
    for field in dataclasses.fields(GatewayConfig):
        if field.name not in mentioned:
            problems.append(
                f"{doc_path}: GatewayConfig knob `{field.name}` "
                f"is not documented"
            )
    for reason in DROP_REASONS + EVICTION_REASONS:
        if reason not in mentioned:
            problems.append(
                f"{doc_path}: gateway reason `{reason}` is not documented"
            )
    return problems
